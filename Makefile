# Developer entry points. All targets run from the repo root.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint chaos daemon durability fleet bench bench-gate bench-baseline coverage

test:
	$(PYTHON) -m pytest -x -q -W error::RuntimeWarning

# Fault-injection suite under a real worker pool (CI's 'chaos' job).
chaos:
	REPRO_WORKERS=4 $(PYTHON) -m pytest -x -q tests/test_chaos.py tests/test_journal.py

# Daemon suite: protocol/isolation/acceptance + chaos (CI's 'daemon'
# job runs this plus the service benchmark under a hard timeout).
daemon:
	$(PYTHON) -m pytest -x -q tests/test_daemon.py tests/test_daemon_chaos.py

# Crash-recovery suite: op-log/snapshot units, bitwise replay,
# reconnecting clients, then the real SIGKILL-restart chaos run
# (CI's 'daemon-durability' job adds the recovery-time floor).
durability:
	$(PYTHON) -m pytest -x -q tests/test_daemon_durability.py
	$(PYTHON) -m pytest -x -q -m slow tests/test_daemon_durability.py

# Fleet subsystem suite + the nightly kill/resume bitwise check at
# smoke scale (the scheduled CI job runs it at 10^4 dies).
fleet:
	$(PYTHON) -m pytest -x -q tests/test_fleet.py
	$(PYTHON) benchmarks/fleet_nightly.py --dies 600 --out /tmp/repro-fleet-nightly

lint:
	$(PYTHON) -m ruff check src tests benchmarks

# Quick benchmark suite: regenerates benchmarks/results/*.txt and the
# machine-readable BENCH_*.json records. REPRO_FULL=1 for paper sizes.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Compare the BENCH_*.json records against the committed baseline.
bench-gate:
	$(PYTHON) benchmarks/perf_gate.py check

# Refresh benchmarks/baseline.json from a fresh quick run; commit the
# result whenever figure metrics legitimately change.
bench-baseline: bench
	$(PYTHON) benchmarks/perf_gate.py update

coverage:
	$(PYTHON) -m pytest --cov=repro --cov-report=term --cov-report=html
