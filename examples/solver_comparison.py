"""Solver comparison: LinOpt vs SAnn vs exhaustive search.

On a small 4-thread configuration (where exhaustive search over all
voltage-level combinations is tractable — the paper's own validation
protocol, Section 6.5), compares the throughput and the computational
cost of every power manager.

Run with::

    python examples/solver_comparison.py
"""

import time

import numpy as np

from repro.config import LOW_POWER
from repro.experiments.common import ChipFactory
from repro.pm import ExhaustiveSearch, FoxtonStar, LinOpt, SAnnManager
from repro.sched import VarFAppIPC
from repro.workloads import make_workload

N_THREADS = 4


def main() -> None:
    factory = ChipFactory()
    chip = factory.chip(0)
    rng = np.random.default_rng(23)
    workload = make_workload(N_THREADS, rng)
    assignment = VarFAppIPC().assign_with_profiling(chip, workload, rng)
    env = LOW_POWER
    print(f"{N_THREADS} threads ({', '.join(a.name for a in workload)}) "
          f"under {env.p_target(N_THREADS, chip.n_cores):.1f} W\n")

    managers = [
        ("Foxton*", FoxtonStar()),
        ("LinOpt", LinOpt()),
        ("SAnn", SAnnManager(n_evaluations=2000)),
        ("Exhaustive", ExhaustiveSearch()),
    ]
    rows = []
    for name, manager in managers:
        t0 = time.perf_counter()
        result = manager.set_levels(chip, workload, assignment, env,
                                    np.random.default_rng(5))
        wall = time.perf_counter() - t0
        rows.append((name, result.state.throughput_mips,
                     result.state.total_power, result.evaluations, wall))

    best = max(r[1] for r in rows)
    print(f"{'manager':11s} {'MIPS':>8s} {'vs best':>8s} {'power':>7s} "
          f"{'evals':>7s} {'time':>8s}")
    for name, mips, power, evals, wall in rows:
        print(f"{name:11s} {mips:8.0f} {mips / best:8.3f} {power:6.1f}W "
              f"{evals:7d} {wall * 1000:7.1f}ms")
    print("\nThe paper's finding: LinOpt lands within ~2% of SAnn and "
          "the exhaustive optimum at a fraction of the cost; SAnn "
          "itself is within ~1% of exhaustive.")


if __name__ == "__main__":
    main()
