"""Lifetime study: wearout, self-levelling and field recalibration.

Ages one die for three simulated years under VarF&AppIPC scheduling
(NBTI model), then applies adaptive body bias to re-level the aged
chip — the full variation-management lifecycle: exploit the spread
while it exists, watch usage erode it, recover the floor with bias.

Run with::

    python examples/lifetime_study.py
"""

import numpy as np

from repro.experiments import ext_aging
from repro.experiments.common import ChipFactory
from repro.aging import aged_chip
from repro.mitigation import biased_chip, frequency_levelling_biases


def main() -> None:
    factory = ChipFactory()
    print("Aging one die for 36 months under each scheduler...\n")
    result = ext_aging.run(n_epochs=6, factory=factory)
    print(result.format_table())

    # Recreate the VarF-aged chip and re-level it with body bias.
    varf = result.trajectories["VarF&AppIPC"]
    chip = factory.chip(0)
    print("\nField recalibration of the aged chip with body bias:")
    # Approximate the aged state with a uniform shift matching the
    # trajectory's mean frequency loss.
    loss = 1.0 - varf.mean_fmax_ghz[-1] / varf.mean_fmax_ghz[0]
    shift = np.full(chip.n_cores, 0.25 * loss)  # rough Vth-equivalent
    old = aged_chip(chip, shift)
    levelled = biased_chip(old, frequency_levelling_biases(old))
    print(f"  fresh chip : floor {chip.min_fmax / 1e9:.2f} GHz, "
          f"spread {chip.fmax_array.max() / chip.fmax_array.min():.2f}")
    print(f"  aged chip  : floor {old.min_fmax / 1e9:.2f} GHz, "
          f"spread {old.fmax_array.max() / old.fmax_array.min():.2f}")
    print(f"  aged + ABB : floor {levelled.min_fmax / 1e9:.2f} GHz, "
          f"spread "
          f"{levelled.fmax_array.max() / levelled.fmax_array.min():.2f}")


if __name__ == "__main__":
    main()
