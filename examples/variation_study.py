"""Variation study: how process variation spreads core frequency and
power across a batch of manufactured dies (paper Section 7.1).

Generates a batch of dies, characterises each, and reports the
max/min core frequency and power ratios plus how they scale with the
Vth sigma/mu parameter — a miniature of Figures 4 and 5.

Run with::

    python examples/variation_study.py
"""

import numpy as np

from repro.chip import characterize_die
from repro.config import DEFAULT_ARCH, DEFAULT_TECH
from repro.experiments.fig04_variation import (
    core_frequency_ratio,
    core_power_ratio,
)
from repro.experiments.common import ChipFactory
from repro.variation import DieBatch

N_DIES = 10


def main() -> None:
    print(f"Characterising {N_DIES} dies at Vth sigma/mu = "
          f"{DEFAULT_TECH.vth_sigma_over_mu} ...")
    factory = ChipFactory()
    freq_ratios = []
    power_ratios = []
    for chip in factory.chips(N_DIES):
        fr = core_frequency_ratio(chip)
        pr = core_power_ratio(chip)
        freq_ratios.append(fr)
        power_ratios.append(pr)
        f = chip.fmax_array / 1e9
        print(f"  die {chip.die_id:2d}: fmax {f.min():.2f}-{f.max():.2f} GHz"
              f"  freq ratio {fr:.2f}  power ratio {pr:.2f}")
    print(f"\nBatch means: frequency ratio {np.mean(freq_ratios):.2f} "
          f"(paper ~1.33), power ratio {np.mean(power_ratios):.2f} "
          f"(paper ~1.53)")

    print("\nScaling with sigma/mu (Figure 5 shape):")
    for sigma in (0.03, 0.06, 0.09, 0.12):
        fac = ChipFactory(tech=DEFAULT_TECH.with_sigma_over_mu(sigma))
        ratios = [core_frequency_ratio(c) for c in fac.chips(4)]
        print(f"  sigma/mu {sigma:.2f}: mean frequency ratio "
              f"{np.mean(ratios):.3f}")


if __name__ == "__main__":
    main()
