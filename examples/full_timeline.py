"""The complete Figure 2 timeline: OS scheduling interval + DVFS
interval running together.

A phased 10-thread workload runs for 200 ms. Every 50 ms the OS
re-runs VarF&AppIPC (re-profiling the threads and migrating them if
the ranking changed); every 10 ms LinOpt re-solves the per-core DVFS
assignment under the Cost-Performance budget.

Run with::

    python examples/full_timeline.py
"""

import numpy as np

from repro.config import COST_PERFORMANCE
from repro.experiments.common import ChipFactory
from repro.pm import LinOpt, LinOptConfig
from repro.runtime import OnlineSimulation
from repro.sched import VarFAppIPC
from repro.workloads import make_workload

N_THREADS = 10
DURATION_S = 0.2
DVFS_INTERVAL_S = 0.010
OS_INTERVAL_S = 0.050


def main() -> None:
    factory = ChipFactory()
    chip = factory.chip(0)
    rng = np.random.default_rng(17)
    workload = make_workload(N_THREADS, rng)
    assignment = VarFAppIPC().assign_with_profiling(chip, workload, rng)

    sim = OnlineSimulation(
        chip, workload, assignment, COST_PERFORMANCE,
        manager=LinOpt(LinOptConfig(n_iterations=3)),
        policy=VarFAppIPC(),
        os_interval_s=OS_INTERVAL_S,
        phase_seed=4,
    )
    trace = sim.run(DURATION_S, DVFS_INTERVAL_S)

    budget = trace.p_target_w
    print(f"{N_THREADS} threads, {DURATION_S * 1000:.0f} ms simulated "
          f"under {budget:.1f} W:")
    print(f"  power manager invocations : {len(trace.manager_runs)}")
    print(f"  thread migrations         : {trace.migrations}")
    print(f"  mean power                : {trace.mean_power_w:.1f} W "
          f"(|deviation| {trace.mean_abs_deviation_pct:.2f}%)")
    print(f"  mean throughput           : "
          f"{trace.mean_throughput_mips:.0f} MIPS")
    print(f"  mean weighted throughput  : "
          f"{trace.mean_weighted_throughput:.2f}")
    print(f"  time lost to V/f switches : "
          f"{trace.transition_time_s * 1e6:.0f} us")


if __name__ == "__main__":
    main()
