"""Quickstart: manufacture a variation-affected 20-core CMP, schedule a
workload on it variation-aware, and manage power with LinOpt.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.chip import characterize_die
from repro.config import COST_PERFORMANCE, DEFAULT_ARCH, DEFAULT_TECH
from repro.pm import FoxtonStar, LinOpt
from repro.runtime import evaluate_max_levels
from repro.sched import RandomPolicy, VarFAppIPC
from repro.variation import DieBatch
from repro.workloads import make_workload


def main() -> None:
    # 1. Manufacture a batch of dies with within-die Vth/Leff variation
    #    (VARIUS model, Table 4 parameters) and characterise one die
    #    the way the chip manufacturer would: per-core (V, f) tables,
    #    leakage models and static-power ratings.
    batch = DieBatch(DEFAULT_TECH, DEFAULT_ARCH, n_dies=4, seed=42)
    chip = characterize_die(batch[0], DEFAULT_TECH, DEFAULT_ARCH)

    fmax_ghz = chip.fmax_array / 1e9
    print(f"Die 0: {chip.n_cores} cores, fmax "
          f"{fmax_ghz.min():.2f}-{fmax_ghz.max():.2f} GHz "
          f"(ratio {fmax_ghz.max() / fmax_ghz.min():.2f}), "
          f"rated static power "
          f"{chip.static_rated_array.min():.2f}-"
          f"{chip.static_rated_array.max():.2f} W")

    # 2. Draw a 16-application multiprogrammed workload from the SPEC
    #    pool (Table 5 profiles) and map it onto cores.
    rng = np.random.default_rng(7)
    workload = make_workload(16, rng)
    print("Workload:", ", ".join(app.name for app in workload))

    random_asg = RandomPolicy().assign_with_profiling(chip, workload, rng)
    smart_asg = VarFAppIPC().assign_with_profiling(chip, workload, rng)

    # 3. Without DVFS (NUniFreq), compare the schedulers at max levels.
    st_random = evaluate_max_levels(chip, workload, random_asg)
    st_smart = evaluate_max_levels(chip, workload, smart_asg)
    print(f"\nNUniFreq  Random      : {st_random.throughput_mips:8.0f} MIPS "
          f"at {st_random.total_power:5.1f} W")
    print(f"NUniFreq  VarF&AppIPC : {st_smart.throughput_mips:8.0f} MIPS "
          f"at {st_smart.total_power:5.1f} W "
          f"(+{(st_smart.throughput_mips / st_random.throughput_mips - 1) * 100:.1f}%)")

    # 4. Under a 75 W chip budget, compare Foxton* with LinOpt.
    env = COST_PERFORMANCE
    fox = FoxtonStar().set_levels(chip, workload, smart_asg, env)
    lin = LinOpt().set_levels(chip, workload, smart_asg, env)
    print(f"\nBudget {env.p_target(16, chip.n_cores):.0f} W "
          f"({env.name}):")
    print(f"  Foxton* : {fox.state.throughput_mips:8.0f} MIPS "
          f"at {fox.state.total_power:5.1f} W")
    print(f"  LinOpt  : {lin.state.throughput_mips:8.0f} MIPS "
          f"at {lin.state.total_power:5.1f} W "
          f"(+{(lin.state.throughput_mips / fox.state.throughput_mips - 1) * 100:.1f}%, "
          f"{lin.stats['lp_pivots']:.0f} Simplex pivots)")
    volts = [round(float(chip.cores[c].vf_table.voltages[lv]), 2)
             for c, lv in zip(smart_asg.core_of, lin.levels)]
    print(f"  LinOpt per-core voltages: {volts}")


if __name__ == "__main__":
    main()
