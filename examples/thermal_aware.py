"""Temperature-aware scheduling (paper Section 8 future work).

Compares the paper's VarP policy with the VarTemp extension, which
penalises cores in the hot centre of the die. Reports power, peak
temperature and the temperature spread across the die for a
half-loaded CMP.

Run with::

    python examples/thermal_aware.py
"""

import numpy as np

from repro.config import celsius
from repro.experiments.common import ChipFactory
from repro.runtime import evaluate_max_levels
from repro.sched import RandomPolicy, VarP, VarTemp
from repro.workloads import make_workload

N_THREADS = 10
N_TRIALS = 6


def main() -> None:
    factory = ChipFactory()
    results = {}
    for policy in (RandomPolicy(), VarP(), VarTemp()):
        powers, peaks, spreads = [], [], []
        for trial in range(N_TRIALS):
            chip = factory.chip(trial % 3, 3)
            workload = make_workload(
                N_THREADS, np.random.default_rng(trial))
            rng = np.random.default_rng(100 + trial)
            assignment = policy.assign_with_profiling(chip, workload, rng)
            state = evaluate_max_levels(chip, workload, assignment)
            core_temps = state.block_temps[: chip.n_cores]
            active = list(assignment.core_of)
            powers.append(state.total_power)
            peaks.append(celsius(float(core_temps[active].max())))
            spreads.append(float(core_temps[active].max()
                                 - core_temps[active].min()))
        results[policy.name] = (np.mean(powers), np.mean(peaks),
                                np.mean(spreads))

    print(f"{N_THREADS} threads on a 20-core die "
          f"({N_TRIALS} trials, no DVFS):\n")
    print(f"{'policy':10s} {'power (W)':>10s} {'peak T (C)':>11s} "
          f"{'spread (K)':>11s}")
    for name, (p, t, s) in results.items():
        print(f"{name:10s} {p:10.1f} {t:11.1f} {s:11.1f}")
    print("\nVarTemp trades a little of VarP's leakage optimality for "
          "cooler, more uniform silicon — the extension Section 8 of "
          "the paper sketches.")


if __name__ == "__main__":
    main()
