"""Online power management: the Figure 2 timeline in action.

Runs a phased 12-thread workload under a 45 W budget for 150 ms of
simulated time, comparing the Foxton* controller with LinOpt invoked
every 10 ms. Shows the time-averaged throughput, the power tracking
error (Figure 14's metric) and the DVFS switching activity.

Run with::

    python examples/online_power_management.py
"""

import numpy as np

from repro.config import COST_PERFORMANCE
from repro.experiments.common import ChipFactory
from repro.pm import FoxtonStar, LinOpt, LinOptConfig
from repro.runtime import OnlineSimulation
from repro.sched import VarFAppIPC
from repro.workloads import make_workload

N_THREADS = 12
DURATION_S = 0.15
INTERVAL_S = 0.010


def main() -> None:
    factory = ChipFactory()
    chip = factory.chip(0)
    rng = np.random.default_rng(11)
    workload = make_workload(N_THREADS, rng)
    assignment = VarFAppIPC().assign_with_profiling(chip, workload, rng)
    env = COST_PERFORMANCE
    budget = env.p_target(N_THREADS, chip.n_cores)
    print(f"{N_THREADS} threads under a {budget:.1f} W budget, "
          f"{DURATION_S * 1000:.0f} ms simulated, manager every "
          f"{INTERVAL_S * 1000:.0f} ms\n")

    for name, manager in [
        ("Foxton*", FoxtonStar()),
        ("LinOpt", LinOpt(LinOptConfig(n_iterations=3))),
    ]:
        sim = OnlineSimulation(chip, workload, assignment, env,
                               manager=manager, phase_seed=3)
        trace = sim.run(DURATION_S, INTERVAL_S)
        print(f"{name:8s}: {trace.mean_throughput_mips:8.0f} MIPS avg, "
              f"power {trace.mean_power_w:5.1f} W "
              f"(deviation {trace.mean_abs_deviation_pct:.2f}% of target), "
              f"{len(trace.manager_runs)} invocations, "
              f"{trace.transition_time_s * 1e6:.0f} us lost to V/f "
              f"transitions")

    print("\nLinOpt tracks application phases: high-IPC phases get "
          "voltage, memory-bound phases give it back; Foxton* only "
          "sees watts.")


if __name__ == "__main__":
    main()
