"""Trace-driven profiling: derive application profiles from the core
simulator instead of Table 5 calibration, and run the full scheduling +
power-management stack on them.

This exercises the SESC-substitute path end to end: synthetic traces
-> cache hierarchy + interval core model -> AppProfile -> LinOpt.

Run with::

    python examples/trace_driven_profiles.py
"""

import numpy as np

from repro.config import COST_PERFORMANCE
from repro.coresim import TRACE_CLASSES, derive_class_profiles
from repro.experiments.common import ChipFactory
from repro.pm import FoxtonStar, LinOpt
from repro.sched import VarFAppIPC
from repro.workloads import Workload


def main() -> None:
    print("Simulating synthetic traces on the interval core model...")
    derived = derive_class_profiles(n_instructions=80_000)
    for name, sp in derived.items():
        p = sp.profile
        print(f"  {name:10s}: IPC {p.ipc_ref:.2f} @4GHz "
              f"({p.ipc_at(2e9):.2f} @2GHz), "
              f"{p.dynamic_power_ref:.1f} W dynamic, "
              f"memory CPI share {p.mem_cpi_fraction:.2f}")

    # A 12-thread workload drawn from the simulated classes.
    profiles = [sp.profile for sp in derived.values()]
    threads = tuple(profiles[i % len(profiles)] for i in range(12))
    workload = Workload(threads)

    chip = ChipFactory().chip(0)
    rng = np.random.default_rng(5)
    assignment = VarFAppIPC().assign_with_profiling(chip, workload, rng)
    fox = FoxtonStar().set_levels(chip, workload, assignment,
                                  COST_PERFORMANCE)
    lin = LinOpt().set_levels(chip, workload, assignment,
                              COST_PERFORMANCE)
    print(f"\n12 simulated threads under "
          f"{COST_PERFORMANCE.p_target(12, chip.n_cores):.1f} W:")
    print(f"  Foxton*: {fox.state.throughput_mips:7.0f} MIPS at "
          f"{fox.state.total_power:.1f} W")
    print(f"  LinOpt : {lin.state.throughput_mips:7.0f} MIPS at "
          f"{lin.state.total_power:.1f} W "
          f"(+{(lin.state.throughput_mips / fox.state.throughput_mips - 1) * 100:.1f}%)")
    print("\nThe whole pipeline — traces, caches, interval model, "
          "variation, LP — with no Table 5 numbers in sight.")


if __name__ == "__main__":
    main()
