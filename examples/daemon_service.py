"""Serve chips through the resilient power-management daemon.

Stands up a real daemon in-process (background thread), connects a
client over TCP, registers two tenants — one healthy, one with a
scripted fault schedule — drives them while subscribed to the
actuation stream, and prints the decision events, the shared
resilience timeline and the daemon's live telemetry. Ends with the
daemon's drain-then-stop shutdown.

Run:  PYTHONPATH=src python examples/daemon_service.py
"""

from repro.daemon import DaemonClient, DaemonController, ServerThread


def main() -> None:
    controller = DaemonController()
    with ServerThread(controller) as (host, port):
        with DaemonClient(host, port) as client:
            client.subscribe("*")

            client.register("healthy", seed=3, n_cores=4, n_threads=3,
                            duration_s=0.03, dvfs_interval_s=0.01)
            client.register(
                "faulty", seed=5, n_cores=4, n_threads=3,
                duration_s=0.03, dvfs_interval_s=0.01,
                noise_sigma=0.05, watchdog=True,
                faults=[{"time_s": 0.012, "kind": "sensor_dead",
                         "target": 0},
                        {"time_s": 0.015, "kind": "manager_error"}])

            # Drive both tenants in interleaved slices, as a
            # controller loop would.
            for until in (0.01, 0.02, None):
                for tenant in ("healthy", "faulty"):
                    if until is None:
                        client.advance(tenant, to_end=True)
                    else:
                        client.advance(tenant, until_s=until)

            print("actuation stream (tenant, event, t, tier):")
            for event in client.drain_events(timeout_s=0.3):
                data = event["data"]
                if event["event"] == "decision":
                    print(f"  {event['tenant']:8s} decision  "
                          f"t={data['time_s']:.3f}s "
                          f"tier={data['resilience_tier']} "
                          f"levels={data['levels']}")
                else:
                    print(f"  {event['tenant'] or '-':8s} "
                          f"{event['event']}")

            print()
            reply = client.request("timeline", tenant="faulty")
            print(reply["timeline"])

            print()
            telemetry = client.telemetry()
            counters = telemetry["counters"]
            print("telemetry (non-zero counters):")
            for name in sorted(counters):
                if counters[name]:
                    print(f"  {name:24s} {counters[name]}")
            advance = telemetry["latency"].get("advance")
            if advance:
                print(f"  advance p99              "
                      f"{advance['p99_s'] * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
