"""Shared fixtures: characterised chips are expensive, so they are
built once per session and shared read-only across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chip import characterize_die
from repro.config import ArchConfig, DEFAULT_ARCH, DEFAULT_TECH, TechParams
from repro.floorplan import build_floorplan
from repro.thermal import ThermalNetwork
from repro.variation import DieBatch


@pytest.fixture(scope="session")
def tech() -> TechParams:
    return DEFAULT_TECH


@pytest.fixture(scope="session")
def arch() -> ArchConfig:
    return DEFAULT_ARCH


@pytest.fixture(scope="session")
def small_arch() -> ArchConfig:
    """A cheaper 8-core die for tests that sweep many evaluations."""
    return ArchConfig(n_cores=8, die_area_mm2=140.0, grid_resolution=32)


@pytest.fixture(scope="session")
def die_batch(tech, arch) -> DieBatch:
    return DieBatch(tech, arch, n_dies=3, seed=1234)


@pytest.fixture(scope="session")
def chip(die_batch, tech, arch):
    """One characterised 20-core chip (die 0 of the shared batch)."""
    return characterize_die(die_batch[0], tech, arch)


@pytest.fixture(scope="session")
def chip2(die_batch, tech, arch):
    """A second die, for die-to-die comparisons."""
    return characterize_die(die_batch[1], tech, arch)


@pytest.fixture(scope="session")
def small_chip(tech, small_arch):
    """A characterised 8-core chip for expensive sweeps."""
    batch = DieBatch(tech, small_arch, n_dies=1, seed=99)
    return characterize_die(batch[0], tech, small_arch)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)
