"""Cross-cutting property-based tests on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_TECH, T_REF_K
from repro.power import leakage_factor
from repro.runtime import Assignment, evaluate_levels
from repro.workloads import SPEC_APPS, Workload, get_app


class TestLeakageProperties:
    @given(st.floats(min_value=0.6, max_value=1.0),
           st.floats(min_value=0.6, max_value=1.0))
    @settings(max_examples=30)
    def test_monotone_in_voltage(self, v1, v2):
        if v1 > v2:
            v1, v2 = v2, v1
        lo = float(leakage_factor(v1, 0.25, T_REF_K, DEFAULT_TECH))
        hi = float(leakage_factor(v2, 0.25, T_REF_K, DEFAULT_TECH))
        assert hi >= lo

    @given(st.floats(min_value=300.0, max_value=400.0),
           st.floats(min_value=300.0, max_value=400.0))
    @settings(max_examples=30)
    def test_monotone_in_temperature(self, t1, t2):
        if t1 > t2:
            t1, t2 = t2, t1
        lo = float(leakage_factor(1.0, 0.25, t1, DEFAULT_TECH))
        hi = float(leakage_factor(1.0, 0.25, t2, DEFAULT_TECH))
        assert hi >= lo

    @given(st.floats(min_value=0.15, max_value=0.35),
           st.floats(min_value=0.15, max_value=0.35))
    @settings(max_examples=30)
    def test_antitone_in_vth(self, a, b):
        if a > b:
            a, b = b, a
        low_vth = float(leakage_factor(1.0, a, T_REF_K, DEFAULT_TECH))
        high_vth = float(leakage_factor(1.0, b, T_REF_K, DEFAULT_TECH))
        assert low_vth >= high_vth


class TestEvaluationProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_lowering_any_level_lowers_power(self, chip, seed):
        """Dropping one thread's DVFS level never raises chip power."""
        rng = np.random.default_rng(seed)
        apps = [SPEC_APPS[int(i)] for i in rng.integers(0, 14, size=4)]
        wl = Workload(tuple(apps))
        cores = tuple(int(c) for c in
                      rng.choice(chip.n_cores, size=4, replace=False))
        asg = Assignment(cores)
        levels = [int(l) for l in rng.integers(1, 9, size=4)]
        base = evaluate_levels(chip, wl, asg, levels)
        victim = int(rng.integers(4))
        lowered = list(levels)
        lowered[victim] -= 1
        dropped = evaluate_levels(chip, wl, asg, lowered)
        assert dropped.total_power <= base.total_power + 1e-6
        assert (dropped.throughput_mips
                <= base.throughput_mips + 1e-6)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_assignment_permutation_conserves_nothing_exotic(
            self, chip, seed):
        """Swapping two threads between their cores preserves the set
        of active cores, so L2 power and temperatures stay in range."""
        rng = np.random.default_rng(seed)
        wl = Workload((get_app("bzip2"), get_app("mcf")))
        cores = tuple(int(c) for c in
                      rng.choice(chip.n_cores, size=2, replace=False))
        a = evaluate_levels(chip, wl, Assignment(cores), [8, 8])
        b = evaluate_levels(chip, wl,
                            Assignment((cores[1], cores[0])), [8, 8])
        # Same apps, same cores, same levels: totals are close (they
        # differ only through which app heats which core).
        assert a.total_power == pytest.approx(b.total_power, rel=0.1)


class TestWorkloadProperties:
    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30)
    def test_workload_always_well_formed(self, n, seed):
        from repro.workloads import make_workload
        wl = make_workload(n, np.random.default_rng(seed))
        assert wl.n_threads == n
        for app in wl:
            assert app in SPEC_APPS

    @given(st.sampled_from([a.name for a in SPEC_APPS]),
           st.floats(min_value=1e9, max_value=6e9),
           st.floats(min_value=1e9, max_value=6e9))
    @settings(max_examples=40)
    def test_throughput_monotone_in_frequency(self, name, f1, f2):
        app = get_app(name)
        if f1 > f2:
            f1, f2 = f2, f1
        assert app.throughput_at(f1) <= app.throughput_at(f2) + 1e-6


class TestVFTableProperties:
    @given(voltage=st.floats(min_value=0.0, max_value=1.5))
    @settings(max_examples=40)
    def test_nearest_level_at_most_is_sound(self, chip, voltage):
        table = chip.cores[0].vf_table
        level = table.nearest_level_at_most(voltage)
        assert 0 <= level < table.n_levels
        if table.voltages[level] > voltage + 1e-9:
            # Only allowed when nothing at or below the query exists.
            assert level == 0
            assert voltage < table.vmin
