"""Fleet subsystem: die-batched kernel, online statistics, columnar
shards, journaled campaigns, and the multi-host merge.

The load-bearing property is *bitwise equivalence*: every die-batched
result must equal the serial per-die loop bit for bit, every resumed
campaign must emit byte-identical summaries, and every chunk-aligned
multi-host merge must be indistinguishable from a single-host run.
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.config import DEFAULT_TECH
from repro.experiments.common import ChipFactory
from repro.experiments.fig04_variation import (
    core_frequency_ratio,
    core_power_ratio,
    die_ratios,
)
from repro.fleet import (
    FLEET_ARCH,
    FleetAccumulator,
    FleetHistogram,
    FleetPlan,
    P2Quantile,
    RunningMoments,
    coverage_ranges,
    fleet_die_metrics,
    load_shard,
    load_summary,
    merge_campaigns,
    missing_ranges,
    run_fleet_campaign,
    summarize_shards,
    write_shard,
)
from repro.fleet.quantiles import exact_quantile
from repro.fleet.shards import (
    SHARD_FORMAT,
    ShardIntegrityError,
    iter_shards,
    quarantine_shard,
    shard_digest,
    shard_name,
)
from repro.parallel import (
    HostSlice,
    IncompleteJournalError,
    ShardManifest,
    characterize_batch,
    merge_journals,
)
from repro.parallel.journal import RunJournal
from repro.report import binned_histogram_chart, fleet_summary_table
from repro.runtime.evaluation import (
    Assignment,
    evaluate_levels,
    evaluate_max_levels,
)
from repro.runtime.kernel import FleetEvalKernel
from repro.workloads import SPEC_APPS, Workload


@pytest.fixture(scope="module")
def fleet_chips():
    """18 characterised fleet-arch dies (crosses the 16-row slab)."""
    return characterize_batch(DEFAULT_TECH, FLEET_ARCH, 7,
                              list(range(18)), workers=1, cache=None)


@pytest.fixture(scope="module")
def fleet_workload():
    apps = (SPEC_APPS[0], SPEC_APPS[2], SPEC_APPS[4])
    return Workload(apps), Assignment(core_of=(0, 1, 3))


def assert_state_equal(a, b):
    """Bitwise SystemState equality (exact, not approximate)."""
    for f in dataclasses.fields(a):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), f.name
        else:
            assert va == vb, f.name


class TestFleetKernel:
    """FleetEvalKernel is bitwise the serial per-die loop."""

    @pytest.mark.parametrize("n_dies", [1, 5, 18])
    def test_max_levels_bitwise(self, fleet_chips, fleet_workload,
                                n_dies):
        workload, assignment = fleet_workload
        chips = fleet_chips[:n_dies]
        kernel = FleetEvalKernel(chips, workload, assignment)
        states = kernel.evaluate_max_levels_fleet()
        assert kernel.n_dies == n_dies and len(states) == n_dies
        for chip, state in zip(chips, states):
            serial = evaluate_max_levels(chip, workload, assignment)
            assert_state_equal(state, serial)

    @pytest.mark.parametrize("n_dies", [1, 5, 18])
    def test_shared_decision_bitwise(self, fleet_chips,
                                     fleet_workload, n_dies):
        workload, assignment = fleet_workload
        chips = fleet_chips[:n_dies]
        levels = (1, 0, 2)
        kernel = FleetEvalKernel(chips, workload, assignment)
        states = kernel.evaluate_levels_fleet(levels)
        for chip, state in zip(chips, states):
            serial = evaluate_levels(chip, workload, assignment,
                                     levels)
            assert_state_equal(state, serial)

    def test_per_die_levels_bitwise(self, fleet_chips, fleet_workload):
        workload, assignment = fleet_workload
        chips = fleet_chips
        rng = np.random.default_rng(11)
        kernel = FleetEvalKernel(chips, workload, assignment)
        lv = rng.integers(0, 3, size=(len(chips), 3))
        states = kernel.evaluate_levels_fleet(lv)
        for k, (chip, state) in enumerate(zip(chips, states)):
            serial = evaluate_levels(chip, workload, assignment,
                                     lv[k])
            assert_state_equal(state, serial)

    def test_broadcast_equals_tiled(self, fleet_chips, fleet_workload):
        workload, assignment = fleet_workload
        kernel = FleetEvalKernel(fleet_chips[:4], workload, assignment)
        a = kernel.evaluate_levels_fleet((2, 1, 0))
        b = kernel.evaluate_levels_fleet(
            np.tile([2, 1, 0], (4, 1)))
        for sa, sb in zip(a, b):
            assert_state_equal(sa, sb)

    def test_rejects_mixed_designs(self, fleet_chips, fleet_workload,
                                   small_chip):
        workload, assignment = fleet_workload
        with pytest.raises(ValueError, match="share TechParams"):
            FleetEvalKernel([fleet_chips[0], small_chip], workload,
                            assignment)

    def test_rejects_bad_levels(self, fleet_chips, fleet_workload):
        workload, assignment = fleet_workload
        kernel = FleetEvalKernel(fleet_chips[:2], workload, assignment)
        with pytest.raises(ValueError, match="out of range"):
            kernel.evaluate_levels_fleet((0, 0, 99))
        with pytest.raises(ValueError, match="one level per thread"):
            kernel.evaluate_levels_fleet((0, 0))

    def test_fig04_metrics_bitwise(self, fleet_chips):
        """The campaign's per-die analysis equals the serial fig04
        functions exactly — the property the rewired experiments
        lean on."""
        chips = fleet_chips[:6]
        cols = fleet_die_metrics(chips, with_power=True)
        for chip, p, f in zip(chips, cols["power_ratio"],
                              cols["freq_ratio"]):
            assert float(p) == core_power_ratio(chip)
            assert float(f) == core_frequency_ratio(chip)

    def test_die_ratios_serial_path_bitwise(self):
        factory = ChipFactory(tech=DEFAULT_TECH, arch=FLEET_ARCH,
                              seed=3, workers=1)
        pairs = die_ratios(4, factory=factory, workers=1)
        for chip, (p, f) in zip(factory.chips(4), pairs):
            assert p == core_power_ratio(chip)
            assert f == core_frequency_ratio(chip)


class TestRunningMoments:
    def test_matches_numpy(self, rng):
        data = rng.normal(3.0, 2.0, size=1000)
        mom = RunningMoments()
        for part in np.array_split(data, 7):
            mom.add(part)
        assert mom.count == 1000
        assert mom.mean == pytest.approx(data.mean(), rel=1e-12)
        assert mom.std == pytest.approx(data.std(), rel=1e-12)
        assert mom.min == data.min() and mom.max == data.max()

    def test_merge_matches_single_stream(self, rng):
        data = rng.normal(size=500)
        whole = RunningMoments()
        whole.add(data)
        merged = RunningMoments()
        for part in np.array_split(data, 5):
            other = RunningMoments()
            other.add(part)
            merged.merge(other)
        assert merged.count == whole.count
        assert merged.min == whole.min and merged.max == whole.max
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.std == pytest.approx(whole.std, rel=1e-12)

    def test_rejects_nonfinite(self):
        mom = RunningMoments()
        with pytest.raises(ValueError, match="non-finite"):
            mom.add([1.0, math.nan])
        with pytest.raises(ValueError, match="non-finite"):
            mom.add(math.inf)
        assert mom.count == 0

    def test_roundtrip(self, rng):
        mom = RunningMoments()
        mom.add(rng.normal(size=64))
        back = RunningMoments.from_dict(
            json.loads(json.dumps(mom.to_dict())))
        assert back.to_dict() == mom.to_dict()
        assert back.mean == mom.mean and back.std == mom.std


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        est = P2Quantile(0.5)
        est.add([3.0, 1.0, 2.0])
        assert est.value == exact_quantile([1.0, 2.0, 3.0], 0.5)

    @pytest.mark.parametrize("p", [0.05, 0.5, 0.95])
    def test_tracks_exact_quantile(self, rng, p):
        data = rng.normal(0.0, 1.0, size=5000)
        est = P2Quantile(p)
        est.add(data)
        assert est.count == 5000
        assert abs(est.value - exact_quantile(data, p)) < 0.06

    def test_rejects_nonfinite_and_bad_p(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        est = P2Quantile(0.5)
        with pytest.raises(ValueError, match="non-finite"):
            est.add([math.nan])

    def test_roundtrip(self, rng):
        est = P2Quantile(0.9)
        est.add(rng.normal(size=100))
        back = P2Quantile.from_dict(
            json.loads(json.dumps(est.to_dict())))
        assert back.value == est.value
        back.add([0.5])
        est.add([0.5])
        assert back.value == est.value


class TestFleetHistogram:
    def test_counts_and_overflow(self):
        hist = FleetHistogram(0.0, 10.0, n_bins=10)
        hist.add([-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0])
        assert hist.underflow == 1 and hist.overflow == 2
        assert hist.count == 7
        assert hist.counts[0] == 2 and hist.counts[5] == 1

    def test_merge_exactly_associative(self, rng):
        data = rng.uniform(0.8, 4.2, size=900)
        parts = np.array_split(data, 9)

        def hist_of(chunks):
            h = FleetHistogram(1.0, 4.0, n_bins=32)
            for c in chunks:
                h.add(c)
            return h

        whole = hist_of(parts)
        # Two different merge groupings of per-part histograms.
        left = hist_of([])
        for part in parts:
            left.merge(hist_of([part]))
        paired = hist_of([])
        for i in range(0, 9, 3):
            paired.merge(hist_of(parts[i:i + 3]))
        for h in (left, paired):
            assert np.array_equal(h.counts, whole.counts)
            assert h.underflow == whole.underflow
            assert h.overflow == whole.overflow

    def test_merge_rejects_layout_mismatch(self):
        with pytest.raises(ValueError, match="bin layouts"):
            FleetHistogram(0, 1, 8).merge(FleetHistogram(0, 1, 4))

    def test_quantile_interpolation(self, rng):
        data = rng.uniform(1.0, 3.0, size=20000)
        hist = FleetHistogram(1.0, 3.0, n_bins=128)
        hist.add(data)
        for q in (0.05, 0.5, 0.95):
            assert abs(hist.quantile(q)
                       - exact_quantile(data, q)) < 0.05

    def test_quantile_refuses_overflow_mass(self):
        hist = FleetHistogram(0.0, 1.0, n_bins=4)
        hist.add([0.5, 2.0, 3.0])
        with pytest.raises(ValueError, match="overflow"):
            hist.quantile(0.99)

    def test_rejects_nonfinite(self):
        hist = FleetHistogram(0.0, 1.0)
        with pytest.raises(ValueError, match="non-finite"):
            hist.add([0.5, math.inf])


class TestFleetAccumulator:
    SPEC = {"x": (0.0, 10.0)}

    def test_streaming_matches_exact(self, rng):
        data = rng.uniform(1.0, 9.0, size=4000)
        acc = FleetAccumulator(self.SPEC, n_bins=256)
        for part in np.array_split(data, 13):
            acc.add_dies({"x": part, "ignored": part})
        s = acc.summary()["x"]
        assert s["count"] == 4000
        assert s["mean"] == pytest.approx(data.mean(), rel=1e-12)
        assert s["min"] == data.min() and s["max"] == data.max()
        for name, p in (("p05", 0.05), ("p50", 0.5), ("p95", 0.95)):
            assert abs(s["quantiles"][name]
                       - exact_quantile(data, p)) < 0.06

    def test_merge_drops_p2_keeps_histogram_quantiles(self, rng):
        data = rng.uniform(1.0, 9.0, size=2000)
        whole = FleetAccumulator(self.SPEC, n_bins=256)
        whole.add("x", data)
        merged = FleetAccumulator(self.SPEC, n_bins=256)
        for part in np.array_split(data, 4):
            other = FleetAccumulator(self.SPEC, n_bins=256)
            other.add("x", part)
            merged.merge(other)
        assert merged.p2["x"] == {}
        sm, sw = merged.summary()["x"], whole.summary()["x"]
        assert sm["count"] == sw["count"]
        assert np.array_equal(sm["histogram"]["counts"],
                              sw["histogram"]["counts"])
        # Merged quantiles come from the (exactly merged) histogram.
        assert abs(sm["quantiles"]["p50"]
                   - exact_quantile(data, 0.5)) < 0.06

    def test_merge_rejects_spec_mismatch(self):
        a = FleetAccumulator({"x": (0, 1)})
        b = FleetAccumulator({"y": (0, 1)})
        with pytest.raises(ValueError, match="metric specs"):
            a.merge(b)

    def test_roundtrip_resumes_stream(self, rng):
        acc = FleetAccumulator(self.SPEC)
        acc.add("x", rng.uniform(0, 10, size=50))
        back = FleetAccumulator.from_dict(
            json.loads(json.dumps(acc.to_dict())))
        assert back.summary() == acc.summary()
        tail = rng.uniform(0, 10, size=50)
        acc.add("x", tail)
        back.add("x", tail)
        assert back.summary() == acc.summary()


class TestShards:
    def test_roundtrip_and_die_column(self, tmp_path, rng):
        cols = {"a": rng.normal(size=8), "b": np.arange(8.0)}
        path = write_shard(tmp_path, 16, 24, cols)
        assert path.name == shard_name(16, 24)
        back = load_shard(path)
        assert np.array_equal(back["die"], np.arange(16, 24))
        assert np.array_equal(back["a"], cols["a"])
        assert np.array_equal(back["b"], cols["b"])

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="expected"):
            write_shard(tmp_path, 0, 4, {"a": np.zeros(3)})
        with pytest.raises(ValueError, match="implicit index"):
            write_shard(tmp_path, 0, 4, {"die": np.zeros(4)})
        with pytest.raises(ValueError):
            shard_name(4, 4)

    def test_coverage_and_gaps(self, tmp_path):
        for lo, hi in ((0, 4), (4, 8), (12, 16)):
            write_shard(tmp_path, lo, hi, {"a": np.zeros(hi - lo)})
        assert coverage_ranges(tmp_path) == [(0, 8), (12, 16)]
        assert missing_ranges(tmp_path, 0, 20) == [(8, 12), (16, 20)]
        assert missing_ranges(tmp_path, 0, 8) == []
        assert [(i.start, i.end) for i in iter_shards(tmp_path)] == [
            (0, 4), (4, 8), (12, 16)]

    def test_overlap_refused(self, tmp_path):
        write_shard(tmp_path, 0, 8, {"a": np.zeros(8)})
        write_shard(tmp_path, 4, 12, {"a": np.zeros(8)})
        with pytest.raises(ValueError, match="overlapping"):
            coverage_ranges(tmp_path)


class TestShardIntegrity:
    def _tamper(self, path):
        """Flip one column's data while keeping the stored digest."""
        with np.load(path) as data:
            arrays = {name: data[name].copy() for name in data.files}
        arrays["a"] = arrays["a"] + 1.0
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)

    def test_v2_embeds_format_and_digest(self, tmp_path, rng):
        path = write_shard(tmp_path, 0, 4, {"a": rng.normal(size=4)})
        with np.load(path) as data:
            members = dict(data)
        assert int(members["__format__"]) == SHARD_FORMAT
        cols = {k: v for k, v in members.items()
                if not k.startswith("__")}
        assert str(members["__digest__"]) == shard_digest(cols)

    def test_digest_ignores_container_bytes(self, rng):
        # The digest pins column *data*, not zip member timestamps.
        cols = {"die": np.arange(4), "a": rng.normal(size=4)}
        assert shard_digest(cols) == shard_digest(
            {k: v.copy() for k, v in cols.items()})

    def test_tampered_shard_quarantined(self, tmp_path, rng):
        path = write_shard(tmp_path, 0, 4, {"a": rng.normal(size=4)})
        self._tamper(path)
        with pytest.raises(ShardIntegrityError, match="digest"):
            load_shard(path)
        assert not path.exists()
        qdir = tmp_path / "quarantine"
        assert (qdir / path.name).exists()
        reason = json.loads(
            (qdir / f"{path.name}.reason.json").read_text())
        assert reason["shard"] == path.name
        assert "digest mismatch" in reason["reason"]
        assert reason["quarantined_at_unix_s"] > 0
        # The die range now reads as a coverage gap.
        assert missing_ranges(tmp_path, 0, 4) == [(0, 4)]

    def test_unreadable_shard_quarantined(self, tmp_path):
        path = tmp_path / shard_name(0, 4)
        path.write_bytes(b"not an npz container")
        with pytest.raises(ShardIntegrityError, match="unreadable"):
            load_shard(path)
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_verify_false_skips_digest(self, tmp_path, rng):
        path = write_shard(tmp_path, 0, 4, {"a": rng.normal(size=4)})
        self._tamper(path)
        back = load_shard(path, verify=False)
        assert path.exists()  # not quarantined
        assert "__digest__" not in back and "__format__" not in back

    def test_v1_shard_loads_transparently(self, tmp_path, rng):
        # Pre-integrity shards have no meta members at all.
        path = tmp_path / shard_name(8, 12)
        with open(path, "wb") as fh:
            np.savez_compressed(fh, die=np.arange(8, 12),
                                a=rng.normal(size=4))
        back = load_shard(path)
        assert np.array_equal(back["die"], np.arange(8, 12))
        assert not (tmp_path / "quarantine").exists()

    def test_reserved_member_names_refused(self, tmp_path):
        for name in ("__digest__", "__format__"):
            with pytest.raises(ValueError, match="reserved"):
                write_shard(tmp_path, 0, 4, {name: np.zeros(4)})

    def test_explicit_quarantine(self, tmp_path):
        path = write_shard(tmp_path, 0, 4, {"a": np.zeros(4)})
        target = quarantine_shard(path, "operator said so")
        assert target.parent.name == "quarantine"
        assert not path.exists()

    def test_summarize_skips_quarantined_shard(self, tmp_path, rng):
        for lo in (0, 4):
            write_shard(tmp_path, lo, lo + 4,
                        {"a": rng.normal(size=4)})
        self._tamper(tmp_path / shard_name(4, 8))
        acc = summarize_shards(tmp_path, {"a": (-10, 10)})
        assert acc.moments["a"].count == 4  # good shard only
        assert missing_ranges(tmp_path, 0, 8) == [(4, 8)]


def _tiny_plan(name, n_dies=8, **kw):
    kw.setdefault("chunk_dies", 4)
    kw.setdefault("seed", 5)
    return FleetPlan(name=name, n_dies=n_dies, **kw)


class TestCampaign:
    def test_run_streams_shards_and_summary(self, tmp_path):
        plan = _tiny_plan("camp")
        result = run_fleet_campaign(plan, tmp_path, workers=1)
        assert result.n_chunks == 2 and result.resumed_chunks == 0
        assert coverage_ranges(result.out_dir / "shards") == [(0, 8)]
        summary = load_summary(result.out_dir)
        assert summary["metrics"]["power_ratio"]["count"] == 8
        assert summary["metrics"]["freq_ratio"]["count"] == 8
        assert summary["plan"]["name"] == "camp"
        # Shard contents equal the serial fig04 analysis per die.
        chips = characterize_batch(plan.tech, plan.arch, plan.seed,
                                   list(range(4)), workers=1,
                                   cache=None)
        shard = load_shard(result.out_dir / "shards"
                           / shard_name(0, 4))
        for chip, p in zip(chips, shard["power_ratio"]):
            assert float(p) == core_power_ratio(chip)

    def test_resume_is_bitwise(self, tmp_path):
        plan = _tiny_plan("resume")
        first = run_fleet_campaign(plan, tmp_path, workers=1)
        summary_bytes = first.summary_path.read_bytes()
        shards = {i.path.name: load_shard(i.path)
                  for i in iter_shards(first.out_dir / "shards")}

        # Full resume: everything replays from the journal.
        again = run_fleet_campaign(plan, tmp_path, workers=1)
        assert again.resumed_chunks == again.n_chunks == 2
        assert again.summary_path.read_bytes() == summary_bytes

        # Interrupted run: keep only the first chunk's journal line,
        # drop the shards — the tail recomputes, the head replays,
        # and everything is bitwise what the uninterrupted run wrote.
        journal_path = first.out_dir / "journal.jsonl"
        lines = journal_path.read_bytes().splitlines(keepends=True)
        unit_lines = [ln for ln in lines
                      if json.loads(ln).get("kind") == "unit"]
        journal_path.write_bytes(unit_lines[0])
        for info in iter_shards(first.out_dir / "shards"):
            info.path.unlink()
        resumed = run_fleet_campaign(plan, tmp_path, workers=1)
        assert resumed.resumed_chunks == 1
        assert resumed.summary_path.read_bytes() == summary_bytes
        for info in iter_shards(resumed.out_dir / "shards"):
            back = load_shard(info.path)
            ref = shards[info.path.name]
            assert set(back) == set(ref)
            for k in back:
                assert np.array_equal(back[k], ref[k])

    def test_mixed_cache_hits_match_cold_run(self, tmp_path):
        """Batched chunks over a partially warmed cache stay bitwise.

        Pre-warming some dies (one of them corrupted on disk) must not
        change a single byte of the campaign output versus the all-cold
        run, and the cache counters must attribute every die correctly
        under the batched characterisation path.
        """
        from repro.parallel import CharacterizationCache, cache_key

        plan = _tiny_plan("mixed")
        cold = run_fleet_campaign(plan, tmp_path / "cold", workers=1)
        cold_summary = cold.summary_path.read_bytes()
        cold_shards = {i.path.name: load_shard(i.path)
                      for i in iter_shards(cold.out_dir / "shards")}

        # Warm dies from both chunks through the batched path, then
        # corrupt one entry so the campaign sees hit+miss+corrupt.
        warm = CharacterizationCache(tmp_path / "cache")
        characterize_batch(plan.tech, plan.arch, plan.seed, [1, 5, 6],
                           workers=1, cache=warm, batched=True)
        corrupt_path = warm.path_for(
            cache_key(plan.tech, plan.arch, plan.seed, 5))
        corrupt_path.write_bytes(b"not an npz")

        cache = CharacterizationCache(tmp_path / "cache")  # fresh stats
        mixed = run_fleet_campaign(plan, tmp_path / "mixed", workers=1,
                                   cache=cache)
        assert mixed.summary_path.read_bytes() == cold_summary
        for info in iter_shards(mixed.out_dir / "shards"):
            ref = cold_shards[info.path.name]
            back = load_shard(info.path)
            assert set(back) == set(ref)
            for k in back:
                assert np.array_equal(back[k], ref[k])
        # 8 dies: 2 intact hits, 1 quarantined, 5 absent; the 6
        # recharacterised dies are stored back.
        assert cache.stats["hits"] == 2
        assert cache.stats["corrupt"] == 1
        assert cache.stats["misses"] == 5
        assert cache.stats["stores"] == 6

    def test_summarize_shards_matches_summary(self, tmp_path):
        plan = _tiny_plan("stats", with_power=False)
        result = run_fleet_campaign(plan, tmp_path, workers=1)
        acc = summarize_shards(result.out_dir / "shards",
                               plan.metric_spec())
        assert (acc.summary()["freq_ratio"]["histogram"]
                == load_summary(result.out_dir)["metrics"]
                ["freq_ratio"]["histogram"])

    def test_chunks_align_to_global_grid(self):
        plan = FleetPlan(name="g", n_dies=10, start=6, chunk_dies=4)
        assert plan.chunks() == [(6, 8), (8, 12), (12, 16)]
        full = FleetPlan(name="g", n_dies=16, chunk_dies=4)
        assert full.chunks() == [(0, 4), (4, 8), (8, 12), (12, 16)]

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FleetPlan(name="x", n_dies=0)
        with pytest.raises(ValueError):
            FleetPlan(name="a/b", n_dies=4)
        with pytest.raises(ValueError):
            FleetPlan(name="x", n_dies=4, start=-1)


class TestMultiHost:
    def test_partition_tiles_and_aligns(self):
        plan = _tiny_plan("part", n_dies=24)
        manifest = ShardManifest.partition(plan.to_dict(),
                                           ["a", "b", "c"])
        assert [h.to_dict() for h in manifest.hosts] == [
            {"host": "a", "start": 0, "end": 8},
            {"host": "b", "start": 8, "end": 16},
            {"host": "c", "start": 16, "end": 24}]
        sub = FleetPlan.from_dict(manifest.host_plan_params("b"))
        assert (sub.start, sub.n_dies) == (8, 8)
        assert sub.chunks() == [(8, 12), (12, 16)]

    def test_manifest_validation(self):
        params = _tiny_plan("v", n_dies=8).to_dict()
        with pytest.raises(ValueError, match="tile the range"):
            ShardManifest(params, (HostSlice("a", 0, 4),
                                   HostSlice("b", 6, 8)))
        with pytest.raises(ValueError, match="unique"):
            ShardManifest(params, (HostSlice("a", 0, 4),
                                   HostSlice("a", 4, 8)))
        with pytest.raises(ValueError, match="cover up to"):
            ShardManifest(params, (HostSlice("a", 0, 4),))

    def test_merge_equals_single_host(self, tmp_path):
        plan = _tiny_plan("multi", n_dies=12)
        single = run_fleet_campaign(plan, tmp_path / "single",
                                    workers=1)
        manifest = ShardManifest.partition(plan.to_dict(), ["a", "b"])
        host_dirs = []
        for host in ("a", "b"):
            sub = FleetPlan.from_dict(manifest.host_plan_params(host))
            res = run_fleet_campaign(sub, tmp_path / host, workers=1)
            host_dirs.append(res.out_dir)
        merged = merge_campaigns(manifest, host_dirs,
                                 tmp_path / "merged")
        assert (merged.summary_path.read_bytes()
                == single.summary_path.read_bytes())
        singles = {i.path.name: load_shard(i.path)
                   for i in iter_shards(single.out_dir / "shards")}
        merged_shards = list(iter_shards(merged.out_dir / "shards"))
        assert {i.path.name for i in merged_shards} == set(singles)
        for info in merged_shards:
            ref = singles[info.path.name]
            back = load_shard(info.path)
            for k in ref:
                assert np.array_equal(back[k], ref[k])

    def test_merge_requires_completeness(self, tmp_path):
        plan = _tiny_plan("gap", n_dies=12, with_power=False)
        manifest = ShardManifest.partition(plan.to_dict(), ["a", "b"])
        sub = FleetPlan.from_dict(manifest.host_plan_params("a"))
        res = run_fleet_campaign(sub, tmp_path / "a", workers=1)
        with pytest.raises(IncompleteJournalError):
            merge_campaigns(manifest, [res.out_dir],
                            tmp_path / "merged")
        partial = merge_campaigns(manifest, [res.out_dir],
                                  tmp_path / "partial",
                                  require_complete=False)
        assert partial.n_dies == 8  # best-effort: host a's slice only
        summary = load_summary(partial.out_dir)
        assert summary["metrics"]["freq_ratio"]["count"] == 8

    def test_merge_journals_conflict_refused(self, tmp_path):
        a = RunJournal(tmp_path / "a.jsonl")
        b = RunJournal(tmp_path / "b.jsonl")
        a.record("k1", {}, [1.0, 2.0])
        b.record("k1", {}, [1.0, 999.0])
        dest = RunJournal(tmp_path / "dest.jsonl")
        assert merge_journals(dest, [a.path]) == 1
        with pytest.raises(ValueError, match="merge conflict"):
            merge_journals(dest, [b.path])
        # Idempotent replays are fine.
        assert merge_journals(dest, [a.path]) == 0


class TestFleetReport:
    def test_binned_histogram_chart(self):
        chart = binned_histogram_chart(
            np.linspace(0, 1, 9), [0, 0, 3, 5, 0, 2, 0, 0],
            title="t", underflow=1, overflow=2)
        assert "t" in chart and "< 0.25" in chart and ">= 0.75" in chart
        with pytest.raises(ValueError):
            binned_histogram_chart([0, 1], [1, 2])

    def test_fleet_summary_table(self, tmp_path):
        plan = _tiny_plan("report", n_dies=4, with_power=False)
        result = run_fleet_campaign(plan, tmp_path, workers=1)
        text = fleet_summary_table(load_summary(result.out_dir))
        assert "freq_ratio" in text and "p50" in text
        assert "report" in text


class TestFleetCLI:
    def test_plan_run_merge_stats(self, tmp_path, capsys):
        from repro.cli import main
        manifest_path = tmp_path / "fleet.json"
        assert main(["fleet", "plan", "--name", "cli", "--dies", "8",
                     "--chunk", "4", "--seed", "5", "--no-power",
                     "--hosts", "a,b",
                     "--manifest", str(manifest_path)]) == 0
        manifest = ShardManifest.load(manifest_path)
        assert [h.host for h in manifest.hosts] == ["a", "b"]

        for host in ("a", "b"):
            assert main(["fleet", "run", "--manifest",
                         str(manifest_path), "--host", host,
                         "--out", str(tmp_path / host),
                         "--quiet"]) == 0

        # Merge with a missing host refuses (exit 1)...
        assert main(["fleet", "merge", str(tmp_path / "a" / "cli"),
                     "--manifest", str(manifest_path),
                     "--out", str(tmp_path / "merged")]) == 1
        # ...and succeeds with both hosts present.
        assert main(["fleet", "merge",
                     str(tmp_path / "a" / "cli"),
                     str(tmp_path / "b" / "cli"),
                     "--manifest", str(manifest_path),
                     "--out", str(tmp_path / "merged")]) == 0
        summary = load_summary(tmp_path / "merged" / "cli")
        assert summary["metrics"]["freq_ratio"]["count"] == 8

        assert main(["fleet", "stats",
                     str(tmp_path / "merged" / "cli")]) == 0
        assert main(["fleet", "stats", "--from-shards",
                     str(tmp_path / "merged" / "cli")]) == 0
        out = capsys.readouterr().out
        assert "freq_ratio" in out

    def test_run_direct(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["fleet", "run", "--name", "direct", "--dies",
                     "4", "--chunk", "2", "--seed", "5", "--no-power",
                     "--out", str(tmp_path), "--quiet"]) == 0
        assert "dies/s" in capsys.readouterr().out
        assert (tmp_path / "direct" / "summary.json").exists()


class TestPerfGateFleet:
    """Regression coverage for the gate's failure modes and the CI
    step-summary surface."""

    @pytest.fixture()
    def gate(self):
        import importlib.util
        import pathlib
        path = (pathlib.Path(__file__).parent.parent / "benchmarks"
                / "perf_gate.py")
        spec = importlib.util.spec_from_file_location("perf_gate_f",
                                                      path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def _write(self, results, name, metrics, floors=None, wall=1.0):
        record = {"name": name, "full_run": False, "workers": 1,
                  "wall_time_s": wall, "cache": None,
                  "metrics": metrics}
        if floors is not None:
            record["floors"] = floors
        (results / f"BENCH_{name}.json").write_text(
            json.dumps(record))
        return record

    @pytest.fixture()
    def env(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        baseline = tmp_path / "baseline.json"
        argv = ["--results", str(results), "--baseline",
                str(baseline)]
        return results, baseline, argv

    def test_nameless_record_fails_clearly(self, gate, env):
        results, baseline, argv = env
        (results / "BENCH_x.json").write_text(json.dumps({"metrics": {}}))
        with pytest.raises(SystemExit, match="no 'name' field"):
            gate.main(["check"] + argv)

    def test_invalid_json_fails_clearly(self, gate, env):
        results, baseline, argv = env
        (results / "BENCH_x.json").write_text("{nope")
        with pytest.raises(SystemExit, match="not valid JSON"):
            gate.main(["check"] + argv)

    def test_record_metric_missing_from_baseline_is_warning(
            self, gate, env):
        """The KeyError fix: a record emitting a metric the baseline
        has never seen must warn, not crash."""
        results, baseline, argv = env
        self._write(results, "figX", {"a": 1.0})
        assert gate.main(["update"] + argv) == 0
        self._write(results, "figX", {"a": 1.0, "brand_new": 2.0})
        assert gate.main(["check"] + argv) == 0

    def test_unbaselined_floors_enforced(self, gate, env):
        results, baseline, argv = env
        baseline.write_text("{}")
        self._write(results, "fleet", {"dies_per_s": 50.0},
                    floors={"dies_per_s": 12.0})
        assert gate.main(["check"] + argv) == 0
        self._write(results, "fleet", {"dies_per_s": 3.0},
                    floors={"dies_per_s": 12.0})
        assert gate.main(["check"] + argv) == 1
        self._write(results, "fleet", {"other": 1.0},
                    floors={"dies_per_s": 12.0})
        assert gate.main(["check"] + argv) == 1

    def test_step_summary_written(self, gate, env, tmp_path,
                                  monkeypatch):
        results, baseline, argv = env
        self._write(results, "figX", {"a": 1.0},
                    floors={"rate_s": 1.0})
        (results / "BENCH_figX.json").write_text(json.dumps(
            {"name": "figX", "full_run": False, "workers": 1,
             "wall_time_s": 1.0, "cache": None,
             "metrics": {"a": 1.0, "rate_s": 5.0},
             "floors": {"rate_s": 1.0}}))
        assert gate.main(["update"] + argv) == 0
        summary_file = tmp_path / "step_summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary_file))
        self._write(results, "figX", {"a": 9.0, "rate_s": 5.0},
                    floors={"rate_s": 1.0})
        assert gate.main(["check"] + argv) == 1
        text = summary_file.read_text()
        assert "## Perf gate" in text and "**FAIL**" in text
        assert "DRIFT" in text  # per-metric delta table rendered
        assert "rate_s" in text  # floors column rendered

    def test_step_summary_pass_renders_floors(self, gate, env,
                                              tmp_path, monkeypatch):
        results, baseline, argv = env
        baseline.write_text("{}")
        self._write(results, "fleet", {"dies_per_s": 50.0},
                    floors={"dies_per_s": 12.0})
        summary_file = tmp_path / "sum.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary_file))
        assert gate.main(["check"] + argv) == 0
        text = summary_file.read_text()
        assert "**PASS**" in text
        assert "(not baselined)" in text
        assert "dies_per_s 50" in text
