"""Tests for repro.pm (Foxton*, LinOpt, SAnn, exhaustive search)."""

import numpy as np
import pytest

from repro.config import (
    COST_PERFORMANCE,
    HIGH_PERFORMANCE,
    LOW_POWER,
    PowerEnvironment,
)
from repro.pm import (
    ExhaustiveSearch,
    FoxtonStar,
    LinOpt,
    LinOptConfig,
    SAnnManager,
    meets_constraints,
)
from repro.runtime import Assignment, evaluate_max_levels
from repro.sched import VarFAppIPC
from repro.workloads import Workload, get_app, make_workload


@pytest.fixture()
def setup4(chip, rng):
    wl = Workload((get_app("bzip2"), get_app("mcf"),
                   get_app("vortex"), get_app("swim")))
    asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
    return wl, asg


@pytest.fixture()
def setup12(chip, rng):
    wl = make_workload(12, rng)
    asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
    return wl, asg


def _check_feasible(result, env, n_threads, n_cores):
    p_target = env.p_target(n_threads, n_cores)
    assert meets_constraints(result.state, p_target, env.p_core_max,
                             slack=1e-6)


class TestFoxtonStar:
    def test_meets_budget(self, chip, setup12):
        wl, asg = setup12
        for env in (LOW_POWER, COST_PERFORMANCE):
            result = FoxtonStar().set_levels(chip, wl, asg, env)
            _check_feasible(result, env, 12, chip.n_cores)

    def test_unconstrained_stays_at_top(self, chip, setup4):
        wl, asg = setup4
        generous = PowerEnvironment("Generous", 400.0, p_core_max=50.0)
        result = FoxtonStar().set_levels(chip, wl, asg, generous)
        tops = [chip.cores[c].vf_table.n_levels - 1 for c in asg.core_of]
        assert list(result.levels) == tops

    def test_steps_up_from_cold_start(self, chip, setup4):
        wl, asg = setup4
        result = FoxtonStar().set_levels(
            chip, wl, asg, COST_PERFORMANCE,
            initial_levels=[0, 0, 0, 0])
        # With headroom available, the controller must raise levels.
        assert sum(result.levels) > 0
        _check_feasible(result, COST_PERFORMANCE, 4, chip.n_cores)

    def test_impossible_budget_floors(self, chip, setup4):
        wl, asg = setup4
        starving = PowerEnvironment("Starving", 0.1, p_core_max=0.01)
        result = FoxtonStar().set_levels(chip, wl, asg, starving)
        assert list(result.levels) == [0, 0, 0, 0]

    def test_levels_near_uniform(self, chip, setup12):
        # Round-robin stepping keeps the level profile flat — the
        # behaviour LinOpt improves upon.
        wl, asg = setup12
        result = FoxtonStar().set_levels(chip, wl, asg, LOW_POWER)
        levels = np.array(result.levels)
        assert levels.max() - levels.min() <= 2


class TestLinOpt:
    def test_meets_budget(self, chip, setup12):
        wl, asg = setup12
        for env in (LOW_POWER, COST_PERFORMANCE, HIGH_PERFORMANCE):
            result = LinOpt().set_levels(chip, wl, asg, env)
            _check_feasible(result, env, 12, chip.n_cores)

    def test_stats_populated(self, chip, setup4):
        wl, asg = setup4
        result = LinOpt().set_levels(chip, wl, asg, COST_PERFORMANCE)
        assert result.stats["lp_pivots"] > 0
        assert result.stats["lp_flops"] > 0

    def test_not_worse_than_foxton(self, chip, setup12):
        wl, asg = setup12
        fox = FoxtonStar().set_levels(chip, wl, asg, LOW_POWER)
        lin = LinOpt().set_levels(chip, wl, asg, LOW_POWER)
        assert (lin.state.throughput_mips
                >= 0.99 * fox.state.throughput_mips)

    def test_two_point_fit_works(self, chip, setup4):
        wl, asg = setup4
        cfg = LinOptConfig(n_profile_voltages=2)
        result = LinOpt(cfg).set_levels(chip, wl, asg, COST_PERFORMANCE)
        _check_feasible(result, COST_PERFORMANCE, 4, chip.n_cores)

    def test_nearest_rounding_works(self, chip, setup4):
        wl, asg = setup4
        cfg = LinOptConfig(rounding="nearest")
        result = LinOpt(cfg).set_levels(chip, wl, asg, COST_PERFORMANCE)
        _check_feasible(result, COST_PERFORMANCE, 4, chip.n_cores)

    def test_impossible_budget_floors(self, chip, setup4):
        wl, asg = setup4
        starving = PowerEnvironment("Starving", 0.5, p_core_max=0.2)
        result = LinOpt().set_levels(chip, wl, asg, starving)
        assert list(result.levels) == [0, 0, 0, 0]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LinOptConfig(n_profile_voltages=1)
        with pytest.raises(ValueError):
            LinOptConfig(rounding="up")
        with pytest.raises(ValueError):
            LinOptConfig(n_iterations=0)
        with pytest.raises(ValueError):
            LinOptConfig(correction_limit=-1)

    def test_warm_start(self, chip, setup4):
        wl, asg = setup4
        cold = LinOpt().set_levels(chip, wl, asg, COST_PERFORMANCE)
        warm = LinOpt().set_levels(chip, wl, asg, COST_PERFORMANCE,
                                   initial_levels=list(cold.levels),
                                   initial_state=cold.state)
        assert (warm.state.throughput_mips
                >= 0.98 * cold.state.throughput_mips)


class TestSAnn:
    def test_meets_budget(self, chip, setup4, rng):
        wl, asg = setup4
        result = SAnnManager(n_evaluations=300).set_levels(
            chip, wl, asg, LOW_POWER, rng)
        _check_feasible(result, LOW_POWER, 4, chip.n_cores)

    def test_not_worse_than_greedy_start(self, chip, setup4, rng):
        wl, asg = setup4
        fox = FoxtonStar().set_levels(chip, wl, asg, LOW_POWER)
        sa = SAnnManager(n_evaluations=500).set_levels(
            chip, wl, asg, LOW_POWER, rng)
        assert sa.state.throughput_mips >= fox.state.throughput_mips - 1e-9

    def test_reproducible(self, chip, setup4):
        wl, asg = setup4
        a = SAnnManager(n_evaluations=200).set_levels(
            chip, wl, asg, LOW_POWER, np.random.default_rng(9))
        b = SAnnManager(n_evaluations=200).set_levels(
            chip, wl, asg, LOW_POWER, np.random.default_rng(9))
        assert a.levels == b.levels

    def test_validation(self):
        with pytest.raises(ValueError):
            SAnnManager(n_evaluations=0)
        with pytest.raises(ValueError):
            SAnnManager(initial_temp_per_thread=0.0)


class TestExhaustive:
    def test_limit_enforced(self, chip, setup12):
        wl, asg = setup12
        with pytest.raises(ValueError):
            ExhaustiveSearch(combination_limit=100).set_levels(
                chip, wl, asg, LOW_POWER)

    def test_finds_optimum_small_case(self, small_chip, rng):
        wl = Workload((get_app("bzip2"), get_app("mcf")))
        asg = Assignment((0, 1))
        env = PowerEnvironment("Tight", 40.0, p_core_max=4.0)
        ex = ExhaustiveSearch().set_levels(small_chip, wl, asg, env)
        fox = FoxtonStar().set_levels(small_chip, wl, asg, env)
        lin = LinOpt().set_levels(small_chip, wl, asg, env)
        assert ex.state.throughput_mips >= fox.state.throughput_mips - 1e-9
        assert ex.state.throughput_mips >= lin.state.throughput_mips - 1e-9


class TestSolverHierarchy:
    """Section 6.5 / 7.5: exhaustive >= SAnn >= ~LinOpt, close gaps."""

    def test_paper_gaps_on_small_config(self, small_chip, rng):
        wl = Workload((get_app("vortex"), get_app("mcf"),
                       get_app("gzip")))
        asg = VarFAppIPC().assign_with_profiling(small_chip, wl, rng)
        env = PowerEnvironment("Budget", 30.0, p_core_max=6.0)
        ex = ExhaustiveSearch().set_levels(small_chip, wl, asg, env)
        sa = SAnnManager(n_evaluations=4000).set_levels(
            small_chip, wl, asg, env, np.random.default_rng(0))
        lin = LinOpt().set_levels(small_chip, wl, asg, env)
        best = ex.state.throughput_mips
        # SAnn within ~2% of exhaustive (paper: 1% with 1e6 evals);
        # LinOpt within ~4% (paper: 2% of SAnn on the full system).
        assert sa.state.throughput_mips >= 0.98 * best
        assert lin.state.throughput_mips >= 0.96 * best
