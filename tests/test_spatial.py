"""Tests for repro.variation.spatial (correlation + field samplers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.variation.spatial import (
    CholeskyFieldSampler,
    CirculantFieldSampler,
    grid_coordinates,
    make_field_sampler,
    spherical_correlation,
)


class TestSphericalCorrelation:
    def test_one_at_zero(self):
        assert spherical_correlation(np.array(0.0), 2.0) == pytest.approx(1.0)

    def test_zero_at_and_beyond_phi(self):
        rho = spherical_correlation(np.array([2.0, 3.0, 10.0]), 2.0)
        assert np.all(rho == 0.0)

    def test_known_midpoint_value(self):
        # rho(phi/2) = 1 - 1.5*0.5 + 0.5*0.125 = 0.3125
        assert spherical_correlation(np.array(1.0), 2.0) == pytest.approx(
            0.3125)

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            spherical_correlation(np.array(-1.0), 2.0)

    def test_rejects_non_positive_phi(self):
        with pytest.raises(ValueError):
            spherical_correlation(np.array(1.0), 0.0)

    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=1e-3, max_value=100.0))
    def test_bounded_in_unit_interval(self, r, phi):
        rho = float(spherical_correlation(np.array(r), phi))
        assert 0.0 <= rho <= 1.0

    @given(st.floats(min_value=1e-3, max_value=10.0))
    @settings(max_examples=25)
    def test_monotone_decreasing(self, phi):
        r = np.linspace(0, phi, 50)
        rho = spherical_correlation(r, phi)
        assert np.all(np.diff(rho) <= 1e-12)


class TestGridCoordinates:
    def test_cell_centres(self):
        xs, ys = grid_coordinates(4, 8.0)
        assert xs.tolist() == [1.0, 3.0, 5.0, 7.0]
        assert ys.tolist() == xs.tolist()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            grid_coordinates(0, 8.0)
        with pytest.raises(ValueError):
            grid_coordinates(4, -1.0)


class TestSamplers:
    def test_cholesky_shape_and_determinism(self):
        s = CholeskyFieldSampler(8, 10.0, 5.0)
        a = s.sample(np.random.default_rng(1))
        b = s.sample(np.random.default_rng(1))
        assert a.shape == (8, 8)
        np.testing.assert_array_equal(a, b)

    def test_fft_shape_and_determinism(self):
        s = CirculantFieldSampler(16, 10.0, 5.0)
        a = s.sample(np.random.default_rng(1))
        b = s.sample(np.random.default_rng(1))
        assert a.shape == (16, 16)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("cls", [CholeskyFieldSampler,
                                     CirculantFieldSampler])
    def test_unit_marginal_variance(self, cls):
        sampler = cls(16, 10.0, 5.0)
        rng = np.random.default_rng(7)
        samples = np.stack([sampler.sample(rng) for _ in range(200)])
        var = samples.var()
        assert var == pytest.approx(1.0, rel=0.1)

    @pytest.mark.parametrize("cls", [CholeskyFieldSampler,
                                     CirculantFieldSampler])
    def test_zero_mean(self, cls):
        sampler = cls(12, 10.0, 5.0)
        rng = np.random.default_rng(11)
        samples = np.stack([sampler.sample(rng) for _ in range(300)])
        assert abs(samples.mean()) < 0.05

    def test_neighbouring_cells_correlated(self):
        # With phi spanning half the grid, adjacent cells must be
        # strongly correlated and far cells weakly.
        sampler = CirculantFieldSampler(16, 16.0, 8.0)
        rng = np.random.default_rng(3)
        fields = np.stack([sampler.sample(rng) for _ in range(400)])
        near = np.corrcoef(fields[:, 0, 0], fields[:, 0, 1])[0, 1]
        far = np.corrcoef(fields[:, 0, 0], fields[:, 15, 15])[0, 1]
        assert near > 0.7
        assert abs(far) < 0.3

    def test_fft_matches_cholesky_statistics(self):
        # The two samplers implement the same covariance; compare the
        # empirical near-neighbour correlation.
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        chol = CholeskyFieldSampler(12, 12.0, 6.0)
        fft = CirculantFieldSampler(12, 12.0, 6.0)
        f1 = np.stack([chol.sample(rng1) for _ in range(400)])
        f2 = np.stack([fft.sample(rng2) for _ in range(400)])
        c1 = np.corrcoef(f1[:, 4, 4], f1[:, 4, 5])[0, 1]
        c2 = np.corrcoef(f2[:, 4, 4], f2[:, 4, 5])[0, 1]
        assert c1 == pytest.approx(c2, abs=0.12)

    def test_make_field_sampler_auto_selection(self):
        assert isinstance(make_field_sampler(16, 10.0, 5.0),
                          CholeskyFieldSampler)
        assert isinstance(make_field_sampler(64, 10.0, 5.0),
                          CirculantFieldSampler)

    def test_make_field_sampler_explicit(self):
        assert isinstance(make_field_sampler(16, 10.0, 5.0, "fft"),
                          CirculantFieldSampler)
        with pytest.raises(ValueError):
            make_field_sampler(16, 10.0, 5.0, "bogus")
