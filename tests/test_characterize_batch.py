"""Bitwise-parity tests for the die-batched characterisation pipeline.

The contract under test (DESIGN.md §18): every batched layer — the
field samplers' ``sample_batch``, :func:`generate_variation_maps`,
``DieBatch.dies_for`` and :func:`characterize_dies` — is bitwise
identical to its serial counterpart, for every sampler backend, batch
size and arch geometry, including error behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chip import (
    CharacterizationKernel,
    characterize_die,
    characterize_dies,
)
from repro.config import ArchConfig, DEFAULT_TECH
from repro.parallel import (
    CharacterizationCache,
    characterize_batch,
    parallel_config,
    profile_payload,
    resolve_batched_characterization,
    set_batched_characterization,
)
from repro.variation import (
    Die,
    DieBatch,
    generate_variation_map,
    generate_variation_maps,
)
from repro.variation.spatial import make_field_sampler
from repro.variation.varius import VariationMap

TECH = DEFAULT_TECH

# Three geometries covering both sampler backends and ragged layouts:
# the fleet arch (Cholesky, res 16), a mid-size die (Cholesky, res 32,
# the backend cutoff), and a large/fine die (circulant FFT, res 40).
CHOL_ARCH = ArchConfig(n_cores=4, die_area_mm2=140.0, grid_resolution=16)
MID_ARCH = ArchConfig(n_cores=8, die_area_mm2=140.0, grid_resolution=32)
FFT_ARCH = ArchConfig(n_cores=4, die_area_mm2=200.0, grid_resolution=40)
ARCHS = [CHOL_ARCH, MID_ARCH, FFT_ARCH]


def assert_profiles_bitwise(a, b) -> None:
    """Every array/scalar of the flattened profiles must match exactly."""
    pa, pb = profile_payload(a), profile_payload(b)
    assert pa.keys() == pb.keys()
    for key in pa:
        assert np.array_equal(pa[key], pb[key]), key


def poisoned_die(template: Die, die_id: int) -> Die:
    """A die whose Vth map forces gate_delay's sub-threshold error."""
    vmap = template.variation
    bad = VariationMap(
        vth_sys=np.full_like(vmap.vth_sys, 0.9),
        leff_sys=vmap.leff_sys.copy(),
        vth=vmap.vth,
        leff=vmap.leff,
        edge=vmap.edge,
    )
    return Die(die_id=die_id, variation=bad)


class TestSamplerBatchParity:
    """sample_batch == per-rng serial sample calls, for both backends."""

    @pytest.mark.parametrize("resolution,edge", [(16, 11.8), (40, 14.1)])
    def test_sample_batch_matches_serial(self, resolution, edge):
        sampler = make_field_sampler(resolution, edge, 0.5 * edge)
        serial = []
        for i in range(5):
            rng = np.random.default_rng([7, i])
            serial.append([sampler.sample(rng) for _ in range(2)])
        batched = sampler.sample_batch(
            [np.random.default_rng([7, i]) for i in range(5)], count=2)
        assert batched.shape == (5, 2, resolution, resolution)
        for i in range(5):
            for k in range(2):
                assert np.array_equal(batched[i, k], serial[i][k])

    def test_backend_selection(self):
        from repro.variation.spatial import (
            CholeskyFieldSampler,
            CirculantFieldSampler,
        )
        assert isinstance(make_field_sampler(16, 11.8, 5.9),
                          CholeskyFieldSampler)
        assert isinstance(make_field_sampler(40, 14.1, 7.0),
                          CirculantFieldSampler)


class TestVariationMapBatchParity:
    @pytest.mark.parametrize("arch", ARCHS, ids=["chol16", "chol32", "fft40"])
    def test_generate_variation_maps_matches_serial(self, arch):
        edge = arch.die_edge_mm
        res = arch.grid_resolution
        serial = [
            generate_variation_map(TECH, edge, res,
                                   np.random.default_rng([11, i]))
            for i in range(4)
        ]
        batched = generate_variation_maps(
            TECH, edge, res,
            [np.random.default_rng([11, i]) for i in range(4)])
        assert len(batched) == 4
        for s, b in zip(serial, batched):
            assert np.array_equal(s.vth_sys, b.vth_sys)
            assert np.array_equal(s.leff_sys, b.leff_sys)
            assert s.vth == b.vth and s.leff == b.leff
            assert s.edge == b.edge

    def test_empty_rngs(self):
        assert generate_variation_maps(TECH, 11.8, 16, []) == []

    def test_dies_for_matches_getitem(self):
        serial_batch = DieBatch(TECH, CHOL_ARCH, n_dies=8, seed=77)
        batched_batch = DieBatch(TECH, CHOL_ARCH, n_dies=8, seed=77)
        serial = [serial_batch[i] for i in range(8)]
        batched = batched_batch.dies_for(range(8))
        for s, b in zip(serial, batched):
            assert s.die_id == b.die_id
            assert np.array_equal(s.variation.vth_sys, b.variation.vth_sys)
            assert np.array_equal(s.variation.leff_sys, b.variation.leff_sys)

    def test_dies_for_mixed_hit_miss_and_order(self):
        batch = DieBatch(TECH, CHOL_ARCH, n_dies=6, seed=5)
        pre = batch[2]  # warm one die through the serial path
        got = batch.dies_for([4, 2, 0, 2, -1])
        assert [d.die_id for d in got] == [4, 2, 0, 2, 5]
        assert got[1] is pre  # cache was reused, not regenerated
        ref = DieBatch(TECH, CHOL_ARCH, n_dies=6, seed=5)
        for d in got:
            assert np.array_equal(d.variation.vth_sys,
                                  ref[d.die_id].variation.vth_sys)

    def test_dies_for_out_of_range(self):
        batch = DieBatch(TECH, CHOL_ARCH, n_dies=3, seed=5)
        with pytest.raises(IndexError):
            batch.dies_for([3])
        with pytest.raises(IndexError):
            batch.dies_for([-4])


class TestCharacterizeDiesParity:
    """The tentpole contract: batched binning == per-die serial binning."""

    @pytest.mark.parametrize("arch", ARCHS, ids=["chol16", "chol32", "fft40"])
    @pytest.mark.parametrize("n_dies", [1, 5])
    def test_bitwise_identical(self, arch, n_dies):
        batch = DieBatch(TECH, arch, n_dies=n_dies, seed=321)
        dies = batch.dies_for(range(n_dies))
        serial = [characterize_die(d, TECH, arch) for d in dies]
        batched = characterize_dies(dies, TECH, arch)
        assert len(batched) == n_dies
        for s, b in zip(serial, batched):
            assert_profiles_bitwise(s, b)

    def test_large_batch_bitwise(self):
        """A fleet-sized chunk on the fleet arch stays bitwise-exact."""
        n = 64
        batch = DieBatch(TECH, CHOL_ARCH, n_dies=n, seed=2024)
        dies = batch.dies_for(range(n))
        batched = characterize_dies(dies, TECH, CHOL_ARCH)
        for d in (0, 17, 63):  # spot-check the serial reference
            assert_profiles_bitwise(
                characterize_die(dies[d], TECH, CHOL_ARCH), batched[d])

    def test_mixed_geometry_groups(self):
        """Dies of different map geometries batch independently."""
        small = DieBatch(TECH, CHOL_ARCH, n_dies=2, seed=9).dies_for([0, 1])
        # Same core count, different die edge/resolution.
        big = DieBatch(TECH, FFT_ARCH, n_dies=2, seed=9).dies_for([0, 1])
        mixed = [small[0], big[0], small[1], big[1]]
        batched = characterize_dies(mixed, TECH, CHOL_ARCH)
        for die, prof in zip(mixed, batched):
            assert_profiles_bitwise(
                characterize_die(die, TECH, CHOL_ARCH), prof)

    def test_kernel_reuse_across_calls(self):
        """One kernel instance serves many chunks (fleet usage)."""
        kernel = CharacterizationKernel(TECH, CHOL_ARCH)
        batch = DieBatch(TECH, CHOL_ARCH, n_dies=4, seed=13)
        first = kernel.characterize(batch.dies_for([0, 1]))
        second = kernel.characterize(batch.dies_for([2, 3]))
        for i, prof in enumerate(first + second):
            assert_profiles_bitwise(
                characterize_die(batch[i], TECH, CHOL_ARCH), prof)

    def test_empty_batch(self):
        assert characterize_dies([], TECH, CHOL_ARCH) == []

    def test_floorplan_mismatch_rejected(self):
        from repro.floorplan import build_floorplan
        wrong = build_floorplan(MID_ARCH)
        with pytest.raises(ValueError, match="core count"):
            CharacterizationKernel(TECH, CHOL_ARCH, floorplan=wrong)

    def test_shared_structures_attached(self):
        from repro.floorplan import build_floorplan
        from repro.thermal import ThermalNetwork
        floorplan = build_floorplan(CHOL_ARCH)
        thermal = ThermalNetwork(floorplan)
        batch = DieBatch(TECH, CHOL_ARCH, n_dies=2, seed=3)
        profs = characterize_dies(batch.dies_for([0, 1]), TECH, CHOL_ARCH,
                                  floorplan=floorplan, thermal=thermal)
        for p in profs:
            assert p.floorplan is floorplan
            assert p.thermal is thermal


class TestErrorParity:
    def _dies_with_poison(self, bad_at):
        batch = DieBatch(TECH, CHOL_ARCH, n_dies=4, seed=55)
        dies = batch.dies_for(range(4))
        for pos in bad_at:
            dies[pos] = poisoned_die(dies[pos], die_id=dies[pos].die_id)
        return dies

    def test_raise_matches_serial_exception(self):
        dies = self._dies_with_poison([2])
        with pytest.raises(ValueError) as serial_exc:
            characterize_die(dies[2], TECH, CHOL_ARCH)
        with pytest.raises(ValueError) as batched_exc:
            characterize_dies(dies, TECH, CHOL_ARCH)
        assert str(batched_exc.value) == str(serial_exc.value)

    def test_raise_reports_lowest_index_failure(self):
        dies = self._dies_with_poison([1, 3])
        with pytest.raises(ValueError,
                           match="supply voltage at or below threshold"):
            characterize_dies(dies, TECH, CHOL_ARCH)

    def test_isolate_quarantines_only_failures(self):
        dies = self._dies_with_poison([1])
        results = characterize_dies(dies, TECH, CHOL_ARCH, errors="isolate")
        assert isinstance(results[1], ValueError)
        for pos in (0, 2, 3):
            assert_profiles_bitwise(
                characterize_die(dies[pos], TECH, CHOL_ARCH), results[pos])

    def test_invalid_errors_mode(self):
        batch = DieBatch(TECH, CHOL_ARCH, n_dies=1, seed=1)
        with pytest.raises(ValueError, match="errors"):
            characterize_dies(batch.dies_for([0]), TECH, CHOL_ARCH,
                              errors="ignore")


class TestRunnerKnob:
    """resolve/config/env plumbing for the batched-characterisation knob."""

    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_CHAR", raising=False)
        assert resolve_batched_characterization() is True

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHAR", "1")
        assert resolve_batched_characterization(False) is False

    @pytest.mark.parametrize("value,expected", [
        ("0", False), ("false", False), ("no", False), ("off", False),
        ("1", True), ("true", True), ("anything", True),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_BATCH_CHAR", value)
        assert resolve_batched_characterization() is expected

    def test_override_beats_env_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_CHAR", "1")
        set_batched_characterization(False)
        try:
            assert resolve_batched_characterization() is False
        finally:
            set_batched_characterization(None)
        assert resolve_batched_characterization() is True

    def test_parallel_config_scopes_override(self):
        with parallel_config(batched_characterization=False):
            assert resolve_batched_characterization() is False
        assert resolve_batched_characterization() is True

    def test_characterize_batch_paths_bitwise(self, tmp_path):
        """Serial and batched cache-miss paths agree through the runner."""
        seed, indices = 17, [0, 3, 1]
        with parallel_config(workers=1):
            serial = characterize_batch(TECH, CHOL_ARCH, seed, indices,
                                        cache=None, batched=False)
            batched = characterize_batch(TECH, CHOL_ARCH, seed, indices,
                                         cache=None, batched=True)
        for s, b in zip(serial, batched):
            assert_profiles_bitwise(s, b)

    def test_cache_population_identical_across_paths(self, tmp_path):
        """Batched misses store byte-identical payloads under shared keys."""
        seed, indices = 23, [0, 1, 2]
        cache_serial = CharacterizationCache(tmp_path / "serial")
        cache_batched = CharacterizationCache(tmp_path / "batched")
        with parallel_config(workers=1):
            characterize_batch(TECH, CHOL_ARCH, seed, indices,
                               cache=cache_serial, batched=False)
            characterize_batch(TECH, CHOL_ARCH, seed, indices,
                               cache=cache_batched, batched=True)
            # Warm hits from the batched-populated cache must equal the
            # serial-populated cache's hits bitwise.
            warm_s = characterize_batch(TECH, CHOL_ARCH, seed, indices,
                                        cache=cache_serial, batched=False)
            warm_b = characterize_batch(TECH, CHOL_ARCH, seed, indices,
                                        cache=cache_batched, batched=True)
        assert cache_serial.stats["hits"] == len(indices)
        assert cache_batched.stats["hits"] == len(indices)
        for s, b in zip(warm_s, warm_b):
            assert_profiles_bitwise(s, b)

    def test_mixed_hit_miss_batched_fills_only_misses(self, tmp_path):
        """Pre-warming a subset leaves the batch filling only misses."""
        seed = 29
        cache = CharacterizationCache(tmp_path / "cache")
        with parallel_config(workers=1):
            characterize_batch(TECH, CHOL_ARCH, seed, [1, 3],
                               cache=cache, batched=True)
            stores_before = cache.stats["stores"]
            mixed = characterize_batch(TECH, CHOL_ARCH, seed, [0, 1, 2, 3],
                                       cache=cache, batched=True)
            cold = characterize_batch(TECH, CHOL_ARCH, seed, [0, 1, 2, 3],
                                      cache=None, batched=False)
        assert cache.stats["stores"] - stores_before == 2  # only 0 and 2
        for m, c in zip(mixed, cold):
            assert_profiles_bitwise(m, c)
