"""Tests for repro.runtime.evaluation (system-state evaluation)."""

import numpy as np
import pytest

from repro.config import COST_PERFORMANCE
from repro.runtime import (
    Assignment,
    evaluate_explicit,
    evaluate_levels,
    evaluate_max_levels,
    evaluate_uniform_frequency,
)
from repro.workloads import Workload, get_app, make_workload


@pytest.fixture()
def workload4():
    return Workload((get_app("bzip2"), get_app("mcf"),
                     get_app("vortex"), get_app("swim")))


@pytest.fixture()
def assignment4():
    return Assignment(core_of=(0, 5, 10, 19))


class TestAssignment:
    def test_properties(self, assignment4):
        assert assignment4.n_threads == 4
        assert assignment4.active_cores == (0, 5, 10, 19)

    def test_rejects_duplicate_cores(self):
        with pytest.raises(ValueError):
            Assignment(core_of=(1, 1))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Assignment(core_of=())

    def test_rejects_negative_core(self):
        with pytest.raises(ValueError):
            Assignment(core_of=(-1,))


class TestEvaluateLevels:
    def test_max_levels_shape(self, chip, workload4, assignment4):
        state = evaluate_max_levels(chip, workload4, assignment4)
        assert state.voltages.shape == (4,)
        assert state.freqs.shape == (4,)
        assert state.total_power > 0
        assert state.throughput_mips > 0

    def test_throughput_is_sum_of_threads(self, chip, workload4,
                                          assignment4):
        state = evaluate_max_levels(chip, workload4, assignment4)
        assert state.throughput_mips == pytest.approx(
            state.per_thread_mips.sum())

    def test_lower_levels_use_less_power(self, chip, workload4,
                                         assignment4):
        hi = evaluate_levels(chip, workload4, assignment4, [8, 8, 8, 8])
        lo = evaluate_levels(chip, workload4, assignment4, [0, 0, 0, 0])
        assert lo.total_power < hi.total_power
        assert lo.throughput_mips < hi.throughput_mips

    def test_level_out_of_range(self, chip, workload4, assignment4):
        with pytest.raises(ValueError):
            evaluate_levels(chip, workload4, assignment4, [0, 0, 0, 99])

    def test_wrong_level_count(self, chip, workload4, assignment4):
        with pytest.raises(ValueError):
            evaluate_levels(chip, workload4, assignment4, [0, 0])

    def test_core_beyond_die_rejected(self, chip, workload4):
        asg = Assignment(core_of=(0, 1, 2, 77))
        with pytest.raises(ValueError):
            evaluate_max_levels(chip, workload4, asg)

    def test_idle_cores_are_powered_off(self, chip):
        # One thread's total power must be far below four threads'.
        wl1 = Workload((get_app("bzip2"),))
        s1 = evaluate_max_levels(chip, wl1, Assignment((0,)))
        wl4 = Workload(tuple(get_app("bzip2") for _ in range(4)))
        s4 = evaluate_max_levels(chip, wl4,
                                 Assignment((0, 1, 2, 3)))
        assert s4.total_power > 2 * s1.total_power

    def test_phase_multipliers_scale_results(self, chip, workload4,
                                             assignment4):
        base = evaluate_max_levels(chip, workload4, assignment4)
        boosted = evaluate_levels(
            chip, workload4, assignment4, [8] * 4,
            ipc_multipliers=[2.0] * 4)
        np.testing.assert_allclose(boosted.ipcs, 2 * base.ipcs)

    def test_ceff_multiplier_raises_power(self, chip, workload4,
                                          assignment4):
        base = evaluate_max_levels(chip, workload4, assignment4)
        hot = evaluate_levels(chip, workload4, assignment4, [8] * 4,
                              ceff_multipliers=[1.5] * 4)
        assert hot.total_power > base.total_power

    def test_temperatures_above_ambient(self, chip, workload4,
                                        assignment4):
        state = evaluate_max_levels(chip, workload4, assignment4)
        assert np.all(state.block_temps >= chip.thermal.ambient_k - 1e-6)

    def test_active_core_hotter_than_idle(self, chip, workload4):
        asg = Assignment(core_of=(0, 1, 2, 3))
        state = evaluate_max_levels(chip, workload4, asg)
        active_t = state.block_temps[0]
        idle_t = state.block_temps[19]
        assert active_t > idle_t


class TestUniformFrequency:
    def test_all_threads_at_chip_frequency(self, chip, workload4,
                                           assignment4):
        state = evaluate_uniform_frequency(chip, workload4, assignment4)
        np.testing.assert_allclose(state.freqs, chip.min_fmax)
        np.testing.assert_allclose(state.voltages, 1.0)

    def test_explicit_frequency(self, chip, workload4, assignment4):
        state = evaluate_uniform_frequency(chip, workload4, assignment4,
                                           freq_hz=2.0e9)
        np.testing.assert_allclose(state.freqs, 2.0e9)

    def test_nunifreq_beats_unifreq_throughput(self, chip, workload4,
                                               assignment4):
        uni = evaluate_uniform_frequency(chip, workload4, assignment4)
        nuni = evaluate_max_levels(chip, workload4, assignment4)
        assert nuni.throughput_mips >= uni.throughput_mips

    def test_rejects_bad_frequency(self, chip, workload4, assignment4):
        with pytest.raises(ValueError):
            evaluate_uniform_frequency(chip, workload4, assignment4,
                                       freq_hz=-1.0)


class TestMetrics:
    def test_ed2_formula(self, chip, workload4, assignment4):
        state = evaluate_max_levels(chip, workload4, assignment4)
        assert state.ed2_relative == pytest.approx(
            state.total_power / state.throughput_mips ** 3)

    def test_weighted_throughput_equal_weighting(self, chip):
        # A single thread at reference conditions has weighted TP 1.
        wl = Workload((get_app("bzip2"),))
        asg = Assignment((0,))
        state = evaluate_max_levels(chip, wl, asg)
        expected = (state.ipcs[0] * state.freqs[0]
                    / get_app("bzip2").throughput_at(4e9))
        assert state.weighted_throughput(wl) == pytest.approx(expected)

    def test_weighted_mismatch_rejected(self, chip, workload4,
                                        assignment4):
        state = evaluate_max_levels(chip, workload4, assignment4)
        with pytest.raises(ValueError):
            state.weighted_throughput(Workload((get_app("mcf"),)))

    def test_core_power_is_dyn_plus_leak(self, chip, workload4,
                                         assignment4):
        state = evaluate_max_levels(chip, workload4, assignment4)
        np.testing.assert_allclose(
            state.core_power, state.core_dynamic + state.core_leakage)

    def test_total_includes_l2(self, chip, workload4, assignment4):
        state = evaluate_max_levels(chip, workload4, assignment4)
        cores = state.core_power.sum()
        assert state.total_power == pytest.approx(cores + state.l2_power)
        assert state.l2_power > 0
