"""Smoke tests: the runnable examples must execute end to end.

Only the quick examples run here (the full set is exercised manually);
each is imported and its ``main()`` invoked with output captured.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "NUniFreq" in out
        assert "LinOpt" in out

    def test_thermal_aware(self, capsys):
        out = _run_example("thermal_aware", capsys)
        assert "VarTemp" in out
        assert "peak T" in out

    def test_trace_driven_profiles(self, capsys):
        out = _run_example("trace_driven_profiles", capsys)
        assert "memory" in out
        assert "LinOpt" in out

    def test_daemon_service(self, capsys):
        out = _run_example("daemon_service", capsys)
        assert "actuation stream" in out
        assert "resilience timeline" in out
        assert "tenants_registered" in out

    def test_all_examples_exist_and_compile(self):
        expected = {"quickstart", "variation_study",
                    "online_power_management", "thermal_aware",
                    "solver_comparison", "full_timeline",
                    "trace_driven_profiles", "lifetime_study",
                    "daemon_service"}
        found = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert expected <= found
        for path in EXAMPLES_DIR.glob("*.py"):
            compile(path.read_text(), str(path), "exec")
