"""Tests for the simulated-annealing kernel."""

import numpy as np
import pytest

from repro.anneal import (
    AnnealResult,
    logarithmic_temperature,
    simulated_annealing,
)


class TestCooling:
    def test_decreasing(self):
        temps = [logarithmic_temperature(10.0, k) for k in range(100)]
        assert all(a >= b for a, b in zip(temps, temps[1:]))

    def test_initial_value(self):
        assert logarithmic_temperature(10.0, 0) == pytest.approx(10.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            logarithmic_temperature(0.0, 1)
        with pytest.raises(ValueError):
            logarithmic_temperature(1.0, -1)


class TestSimulatedAnnealing:
    def test_minimises_quadratic(self):
        def energy(x):
            return (x - 3.0) ** 2

        def neighbour(x, temp, rng):
            return x + rng.standard_normal() * max(temp, 0.1)

        result = simulated_annealing(
            initial_state=10.0,
            energy_fn=energy,
            neighbour_fn=neighbour,
            rng=np.random.default_rng(0),
            n_evaluations=3000,
            initial_temp=5.0)
        assert abs(result.best_state - 3.0) < 0.3
        assert result.best_energy < 0.1

    def test_escapes_local_minimum(self):
        # Double well with the deeper minimum far from the start.
        def energy(x):
            return min((x + 2.0) ** 2, (x - 4.0) ** 2 - 1.0)

        def neighbour(x, temp, rng):
            return x + rng.standard_normal() * (1.0 + temp)

        result = simulated_annealing(
            initial_state=-2.0,
            energy_fn=energy,
            neighbour_fn=neighbour,
            rng=np.random.default_rng(1),
            n_evaluations=4000,
            initial_temp=8.0)
        assert result.best_energy < -0.5

    def test_best_never_worse_than_initial(self):
        def energy(x):
            return x ** 2

        result = simulated_annealing(
            initial_state=5.0,
            energy_fn=energy,
            neighbour_fn=lambda x, t, r: x + r.standard_normal(),
            rng=np.random.default_rng(2),
            n_evaluations=50,
            initial_temp=1.0)
        assert result.best_energy <= 25.0

    def test_deterministic_with_seed(self):
        def run():
            return simulated_annealing(
                initial_state=1.0,
                energy_fn=lambda x: abs(x),
                neighbour_fn=lambda x, t, r: x + r.standard_normal() * t,
                rng=np.random.default_rng(3),
                n_evaluations=200,
                initial_temp=2.0)
        assert run().best_state == run().best_state

    def test_single_evaluation(self):
        result = simulated_annealing(
            initial_state=7.0,
            energy_fn=lambda x: x,
            neighbour_fn=lambda x, t, r: x,
            rng=np.random.default_rng(4),
            n_evaluations=1)
        assert result.best_state == 7.0
        assert result.evaluations == 1
        assert result.acceptance_rate == 0.0

    def test_rejects_zero_evaluations(self):
        with pytest.raises(ValueError):
            simulated_annealing(0.0, lambda x: x, lambda x, t, r: x,
                                np.random.default_rng(0), n_evaluations=0)

    def test_acceptance_rate_in_unit_interval(self):
        result = simulated_annealing(
            initial_state=0.0,
            energy_fn=lambda x: x ** 2,
            neighbour_fn=lambda x, t, r: x + r.standard_normal(),
            rng=np.random.default_rng(5),
            n_evaluations=300,
            initial_temp=1.0)
        assert 0.0 <= result.acceptance_rate <= 1.0
