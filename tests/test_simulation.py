"""Tests for the online time-stepped simulation (Figure 2 / 14)."""

import numpy as np
import pytest

from repro.config import COST_PERFORMANCE
from repro.pm import FoxtonStar, LinOpt, LinOptConfig
from repro.runtime import OnlineSimulation
from repro.runtime.simulation import SENSOR_PERIOD_S
from repro.sched import VarFAppIPC
from repro.workloads import make_workload


@pytest.fixture()
def sim_setup(chip, rng):
    workload = make_workload(6, rng)
    assignment = VarFAppIPC().assign_with_profiling(chip, workload, rng)
    return workload, assignment


class TestOnlineSimulation:
    def test_trace_shapes(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        trace = sim.run(duration_s=0.02, dvfs_interval_s=0.01)
        n = int(round(0.02 / SENSOR_PERIOD_S))
        assert trace.times_s.shape == (n,)
        assert trace.power_w.shape == (n,)
        assert trace.throughput_mips.shape == (n,)
        assert trace.weighted_throughput.shape == (n,)

    def test_manager_invocation_count(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        trace = sim.run(duration_s=0.05, dvfs_interval_s=0.01)
        assert len(trace.manager_runs) == 5

    def test_power_tracks_target(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        trace = sim.run(duration_s=0.04, dvfs_interval_s=0.01)
        assert trace.mean_power_w <= trace.p_target_w * 1.15
        assert trace.mean_abs_deviation_pct < 25.0

    def test_shorter_interval_tracks_better(self, chip, sim_setup):
        wl, asg = sim_setup
        def run(interval):
            sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                                   manager=FoxtonStar(), phase_seed=5)
            return sim.run(duration_s=0.08,
                           dvfs_interval_s=interval)
        fine = run(0.005).mean_abs_deviation_pct
        coarse = run(0.08).mean_abs_deviation_pct
        assert fine <= coarse + 0.5

    def test_phase_seed_reproducible(self, chip, sim_setup):
        wl, asg = sim_setup
        def run():
            sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                                   manager=FoxtonStar(), phase_seed=9)
            return sim.run(duration_s=0.02, dvfs_interval_s=0.01)
        a, b = run(), run()
        np.testing.assert_array_equal(a.power_w, b.power_w)

    def test_transition_time_accounted(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=LinOpt(LinOptConfig(n_iterations=2)),
                               phase_seed=2)
        trace = sim.run(duration_s=0.04, dvfs_interval_s=0.01)
        assert trace.transition_time_s >= 0.0
        # Never more than a tiny fraction of the run.
        assert trace.transition_time_s < 0.1 * 0.04 * asg.n_threads

    def test_rejects_bad_durations(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        with pytest.raises(ValueError):
            sim.run(duration_s=0.0, dvfs_interval_s=0.01)
        with pytest.raises(ValueError):
            sim.run(duration_s=0.01, dvfs_interval_s=0.0)

    def test_default_manager_is_linopt(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE)
        from repro.pm import LinOpt as LinOptClass
        assert isinstance(sim.manager, LinOptClass)

    def test_metrics_consistent(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        trace = sim.run(duration_s=0.02, dvfs_interval_s=0.01)
        assert trace.mean_throughput_mips == pytest.approx(
            trace.throughput_mips.mean())
        assert trace.ed2_relative == pytest.approx(
            trace.mean_power_w / trace.mean_throughput_mips ** 3)


class TestOsRescheduling:
    def test_policy_and_interval_must_pair(self, chip, sim_setup):
        wl, asg = sim_setup
        from repro.sched import RandomPolicy
        with pytest.raises(ValueError):
            OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                             manager=FoxtonStar(),
                             policy=RandomPolicy())
        with pytest.raises(ValueError):
            OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                             manager=FoxtonStar(), os_interval_s=0.1)

    def test_random_policy_migrates(self, chip, sim_setup):
        wl, asg = sim_setup
        from repro.sched import RandomPolicy
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar(),
                               policy=RandomPolicy(),
                               os_interval_s=0.02)
        trace = sim.run(0.06, 0.01)
        assert trace.migrations > 0
        assert trace.mean_power_w <= trace.p_target_w * 1.15

    def test_stable_policy_does_not_migrate(self, chip, sim_setup):
        wl, asg0 = sim_setup
        from repro.sched import VarFAppIPC
        policy = VarFAppIPC()
        # Start from the policy's own assignment: re-running it keeps
        # the mapping (deterministic ranking), so no migrations.
        import numpy as np
        asg = policy.assign_with_profiling(chip, wl,
                                           np.random.default_rng(3))
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar(), policy=policy,
                               os_interval_s=0.02)
        trace = sim.run(0.05, 0.01)
        assert trace.migrations == 0

    def test_no_policy_means_no_migrations(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        trace = sim.run(0.02, 0.01)
        assert trace.migrations == 0
