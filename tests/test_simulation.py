"""Tests for the online event-driven simulation (Figure 2 / 14)."""

import numpy as np
import pytest

from repro.config import COST_PERFORMANCE
from repro.pm import FoxtonStar, LinOpt, LinOptConfig
from repro.pm.base import PmResult, PowerManager
from repro.runtime import OnlineSimulation
from repro.runtime.evaluation import EVALUATION_COUNTER, evaluate_levels
from repro.runtime.simulation import (
    SENSOR_PERIOD_S,
    TRANSITION_LATENCY_PER_LEVEL_S,
)
from repro.sched import VarFAppIPC
from repro.workloads import make_workload


class AlternatingManager(PowerManager):
    """Steps every thread between levels 0 and 1 on each invocation."""

    name = "alternating"

    def __init__(self) -> None:
        self._flip = False

    def set_levels(self, chip, workload, assignment, env, rng=None,
                   initial_levels=None, initial_state=None,
                   ipc_multipliers=None, ceff_multipliers=None):
        level = 1 if self._flip else 0
        self._flip = not self._flip
        levels = [level] * assignment.n_threads
        state = evaluate_levels(chip, workload, assignment, levels,
                                ipc_multipliers=ipc_multipliers,
                                ceff_multipliers=ceff_multipliers)
        return PmResult(levels=tuple(levels), state=state, evaluations=1)


@pytest.fixture()
def sim_setup(chip, rng):
    workload = make_workload(6, rng)
    assignment = VarFAppIPC().assign_with_profiling(chip, workload, rng)
    return workload, assignment


class TestOnlineSimulation:
    def test_trace_shapes(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        trace = sim.run(duration_s=0.02, dvfs_interval_s=0.01)
        n = int(round(0.02 / SENSOR_PERIOD_S))
        assert trace.times_s.shape == (n,)
        assert trace.power_w.shape == (n,)
        assert trace.throughput_mips.shape == (n,)
        assert trace.weighted_throughput.shape == (n,)

    def test_manager_invocation_count(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        trace = sim.run(duration_s=0.05, dvfs_interval_s=0.01)
        assert len(trace.manager_runs) == 5

    def test_power_tracks_target(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        trace = sim.run(duration_s=0.04, dvfs_interval_s=0.01)
        assert trace.mean_power_w <= trace.p_target_w * 1.15
        assert trace.mean_abs_deviation_pct < 25.0

    def test_shorter_interval_tracks_better(self, chip, sim_setup):
        wl, asg = sim_setup
        def run(interval):
            sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                                   manager=FoxtonStar(), phase_seed=5)
            return sim.run(duration_s=0.08,
                           dvfs_interval_s=interval)
        fine = run(0.005).mean_abs_deviation_pct
        coarse = run(0.08).mean_abs_deviation_pct
        assert fine <= coarse + 0.5

    def test_phase_seed_reproducible(self, chip, sim_setup):
        wl, asg = sim_setup
        def run():
            sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                                   manager=FoxtonStar(), phase_seed=9)
            return sim.run(duration_s=0.02, dvfs_interval_s=0.01)
        a, b = run(), run()
        np.testing.assert_array_equal(a.power_w, b.power_w)

    def test_transition_time_accounted(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=LinOpt(LinOptConfig(n_iterations=2)),
                               phase_seed=2)
        trace = sim.run(duration_s=0.04, dvfs_interval_s=0.01)
        assert trace.transition_time_s >= 0.0
        # Never more than a tiny fraction of the run.
        assert trace.transition_time_s < 0.1 * 0.04 * asg.n_threads

    def test_rejects_bad_durations(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        with pytest.raises(ValueError):
            sim.run(duration_s=0.0, dvfs_interval_s=0.01)
        with pytest.raises(ValueError):
            sim.run(duration_s=0.01, dvfs_interval_s=0.0)

    def test_rejects_bad_mode(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        with pytest.raises(ValueError):
            sim.run(0.01, 0.01, mode="banana")

    def test_rejects_negative_transition_latency(self, chip, sim_setup):
        wl, asg = sim_setup
        with pytest.raises(ValueError):
            OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                             manager=FoxtonStar(),
                             transition_latency_s=-1e-6)

    def test_default_manager_is_linopt(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE)
        from repro.pm import LinOpt as LinOptClass
        assert isinstance(sim.manager, LinOptClass)

    def test_metrics_consistent(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        trace = sim.run(duration_s=0.02, dvfs_interval_s=0.01)
        assert trace.mean_throughput_mips == pytest.approx(
            trace.throughput_mips.mean())
        assert trace.ed2_relative == pytest.approx(
            trace.mean_power_w / trace.mean_throughput_mips ** 3)


class TestEventDrivenLoop:
    """The event loop must reproduce the dense reference bitwise."""

    def _run(self, chip, wl, asg, mode, manager, latency,
             policy=None, os_interval_s=None, duration=0.05):
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=manager, phase_seed=5,
                               transition_latency_s=latency,
                               policy=policy, os_interval_s=os_interval_s)
        EVALUATION_COUNTER.reset()
        trace = sim.run(duration, 0.01, mode=mode)
        return trace, EVALUATION_COUNTER.count

    def _assert_identical(self, a, b):
        np.testing.assert_array_equal(a.power_w, b.power_w)
        np.testing.assert_array_equal(a.throughput_mips, b.throughput_mips)
        np.testing.assert_array_equal(a.weighted_throughput,
                                      b.weighted_throughput)
        assert a.manager_runs == b.manager_runs
        assert a.transition_time_s == b.transition_time_s
        assert a.level_transitions == b.level_transitions
        assert a.migrations == b.migrations

    def test_matches_dense_with_zero_latency(self, chip, sim_setup):
        wl, asg = sim_setup
        dense, _ = self._run(chip, wl, asg, "dense", FoxtonStar(), 0.0)
        event, _ = self._run(chip, wl, asg, "event", FoxtonStar(), 0.0)
        self._assert_identical(dense, event)

    def test_matches_dense_with_transition_latency(self, chip, sim_setup):
        wl, asg = sim_setup
        mgr = LinOpt(LinOptConfig(n_iterations=2))
        dense, _ = self._run(chip, wl, asg, "dense", mgr,
                             TRANSITION_LATENCY_PER_LEVEL_S)
        mgr = LinOpt(LinOptConfig(n_iterations=2))
        event, _ = self._run(chip, wl, asg, "event", mgr,
                             TRANSITION_LATENCY_PER_LEVEL_S)
        self._assert_identical(dense, event)

    def test_matches_dense_with_os_policy(self, chip, sim_setup):
        wl, asg = sim_setup
        from repro.sched import RandomPolicy
        dense, _ = self._run(chip, wl, asg, "dense", FoxtonStar(),
                             TRANSITION_LATENCY_PER_LEVEL_S,
                             policy=RandomPolicy(), os_interval_s=0.02,
                             duration=0.06)
        event, _ = self._run(chip, wl, asg, "event", FoxtonStar(),
                             TRANSITION_LATENCY_PER_LEVEL_S,
                             policy=RandomPolicy(), os_interval_s=0.02,
                             duration=0.06)
        assert dense.migrations > 0
        self._assert_identical(dense, event)

    def test_event_loop_evaluates_less(self, chip, sim_setup):
        wl, asg = sim_setup
        _, dense_evals = self._run(chip, wl, asg, "dense",
                                   FoxtonStar(), 0.0, duration=0.08)
        _, event_evals = self._run(chip, wl, asg, "event",
                                   FoxtonStar(), 0.0, duration=0.08)
        assert event_evals < dense_evals


class TestTransitionAccounting:
    """V/f transition time must be charged against throughput."""

    def _run(self, chip, wl, asg, latency):
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=AlternatingManager(), phase_seed=3,
                               transition_latency_s=latency)
        return sim.run(duration_s=0.04, dvfs_interval_s=0.01)

    def test_every_invocation_steps_a_level(self, chip, sim_setup):
        wl, asg = sim_setup
        trace = self._run(chip, wl, asg, TRANSITION_LATENCY_PER_LEVEL_S)
        # 4 invocations; every one after the first moves every thread
        # by exactly one level.
        n_invocations = len(trace.manager_runs)
        assert n_invocations == 4
        expected_steps = (n_invocations - 1) * asg.n_threads
        assert trace.level_transitions == expected_steps
        assert trace.transition_time_s == pytest.approx(
            expected_steps * TRANSITION_LATENCY_PER_LEVEL_S)

    def test_transitions_cost_throughput(self, chip, sim_setup):
        wl, asg = sim_setup
        lossy = self._run(chip, wl, asg, TRANSITION_LATENCY_PER_LEVEL_S)
        free = self._run(chip, wl, asg, 0.0)
        assert free.transition_time_s == 0.0
        assert lossy.mean_throughput_mips < free.mean_throughput_mips
        assert lossy.mean_weighted_throughput < free.mean_weighted_throughput
        # Power is unaffected: transitions stall work, not the rail.
        np.testing.assert_array_equal(lossy.power_w, free.power_w)

    def test_loss_magnitude_matches_latency(self, chip, sim_setup):
        wl, asg = sim_setup
        lossy = self._run(chip, wl, asg, TRANSITION_LATENCY_PER_LEVEL_S)
        free = self._run(chip, wl, asg, 0.0)
        # Each post-first manager sample loses one level's latency of
        # work on every thread: its throughput is scaled by exactly
        # (1 - latency / sample period).
        scale = 1.0 - TRANSITION_LATENCY_PER_LEVEL_S / SENSOR_PERIOD_S
        changed = lossy.throughput_mips != free.throughput_mips
        assert changed.sum() == len(lossy.manager_runs) - 1
        np.testing.assert_allclose(
            lossy.throughput_mips[changed],
            free.throughput_mips[changed] * scale, rtol=1e-12)


class TestOsRescheduling:
    def test_policy_and_interval_must_pair(self, chip, sim_setup):
        wl, asg = sim_setup
        from repro.sched import RandomPolicy
        with pytest.raises(ValueError):
            OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                             manager=FoxtonStar(),
                             policy=RandomPolicy())
        with pytest.raises(ValueError):
            OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                             manager=FoxtonStar(), os_interval_s=0.1)

    def test_random_policy_migrates(self, chip, sim_setup):
        wl, asg = sim_setup
        from repro.sched import RandomPolicy
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar(),
                               policy=RandomPolicy(),
                               os_interval_s=0.02)
        trace = sim.run(0.06, 0.01)
        assert trace.migrations > 0
        assert trace.mean_power_w <= trace.p_target_w * 1.15

    def test_stable_policy_does_not_migrate(self, chip, sim_setup):
        wl, asg0 = sim_setup
        from repro.sched import VarFAppIPC
        policy = VarFAppIPC()
        # Start from the policy's own assignment: re-running it keeps
        # the mapping (deterministic ranking), so no migrations.
        import numpy as np
        asg = policy.assign_with_profiling(chip, wl,
                                           np.random.default_rng(3))
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar(), policy=policy,
                               os_interval_s=0.02)
        trace = sim.run(0.05, 0.01)
        assert trace.migrations == 0

    def test_no_policy_means_no_migrations(self, chip, sim_setup):
        wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                               manager=FoxtonStar())
        trace = sim.run(0.02, 0.01)
        assert trace.migrations == 0


class TestSimulationStepper:
    """Controller-stepped mode: same code path, same results."""

    def _sim(self, chip, sim_setup, seed=7):
        wl, asg = sim_setup
        return OnlineSimulation(chip, wl, asg, COST_PERFORMANCE,
                                manager=FoxtonStar(), phase_seed=seed)

    def test_chunked_advance_bitwise_matches_run(self, chip,
                                                 sim_setup):
        ref = self._sim(chip, sim_setup).run(0.05, 0.01)
        stepper = self._sim(chip, sim_setup).stepper(0.05, 0.01)
        # Uneven, boundary-misaligned chunks.
        for until in (0.004, 0.0171, 0.0171, 0.032, 0.1):
            stepper.advance_until(until)
        assert stepper.finished
        trace = stepper.trace()
        np.testing.assert_array_equal(trace.power_w, ref.power_w)
        np.testing.assert_array_equal(trace.throughput_mips,
                                      ref.throughput_mips)
        np.testing.assert_array_equal(trace.weighted_throughput,
                                      ref.weighted_throughput)
        assert trace.manager_runs == ref.manager_runs
        assert trace.level_transitions == ref.level_transitions

    def test_decision_stream_chunking_invariant(self, chip,
                                                sim_setup):
        one_shot = self._sim(chip, sim_setup).stepper(0.04, 0.01)
        one_shot.run_to_end()
        chunked = self._sim(chip, sim_setup).stepper(0.04, 0.01)
        while not chunked.finished:
            chunked.advance_until(chunked.time_s + 0.003)
        assert chunked.decisions == one_shot.decisions
        assert len(one_shot.decisions) == 4
        for decision in one_shot.decisions:
            assert decision.kind == "manager"
            assert len(decision.levels) == 6

    def test_trace_requires_finish(self, chip, sim_setup):
        stepper = self._sim(chip, sim_setup).stepper(0.04, 0.01)
        stepper.advance_until(0.01)
        with pytest.raises(RuntimeError):
            stepper.trace()

    def test_advance_past_end_is_idempotent(self, chip, sim_setup):
        stepper = self._sim(chip, sim_setup).stepper(0.02, 0.01)
        stepper.run_to_end()
        assert stepper.advance_until(1.0) == []
        assert stepper.time_s == 0.02
