"""Tests for repro.freq (alpha-power delay, SRAM, critical paths,
V/f tables)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_ARCH, DEFAULT_TECH, T_HOT_K, T_REF_K
from repro.freq import (
    CoreFrequencyModel,
    FREQ_QUANTUM_HZ,
    PathSet,
    VFTable,
    build_vf_table,
    extract_core_paths,
    frequency_calibration,
    gate_delay,
    mobility_factor,
    pareto_prune,
    sram_access_delay,
    vth_at_temperature,
    worst_cell_quantile,
)
from repro.floorplan import build_floorplan
from repro.variation import generate_variation_map


class TestAlphaPower:
    def test_delay_decreases_with_voltage(self):
        t = DEFAULT_TECH
        d_lo = gate_delay(0.7, t.vth_mean, t.leff_mean, t)
        d_hi = gate_delay(1.0, t.vth_mean, t.leff_mean, t)
        assert d_hi < d_lo

    def test_delay_increases_with_vth(self):
        t = DEFAULT_TECH
        assert gate_delay(1.0, 0.30, t.leff_mean, t) > gate_delay(
            1.0, 0.25, t.leff_mean, t)

    def test_delay_proportional_to_leff(self):
        t = DEFAULT_TECH
        d1 = gate_delay(1.0, t.vth_mean, 32e-9, t)
        d2 = gate_delay(1.0, t.vth_mean, 64e-9, t)
        assert d2 == pytest.approx(2 * d1)

    def test_hotter_is_slower(self):
        # Mobility loss dominates the Vth drop at V >> Vth.
        t = DEFAULT_TECH
        d_cold = gate_delay(1.0, t.vth_mean, t.leff_mean, t, T_REF_K)
        d_hot = gate_delay(1.0, t.vth_mean, t.leff_mean, t, T_HOT_K)
        assert d_hot > d_cold

    def test_subthreshold_rejected(self):
        t = DEFAULT_TECH
        with pytest.raises(ValueError):
            gate_delay(0.2, 0.25, t.leff_mean, t)

    def test_vth_falls_with_temperature(self):
        t = DEFAULT_TECH
        assert vth_at_temperature(0.25, T_HOT_K, t) < 0.25

    def test_mobility_factor_reference(self):
        assert mobility_factor(T_REF_K) == pytest.approx(1.0)
        assert mobility_factor(T_HOT_K) > 1.0

    def test_broadcasting(self):
        t = DEFAULT_TECH
        d = gate_delay(np.array([0.8, 0.9, 1.0]), t.vth_mean,
                       t.leff_mean, t)
        assert d.shape == (3,)
        assert np.all(np.diff(d) < 0)


class TestSram:
    def test_worst_cell_quantile_monotone(self):
        assert worst_cell_quantile(100) < worst_cell_quantile(10_000)

    def test_worst_cell_quantile_single_cell(self):
        # E[max of 1 draw] ~ Phi^-1(0.5) = 0
        assert worst_cell_quantile(1) == pytest.approx(0.0, abs=1e-9)

    def test_rejects_zero_cells(self):
        with pytest.raises(ValueError):
            worst_cell_quantile(0)

    def test_sram_slower_than_plain_gate(self):
        t = DEFAULT_TECH
        plain = gate_delay(1.0, t.vth_mean, t.leff_mean, t, T_HOT_K)
        sram = sram_access_delay(1.0, t.vth_mean, t.leff_mean, t, T_HOT_K)
        assert sram > plain


class TestPathSet:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PathSet(vth=np.array([]), leff=np.array([]))

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            PathSet(vth=np.array([0.25]), leff=np.array([32e-9, 33e-9]))


class TestParetoPrune:
    def test_prunes_dominated(self):
        paths = PathSet(vth=np.array([0.25, 0.30, 0.20]),
                        leff=np.array([30e-9, 35e-9, 20e-9]))
        pruned = pareto_prune(paths)
        # (0.30, 35n) dominates both others.
        assert pruned.vth.size == 1
        assert pruned.vth[0] == pytest.approx(0.30)

    def test_keeps_incomparable(self):
        paths = PathSet(vth=np.array([0.30, 0.20]),
                        leff=np.array([20e-9, 40e-9]))
        pruned = pareto_prune(paths)
        assert pruned.vth.size == 2

    @staticmethod
    def _loop_reference(paths: PathSet) -> PathSet:
        """The original per-path loop, kept as the regression oracle
        for the vectorised keep-mask implementation."""
        order = np.argsort(paths.vth)[::-1]
        vth = paths.vth[order]
        leff = paths.leff[order]
        keep = []
        best_leff = -np.inf
        for i in range(vth.size):
            if leff[i] > best_leff:
                keep.append(i)
                best_leff = leff[i]
        idx = np.array(keep, dtype=np.intp)
        return PathSet(vth=vth[idx], leff=leff[idx])

    @given(st.integers(min_value=1, max_value=80),
           st.integers(min_value=0, max_value=2000),
           st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_matches_loop_reference(self, n, seed, quantize):
        """Vectorised prune == loop prune, including tie-heavy inputs.

        ``quantize`` rounds values onto a coarse grid so duplicate vth
        (argsort tie-breaking) and duplicate leff (strict-> comparison
        on equal values) both occur often.
        """
        rng = np.random.default_rng(seed)
        vth = 0.25 + 0.03 * rng.standard_normal(n)
        leff = 32e-9 * (1 + 0.1 * rng.standard_normal(n))
        if quantize:
            vth = np.round(vth, 2)
            leff = np.round(leff, 9)
        paths = PathSet(vth=vth, leff=leff)
        expected = self._loop_reference(paths)
        got = pareto_prune(paths)
        np.testing.assert_array_equal(got.vth, expected.vth)
        np.testing.assert_array_equal(got.leff, expected.leff)

    def test_matches_loop_reference_all_equal(self):
        """All-tied input: exactly one survivor, same as the loop."""
        paths = PathSet(vth=np.full(7, 0.25), leff=np.full(7, 32e-9))
        expected = self._loop_reference(paths)
        got = pareto_prune(paths)
        assert got.vth.size == expected.vth.size == 1
        np.testing.assert_array_equal(got.vth, expected.vth)
        np.testing.assert_array_equal(got.leff, expected.leff)

    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_pruned_set_preserves_critical_delay(self, n, seed):
        """The pruned set must yield the same max delay at every (V, T)."""
        rng = np.random.default_rng(seed)
        paths = PathSet(
            vth=0.25 + 0.03 * rng.standard_normal(n),
            leff=32e-9 * (1 + 0.1 * rng.standard_normal(n)))
        paths = PathSet(vth=np.clip(paths.vth, 0.05, 0.45),
                        leff=np.clip(paths.leff, 5e-9, 80e-9))
        pruned = pareto_prune(paths)
        for vdd in (0.6, 0.8, 1.0):
            for t_k in (T_REF_K, T_HOT_K):
                full = gate_delay(vdd, paths.vth, paths.leff,
                                  DEFAULT_TECH, t_k).max()
                kept = gate_delay(vdd, pruned.vth, pruned.leff,
                                  DEFAULT_TECH, t_k).max()
                assert kept == pytest.approx(full)


class TestCoreFrequencyModel:
    def _nominal_model(self):
        paths = PathSet(vth=np.array([DEFAULT_TECH.vth_mean]),
                        leff=np.array([DEFAULT_TECH.leff_mean]))
        calib = frequency_calibration(DEFAULT_TECH, DEFAULT_ARCH)
        return CoreFrequencyModel(paths, DEFAULT_TECH, calib)

    def test_variation_free_core_hits_nominal(self):
        model = self._nominal_model()
        assert model.fmax(DEFAULT_TECH.vdd_max) == pytest.approx(
            DEFAULT_ARCH.freq_nominal_hz)

    def test_fmax_increases_with_voltage(self):
        model = self._nominal_model()
        f = model.fmax_many(np.linspace(0.6, 1.0, 9))
        assert np.all(np.diff(f) > 0)

    def test_fmax_many_matches_scalar(self):
        model = self._nominal_model()
        volts = np.array([0.7, 0.9])
        many = model.fmax_many(volts)
        assert many[0] == pytest.approx(model.fmax(0.7))
        assert many[1] == pytest.approx(model.fmax(0.9))

    def test_extracted_cores_slower_than_nominal(self):
        vmap = generate_variation_map(
            DEFAULT_TECH, DEFAULT_ARCH.die_edge_mm, 32,
            np.random.default_rng(0))
        fp = build_floorplan(DEFAULT_ARCH)
        calib = frequency_calibration(DEFAULT_TECH, DEFAULT_ARCH)
        rng = np.random.default_rng(1)
        for core_id in (0, 7):
            paths = extract_core_paths(vmap, fp, core_id,
                                       DEFAULT_TECH, rng)
            model = CoreFrequencyModel(paths, DEFAULT_TECH, calib)
            f = model.fmax(DEFAULT_TECH.vdd_max)
            # Worst-path selection makes real cores slower than nominal.
            assert f < DEFAULT_ARCH.freq_nominal_hz
            assert f > 0.4 * DEFAULT_ARCH.freq_nominal_hz


class TestVFTable:
    def _table(self):
        paths = PathSet(vth=np.array([DEFAULT_TECH.vth_mean]),
                        leff=np.array([DEFAULT_TECH.leff_mean]))
        calib = frequency_calibration(DEFAULT_TECH, DEFAULT_ARCH)
        model = CoreFrequencyModel(paths, DEFAULT_TECH, calib)
        return build_vf_table(model, DEFAULT_TECH, DEFAULT_ARCH)

    def test_level_count(self):
        assert self._table().n_levels == DEFAULT_ARCH.n_voltage_levels

    def test_quantised_to_bins(self):
        table = self._table()
        remainders = np.mod(table.freqs, FREQ_QUANTUM_HZ)
        np.testing.assert_allclose(remainders, 0.0, atol=1e-3)

    def test_monotone(self):
        table = self._table()
        assert np.all(np.diff(table.voltages) > 0)
        assert np.all(np.diff(table.freqs) >= 0)

    def test_fmax_property(self):
        table = self._table()
        assert table.fmax == table.freqs[-1]
        assert table.vmax == pytest.approx(1.0)
        assert table.vmin == pytest.approx(0.6)

    def test_freq_at_and_level_of(self):
        table = self._table()
        v = float(table.voltages[3])
        assert table.level_of(v) == 3
        assert table.freq_at(v) == table.freqs[3]

    def test_level_of_rejects_non_grid_voltage(self):
        table = self._table()
        with pytest.raises(ValueError):
            table.level_of(0.61234)

    def test_nearest_level_at_most(self):
        table = self._table()
        assert table.nearest_level_at_most(2.0) == table.n_levels - 1
        assert table.nearest_level_at_most(0.0) == 0
        v2 = float(table.voltages[2])
        assert table.nearest_level_at_most(v2 + 1e-6) == 2

    def test_linear_fit_slope_positive(self):
        slope, intercept = self._table().linear_fit()
        assert slope > 0

    def test_validation_rejects_descending_freq(self):
        with pytest.raises(ValueError):
            VFTable(voltages=np.array([0.6, 0.8, 1.0]),
                    freqs=np.array([2e9, 1.5e9, 3e9]))

    def test_validation_rejects_single_point(self):
        with pytest.raises(ValueError):
            VFTable(voltages=np.array([0.6]), freqs=np.array([2e9]))
