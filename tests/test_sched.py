"""Tests for repro.sched (Table 1 scheduling policies) and profiling."""

import numpy as np
import pytest

from repro.runtime import profile_threads
from repro.sched import (
    POLICIES,
    RandomPolicy,
    VarF,
    VarFAppIPC,
    VarP,
    VarPAppP,
    VarTemp,
)
from repro.workloads import Workload, get_app, make_workload


@pytest.fixture()
def workload8(rng):
    return make_workload(8, rng)


class TestRegistry:
    def test_contains_table1_policies(self):
        for name in ("Random", "VarP", "VarP&AppP", "VarF", "VarF&AppIPC"):
            assert name in POLICIES

    def test_names_match(self):
        for name, policy in POLICIES.items():
            assert policy.name == name


class TestRandomPolicy:
    def test_distinct_cores(self, chip, workload8, rng):
        asg = RandomPolicy().assign(chip, workload8, rng)
        assert len(set(asg.core_of)) == 8

    def test_different_seeds_differ(self, chip, workload8):
        a = RandomPolicy().assign(chip, workload8,
                                  np.random.default_rng(1))
        b = RandomPolicy().assign(chip, workload8,
                                  np.random.default_rng(2))
        assert a.core_of != b.core_of

    def test_rejects_oversubscription(self, chip, rng):
        wl = make_workload(21, rng)
        with pytest.raises(ValueError):
            RandomPolicy().assign(chip, wl, rng)


class TestVarP:
    def test_selects_lowest_static_cores(self, chip, workload8, rng):
        asg = VarP().assign(chip, workload8, rng)
        expected = set(np.argsort(chip.static_rated_array)[:8])
        assert set(asg.core_of) == expected

    def test_full_occupancy_uses_all_cores(self, chip, rng):
        wl = make_workload(20, rng)
        asg = VarP().assign(chip, wl, rng)
        assert set(asg.core_of) == set(range(20))


class TestVarPAppP:
    def test_power_hungry_threads_on_cool_cores(self, chip, rng):
        wl = Workload((get_app("vortex"), get_app("mcf")))  # 4.4 vs 1.5 W
        asg = VarPAppP().assign_with_profiling(chip, wl, rng)
        ranked = np.argsort(chip.static_rated_array)
        # vortex (thread 0, highest power) on the lowest-static core.
        assert asg.core_of[0] == ranked[0]
        assert asg.core_of[1] == ranked[1]

    def test_requires_profile(self, chip, workload8, rng):
        with pytest.raises(ValueError):
            VarPAppP().assign(chip, workload8, rng, profile=None)


class TestVarF:
    def test_selects_fastest_cores(self, chip, workload8, rng):
        asg = VarF().assign(chip, workload8, rng)
        expected = set(np.argsort(chip.fmax_array)[::-1][:8])
        assert set(asg.core_of) == expected

    def test_same_core_pool_as_varfappipc(self, chip, workload8, rng):
        a = VarF().assign(chip, workload8, np.random.default_rng(0))
        b = VarFAppIPC().assign_with_profiling(
            chip, workload8, np.random.default_rng(0))
        assert set(a.core_of) == set(b.core_of)


class TestVarFAppIPC:
    def test_high_ipc_on_fast_core(self, chip, rng):
        wl = Workload((get_app("mcf"), get_app("vortex")))  # IPC .1 vs 1.2
        asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
        ranked = np.argsort(chip.fmax_array)[::-1]
        assert asg.core_of[1] == ranked[0]  # vortex gets the fast core
        assert asg.core_of[0] == ranked[1]

    def test_requires_profile(self, chip, workload8, rng):
        with pytest.raises(ValueError):
            VarFAppIPC().assign(chip, workload8, rng, profile=None)


class TestVarTemp:
    def test_distinct_cores(self, chip, workload8, rng):
        asg = VarTemp().assign(chip, workload8, rng)
        assert len(set(asg.core_of)) == 8

    def test_zero_exposure_reduces_to_varp_pool(self, chip, workload8,
                                                rng):
        asg = VarTemp(exposure_weight=0.0).assign(chip, workload8, rng)
        expected = set(np.argsort(chip.static_rated_array)[:8])
        assert set(asg.core_of) == expected

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            VarTemp(exposure_weight=-1.0)


class TestProfiling:
    def test_shapes(self, chip, workload8, rng):
        prof = profile_threads(chip, workload8, rng)
        assert prof.ceff_estimate.shape == (8,)
        assert prof.ipc_estimate.shape == (8,)
        assert len(prof.profiling_core) == 8

    def test_rankings_match_truth_without_noise(self, chip, rng):
        wl = Workload((get_app("vortex"), get_app("mcf"),
                       get_app("bzip2"), get_app("apsi")))
        prof = profile_threads(chip, wl, rng)
        true_ceff = np.array([a.ceff for a in wl])
        # Ranking (not absolute values) is what the policies consume.
        assert (np.argsort(prof.ceff_estimate).tolist()
                == np.argsort(true_ceff).tolist())

    def test_ipc_estimates_close_to_reference(self, chip, rng):
        wl = Workload((get_app("crafty"), get_app("mcf")))
        prof = profile_threads(chip, wl, rng)
        # Profiled at the core's fmax (< 4 GHz), so memory-bound mcf
        # reads slightly above its Table 5 IPC; ordering must hold.
        assert prof.ipc_estimate[0] > prof.ipc_estimate[1]
        assert prof.ipc_estimate[0] == pytest.approx(1.1, rel=0.15)

    def test_profiling_core_randomised(self, chip, workload8):
        a = profile_threads(chip, workload8, np.random.default_rng(1))
        b = profile_threads(chip, workload8, np.random.default_rng(2))
        assert a.profiling_core != b.profiling_core
