"""Tests for the adaptive-body-bias mitigation module."""

import numpy as np
import pytest

from repro.mitigation import (
    AbbParams,
    bias_for_target_frequency,
    biased_chip,
    frequency_levelling_biases,
)


class TestAbbParams:
    def test_defaults(self):
        p = AbbParams()
        assert p.max_vth_shift == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            AbbParams(vth_shift_per_volt=0.0)
        with pytest.raises(ValueError):
            AbbParams(max_bias=-1.0)


class TestBiasedChip:
    def test_forward_bias_speeds_up_and_leaks(self, chip):
        biases = np.full(chip.n_cores, 0.5)  # full forward
        fast = biased_chip(chip, biases)
        assert np.all(fast.fmax_array > chip.fmax_array)
        assert np.all(fast.static_rated_array
                      > chip.static_rated_array)

    def test_reverse_bias_slows_and_saves(self, chip):
        biases = np.full(chip.n_cores, -0.5)
        slow = biased_chip(chip, biases)
        assert np.all(slow.fmax_array < chip.fmax_array)
        assert np.all(slow.static_rated_array
                      < chip.static_rated_array)

    def test_zero_bias_is_identity(self, chip):
        same = biased_chip(chip, np.zeros(chip.n_cores))
        np.testing.assert_allclose(same.fmax_array, chip.fmax_array)

    def test_out_of_range_rejected(self, chip):
        biases = np.zeros(chip.n_cores)
        biases[3] = 0.6
        with pytest.raises(ValueError):
            biased_chip(chip, biases)

    def test_wrong_length_rejected(self, chip):
        with pytest.raises(ValueError):
            biased_chip(chip, np.zeros(3))


class TestBiasForTarget:
    def test_hits_reachable_target(self, chip):
        core = chip.cores[0]
        target = core.fmax * 0.95
        bias = bias_for_target_frequency(core, target,
                                         chip.tech.vdd_max)
        dv = -AbbParams().vth_shift_per_volt * bias
        achieved = core.freq_model.shifted(dv).fmax(chip.tech.vdd_max)
        assert achieved == pytest.approx(target, rel=0.01)

    def test_unreachable_target_clips_forward(self, chip):
        core = chip.cores[0]
        bias = bias_for_target_frequency(core, 100e9,
                                         chip.tech.vdd_max)
        assert bias == pytest.approx(AbbParams().max_bias)

    def test_trivial_target_clips_reverse(self, chip):
        core = chip.cores[0]
        bias = bias_for_target_frequency(core, 1e6,
                                         chip.tech.vdd_max)
        assert bias == pytest.approx(-AbbParams().max_bias)

    def test_rejects_bad_target(self, chip):
        with pytest.raises(ValueError):
            bias_for_target_frequency(chip.cores[0], -1.0,
                                      chip.tech.vdd_max)


class TestFrequencyLevelling:
    def test_shrinks_spread(self, chip):
        biases = frequency_levelling_biases(chip)
        levelled = biased_chip(chip, biases)
        before = chip.fmax_array.max() / chip.fmax_array.min()
        after = levelled.fmax_array.max() / levelled.fmax_array.min()
        assert after < before

    def test_slow_cores_get_forward_bias(self, chip):
        biases = frequency_levelling_biases(chip)
        slowest = int(np.argmin(chip.fmax_array))
        fastest = int(np.argmax(chip.fmax_array))
        assert biases[slowest] > 0
        assert biases[fastest] < 0

    def test_explicit_target(self, chip):
        target = float(chip.fmax_array.mean())
        biases = frequency_levelling_biases(chip, target_hz=target)
        levelled = biased_chip(chip, biases)
        # Most cores should now sit near the target (within bias range).
        close = np.abs(levelled.fmax_array - target) / target < 0.05
        assert close.mean() > 0.5
