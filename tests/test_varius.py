"""Tests for repro.variation.varius and repro.variation.die."""

import numpy as np
import pytest

from repro.config import DEFAULT_ARCH, DEFAULT_TECH
from repro.variation import (
    Die,
    DieBatch,
    VariationMap,
    VariationParams,
    generate_variation_map,
)


def _map(seed=0, resolution=24):
    rng = np.random.default_rng(seed)
    return generate_variation_map(DEFAULT_TECH, 18.0, resolution, rng)


class TestVariationParams:
    def test_equal_variance_split(self):
        p = VariationParams(mean=0.25, sigma_total=0.03, phi=9.0)
        assert p.sigma_sys == pytest.approx(p.sigma_ran)
        total = np.sqrt(p.sigma_sys ** 2 + p.sigma_ran ** 2)
        assert total == pytest.approx(0.03)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            VariationParams(mean=0.25, sigma_total=-1.0, phi=9.0)

    def test_rejects_bad_phi(self):
        with pytest.raises(ValueError):
            VariationParams(mean=0.25, sigma_total=0.03, phi=0.0)


class TestGenerateVariationMap:
    def test_shapes(self):
        vmap = _map()
        assert vmap.vth_sys.shape == (24, 24)
        assert vmap.leff_sys.shape == (24, 24)
        assert vmap.resolution == 24

    def test_mean_near_nominal(self):
        # Average over many dies: systematic component is zero-mean.
        maps = [_map(seed=i) for i in range(30)]
        vth_mean = np.mean([m.vth_sys.mean() for m in maps])
        assert vth_mean == pytest.approx(DEFAULT_TECH.vth_mean, rel=0.05)

    def test_systematic_sigma(self):
        maps = [_map(seed=i) for i in range(40)]
        all_cells = np.concatenate([m.vth_sys.ravel() for m in maps])
        sigma = all_cells.std()
        expected = DEFAULT_TECH.vth_sigma / np.sqrt(2.0)
        assert sigma == pytest.approx(expected, rel=0.15)

    def test_vth_leff_positively_correlated(self):
        maps = [_map(seed=i) for i in range(20)]
        corrs = []
        for m in maps:
            corrs.append(np.corrcoef(m.vth_sys.ravel(),
                                     m.leff_sys.ravel())[0, 1])
        assert np.mean(corrs) > 0.5

    def test_physical_floors(self):
        vmap = _map()
        assert np.all(vmap.vth_sys > 0)
        assert np.all(vmap.leff_sys > 0)

    def test_determinism(self):
        a = _map(seed=5)
        b = _map(seed=5)
        np.testing.assert_array_equal(a.vth_sys, b.vth_sys)


class TestVariationMapQueries:
    def test_cell_index_corners(self):
        vmap = _map()
        assert vmap.cell_index(0.0, 0.0) == (0, 0)
        assert vmap.cell_index(18.0, 18.0) == (23, 23)

    def test_cell_index_rejects_outside(self):
        vmap = _map()
        with pytest.raises(ValueError):
            vmap.cell_index(-0.1, 1.0)
        with pytest.raises(ValueError):
            vmap.cell_index(1.0, 18.1)

    def test_region_cells_full_die(self):
        vmap = _map()
        vth, leff = vmap.region_cells(0.0, 0.0, 18.0, 18.0)
        assert vth.size == 24 * 24
        assert leff.size == 24 * 24

    def test_region_cells_subregion(self):
        vmap = _map()
        vth, _ = vmap.region_cells(0.0, 0.0, 9.0, 9.0)
        assert vth.size == 12 * 12
        np.testing.assert_array_equal(
            vth, vmap.vth_sys[:12, :12].ravel())

    def test_region_cells_thin_sliver_returns_a_cell(self):
        vmap = _map()
        step = 18.0 / 24
        # Rectangle much thinner than a cell, centred inside cell (3, 5).
        x0 = 3 * step + 0.4 * step
        y0 = 5 * step + 0.4 * step
        vth, _ = vmap.region_cells(x0, y0, x0 + 0.01, y0 + 0.01)
        assert vth.size >= 1

    def test_region_cells_rejects_degenerate(self):
        vmap = _map()
        with pytest.raises(ValueError):
            vmap.region_cells(5.0, 5.0, 5.0, 6.0)

    def test_mismatched_shapes_rejected(self):
        vmap = _map()
        with pytest.raises(ValueError):
            VariationMap(
                vth_sys=vmap.vth_sys,
                leff_sys=vmap.leff_sys[:10],
                vth=vmap.vth,
                leff=vmap.leff,
                edge=vmap.edge,
            )


class TestDieBatch:
    def test_length_and_indexing(self):
        batch = DieBatch(DEFAULT_TECH, DEFAULT_ARCH, 5, seed=7)
        assert len(batch) == 5
        assert batch[0].die_id == 0
        assert batch[-1].die_id == 4

    def test_out_of_range(self):
        batch = DieBatch(DEFAULT_TECH, DEFAULT_ARCH, 2, seed=7)
        with pytest.raises(IndexError):
            batch[2]

    def test_per_die_determinism_independent_of_access_order(self):
        b1 = DieBatch(DEFAULT_TECH, DEFAULT_ARCH, 4, seed=9)
        b2 = DieBatch(DEFAULT_TECH, DEFAULT_ARCH, 4, seed=9)
        _ = b1[0]  # touch die 0 first in one batch only
        np.testing.assert_array_equal(
            b1[3].variation.vth_sys, b2[3].variation.vth_sys)

    def test_dies_differ(self):
        batch = DieBatch(DEFAULT_TECH, DEFAULT_ARCH, 2, seed=3)
        assert not np.array_equal(batch[0].variation.vth_sys,
                                  batch[1].variation.vth_sys)

    def test_caching_returns_same_object(self):
        batch = DieBatch(DEFAULT_TECH, DEFAULT_ARCH, 2, seed=3)
        assert batch[1] is batch[1]

    def test_slice(self):
        batch = DieBatch(DEFAULT_TECH, DEFAULT_ARCH, 4, seed=3)
        dies = batch[1:3]
        assert [d.die_id for d in dies] == [1, 2]

    def test_iteration(self):
        batch = DieBatch(DEFAULT_TECH, DEFAULT_ARCH, 3, seed=3)
        assert [d.die_id for d in batch] == [0, 1, 2]

    def test_rejects_zero_dies(self):
        with pytest.raises(ValueError):
            DieBatch(DEFAULT_TECH, DEFAULT_ARCH, 0)

    def test_die_rejects_negative_id(self):
        batch = DieBatch(DEFAULT_TECH, DEFAULT_ARCH, 1)
        with pytest.raises(ValueError):
            Die(die_id=-1, variation=batch[0].variation)
