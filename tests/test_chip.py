"""Tests for repro.chip (die characterisation)."""

import numpy as np
import pytest

from repro.chip import characterize_die
from repro.config import ArchConfig, DEFAULT_ARCH, DEFAULT_TECH, T_REF_K
from repro.floorplan import build_floorplan


class TestChipProfile:
    def test_core_count(self, chip):
        assert chip.n_cores == 20
        assert len(chip.cores) == 20

    def test_fmax_spread_in_paper_band(self, chip, chip2):
        # Section 7.1: frequency ratio mostly 1.2-1.5 at sigma/mu 0.12.
        for c in (chip, chip2):
            ratio = c.fmax_array.max() / c.fmax_array.min()
            assert 1.10 < ratio < 1.65

    def test_fmax_below_nominal(self, chip):
        assert np.all(chip.fmax_array <= DEFAULT_ARCH.freq_nominal_hz)

    def test_min_fmax(self, chip):
        assert chip.min_fmax == pytest.approx(chip.fmax_array.min())

    def test_static_ratings_positive_and_spread(self, chip):
        rated = chip.static_rated_array
        assert np.all(rated > 0)
        assert rated.max() / rated.min() > 1.5  # variation is visible

    def test_vf_tables_consistent_with_fmax(self, chip):
        for core in chip.cores:
            assert core.fmax == core.vf_table.fmax

    def test_static_power_at_voltage_monotone(self, chip):
        core = chip.cores[0]
        p_lo = core.static_power_at(0.6)
        p_hi = core.static_power_at(1.0)
        assert p_hi > p_lo

    def test_rated_matches_leakage_model(self, chip):
        core = chip.cores[3]
        assert core.static_power_rated == pytest.approx(
            core.leakage.power(DEFAULT_TECH.vdd_max, T_REF_K))

    def test_characterisation_deterministic(self, die_batch):
        a = characterize_die(die_batch[0], DEFAULT_TECH, DEFAULT_ARCH)
        b = characterize_die(die_batch[0], DEFAULT_TECH, DEFAULT_ARCH)
        np.testing.assert_array_equal(a.fmax_array, b.fmax_array)
        np.testing.assert_array_equal(a.static_rated_array,
                                      b.static_rated_array)

    def test_dies_differ(self, chip, chip2):
        assert not np.array_equal(chip.fmax_array, chip2.fmax_array)

    def test_fmax_array_cached_and_readonly(self, chip):
        first = chip.fmax_array
        assert chip.fmax_array is first  # built once, reused
        assert not first.flags.writeable
        np.testing.assert_array_equal(
            first, np.array([c.fmax for c in chip.cores]))

    def test_static_rated_array_cached_and_readonly(self, chip):
        first = chip.static_rated_array
        assert chip.static_rated_array is first
        assert not first.flags.writeable
        np.testing.assert_array_equal(
            first,
            np.array([c.static_power_rated for c in chip.cores]))

    def test_mismatched_floorplan_rejected(self, die_batch):
        small_fp = build_floorplan(ArchConfig(n_cores=8,
                                              die_area_mm2=140.0))
        with pytest.raises(ValueError):
            characterize_die(die_batch[0], DEFAULT_TECH, DEFAULT_ARCH,
                             floorplan=small_fp)

    def test_lower_sigma_gives_tighter_spread(self, die_batch):
        tight_tech = DEFAULT_TECH.with_sigma_over_mu(0.03)
        from repro.variation import DieBatch
        tight_batch = DieBatch(tight_tech, DEFAULT_ARCH, 1, seed=1234)
        tight = characterize_die(tight_batch[0], tight_tech, DEFAULT_ARCH)
        loose = characterize_die(die_batch[0], DEFAULT_TECH, DEFAULT_ARCH)
        tight_ratio = tight.fmax_array.max() / tight.fmax_array.min()
        loose_ratio = loose.fmax_array.max() / loose.fmax_array.min()
        assert tight_ratio < loose_ratio
