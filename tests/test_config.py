"""Tests for repro.config."""

import dataclasses

import pytest

from repro.config import (
    ArchConfig,
    COST_PERFORMANCE,
    DEFAULT_ARCH,
    DEFAULT_TECH,
    HIGH_PERFORMANCE,
    LOW_POWER,
    POWER_ENVIRONMENTS,
    PowerEnvironment,
    TechParams,
    celsius,
    kelvin,
)


class TestTemperatureHelpers:
    def test_kelvin_roundtrip(self):
        assert celsius(kelvin(60.0)) == pytest.approx(60.0)

    def test_kelvin_of_zero_celsius(self):
        assert kelvin(0.0) == pytest.approx(273.15)


class TestTechParams:
    def test_defaults_match_table4(self):
        t = DEFAULT_TECH
        assert t.node_nm == 32.0
        assert t.vdd_min == 0.6
        assert t.vdd_max == 1.0
        assert t.vth_mean == pytest.approx(0.250)
        assert t.vth_sigma_over_mu == pytest.approx(0.12)
        assert t.phi_fraction == pytest.approx(0.5)

    def test_leff_sigma_is_half_of_vth(self):
        assert DEFAULT_TECH.leff_sigma_over_mu == pytest.approx(
            0.5 * DEFAULT_TECH.vth_sigma_over_mu)

    def test_vth_sigma_absolute(self):
        t = DEFAULT_TECH
        assert t.vth_sigma == pytest.approx(t.vth_mean * 0.12)

    def test_with_sigma_over_mu_scales_both(self):
        t = DEFAULT_TECH.with_sigma_over_mu(0.06)
        assert t.vth_sigma_over_mu == pytest.approx(0.06)
        assert t.leff_sigma_over_mu == pytest.approx(0.03)

    def test_with_sigma_over_mu_preserves_other_fields(self):
        t = DEFAULT_TECH.with_sigma_over_mu(0.06)
        assert t.vth_mean == DEFAULT_TECH.vth_mean
        assert t.alpha_power == DEFAULT_TECH.alpha_power

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            TechParams(vth_sigma_over_mu=-0.1)

    def test_rejects_inverted_vdd_range(self):
        with pytest.raises(ValueError):
            TechParams(vdd_min=1.1, vdd_max=1.0)

    def test_rejects_vth_above_vdd_min(self):
        with pytest.raises(ValueError):
            TechParams(vth_mean=0.7, vdd_min=0.6)

    def test_rejects_bad_phi(self):
        with pytest.raises(ValueError):
            TechParams(phi_fraction=0.0)
        with pytest.raises(ValueError):
            TechParams(phi_fraction=1.5)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_TECH.vdd_max = 1.2


class TestArchConfig:
    def test_defaults_match_table4(self):
        a = DEFAULT_ARCH
        assert a.n_cores == 20
        assert a.freq_nominal_hz == pytest.approx(4.0e9)
        assert a.die_area_mm2 == pytest.approx(340.0)
        assert a.memory_latency_cycles == 400

    def test_die_edge(self):
        assert DEFAULT_ARCH.die_edge_mm == pytest.approx(340.0 ** 0.5)

    def test_memory_latency_seconds(self):
        assert DEFAULT_ARCH.memory_latency_s == pytest.approx(400 / 4e9)

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            ArchConfig(n_cores=0)

    def test_rejects_too_few_levels(self):
        with pytest.raises(ValueError):
            ArchConfig(n_voltage_levels=1)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            ArchConfig(grid_resolution=4)


class TestPowerEnvironment:
    def test_three_environments(self):
        assert [e.p_target_full for e in POWER_ENVIRONMENTS] == [
            50.0, 75.0, 100.0]

    def test_names(self):
        assert LOW_POWER.name == "Low Power"
        assert COST_PERFORMANCE.name == "Cost-Performance"
        assert HIGH_PERFORMANCE.name == "High Performance"

    def test_full_occupancy_budget(self):
        assert COST_PERFORMANCE.p_target(20, 20) == pytest.approx(75.0)

    def test_budget_scales_proportionally(self):
        # Section 7.5: fewer threads -> proportionally smaller budget.
        assert COST_PERFORMANCE.p_target(4, 20) == pytest.approx(15.0)
        assert LOW_POWER.p_target(10, 20) == pytest.approx(25.0)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            LOW_POWER.p_target(0, 20)

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            LOW_POWER.p_target(21, 20)
