"""Tests for the from-scratch Simplex LP solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.linprog import (
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    STATUS_UNBOUNDED,
    solve_lp_maximize,
)


class TestKnownProblems:
    def test_textbook_2d(self):
        # max 3x + 2y s.t. x + y <= 4, x + 3y <= 6
        res = solve_lp_maximize(
            c=np.array([3.0, 2.0]),
            a_ub=np.array([[1.0, 1.0], [1.0, 3.0]]),
            b_ub=np.array([4.0, 6.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(12.0)
        np.testing.assert_allclose(res.x, [4.0, 0.0], atol=1e-9)

    def test_interior_budget_split(self):
        # max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> x = y = 4/3
        res = solve_lp_maximize(
            c=np.array([1.0, 1.0]),
            a_ub=np.array([[2.0, 1.0], [1.0, 2.0]]),
            b_ub=np.array([4.0, 4.0]))
        assert res.objective == pytest.approx(8.0 / 3.0)

    def test_upper_bounds(self):
        res = solve_lp_maximize(
            c=np.array([1.0, 1.0]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([10.0]),
            upper=np.array([2.0, 3.0]))
        assert res.objective == pytest.approx(5.0)

    def test_unbounded(self):
        res = solve_lp_maximize(
            c=np.array([1.0]),
            a_ub=np.array([[-1.0]]),
            b_ub=np.array([0.0]))
        assert res.status == STATUS_UNBOUNDED

    def test_infeasible(self):
        # x >= 2 (as -x <= -2) and x <= 1
        res = solve_lp_maximize(
            c=np.array([1.0]),
            a_ub=np.array([[-1.0], [1.0]]),
            b_ub=np.array([-2.0, 1.0]))
        assert res.status == STATUS_INFEASIBLE

    def test_negative_rhs_phase1(self):
        # Requires phase 1: x + y >= 2 written as -x - y <= -2.
        res = solve_lp_maximize(
            c=np.array([-1.0, -2.0]),
            a_ub=np.array([[-1.0, -1.0]]),
            b_ub=np.array([-2.0]),
            upper=np.array([5.0, 5.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(-2.0)  # x=2, y=0

    def test_degenerate_does_not_cycle(self):
        # Classic degeneracy: many constraints active at the optimum.
        res = solve_lp_maximize(
            c=np.array([1.0, 1.0, 1.0]),
            a_ub=np.vstack([np.eye(3), np.ones((1, 3)),
                            np.ones((1, 3))]),
            b_ub=np.array([1.0, 1.0, 1.0, 2.0, 2.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(2.0)

    def test_zero_objective(self):
        res = solve_lp_maximize(
            c=np.zeros(2),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([1.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(0.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            solve_lp_maximize(np.array([1.0]),
                              np.array([[1.0, 2.0]]),
                              np.array([1.0]))

    def test_flop_accounting(self):
        res = solve_lp_maximize(
            c=np.array([3.0, 2.0]),
            a_ub=np.array([[1.0, 1.0], [1.0, 3.0]]),
            b_ub=np.array([4.0, 6.0]))
        assert res.flops > 0
        assert res.iterations > 0

    def test_linopt_shaped_problem(self):
        """The exact LP structure LinOpt emits: budget row + per-core
        rows + box bounds."""
        rng = np.random.default_rng(0)
        n = 20
        a = rng.uniform(5.0, 20.0, n)      # objective (ipc * f-slope)
        b = rng.uniform(2.0, 8.0, n)       # power slopes
        budget = 0.6 * b.sum() * 0.4       # forces a real trade-off
        rows = [b]
        rhs = [budget]
        for i in range(n):
            row = np.zeros(n)
            row[i] = b[i]
            rows.append(row)
            rhs.append(0.35 * b[i])
        res = solve_lp_maximize(a, np.vstack(rows), np.array(rhs),
                                upper=np.full(n, 0.4))
        ref = linprog(-a, A_ub=np.vstack(rows), b_ub=np.array(rhs),
                      bounds=[(0, 0.4)] * n, method="highs")
        assert res.is_optimal and ref.status == 0
        assert res.objective == pytest.approx(-ref.fun, rel=1e-8)


class TestPhase1ArtificialExclusion:
    """Departed artificial variables must never re-enter the basis.

    Phase 1 scans only structural + slack columns for entering
    candidates; admitting a departed artificial wastes pivots on
    degenerate churn and inflates the pivot/flop counts Fig. 15
    converts into LP time.
    """

    def _solve_recording_pivot_cols(self, monkeypatch, c, a, b, upper):
        from repro.linprog import simplex as mod

        cols = []
        original = mod._Tableau.pivot

        def recording(self, row, col):
            cols.append(col)
            original(self, row, col)

        monkeypatch.setattr(mod._Tableau, "pivot", recording)
        res = solve_lp_maximize(c, a, b, upper=upper)
        return res, cols

    def test_no_pivot_on_artificial_columns(self, monkeypatch):
        # Negative RHS rows -> phase 1 with artificials. n=2 and the
        # upper bounds append 2 rows, so m=3, n_slack=3: any pivot
        # column >= n + n_slack = 5 is an artificial re-entering.
        res, cols = self._solve_recording_pivot_cols(
            monkeypatch,
            np.array([-1.0, -2.0]),
            np.array([[-1.0, -1.0]]),
            np.array([-2.0]),
            np.array([5.0, 5.0]))
        assert res.is_optimal
        assert cols  # phase 1 actually ran
        assert all(col < 2 + 3 for col in cols)

    def test_no_artificial_reentry_on_dependent_rows(self, monkeypatch):
        # Dependent >= rows give phase 1 several artificials and
        # degenerate pivots — the historic churn scenario.
        res, cols = self._solve_recording_pivot_cols(
            monkeypatch,
            np.array([1.0, 2.0, 0.0]),
            np.array([[-1.0, -1.0, -1.0],
                      [-2.0, -2.0, -2.0],
                      [1.0, 1.0, 1.0]]),
            np.array([-3.0, -6.0, 3.0]),
            np.array([10.0, 10.0, 10.0]))
        assert res.is_optimal
        n, n_slack = 3, 3 + 3  # 3 rows + 3 appended bound rows
        assert all(col < n + n_slack for col in cols)


class TestFlopAccounting:
    """The unified work-accounting rules (Fig. 15's time model)."""

    def test_exact_count_single_pivot(self):
        # max x s.t. x <= 1 (n=1, m=1, no phase 1). One pivot:
        #   scan (n_cols=2) + ratio (3*m=3) + pivot (2*table.size=12)
        # then the terminating scan (2) -> 19 flops, 1 iteration.
        res = solve_lp_maximize(np.array([1.0]),
                                np.array([[1.0]]),
                                np.array([1.0]))
        assert res.is_optimal
        assert res.iterations == 1
        assert res.flops == 19

    def test_dantzig_and_bland_charge_identically(self, monkeypatch):
        """On a problem with a single improving column per iteration,
        both pricing branches walk the same pivot sequence — so with
        the unified accounting their flop counts must be *equal*."""
        from repro.linprog import simplex as mod

        c = np.array([1.0, 0.0, 0.0])
        a = np.array([[1.0, 1.0, 1.0], [1.0, 2.0, 0.0]])
        b = np.array([2.0, 3.0])
        dantzig = solve_lp_maximize(c, a, b)
        monkeypatch.setattr(mod, "BLAND_THRESHOLD", -1)
        bland = solve_lp_maximize(c, a, b)
        assert dantzig.is_optimal and bland.is_optimal
        assert bland.objective == pytest.approx(dantzig.objective)
        assert bland.iterations == dantzig.iterations
        assert bland.flops == dantzig.flops


class TestRedundantConstraints:
    """Linearly dependent rows must not corrupt the phase-2 tableau.

    When phase 1 cannot pivot an artificial variable out of the basis
    (its row is a redundant combination of other constraints), the row
    is dropped; leaving the artificial basic while zeroing its column
    breaks the basis invariant.
    """

    def test_duplicated_ge_rows(self):
        # x + y >= 2 stated twice, maximise -x - 2y.
        res = solve_lp_maximize(
            c=np.array([-1.0, -2.0]),
            a_ub=np.array([[-1.0, -1.0], [-1.0, -1.0]]),
            b_ub=np.array([-2.0, -2.0]),
            upper=np.array([5.0, 5.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(-2.0)  # x=2, y=0

    def test_scaled_dependent_ge_rows(self):
        # x + y >= 2 and 2x + 2y >= 4 and 3x + 3y >= 6: one facet.
        res = solve_lp_maximize(
            c=np.array([-1.0, -1.0]),
            a_ub=np.array([[-1.0, -1.0], [-2.0, -2.0], [-3.0, -3.0]]),
            b_ub=np.array([-2.0, -4.0, -6.0]),
            upper=np.array([4.0, 4.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(-2.0)

    def test_dependent_rows_mixed_with_active_constraints(self):
        # max 3x+2y s.t. x+3y <= 6 and the dependent pair x+y >= 2.
        res = solve_lp_maximize(
            c=np.array([3.0, 2.0]),
            a_ub=np.array([[-1.0, -1.0], [-2.0, -2.0], [1.0, 3.0]]),
            b_ub=np.array([-2.0, -4.0, 6.0]),
            upper=np.array([6.0, 6.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(18.0)  # x=6, y=0

    def test_dependent_equality_pair(self):
        # x + y + z == 3 (as a >=/<= pair) plus a scaled copy of the
        # >= half; maximise x + 2y.
        res = solve_lp_maximize(
            c=np.array([1.0, 2.0, 0.0]),
            a_ub=np.array([[-1.0, -1.0, -1.0],
                           [-2.0, -2.0, -2.0],
                           [1.0, 1.0, 1.0]]),
            b_ub=np.array([-3.0, -6.0, 3.0]),
            upper=np.array([10.0, 10.0, 10.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(6.0)  # y=3

    def test_rank_deficient_instances_match_scipy(self):
        """Structured fuzz: >= blocks built from a rank-1/2 basis."""
        for seed in range(40):
            rng = np.random.default_rng([seed, 7])
            n = int(rng.integers(2, 6))
            rank = int(rng.integers(1, 3))
            base = rng.uniform(-1, 1, size=(rank, n))
            mult = rng.uniform(0.5, 3.0,
                               size=(int(rng.integers(2, 5)), rank))
            ge = mult @ base
            x0 = rng.uniform(0.2, 1.5, n)
            a = -ge
            b = -(ge @ x0)
            c = rng.normal(size=n)
            ub = rng.uniform(1.0, 3.0, n)
            res = solve_lp_maximize(c, a, b, upper=ub)
            ref = linprog(-c, A_ub=a, b_ub=b,
                          bounds=[(0, u) for u in ub], method="highs")
            if ref.status == 0:
                assert res.is_optimal, f"seed {seed}"
                assert res.objective == pytest.approx(
                    -ref.fun, rel=1e-6, abs=1e-7), f"seed {seed}"
                assert np.all(a @ res.x <= b + 1e-6), f"seed {seed}"
            elif ref.status == 2:
                assert res.status == STATUS_INFEASIBLE, f"seed {seed}"


class TestFuzzAgainstScipy:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_instances_match_highs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 10))
        m = int(rng.integers(1, 12))
        c = rng.normal(size=n)
        a = rng.normal(size=(m, n))
        b = rng.normal(loc=1.0, size=m)
        ub = rng.uniform(0.5, 3.0, size=n)
        res = solve_lp_maximize(c, a, b, upper=ub)
        ref = linprog(-c, A_ub=a, b_ub=b, bounds=[(0, u) for u in ub],
                      method="highs")
        if ref.status == 0:
            assert res.is_optimal
            assert res.objective == pytest.approx(
                -ref.fun, rel=1e-6, abs=1e-8)
        elif ref.status == 2:
            assert res.status == STATUS_INFEASIBLE

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_solution_is_feasible(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 8))
        m = int(rng.integers(1, 8))
        c = rng.normal(size=n)
        a = rng.normal(size=(m, n))
        b = rng.uniform(0.5, 3.0, size=m)
        ub = rng.uniform(0.5, 3.0, size=n)
        res = solve_lp_maximize(c, a, b, upper=ub)
        if res.is_optimal:
            assert np.all(res.x >= -1e-8)
            assert np.all(res.x <= ub + 1e-8)
            assert np.all(a @ res.x <= b + 1e-7)
