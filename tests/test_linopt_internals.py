"""White-box tests for LinOpt's building blocks (Section 4.3.1)."""

import numpy as np
import pytest

from repro.config import COST_PERFORMANCE, LOW_POWER
from repro.pm import (LinOpt, LinOptConfig, fit_power_lines,
                      meets_constraints)
from repro.power import (IpcSensor, PowerSensor, SensorSpec,
                         independent_rngs)
from repro.runtime import Assignment, evaluate_max_levels
from repro.sched import VarFAppIPC
from repro.workloads import Workload, get_app, make_workload


@pytest.fixture()
def pair(chip):
    wl = Workload((get_app("bzip2"), get_app("mcf")))
    asg = Assignment((2, 9))
    return wl, asg


class TestFitPowerLines:
    def test_global_fit_slope_positive(self, chip, pair):
        wl, asg = pair
        temps = np.full(chip.n_cores, 350.0)
        fit = fit_power_lines(chip, wl, asg, temps, 3, PowerSensor())
        assert np.all(fit.slope > 0)

    def test_fit_matches_endpoints_reasonably(self, chip, pair):
        """Figure 1: the line approximates the measured points."""
        wl, asg = pair
        temps = np.full(chip.n_cores, 350.0)
        fit = fit_power_lines(chip, wl, asg, temps, 3, PowerSensor())
        core = chip.cores[asg.core_of[0]]
        table = core.vf_table
        for v, lv in ((table.vmin, 0), (table.vmax, table.n_levels - 1)):
            true_p = (wl[0].dynamic_power_at(
                float(table.voltages[lv]), float(table.freqs[lv]))
                + core.leakage.power(float(table.voltages[lv]), 350.0))
            line_p = fit.slope[0] * v + fit.intercept[0]
            assert line_p == pytest.approx(true_p, rel=0.35)

    def test_two_vs_three_point_similar(self, chip, pair):
        wl, asg = pair
        temps = np.full(chip.n_cores, 350.0)
        f3 = fit_power_lines(chip, wl, asg, temps, 3, PowerSensor())
        f2 = fit_power_lines(chip, wl, asg, temps, 2, PowerSensor())
        np.testing.assert_allclose(f3.slope, f2.slope, rtol=0.35)

    def test_local_window_fit(self, chip, pair):
        wl, asg = pair
        temps = np.full(chip.n_cores, 350.0)
        fit = fit_power_lines(chip, wl, asg, temps, 3, PowerSensor(),
                              center_levels=[4, 4], span_levels=2)
        assert np.all(fit.slope > 0)

    def test_local_window_at_boundaries(self, chip, pair):
        wl, asg = pair
        temps = np.full(chip.n_cores, 350.0)
        for centre in (0, 8):
            fit = fit_power_lines(chip, wl, asg, temps, 3, PowerSensor(),
                                  center_levels=[centre, centre],
                                  span_levels=2)
            assert np.all(np.isfinite(fit.slope))

    def test_hotter_cores_fit_higher_lines(self, chip, pair):
        wl, asg = pair
        cold = fit_power_lines(chip, wl, asg,
                               np.full(chip.n_cores, 330.0), 3,
                               PowerSensor())
        hot = fit_power_lines(chip, wl, asg,
                              np.full(chip.n_cores, 380.0), 3,
                              PowerSensor())
        # Leakage grows with temperature: the fitted line at Vmax must
        # sit higher when profiling hot.
        v = chip.cores[asg.core_of[0]].vf_table.vmax
        assert (hot.slope[0] * v + hot.intercept[0]
                > cold.slope[0] * v + cold.intercept[0])


class _OneLevelTable:
    """A V/f table offering exactly one operating point."""

    def __init__(self, v: float = 0.9, f: float = 2.0e9) -> None:
        self.voltages = np.array([v])
        self.freqs = np.array([f])
        self.n_levels = 1
        self.vmin = v
        self.vmax = v

    def nearest_level_at_most(self, v: float) -> int:
        return 0


class _FlatLeakage:
    """Temperature/voltage-independent leakage stub."""

    def power(self, v: float, temp_k: float) -> float:
        return 0.5


class _OneLevelCore:
    """A core whose V/f table has collapsed to a single point."""

    def __init__(self) -> None:
        self.vf_table = _OneLevelTable()
        self.leakage = _FlatLeakage()


class _OneLevelChip:
    """Minimal chip stand-in: one core, one V/f level."""

    n_cores = 1

    def __init__(self) -> None:
        self.cores = [_OneLevelCore()]


class TestFitPowerLinesDegenerate:
    """A one-level V/f table yields a single (V, p) profiling point; the
    fit must fall back to a flat line instead of feeding ``np.polyfit``
    a singular one-point system (which emits a RankWarning and garbage
    coefficients)."""

    def test_single_point_window_flat_fallback(self):
        chip = _OneLevelChip()
        wl = Workload((get_app("bzip2"),))
        asg = Assignment((0,))
        fit = fit_power_lines(chip, wl, asg, np.array([350.0]), 3,
                              PowerSensor())
        table = chip.cores[0].vf_table
        expected = (wl[0].dynamic_power_at(float(table.voltages[0]),
                                           float(table.freqs[0]))
                    + 0.5)
        assert fit.slope[0] == 0.0
        assert fit.intercept[0] == pytest.approx(expected)

    def test_local_window_on_one_level_table(self):
        chip = _OneLevelChip()
        wl = Workload((get_app("bzip2"),))
        asg = Assignment((0,))
        fit = fit_power_lines(chip, wl, asg, np.array([350.0]), 3,
                              PowerSensor(), center_levels=[0],
                              span_levels=2)
        assert fit.slope[0] == 0.0
        assert np.isfinite(fit.intercept[0])


class TestSensorStreams:
    """Regression for the default-sensor seeding: LinOpt's power and
    IPC sensors must draw from *independent* child streams of one
    parent seed, not two copies of ``default_rng(0)``."""

    def test_default_sensors_not_correlated(self):
        mgr = LinOpt()
        power_draws = mgr.power_sensor._rng.standard_normal(8)
        ipc_draws = mgr.ipc_sensor._rng.standard_normal(8)
        assert not np.allclose(power_draws, ipc_draws)

    def test_default_sensors_reproducible(self):
        a, b = LinOpt(), LinOpt()
        np.testing.assert_array_equal(a.power_sensor._rng.standard_normal(8),
                                      b.power_sensor._rng.standard_normal(8))
        np.testing.assert_array_equal(a.ipc_sensor._rng.standard_normal(8),
                                      b.ipc_sensor._rng.standard_normal(8))

    def test_independent_rngs_distinct_and_reproducible(self):
        first = independent_rngs(3, seed=5)
        again = independent_rngs(3, seed=5)
        draws = [r.standard_normal(4) for r in first]
        for i in range(3):
            np.testing.assert_array_equal(
                draws[i], again[i].standard_normal(4))
            for j in range(i + 1, 3):
                assert not np.allclose(draws[i], draws[j])


class TestNoisyLinOptFeasibility:
    """Property: because the correction loop evaluates *true* system
    states, LinOpt never returns an over-budget operating point no
    matter how noisy its sensors are — noise only costs corrections."""

    SIGMAS = (0.0, 0.05, 0.2)
    SEEDS = (3, 7, 11, 13, 17)

    def test_feasible_under_noise_and_corrections_grow(self, chip, rng):
        wl = make_workload(8, rng)
        asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
        p_target = LOW_POWER.p_target(8, chip.n_cores)
        total_corrections = {}
        for sigma in self.SIGMAS:
            total = 0.0
            for seed in self.SEEDS:
                p_rng, i_rng = independent_rngs(2, seed=seed)
                spec = SensorSpec(noise_sigma=sigma, relative=True)
                mgr = LinOpt(LinOptConfig(n_iterations=2),
                             power_sensor=PowerSensor(spec, p_rng),
                             ipc_sensor=IpcSensor(spec, i_rng))
                res = mgr.set_levels(chip, wl, asg, LOW_POWER)
                assert meets_constraints(res.state, p_target,
                                         LOW_POWER.p_core_max)
                total += res.stats["corrections"]
            total_corrections[sigma] = total
        assert (total_corrections[0.0] <= total_corrections[0.05]
                <= total_corrections[0.2])
        assert total_corrections[0.2] > total_corrections[0.0]


class TestLinOptBehaviour:
    def test_slow_memory_threads_get_lower_voltage(self, chip, rng):
        """LinOpt's core idea: memory-bound low-IPC threads give up
        voltage so compute-bound threads can keep it."""
        wl = Workload((get_app("vortex"), get_app("crafty"),
                       get_app("mcf"), get_app("apsi")))
        asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
        res = LinOpt().set_levels(chip, wl, asg, LOW_POWER)
        levels = dict(zip((a.name for a in wl), res.levels))
        assert (levels["mcf"] + levels["apsi"]
                <= levels["vortex"] + levels["crafty"])

    def test_power_close_to_target(self, chip, rng):
        """Section 4.3.1: the solutions satisfy the power constraint
        'with little slack'."""
        wl = make_workload(16, rng)
        asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
        res = LinOpt().set_levels(chip, wl, asg, LOW_POWER)
        p_target = LOW_POWER.p_target(16, chip.n_cores)
        assert res.state.total_power <= p_target + 1e-6
        assert res.state.total_power >= 0.93 * p_target

    def test_iteration_count_respected(self, chip, pair):
        wl, asg = pair
        res1 = LinOpt(LinOptConfig(n_iterations=1)).set_levels(
            chip, wl, asg, COST_PERFORMANCE)
        res3 = LinOpt(LinOptConfig(n_iterations=3)).set_levels(
            chip, wl, asg, COST_PERFORMANCE)
        # More passes solve more LPs. (Pivot counts are no longer a
        # proxy for solve counts: the warm-started default backend
        # finishes re-solves in ~0 pivots.)
        solves1 = res1.stats["lp_warm_solves"] + res1.stats["lp_cold_solves"]
        solves3 = res3.stats["lp_warm_solves"] + res3.stats["lp_cold_solves"]
        assert solves3 > solves1
        assert res3.stats["lp_pivots"] >= res1.stats["lp_pivots"]

    def test_phase_multipliers_shift_allocation(self, chip, rng):
        """Online adaptivity: boosting one thread's phase IPC should
        never *lower* its allocated level."""
        wl = Workload((get_app("gzip"), get_app("gzip"),
                       get_app("gzip"), get_app("gzip")))
        asg = Assignment((0, 1, 2, 3))
        base = LinOpt().set_levels(chip, wl, asg, LOW_POWER)
        boosted = LinOpt().set_levels(
            chip, wl, asg, LOW_POWER,
            ipc_multipliers=[3.0, 1.0, 1.0, 1.0])
        assert boosted.levels[0] >= base.levels[0]
