"""White-box tests for LinOpt's building blocks (Section 4.3.1)."""

import numpy as np
import pytest

from repro.config import COST_PERFORMANCE, LOW_POWER
from repro.pm import LinOpt, LinOptConfig, fit_power_lines
from repro.power import PowerSensor
from repro.runtime import Assignment, evaluate_max_levels
from repro.sched import VarFAppIPC
from repro.workloads import Workload, get_app, make_workload


@pytest.fixture()
def pair(chip):
    wl = Workload((get_app("bzip2"), get_app("mcf")))
    asg = Assignment((2, 9))
    return wl, asg


class TestFitPowerLines:
    def test_global_fit_slope_positive(self, chip, pair):
        wl, asg = pair
        temps = np.full(chip.n_cores, 350.0)
        fit = fit_power_lines(chip, wl, asg, temps, 3, PowerSensor())
        assert np.all(fit.slope > 0)

    def test_fit_matches_endpoints_reasonably(self, chip, pair):
        """Figure 1: the line approximates the measured points."""
        wl, asg = pair
        temps = np.full(chip.n_cores, 350.0)
        fit = fit_power_lines(chip, wl, asg, temps, 3, PowerSensor())
        core = chip.cores[asg.core_of[0]]
        table = core.vf_table
        for v, lv in ((table.vmin, 0), (table.vmax, table.n_levels - 1)):
            true_p = (wl[0].dynamic_power_at(
                float(table.voltages[lv]), float(table.freqs[lv]))
                + core.leakage.power(float(table.voltages[lv]), 350.0))
            line_p = fit.slope[0] * v + fit.intercept[0]
            assert line_p == pytest.approx(true_p, rel=0.35)

    def test_two_vs_three_point_similar(self, chip, pair):
        wl, asg = pair
        temps = np.full(chip.n_cores, 350.0)
        f3 = fit_power_lines(chip, wl, asg, temps, 3, PowerSensor())
        f2 = fit_power_lines(chip, wl, asg, temps, 2, PowerSensor())
        np.testing.assert_allclose(f3.slope, f2.slope, rtol=0.35)

    def test_local_window_fit(self, chip, pair):
        wl, asg = pair
        temps = np.full(chip.n_cores, 350.0)
        fit = fit_power_lines(chip, wl, asg, temps, 3, PowerSensor(),
                              center_levels=[4, 4], span_levels=2)
        assert np.all(fit.slope > 0)

    def test_local_window_at_boundaries(self, chip, pair):
        wl, asg = pair
        temps = np.full(chip.n_cores, 350.0)
        for centre in (0, 8):
            fit = fit_power_lines(chip, wl, asg, temps, 3, PowerSensor(),
                                  center_levels=[centre, centre],
                                  span_levels=2)
            assert np.all(np.isfinite(fit.slope))

    def test_hotter_cores_fit_higher_lines(self, chip, pair):
        wl, asg = pair
        cold = fit_power_lines(chip, wl, asg,
                               np.full(chip.n_cores, 330.0), 3,
                               PowerSensor())
        hot = fit_power_lines(chip, wl, asg,
                              np.full(chip.n_cores, 380.0), 3,
                              PowerSensor())
        # Leakage grows with temperature: the fitted line at Vmax must
        # sit higher when profiling hot.
        v = chip.cores[asg.core_of[0]].vf_table.vmax
        assert (hot.slope[0] * v + hot.intercept[0]
                > cold.slope[0] * v + cold.intercept[0])


class TestLinOptBehaviour:
    def test_slow_memory_threads_get_lower_voltage(self, chip, rng):
        """LinOpt's core idea: memory-bound low-IPC threads give up
        voltage so compute-bound threads can keep it."""
        wl = Workload((get_app("vortex"), get_app("crafty"),
                       get_app("mcf"), get_app("apsi")))
        asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
        res = LinOpt().set_levels(chip, wl, asg, LOW_POWER)
        levels = dict(zip((a.name for a in wl), res.levels))
        assert (levels["mcf"] + levels["apsi"]
                <= levels["vortex"] + levels["crafty"])

    def test_power_close_to_target(self, chip, rng):
        """Section 4.3.1: the solutions satisfy the power constraint
        'with little slack'."""
        wl = make_workload(16, rng)
        asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
        res = LinOpt().set_levels(chip, wl, asg, LOW_POWER)
        p_target = LOW_POWER.p_target(16, chip.n_cores)
        assert res.state.total_power <= p_target + 1e-6
        assert res.state.total_power >= 0.93 * p_target

    def test_iteration_count_respected(self, chip, pair):
        wl, asg = pair
        res1 = LinOpt(LinOptConfig(n_iterations=1)).set_levels(
            chip, wl, asg, COST_PERFORMANCE)
        res3 = LinOpt(LinOptConfig(n_iterations=3)).set_levels(
            chip, wl, asg, COST_PERFORMANCE)
        # More passes solve more LPs.
        assert res3.stats["lp_pivots"] > res1.stats["lp_pivots"]

    def test_phase_multipliers_shift_allocation(self, chip, rng):
        """Online adaptivity: boosting one thread's phase IPC should
        never *lower* its allocated level."""
        wl = Workload((get_app("gzip"), get_app("gzip"),
                       get_app("gzip"), get_app("gzip")))
        asg = Assignment((0, 1, 2, 3))
        base = LinOpt().set_levels(chip, wl, asg, LOW_POWER)
        boosted = LinOpt().set_levels(
            chip, wl, asg, LOW_POWER,
            ipc_multipliers=[3.0, 1.0, 1.0, 1.0])
        assert boosted.levels[0] >= base.levels[0]
