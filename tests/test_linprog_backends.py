"""Cross-checks of the LP engines behind the backend seam.

Three engines solve LinOpt's LPs: the reference tableau solver, the
warm-started bounded-variable engine, and (optionally) scipy's HiGHS.
This suite holds them to each other — status agreement and objective
agreement on randomized LinOpt-shaped instances, bounded-variable
pivoting vs appended-rows equivalence, and the determinism anchor:
warm-started re-solves must return **bitwise identical** ``x`` to cold
solves of the same problems, both on synthetic drifting sequences and
through full LinOpt invocations on the characterised chip.
"""

import numpy as np
import pytest

from repro.config import LOW_POWER
from repro.linprog import (
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    BoundedSimplexBackend,
    HighsBackend,
    LpProblem,
    ReferenceSimplexBackend,
    WarmState,
    make_backend,
    solve_bounded,
    solve_lp_maximize,
)
from repro.pm import LinOpt, LinOptConfig
from repro.runtime import Assignment
from repro.sched import VarFAppIPC
from repro.workloads import make_workload

needs_highs = pytest.mark.skipif(not HighsBackend.available(),
                                 reason="scipy/HiGHS not installed")


def _random_instance(seed):
    """A random box-bounded instance (may be infeasible)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 10))
    m = int(rng.integers(1, 12))
    c = rng.normal(size=n)
    a = rng.normal(size=(m, n))
    b = rng.normal(loc=1.0, size=m)
    ub = rng.uniform(0.5, 3.0, size=n)
    return c, a, b, ub


def _linopt_instance(seed, n=20):
    """The exact row structure LinOpt emits (budget + per-core + box)."""
    rng = np.random.default_rng(seed)
    obj = rng.uniform(5.0, 20.0, n)
    slopes = rng.uniform(2.0, 8.0, n)
    budget = 0.6 * slopes.sum() * 0.4
    rows = [slopes]
    rhs = [budget]
    for i in range(n):
        row = np.zeros(n)
        row[i] = slopes[i]
        rows.append(row)
        rhs.append(0.35 * slopes[i])
    return obj, np.vstack(rows), np.array(rhs), np.full(n, 0.4)


def _drifting_sequence(seed, n=8, n_intervals=30):
    """Successive LinOpt-shaped problems with small input drift."""
    rng = np.random.default_rng(seed)
    problems = []
    obj, a, b, ub = _linopt_instance(seed, n)
    for _ in range(n_intervals):
        problems.append((obj, a, b, ub))
        obj = obj * (1.0 + 0.02 * rng.standard_normal(n))
        scale = 1.0 + 0.01 * rng.standard_normal(b.size)
        b = b * scale
    return problems


class TestBoundedVsReference:
    """The bounded engine must agree with the appended-rows reference."""

    @pytest.mark.parametrize("seed", range(60))
    def test_random_instances_agree(self, seed):
        c, a, b, ub = _random_instance(seed)
        ref = solve_lp_maximize(c, a, b, upper=ub)
        res, _ = solve_bounded(c, a, b, upper=ub)
        assert res.status == ref.status, f"seed {seed}"
        if ref.is_optimal:
            assert res.objective == pytest.approx(
                ref.objective, rel=1e-7, abs=1e-9), f"seed {seed}"
            assert np.all(res.x >= -1e-8)
            assert np.all(res.x <= ub + 1e-8)
            assert np.all(a @ res.x <= b + 1e-7)

    @pytest.mark.parametrize("seed", range(5))
    def test_linopt_shaped_agree(self, seed):
        c, a, b, ub = _linopt_instance(seed)
        ref = solve_lp_maximize(c, a, b, upper=ub)
        res, _ = solve_bounded(c, a, b, upper=ub)
        assert res.is_optimal and ref.is_optimal
        assert res.objective == pytest.approx(ref.objective, rel=1e-9)

    def test_no_upper_bounds(self):
        # max x+y s.t. x+y <= 2: bounds omitted entirely.
        res, _ = solve_bounded(np.array([1.0, 1.0]),
                               np.array([[1.0, 1.0]]),
                               np.array([2.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(2.0)

    def test_smaller_tableau(self):
        """Native bounds shrink the tableau: fewer flops per pivot."""
        c, a, b, ub = _linopt_instance(0)
        ref = solve_lp_maximize(c, a, b, upper=ub)
        res, _ = solve_bounded(c, a, b, upper=ub)
        assert res.flops < ref.flops


@needs_highs
class TestAgainstHighs:
    """Both from-scratch engines vs the industrial solver."""

    @pytest.mark.parametrize("seed", range(40))
    def test_random_instances(self, seed):
        c, a, b, ub = _random_instance(seed)
        hi = HighsBackend().solve(LpProblem(c, a, b, upper=ub))
        res, _ = solve_bounded(c, a, b, upper=ub)
        if hi.is_optimal:
            assert res.is_optimal, f"seed {seed}"
            assert res.objective == pytest.approx(
                hi.objective, rel=1e-7, abs=1e-7), f"seed {seed}"
        elif hi.status == STATUS_INFEASIBLE:
            assert res.status == STATUS_INFEASIBLE, f"seed {seed}"

    def test_highs_reports_backend_and_zero_flops(self):
        c, a, b, ub = _linopt_instance(1, n=6)
        hi = HighsBackend().solve(LpProblem(c, a, b, upper=ub))
        assert hi.backend == "highs"
        assert hi.flops == 0
        assert hi.iterations >= 0


class TestBoundedEdgeCases:
    """Degenerate, redundant-row and negative-RHS regressions."""

    def test_negative_rhs_phase1(self):
        res, warm = solve_bounded(
            np.array([-1.0, -2.0]),
            np.array([[-1.0, -1.0]]),
            np.array([-2.0]),
            upper=np.array([5.0, 5.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(-2.0)
        assert warm is not None

    def test_infeasible(self):
        res, warm = solve_bounded(
            np.array([1.0]),
            np.array([[-1.0], [1.0]]),
            np.array([-2.0, 1.0]))
        assert res.status == STATUS_INFEASIBLE
        assert warm is None
        np.testing.assert_array_equal(res.x, np.zeros(1))

    def test_unbounded(self):
        res, warm = solve_bounded(
            np.array([1.0]),
            np.array([[-1.0]]),
            np.array([0.0]))
        assert res.status == "unbounded"
        assert warm is None

    def test_upper_bound_caps_unbounded_ray(self):
        # Same ray as above, but the box bound caps it.
        res, _ = solve_bounded(
            np.array([1.0]),
            np.array([[-1.0]]),
            np.array([0.0]),
            upper=np.array([2.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(2.0)

    def test_negative_upper_bound_infeasible(self):
        res, warm = solve_bounded(
            np.array([1.0]),
            np.array([[1.0]]),
            np.array([1.0]),
            upper=np.array([-0.5]))
        assert res.status == STATUS_INFEASIBLE
        assert warm is None

    def test_degenerate_does_not_cycle(self):
        res, _ = solve_bounded(
            np.array([1.0, 1.0, 1.0]),
            np.vstack([np.eye(3), np.ones((1, 3)), np.ones((1, 3))]),
            np.array([1.0, 1.0, 1.0, 2.0, 2.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(2.0)

    def test_duplicated_rows_solve_and_warm_replays(self):
        # Duplicated >= rows: the slack identity block keeps the
        # system full row rank, so phase 1 drives the artificials out
        # through slack pivots rather than dropping rows — and any
        # warm state handed out must replay bitwise.
        args = (np.array([-1.0, -2.0]),
                np.array([[-1.0, -1.0], [-1.0, -1.0]]),
                np.array([-2.0, -2.0]))
        res, warm = solve_bounded(*args, upper=np.array([5.0, 5.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(-2.0)
        assert warm is not None
        replay, _ = solve_bounded(*args, upper=np.array([5.0, 5.0]),
                                  warm=warm)
        assert replay.warm
        np.testing.assert_array_equal(replay.x, res.x)

    def test_scaled_dependent_rows(self):
        # x + y >= 2, 2x + 2y >= 4, 3x + 3y >= 6: one facet thrice.
        res, _ = solve_bounded(
            np.array([-1.0, -1.0]),
            np.array([[-1.0, -1.0], [-2.0, -2.0], [-3.0, -3.0]]),
            np.array([-2.0, -4.0, -6.0]),
            upper=np.array([4.0, 4.0]))
        assert res.is_optimal
        assert res.objective == pytest.approx(-2.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            solve_bounded(np.array([1.0]),
                          np.array([[1.0, 2.0]]),
                          np.array([1.0]))

    def test_bad_upper_shape(self):
        with pytest.raises(ValueError):
            solve_bounded(np.array([1.0, 1.0]),
                          np.array([[1.0, 1.0]]),
                          np.array([1.0]),
                          upper=np.array([1.0]))


class TestWarmStart:
    """Warm-start behaviour and the bitwise determinism anchor."""

    @pytest.mark.parametrize("seed", range(6))
    def test_warm_bitwise_equals_cold_on_drifting_sequence(self, seed):
        warm = None
        hits = 0
        for c, a, b, ub in _drifting_sequence(seed):
            res_w, warm = solve_bounded(c, a, b, upper=ub, warm=warm)
            res_c, _ = solve_bounded(c, a, b, upper=ub)
            assert res_w.is_optimal and res_c.is_optimal
            np.testing.assert_array_equal(res_w.x, res_c.x)
            assert res_w.objective == res_c.objective
            hits += int(res_w.warm)
        assert hits >= 25  # drift is small: nearly every solve warm

    def test_warm_solve_is_cheaper(self):
        c, a, b, ub = _linopt_instance(3)
        cold, warm = solve_bounded(c, a, b, upper=ub)
        re_res, _ = solve_bounded(c, a, b, upper=ub, warm=warm)
        assert re_res.warm
        assert re_res.iterations < cold.iterations

    def test_shape_change_discards_state(self):
        c, a, b, ub = _linopt_instance(4, n=6)
        _, warm = solve_bounded(c, a, b, upper=ub)
        c2, a2, b2, ub2 = _linopt_instance(4, n=7)
        res, _ = solve_bounded(c2, a2, b2, upper=ub2, warm=warm)
        assert res.is_optimal
        assert not res.warm

    def test_infeasible_point_discards_state(self):
        c, a, b, ub = _linopt_instance(5, n=6)
        _, warm = solve_bounded(c, a, b, upper=ub)
        # Slash the budget so the old vertex is far outside the new
        # feasible region: the stale basis must be rejected, and the
        # cold fallback must still match a from-scratch cold solve.
        b2 = b.copy()
        b2[0] *= 0.05
        res_fb, _ = solve_bounded(c, a, b2, upper=ub, warm=warm)
        res_cold, _ = solve_bounded(c, a, b2, upper=ub)
        assert res_fb.is_optimal
        np.testing.assert_array_equal(res_fb.x, res_cold.x)

    def test_garbage_state_falls_back_cold(self):
        c, a, b, ub = _linopt_instance(6, n=5)
        m = b.size
        bogus = WarmState(basis=np.zeros(m, dtype=int),
                          at_upper=np.zeros(5 + m, dtype=bool),
                          n=5, m=m)
        res, _ = solve_bounded(c, a, b, upper=ub, warm=bogus)
        ref, _ = solve_bounded(c, a, b, upper=ub)
        assert res.is_optimal
        np.testing.assert_array_equal(res.x, ref.x)


class TestBackendSeam:
    def test_default_is_bounded(self, monkeypatch):
        monkeypatch.delenv("REPRO_LP_BACKEND", raising=False)
        backend = make_backend()
        assert isinstance(backend, BoundedSimplexBackend)
        assert backend.name == "bounded"

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_BACKEND", "reference")
        assert isinstance(make_backend(), ReferenceSimplexBackend)

    def test_explicit_name_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LP_BACKEND", "reference")
        assert isinstance(make_backend("bounded"),
                          BoundedSimplexBackend)

    def test_instance_passthrough(self):
        backend = BoundedSimplexBackend(warm_start=False)
        assert make_backend(backend) is backend

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_backend("glpk")

    def test_backend_carries_warm_state_and_reset(self):
        c, a, b, ub = _linopt_instance(7, n=6)
        backend = BoundedSimplexBackend()
        problem = LpProblem(c, a, b, upper=ub)
        first = backend.solve(problem)
        second = backend.solve(problem)
        assert not first.warm and second.warm
        backend.reset()
        third = backend.solve(problem)
        assert not third.warm
        np.testing.assert_array_equal(first.x, second.x)
        np.testing.assert_array_equal(first.x, third.x)

    def test_reference_backend_labels_results(self):
        c, a, b, ub = _linopt_instance(8, n=4)
        res = ReferenceSimplexBackend().solve(LpProblem(c, a, b,
                                                        upper=ub))
        assert res.backend == "reference"
        assert not res.warm

    @needs_highs
    def test_make_backend_highs(self):
        assert isinstance(make_backend("highs"), HighsBackend)


class TestLinOptCampaignBitwise:
    """The acceptance anchor: warm-started LinOpt == cold LinOpt,
    bitwise, through full invocations on the characterised chip (the
    fig11-15 campaigns all drive this code path)."""

    N_INVOCATIONS = 4

    def _run(self, chip, warm_start, n_threads, seed, n_iterations):
        rng = np.random.default_rng(seed)
        wl = make_workload(n_threads, rng)
        asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
        backend = BoundedSimplexBackend(warm_start=warm_start)
        mgr = LinOpt(LinOptConfig(n_iterations=n_iterations),
                     lp_backend=backend)
        results = []
        # Successive invocations, as the 10 ms loop issues them: the
        # backend's warm basis persists across set_levels calls.
        for _ in range(self.N_INVOCATIONS):
            results.append(mgr.set_levels(chip, wl, asg, LOW_POWER))
        return results

    @pytest.mark.parametrize("n_threads,seed", [(4, 11), (8, 12)])
    def test_reinvocation_loop_warm_equals_cold(self, chip, n_threads,
                                                seed):
        """n_iterations=1 is the paper's 10 ms loop (and the Fig. 15
        configuration): fixed global bounds, drifting measurements —
        every re-invocation after the first must go warm, and the
        decisions must match the cold run bitwise."""
        warm_runs = self._run(chip, True, n_threads, seed, 1)
        cold_runs = self._run(chip, False, n_threads, seed, 1)
        used_warm = 0.0
        for rw, rc in zip(warm_runs, cold_runs):
            assert rw.levels == rc.levels
            assert rw.state.total_power == rc.state.total_power
            np.testing.assert_array_equal(rw.state.freqs,
                                          rc.state.freqs)
            assert rw.stats["lp_fallbacks"] == rc.stats["lp_fallbacks"]
            used_warm += rw.stats["lp_warm_solves"]
            assert rc.stats["lp_warm_solves"] == 0.0
        assert used_warm == self.N_INVOCATIONS - 1

    def test_successive_lp_passes_warm_equals_cold(self, chip):
        """With local trust-region passes (n_iterations > 1) the LP
        frame shifts between passes, so warm reuse is opportunistic —
        stale bases are discarded — but the decisions must still be
        bitwise independent of whether warm start is enabled."""
        warm_runs = self._run(chip, True, 8, 12, 4)
        cold_runs = self._run(chip, False, 8, 12, 4)
        for rw, rc in zip(warm_runs, cold_runs):
            assert rw.levels == rc.levels
            assert rw.state.total_power == rc.state.total_power
            assert rw.stats["lp_fallbacks"] == rc.stats["lp_fallbacks"]

    def test_stats_surface_solver_mix(self, chip, rng):
        wl = make_workload(4, rng)
        asg = Assignment((0, 1, 2, 3))
        res = LinOpt(LinOptConfig(n_iterations=3)).set_levels(
            chip, wl, asg, LOW_POWER)
        total = (res.stats["lp_warm_solves"]
                 + res.stats["lp_cold_solves"])
        assert total == 3.0
        assert res.stats["lp_fallbacks"] >= 0.0
