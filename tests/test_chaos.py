"""Chaos tests for the fault-tolerant execution layer (DESIGN.md §14).

Each test injects one failure the host-side pipeline must survive —
a SIGKILLed pool worker, a hung shard, a poisoned item, a corrupted
or truncated cache entry — and asserts the run completes with results
bitwise-identical to an undisturbed ``workers=1`` run, with the event
visible in :class:`~repro.parallel.RunHealth` or the cache counters.

Failure injection is marker-file based (a worker consults a path on
disk to decide whether to misbehave) so retries are deterministic:
the first attempt fails, the retry succeeds, and the *values*
produced are independent of the failure — exactly the per-item purity
``run_sharded`` relies on.
"""

from __future__ import annotations

import functools
import json
import os
import signal
import time

import numpy as np
import pytest

from repro.parallel import (
    CharacterizationCache,
    RunHealth,
    cache_key,
    characterize_batch,
    run_sharded,
)
from repro.parallel.cache import (
    _pack_payload,
    _verify_packed,
    CacheIntegrityError,
)


def payloads_equal(a, b) -> bool:
    """Bitwise comparison of two characterisation payloads."""
    if set(a) != set(b):
        return False
    for key in a:
        if not np.array_equal(np.asarray(a[key]), np.asarray(b[key])):
            return False
    return True


# ---------------------------------------------------------------------------
# Shard functions (module-level: they must pickle into the pool).
# Each takes a marker directory so misbehaviour happens exactly once.


def _double_all(items):
    return [2 * i for i in items]


def _kill_once(marker_dir, items):
    """SIGKILL this worker on first sight of item 0's shard."""
    marker = os.path.join(marker_dir, "killed")
    if 0 in items and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return [2 * i for i in items]


def _hang_once(marker_dir, items):
    """Hang (sleep far past the timeout) on the first attempt."""
    marker = os.path.join(marker_dir, "hung")
    if 0 in items and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(120.0)
    return [2 * i for i in items]


POISON = 5


def _kill_if_grouped(items):
    """Die whenever the poisoned item shares a shard with others.

    Narrowing must bisect down to the singleton ``[POISON]``, which
    then succeeds — the canonical poisoned-item recovery.
    """
    if POISON in items and len(items) > 1:
        os.kill(os.getpid(), signal.SIGKILL)
    return [2 * i for i in items]


def _fail_in_child(parent_pid, items):
    """Raise in every pool worker; succeed only in the parent.

    Models work that cannot run under fork at all — the run must
    degrade to in-process ``workers=1`` semantics instead of dying.
    """
    if os.getpid() != parent_pid:
        raise RuntimeError("refusing to run in a pool worker")
    return [2 * i for i in items]


def _always_raise(items):
    raise ValueError("deterministic application error")


class TestWorkerDeath:
    def test_sigkilled_worker_is_replaced_and_retried(self, tmp_path):
        items = list(range(8))
        health = RunHealth()
        fn = functools.partial(_kill_once, str(tmp_path))
        out = run_sharded(fn, items, workers=4, backoff_s=0.01,
                          health=health)
        assert out == [2 * i for i in items]
        assert health.broken_pools >= 1
        assert health.retries >= 1
        assert health.serial_fallback_shards == 0
        assert not health.clean

    def test_poisoned_item_is_bisected_out(self):
        items = list(range(8))
        health = RunHealth()
        out = run_sharded(_kill_if_grouped, items, workers=2,
                          max_shard_retries=1, backoff_s=0.01,
                          health=health)
        assert out == [2 * i for i in items]
        assert health.narrowed_shards >= 1
        assert health.broken_pools >= 1

    def test_clean_run_reports_clean_health(self):
        health = RunHealth()
        out = run_sharded(_double_all, list(range(8)), workers=4,
                          health=health)
        assert out == [2 * i for i in range(8)]
        assert health.clean
        assert health.shards_run == 4
        assert health.retries == 0
        assert health.serial_fallback_items == 0


class TestTimeouts:
    def test_hung_shard_times_out_and_recovers(self, tmp_path):
        items = list(range(4))
        health = RunHealth()
        fn = functools.partial(_hang_once, str(tmp_path))
        start = time.monotonic()
        out = run_sharded(fn, items, workers=2, timeout_s=1.0,
                          backoff_s=0.01, health=health)
        wall = time.monotonic() - start
        assert out == [2 * i for i in items]
        assert health.timeouts >= 1
        assert health.broken_pools >= 1
        # Recovery must not wait out the 120 s sleep.
        assert wall < 60.0

    def test_env_timeout_is_honoured(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT_S", "1.0")
        items = list(range(4))
        health = RunHealth()
        fn = functools.partial(_hang_once, str(tmp_path))
        out = run_sharded(fn, items, workers=2, backoff_s=0.01,
                          health=health)
        assert out == [2 * i for i in items]
        assert health.timeouts >= 1


class TestSerialFallback:
    def test_degrades_to_in_process_run(self):
        items = list(range(6))
        health = RunHealth()
        fn = functools.partial(_fail_in_child, os.getpid())
        out = run_sharded(fn, items, workers=3, backoff_s=0.0,
                          health=health)
        assert out == [2 * i for i in items]
        assert health.serial_fallback_shards >= 1
        assert health.serial_fallback_items == len(items)

    def test_deterministic_error_propagates_like_serial(self):
        health = RunHealth()
        with pytest.raises(ValueError, match="deterministic"):
            run_sharded(_always_raise, list(range(4)), workers=2,
                        backoff_s=0.0, health=health)
        assert health.serial_fallback_shards >= 1


class TestPoolClamp:
    def test_oversubscription_is_clamped(self):
        # Requesting far more workers than CPUs must still produce
        # len==workers shards, queued through a CPU-sized pool.
        items = list(range(40))
        health = RunHealth()
        out = run_sharded(_double_all, items, workers=32, health=health)
        assert out == [2 * i for i in items]
        assert health.shards_run == 32
        assert health.clean


class TestCacheCorruption:
    """A corrupt entry is quarantined, counted, and recharacterised
    to a bitwise-identical profile — never silently re-used."""

    @pytest.fixture()
    def stored(self, tech, small_arch, tmp_path):
        cache = CharacterizationCache(tmp_path / "cache")
        [profile] = characterize_batch(tech, small_arch, 7, [0],
                                       workers=1, cache=cache)
        key = cache_key(tech, small_arch, 7, 0)
        return cache, key, profile

    def test_truncated_entry_is_quarantined(self, stored):
        cache, key, _ = stored
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:100])
        misses_before = cache.stats["misses"]
        assert cache.load(key) is None
        # Corruption is counted separately — it is NOT a miss.
        assert cache.stats["corrupt"] == 1
        assert cache.stats["misses"] == misses_before
        assert not path.exists()
        assert (cache.quarantine_root / path.name).exists()
        reason = json.loads(
            (cache.quarantine_root / f"{key}.reason.json").read_text())
        assert reason["key"] == key
        assert "unreadable" in reason["reason"]

    def test_bitflip_is_caught_by_digest(self, stored, tech, small_arch):
        cache, key, profile = stored
        from repro.parallel import profile_payload
        # Rebuild a *valid* npz whose data blob was tampered after the
        # digest was computed: only the sha256 can catch this.
        packed = _pack_payload(profile_payload(profile))
        tampered = dict(packed)
        tampered["f64"] = packed["f64"].copy()
        tampered["f64"][3] += 1e-9
        path = cache.path_for(key)
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **tampered)
        assert cache.load(key) is None
        assert cache.stats["corrupt"] == 1
        reason = json.loads(
            (cache.quarantine_root / f"{key}.reason.json").read_text())
        assert "digest mismatch" in reason["reason"]

    def test_recharacterisation_is_bitwise_identical(
            self, stored, tech, small_arch):
        cache, key, profile = stored
        from repro.parallel import profile_payload
        path = cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        # The corrupt entry is quarantined, the die recharacterised…
        [again] = characterize_batch(tech, small_arch, 7, [0],
                                     workers=1, cache=cache)
        assert cache.stats["corrupt"] == 1
        # …bitwise-equal to the original characterisation, and the
        # fresh store is immediately loadable again.
        assert payloads_equal(profile_payload(again),
                              profile_payload(profile))
        assert cache.load(key) is not None

    def test_v1_entry_without_digest_reads_transparently(self, stored):
        cache, key, profile = stored
        from repro.parallel import profile_payload
        packed = _pack_payload(profile_payload(profile))
        legacy = {name: arr for name, arr in packed.items()
                  if name not in ("format", "digest")}
        path = cache.path_for(key)
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **legacy)
        loaded = cache.load(key)
        assert loaded is not None
        assert payloads_equal(loaded, profile_payload(profile))
        assert cache.stats["corrupt"] == 0

    def test_verify_packed_rejects_future_format(self, stored):
        cache, key, profile = stored
        from repro.parallel import profile_payload
        packed = _pack_payload(profile_payload(profile))
        packed["format"] = np.int64(99)
        with pytest.raises(CacheIntegrityError, match="newer"):
            _verify_packed(packed)


class TestCacheMaintenance:
    def _populate(self, tech, small_arch, tmp_path, n=3):
        cache = CharacterizationCache(tmp_path / "cache")
        characterize_batch(tech, small_arch, 7, list(range(n)),
                           workers=1, cache=cache)
        return cache

    def test_usage_and_entries(self, tech, small_arch, tmp_path):
        cache = self._populate(tech, small_arch, tmp_path)
        usage = cache.usage()
        assert usage["entries"] == 3
        assert usage["bytes"] > 0
        assert usage["quarantined"] == 0
        assert len(list(cache.entries())) == 3

    def test_verify_all_quarantines_corrupt(self, tech, small_arch,
                                            tmp_path):
        cache = self._populate(tech, small_arch, tmp_path)
        victim = next(iter(cache.entries()))
        victim.write_bytes(b"garbage")
        report = cache.verify_all()
        assert len(report["ok"]) == 2
        assert report["corrupt"] == [victim.stem]
        assert cache.usage()["quarantined"] == 1

    def test_gc_evicts_lru_to_budget(self, tech, small_arch, tmp_path):
        cache = self._populate(tech, small_arch, tmp_path)
        paths = list(cache.entries())
        # Make the mtime order deterministic: paths[0] is oldest.
        for age, path in enumerate(paths):
            stamp = time.time() - 1000 + age
            os.utime(path, (stamp, stamp))
        sizes = {p: p.stat().st_size for p in paths}
        budget = sum(sizes.values()) - 1  # force exactly one eviction
        removed = cache.gc(budget)
        assert removed == [paths[0]]
        assert cache.usage()["entries"] == 2
        assert cache.gc(0) and cache.usage()["entries"] == 0
