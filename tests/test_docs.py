"""Consistency checks between documentation and code.

A reproduction repo lives or dies by its experiment index: these tests
keep DESIGN.md / EXPERIMENTS.md / README.md honest against the actual
registry and bench files.
"""

import pathlib
import re

import pytest

from repro.experiments import EXPERIMENTS

REPO = pathlib.Path(__file__).parent.parent


@pytest.fixture(scope="module")
def design():
    return (REPO / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_md():
    return (REPO / "EXPERIMENTS.md").read_text()


@pytest.fixture(scope="module")
def readme():
    return (REPO / "README.md").read_text()


class TestDesignDoc:
    def test_exists_and_confirms_paper(self, design):
        assert "Teodorescu" in design
        assert "ISCA 2008" in design

    def test_indexes_every_figure(self, design):
        for fig in range(4, 16):
            assert f"Fig. {fig}" in design or f"Fig.{fig}" in design

    def test_bench_targets_exist(self, design):
        for match in re.findall(r"test_bench_\w+\.py", design):
            assert (REPO / "benchmarks" / match).exists(), match

    def test_mentions_every_substitution(self, design):
        for keyword in ("SESC", "VARIUS", "HotSpot", "Wattch",
                        "HotLeakage", "Simplex"):
            assert keyword in design


class TestExperimentsDoc:
    def test_covers_every_figure(self, experiments_md):
        for fig in range(4, 16):
            assert f"Figure {fig}" in experiments_md
        assert "Table 5" in experiments_md

    def test_covers_extensions(self, experiments_md):
        for word in ("Parallel applications", "NBTI",
                     "Adaptive body bias"):
            assert word in experiments_md


class TestReadme:
    def test_quickstart_code_is_valid(self, readme):
        blocks = re.findall(r"```python\n(.*?)```", readme, re.S)
        assert blocks, "README must contain a python quickstart"
        for block in blocks:
            compile(block, "<readme>", "exec")

    def test_architecture_lists_real_packages(self, readme):
        import importlib
        for pkg in re.findall(r"^repro\.(\w+)", readme, re.M):
            importlib.import_module(f"repro.{pkg}")


class TestRegistryBenchParity:
    def test_every_paper_experiment_has_a_bench(self):
        bench_text = "\n".join(
            p.read_text() for p in (REPO / "benchmarks").glob("*.py"))
        for name, module in EXPERIMENTS.items():
            mod_name = module.__name__.rsplit(".", 1)[-1]
            assert mod_name in bench_text, (
                f"experiment {name} has no benchmark")

    def test_every_experiment_has_docstring_and_run(self):
        for module in EXPERIMENTS.values():
            assert module.__doc__
            assert callable(module.run)


class TestApiDocumentation:
    def test_every_module_has_docstring(self):
        import importlib
        import pkgutil
        import repro
        missing = []
        for info in pkgutil.walk_packages(repro.__path__, "repro."):
            module = importlib.import_module(info.name)
            if not module.__doc__:
                missing.append(info.name)
        assert not missing, f"undocumented modules: {missing}"

    def test_every_public_class_and_function_documented(self):
        import importlib
        import inspect
        import pkgutil
        import repro
        missing = []
        for info in pkgutil.walk_packages(repro.__path__, "repro."):
            module = importlib.import_module(info.name)
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != info.name:
                    continue  # re-export; documented at its home
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{info.name}.{name}")
        assert not missing, f"undocumented API: {missing}"
