"""Tests for repro.workloads (Table 5 profiles, phases, workloads)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    APP_BY_NAME,
    AppProfile,
    PhasedApplication,
    REF_FREQ_HZ,
    REF_VDD,
    SPEC_APPS,
    Workload,
    get_app,
    make_workload,
    workload_trials,
)

# (name, dynamic power W, IPC) exactly as printed in Table 5.
TABLE5 = [
    ("applu", 4.3, 1.1), ("apsi", 1.6, 0.1), ("art", 2.4, 0.2),
    ("bzip2", 3.7, 1.1), ("crafty", 3.9, 1.1), ("equake", 2.1, 0.3),
    ("gap", 3.5, 1.0), ("gzip", 2.7, 0.7), ("mcf", 1.5, 0.1),
    ("mgrid", 2.2, 0.4), ("parser", 2.8, 0.7), ("swim", 2.2, 0.3),
    ("twolf", 2.3, 0.4), ("vortex", 4.4, 1.2),
]


class TestTable5RoundTrip:
    @pytest.mark.parametrize("name,power,ipc", TABLE5)
    def test_dynamic_power(self, name, power, ipc):
        app = get_app(name)
        assert app.dynamic_power_at(REF_VDD, REF_FREQ_HZ) == pytest.approx(
            power)

    @pytest.mark.parametrize("name,power,ipc", TABLE5)
    def test_ipc(self, name, power, ipc):
        assert get_app(name).ipc_at(REF_FREQ_HZ) == pytest.approx(ipc)

    def test_fourteen_apps(self):
        assert len(SPEC_APPS) == 14

    def test_get_app_unknown(self):
        with pytest.raises(KeyError):
            get_app("gcc")


class TestCpiSplitModel:
    def test_ipc_rises_as_frequency_falls_for_memory_bound(self):
        mcf = get_app("mcf")
        assert mcf.ipc_at(2e9) > mcf.ipc_at(4e9)

    def test_compute_bound_ipc_nearly_flat(self):
        crafty = get_app("crafty")
        ratio = crafty.ipc_at(2e9) / crafty.ipc_at(4e9)
        assert 1.0 <= ratio < 1.1

    def test_throughput_increases_with_frequency(self):
        for app in SPEC_APPS:
            assert app.throughput_at(4e9) > app.throughput_at(2e9)

    def test_cpi_decomposition_identity(self):
        for app in SPEC_APPS:
            cpi = app.cpi_core + app.mem_seconds_per_instr * REF_FREQ_HZ
            assert cpi == pytest.approx(app.cpi_ref)

    def test_low_ipc_apps_are_memory_bound(self):
        # The correlation the VarF&AppIPC intuition relies on.
        mem = [a.mem_cpi_fraction for a in SPEC_APPS]
        ipc = [a.ipc_ref for a in SPEC_APPS]
        assert np.corrcoef(mem, ipc)[0, 1] < -0.6

    @given(st.sampled_from([a.name for a in SPEC_APPS]),
           st.floats(min_value=1e9, max_value=8e9))
    @settings(max_examples=40)
    def test_ipc_positive_and_bounded(self, name, freq):
        app = get_app(name)
        ipc = app.ipc_at(freq)
        assert 0 < ipc < 1.0 / app.cpi_core + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            AppProfile("x", -1.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            AppProfile("x", 1.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            AppProfile("x", 1.0, 1.0, 1.0)


class TestPhases:
    def test_reproducible(self):
        app = get_app("bzip2")
        a = PhasedApplication(app, seed=3)
        b = PhasedApplication(app, seed=3)
        for t in (0.0, 0.05, 0.2, 1.0):
            assert a.state_at(t).ipc_multiplier == pytest.approx(
                b.state_at(t).ipc_multiplier)

    def test_multipliers_positive(self):
        ph = PhasedApplication(get_app("mcf"), seed=1)
        for t in np.linspace(0, 2.0, 50):
            s = ph.state_at(float(t))
            assert s.ipc_multiplier > 0
            assert s.power_multiplier > 0

    def test_mean_near_one(self):
        ph = PhasedApplication(get_app("swim"), seed=2, mean_phase_s=0.01)
        mults = [ph.state_at(t).ipc_multiplier
                 for t in np.arange(0, 20.0, 0.01)]
        assert np.mean(mults) == pytest.approx(1.0, abs=0.12)

    def test_phases_actually_change(self):
        ph = PhasedApplication(get_app("gap"), seed=4, mean_phase_s=0.01)
        mults = {round(ph.state_at(t).ipc_multiplier, 6)
                 for t in np.arange(0, 1.0, 0.01)}
        assert len(mults) > 10

    def test_zero_sigma_is_constant(self):
        ph = PhasedApplication(get_app("gap"), seed=4, sigma=0.0)
        for t in np.linspace(0, 1.0, 20):
            assert ph.state_at(float(t)).ipc_multiplier == pytest.approx(1.0)

    def test_rejects_negative_time(self):
        ph = PhasedApplication(get_app("gap"))
        with pytest.raises(ValueError):
            ph.state_at(-0.1)

    def test_ipc_at_combines_profile_and_phase(self):
        app = get_app("gzip")
        ph = PhasedApplication(app, seed=7)
        mult = ph.state_at(0.0).ipc_multiplier
        assert ph.ipc_at(3e9, 0.0) == pytest.approx(app.ipc_at(3e9) * mult)

    def test_boundaries_until_match_state_at(self):
        """The bulk timeline API agrees with pointwise state_at()."""
        ph = PhasedApplication(get_app("art"), seed=9, mean_phase_s=0.02)
        ends, ipc, power = ph.timeline_until(0.5)
        assert ends.size == ipc.size == power.size
        assert np.all(np.diff(ends) > 0)
        assert ends[-1] >= 0.5  # horizon covers the requested end
        inner = ends[ends < 0.5]
        assert inner.size > 3  # the sweep actually crosses boundaries
        assert ph.boundaries_until(0.5) == list(inner)
        # Same segment selection as state_at on both sides of each edge.
        probe = PhasedApplication(get_app("art"), seed=9, mean_phase_s=0.02)
        times = np.concatenate([[0.0], inner - 1e-9, inner, [0.499]])
        idx = np.searchsorted(ends, times, side="right")
        for t, i in zip(times, idx):
            s = probe.state_at(float(t))
            assert s.ipc_multiplier == ipc[i]
            assert s.power_multiplier == power[i]

    def test_boundaries_until_is_prefix_stable(self):
        ph = PhasedApplication(get_app("art"), seed=9, mean_phase_s=0.02)
        short = ph.boundaries_until(0.2)
        long = ph.boundaries_until(0.6)
        np.testing.assert_array_equal(long[:len(short)], short)

    def test_boundaries_does_not_disturb_state_at(self):
        a = PhasedApplication(get_app("mcf"), seed=12, mean_phase_s=0.02)
        b = PhasedApplication(get_app("mcf"), seed=12, mean_phase_s=0.02)
        a.timeline_until(1.0)  # pre-materialise segments
        for t in np.linspace(0.0, 1.5, 40):
            assert a.state_at(float(t)).ipc_multiplier == \
                b.state_at(float(t)).ipc_multiplier


class TestWorkloads:
    def test_size(self):
        wl = make_workload(6, np.random.default_rng(0))
        assert wl.n_threads == 6

    def test_no_duplicates_below_pool_size(self):
        wl = make_workload(14, np.random.default_rng(1))
        names = [a.name for a in wl]
        assert len(set(names)) == 14

    def test_duplicates_allowed_beyond_pool(self):
        wl = make_workload(20, np.random.default_rng(2))
        assert wl.n_threads == 20

    def test_trials_reproducible(self):
        a = workload_trials(8, 3, seed=5)
        b = workload_trials(8, 3, seed=5)
        for wa, wb in zip(a, b):
            assert [x.name for x in wa] == [x.name for x in wb]

    def test_trials_differ(self):
        trials = workload_trials(8, 5, seed=5)
        names = {tuple(a.name for a in wl) for wl in trials}
        assert len(names) > 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_workload(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            Workload(threads=())

    def test_indexing_and_iteration(self):
        wl = make_workload(4, np.random.default_rng(3))
        assert wl[0] is wl.threads[0]
        assert len(list(wl)) == 4
