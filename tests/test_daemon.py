"""Tests for the resilient power-management daemon.

Layer by layer: protocol framing, declarative schemas, telemetry,
the transport-free controller, the asyncio server over real sockets,
and — at the end — the multi-tenant acceptance scenario: 200
concurrent tenants with injected sensor/core/manager faults and
client churn, zero cross-tenant interference (unfaulted tenants'
decision streams bitwise-identical to driving the stepper directly),
documented tier degradation, and a clean drain-then-stop exit.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.daemon import (
    DaemonClient,
    DaemonController,
    DaemonError,
    DaemonTelemetry,
    ProtocolError,
    ServerThread,
    build_config,
    build_stepper,
    decision_to_dict,
    decode_frame,
    encode_frame,
    validate_request,
)
from repro.daemon.protocol import (
    ERR_INVALID,
    ERR_MALFORMED,
    ERR_OVERSIZED,
    ERR_UNKNOWN_TYPE,
    ERR_UNKNOWN_VERSION,
    PROTOCOL_VERSION,
    error_frame,
    event_frame,
    reply_frame,
)


def _frame(rtype, **payload):
    out = {"v": PROTOCOL_VERSION, "type": rtype}
    out.update(payload)
    return out


class TestProtocol:
    def test_roundtrip(self):
        frame = _frame("ping", id=3)
        assert decode_frame(encode_frame(frame)) == frame

    def test_oversized_frame_is_typed(self):
        line = encode_frame(_frame("ping", junk="x" * 100))
        with pytest.raises(ProtocolError) as err:
            decode_frame(line, max_frame_bytes=64)
        assert err.value.code == ERR_OVERSIZED

    def test_malformed_frames_are_typed(self):
        for line in (b"not json\n", b"[1, 2, 3]\n", b'"str"\n',
                     b"\xff\xfe\n", b'{"v": 1}\n',
                     b'{"v": 1, "type": 7}\n'):
            with pytest.raises(ProtocolError) as err:
                decode_frame(line)
            assert err.value.code in (ERR_MALFORMED,
                                      ERR_UNKNOWN_VERSION)

    def test_unknown_version_is_typed(self):
        for version in (0, 2, "1", None):
            with pytest.raises(ProtocolError) as err:
                decode_frame(encode_frame({"v": version,
                                           "type": "ping"}))
            assert err.value.code == ERR_UNKNOWN_VERSION

    def test_frame_builders_carry_version(self):
        assert reply_frame(1, {})["v"] == PROTOCOL_VERSION
        assert error_frame(1, ERR_INVALID, "x")["ok"] is False
        assert event_frame("t", "decision", {})["type"] == "event"

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ValueError):
            ProtocolError("no_such_code", "boom")


class TestSchemas:
    def test_register_defaults(self):
        rtype, payload = validate_request(
            _frame("register", tenant="a"))
        assert rtype == "register"
        assert payload["seed"] == 0
        assert payload["n_cores"] == 4
        assert payload["env"] == "low_power"
        assert payload["policy"] == "VarF&AppIPC"

    def test_unknown_type(self):
        with pytest.raises(ProtocolError) as err:
            validate_request(_frame("launch_missiles"))
        assert err.value.code == ERR_UNKNOWN_TYPE

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError) as err:
            validate_request(_frame("register"))
        assert err.value.code == ERR_INVALID

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError) as err:
            validate_request(_frame("ping", surprise=1))
        assert err.value.code == ERR_INVALID

    def test_type_confusion_rejected(self):
        bad = [
            _frame("register", tenant="a", seed=True),
            _frame("register", tenant="a", seed="7"),
            _frame("register", tenant=""),
            _frame("register", tenant="a", n_cores=1),
            _frame("register", tenant="a", env="warp_drive"),
            _frame("register", tenant="a", policy="NoSuchPolicy"),
            _frame("register", tenant="a", duration_s=-1.0),
            _frame("register", tenant="a",
                   manager={"primary": "bogus"}),
            _frame("register", tenant="a",
                   manager={"deadline_s": 0}),
            _frame("register", tenant="a",
                   faults=[{"kind": "nope", "time_s": 0.0}]),
            _frame("register", tenant="a",
                   faults=[{"kind": "sensor_dead", "time_s": -1.0}]),
            _frame("advance", tenant="a"),
            _frame("advance", tenant="a", until_s=0.0),
            _frame("inject", tenant="a", kind="sensor_dead"),
            _frame("timeline", tenant="a", width=5),
        ]
        for frame in bad:
            with pytest.raises(ProtocolError) as err:
                validate_request(frame)
            assert err.value.code == ERR_INVALID, frame

    def test_advance_variants(self):
        _, payload = validate_request(
            _frame("advance", tenant="a", until_s=0.01))
        assert payload["until_s"] == 0.01
        _, payload = validate_request(
            _frame("advance", tenant="a", to_end=True))
        assert payload["to_end"] is True


class TestTelemetry:
    def test_counters(self):
        tele = DaemonTelemetry()
        tele.incr("frames_in")
        tele.incr("frames_in", 2)
        assert tele.get("frames_in") == 3
        with pytest.raises(KeyError):
            tele.incr("made_up_counter")

    def test_latency_percentiles(self):
        tele = DaemonTelemetry()
        for ms in range(1, 101):
            tele.observe_latency("advance", ms / 1000.0)
        snap = tele.snapshot()
        stats = snap["latency"]["advance"]
        assert stats["count"] == 100
        assert 0.045 <= stats["p50_s"] <= 0.055
        assert stats["p99_s"] <= stats["max_s"] == 0.1
        assert tele.latency_p99("advance") == stats["p99_s"]
        assert tele.latency_p99("unseen") is None

    def test_snapshot_has_stable_shape(self):
        snap = DaemonTelemetry().snapshot()
        assert snap["counters"]["dropped_frames"] == 0
        assert snap["latency"] == {}


def register_payload(tenant, **overrides):
    """A small, fast tenant registration (validated)."""
    frame = _frame("register", tenant=tenant, seed=3, n_cores=4,
                   n_threads=3, duration_s=0.03,
                   dvfs_interval_s=0.01)
    frame.update(overrides)
    return validate_request(frame)[1]


class TestController:
    def test_register_advance_trace(self):
        ctl = DaemonController(cache=None)
        info = ctl.register(register_payload("t0"))
        assert info["status"] == "active"
        out = ctl.advance("t0", until_s=0.015)
        assert [d["time_s"] for d in out["decisions"]] == [0.0, 0.01]
        out = ctl.advance("t0", to_end=True)
        assert out["finished"]
        trace = ctl.trace("t0")
        assert trace["decisions"] == 3
        assert ctl.tenant_info("t0")["status"] == "finished"
        assert ctl.unregister("t0")["status"] == "finished"
        assert ctl.tenants() == []

    def test_duplicate_and_unknown_tenant(self):
        ctl = DaemonController(cache=None)
        ctl.register(register_payload("t0"))
        with pytest.raises(ProtocolError) as err:
            ctl.register(register_payload("t0"))
        assert err.value.code == "duplicate_tenant"
        with pytest.raises(ProtocolError) as err:
            ctl.advance("ghost", to_end=True)
        assert err.value.code == "unknown_tenant"

    def test_threads_cannot_exceed_cores(self):
        with pytest.raises(ProtocolError) as err:
            build_config(register_payload("t0", n_threads=5))
        assert err.value.code == ERR_INVALID

    def test_trace_before_finish_is_invalid(self):
        ctl = DaemonController(cache=None)
        ctl.register(register_payload("t0"))
        with pytest.raises(ProtocolError) as err:
            ctl.trace("t0")
        assert err.value.code == ERR_INVALID

    def test_crash_quarantines_only_that_tenant(self):
        ctl = DaemonController(cache=None)
        ctl.register(register_payload("victim", manager={
            "primary": "crashing", "crash_after": 2,
            "resilient": False}))
        ctl.register(register_payload("bystander"))
        ctl.advance("victim", until_s=0.005)  # first call survives
        with pytest.raises(ProtocolError) as err:
            ctl.advance("victim", to_end=True)
        assert err.value.code == "quarantined"
        assert ctl.tenant_info("victim")["status"] == "quarantined"
        assert "ManagerFault" in str(
            ctl.tenant_info("victim")["quarantine_reason"])
        # Still quarantined on the next touch, and telemetry counted.
        with pytest.raises(ProtocolError) as err:
            ctl.advance("victim", to_end=True)
        assert err.value.code == "quarantined"
        assert ctl.telemetry.get("quarantines") == 1
        # The bystander is untouched.
        out = ctl.advance("bystander", to_end=True)
        assert out["finished"]
        assert ctl.trace("bystander")["fallback_activations"] == 0

    def test_resilient_crash_degrades_tiers_not_quarantine(self):
        ctl = DaemonController(cache=None)
        ctl.register(register_payload("t0", manager={
            "primary": "crashing", "crash_after": 2,
            "resilient": True}))
        out = ctl.advance("t0", to_end=True)
        tiers = [d["resilience_tier"] for d in out["decisions"]]
        assert tiers[0] == 0 and all(t >= 1 for t in tiers[1:])
        assert ctl.tenant_info("t0")["status"] == "finished"
        assert ctl.trace("t0")["fallback_activations"] == 2
        assert ctl.telemetry.get("quarantines") == 0

    def test_deadline_supervision_escalates(self):
        ctl = DaemonController(cache=None)
        # A deadline no wall clock can meet: every invocation
        # escalates past tier 0.
        ctl.register(register_payload("t0", manager={
            "deadline_s": 1e-9}))
        out = ctl.advance("t0", to_end=True)
        assert all(d["resilience_tier"] >= 1
                   for d in out["decisions"])

    def test_inject_manager_fault(self):
        ctl = DaemonController(cache=None)
        ctl.register(register_payload("t0"))
        ctl.inject("t0", "manager_error")
        out = ctl.advance("t0", until_s=0.005)
        assert out["decisions"][0]["resilience_tier"] >= 1

    def test_inject_needs_resilient_manager(self):
        ctl = DaemonController(cache=None)
        ctl.register(register_payload("t0", manager={
            "primary": "foxton", "resilient": False}))
        with pytest.raises(ProtocolError) as err:
            ctl.inject("t0", "manager_error")
        assert err.value.code == ERR_INVALID

    def test_timeline_shares_report_renderer(self):
        ctl = DaemonController(cache=None)
        ctl.register(register_payload("t0", manager={
            "deadline_s": 1e-9}))
        ctl.advance("t0", to_end=True)
        text = ctl.timeline("t0")["timeline"]
        # Same lanes as the ext-faults chart (one rendering path).
        for lane in ("faults", "watchdog", "tier fallback",
                     "lp fallback"):
            assert lane in text
        assert "*" in text  # the deadline misses mark the lane

    def test_telemetry_snapshot_counts_tenants(self):
        ctl = DaemonController(cache=None)
        ctl.register(register_payload("a"))
        ctl.register(register_payload("b"))
        ctl.advance("a", to_end=True)
        snap = ctl.telemetry_snapshot()
        assert snap["tenants"] == {"active": 1, "finished": 1}


class TestServer:
    def test_full_session_over_sockets(self):
        with ServerThread(DaemonController(cache=None)) as (host,
                                                            port):
            with DaemonClient(host, port) as client:
                assert client.ping()["pong"]
                client.subscribe("t0")
                client.register("t0", seed=3, n_cores=4, n_threads=3,
                                duration_s=0.03,
                                dvfs_interval_s=0.01)
                out = client.advance("t0", to_end=True)
                assert out["finished"]
                assert len(out["decisions"]) == 3
                events = client.drain_events(timeout_s=0.3)
                kinds = [e["event"] for e in events]
                assert kinds.count("decision") == 3
                assert kinds[-1] == "finished"
                trace = client.request("trace", tenant="t0")
                assert trace["decisions"] == 3

    def test_typed_errors_over_sockets(self):
        with ServerThread(DaemonController(cache=None)) as (host,
                                                            port):
            with DaemonClient(host, port) as client:
                with pytest.raises(DaemonError) as err:
                    client.advance("ghost", to_end=True)
                assert err.value.code == "unknown_tenant"
                with pytest.raises(DaemonError) as err:
                    client.request("register", tenant="x",
                                   n_cores=100)
                assert err.value.code == "invalid"
                assert client.ping()["pong"]

    def test_drain_refuses_new_tenants(self):
        with ServerThread(DaemonController(cache=None)) as (host,
                                                            port):
            with DaemonClient(host, port) as client:
                client.register("t0", duration_s=0.01,
                                dvfs_interval_s=0.01)
                assert client.request("drain")["draining"]
                with pytest.raises(DaemonError) as err:
                    client.register("t1", duration_s=0.01,
                                    dvfs_interval_s=0.01)
                assert err.value.code == "draining"
                # Existing tenants still complete during drain.
                assert client.advance("t0", to_end=True)["finished"]

    def test_shutdown_request_stops_server(self):
        thread = ServerThread(DaemonController(cache=None))
        host, port = thread.start()
        with DaemonClient(host, port) as client:
            assert client.request("shutdown")["stopping"]
        deadline = time.monotonic() + 10
        while (not thread.server._stopped.is_set()
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert thread.server._stopped.is_set()
        thread.stop()
        assert not thread._thread.is_alive()

    def test_decisions_roundtrip_floats_exactly(self):
        # JSON float round-trips are exact in Python, so a decision
        # published over the wire equals the in-process one bitwise.
        ctl = DaemonController(cache=None)
        ctl.register(register_payload("t0"))
        out = ctl.advance("t0", to_end=True)
        wire = json.loads(json.dumps(out["decisions"]))
        assert wire == out["decisions"]


N_TENANTS = 200
SLICES = (0.01, 0.02, None)  # None = to_end


def _tenant_spec(i):
    """Tenant i's registration overrides + expected fault class."""
    name = f"chip-{i:03d}"
    seed = i % 8
    group = i % 10
    if group == 0:
        # Scheduled manager fault mid-run: one-shot tier escalation.
        return name, register_payload(
            name, seed=seed,
            faults=[{"time_s": 0.012, "kind": "manager_error"}],
        ), "manager_fault"
    if group == 5:
        # Scripted primary crash absorbed by the fallback chain.
        return name, register_payload(
            name, seed=seed,
            manager={"primary": "crashing", "crash_after": 2,
                     "resilient": True}), "crashing"
    if group == 7:
        # Sensor + core faults under the full protection stack.
        return name, register_payload(
            name, seed=seed, noise_sigma=0.05, watchdog=True,
            faults=[{"time_s": 0.011, "kind": "sensor_dead",
                     "target": 0},
                    {"time_s": 0.013, "kind": "core_offline",
                     "target": 0}]), "hw_faults"
    return name, register_payload(name, seed=seed), "clean"


class TestAcceptanceScenario:
    """200 tenants, faults, churn: isolation + determinism + drain."""

    def test_two_hundred_tenants(self):
        specs = [_tenant_spec(i) for i in range(N_TENANTS)]
        controller = DaemonController(cache=None)
        thread = ServerThread(controller)
        host, port = thread.start()

        # Reference decision streams computed by driving the stepper
        # directly — the ground truth daemon tenants must match
        # bitwise. Chips come from an independent controller so no
        # state is shared with the server.
        reference = {}
        ref_ctl = DaemonController(cache=None)
        for name, payload, kind in specs:
            if kind in ("clean", "hw_faults"):
                config = build_config(payload)
                chip = ref_ctl._factory(config.n_cores,
                                        config.seed).chip(0)
                stepper = build_stepper(config, chip)
                stepper.run_to_end()
                reference[name] = [decision_to_dict(d)
                                   for d in stepper.decisions]

        # Drive via several concurrent clients with churn: every
        # client is replaced by a fresh connection between slices,
        # and the old ones are abandoned without goodbye.
        n_clients = 8
        shards = [specs[k::n_clients] for k in range(n_clients)]
        failures = []

        def drive(shard, barrier):
            clients = []
            try:
                client = DaemonClient(host, port)
                clients.append(client)
                for name, payload, _ in shard:
                    spec = {k: v for k, v in payload.items()
                            if v is not None and k != "tenant"}
                    client.register(name, **spec)
                barrier.wait(timeout=120)
                for until in SLICES:
                    for name, _, _ in shard:
                        if until is None:
                            client.advance(name, to_end=True)
                        else:
                            client.advance(name, until_s=until)
                    # Churn: hang up abruptly mid-campaign and carry
                    # on over a fresh connection.
                    old = client
                    client = DaemonClient(host, port)
                    clients.append(client)
                    old._sock.close()
            except Exception as exc:  # pragma: no cover - fail path
                failures.append(exc)
            finally:
                for c in clients:
                    try:
                        c.close()
                    except OSError:
                        pass

        barrier = threading.Barrier(n_clients)
        threads = [threading.Thread(target=drive, args=(shard,
                                                        barrier))
                   for shard in shards]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not failures, failures

        # Collect results over a fresh connection.
        with DaemonClient(host, port) as client:
            tele = client.telemetry()
            assert tele["counters"]["tenants_registered"] == N_TENANTS
            assert tele["counters"]["tenants_finished"] == N_TENANTS
            assert tele["counters"]["quarantines"] == 0

            for name, payload, kind in specs:
                info = client.request("tenant_info", tenant=name)
                assert info["finished"], name
                trace = client.request("trace", tenant=name)
                if kind == "clean":
                    assert trace["fallback_activations"] == 0, name
                elif kind == "manager_fault":
                    assert trace["fallback_activations"] >= 1, name
                elif kind == "crashing":
                    assert trace["fallback_activations"] >= 2, name
                    assert trace["tier_transitions"], name
                if name in reference:
                    assert trace["decisions"] == \
                        len(reference[name]), name

        # Bitwise identity of the unfaulted tenants' decision
        # streams: replay each one's decisions via the daemon's own
        # tenant objects and compare to the reference.
        for name, payload, kind in specs:
            if name not in reference:
                continue
            tenant = controller._get(name)
            got = [decision_to_dict(d)
                   for d in tenant.stepper.decisions]
            assert got == reference[name], (
                f"tenant {name} diverged from direct stepper run")

        # Drain-then-stop: clean exit with the thread joined.
        thread.stop()
        assert not thread._thread.is_alive()
