"""Durability tests: op logs, snapshots, recovery, reconnection.

Three layers, mirroring the stack: :mod:`repro.daemon.durability`
units (torn-tail-tolerant op logs, digest-verified snapshots with
quarantine), :class:`DaemonController` crash recovery (decision
streams bitwise-identical to an uninterrupted run, idempotent
replays, divergence quarantine), and the wire level (a
:class:`ReconnectingClient` surviving daemon restarts mid-request and
mid-subscription with deterministic backoff) — capped by a real
SIGKILL-and-restart chaos test against the ``repro daemon`` CLI.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.daemon import (
    DaemonClient,
    DaemonController,
    DaemonError,
    ReconnectingClient,
    ServerThread,
    backoff_delay_s,
)
from repro.daemon.durability import (
    OPLOG_FILENAME,
    OpLog,
    OpLogError,
    OpRecord,
    StateDir,
    TenantStore,
    op_key,
    tenant_dir_name,
)

TENANT_SPEC = dict(seed=3, n_cores=2, n_threads=2,
                   duration_s=0.05, dvfs_interval_s=0.01)

#: Tenant options that force a sensor bank (sensor_feed target).
SENSED_SPEC = dict(TENANT_SPEC, noise_sigma=0.02)


def register_payload(name, **overrides):
    """A fully-defaulted register payload for direct controller calls
    (the schema layer normally fills these defaults in)."""
    payload = dict(tenant=name, env="low_power", policy="VarF&AppIPC",
                   manager=None, noise_sigma=0.0, watchdog=False,
                   faults=None, **TENANT_SPEC)
    payload.update(overrides)
    return payload


def wire_payload(name, **overrides):
    """The same registration as sent over the wire: ``None`` fields
    are omitted (the schema rejects explicit nulls and fills its own
    defaults)."""
    return {k: v for k, v in
            register_payload(name, **overrides).items()
            if v is not None}


def durable_controller(tmp_path, **kwargs):
    kwargs.setdefault("cache", None)
    return DaemonController(state_dir=tmp_path / "state", **kwargs)


# ---------------------------------------------------------------------------
# Op log units


class TestOpLog:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / OPLOG_FILENAME
        log = OpLog(path)
        log.append("register", {"tenant": "a"}, {"ok": 1}, "r-1")
        log.append("advance", {"until_s": 0.01}, {"ok": 2}, None)
        fresh = OpLog(path)
        assert [r.seq for r in fresh.records] == [0, 1]
        assert fresh.records[0].request_id == "r-1"
        assert fresh.records[1].payload == {"until_s": 0.01}
        assert fresh.next_seq == 2

    def test_torn_tail_is_dropped_then_truncated(self, tmp_path):
        path = tmp_path / OPLOG_FILENAME
        log = OpLog(path)
        log.append("register", {"tenant": "a"}, {}, None)
        log.append("advance", {"until_s": 0.01}, {}, None)
        intact = path.read_bytes()
        # A crash mid-append leaves a torn (newline-less) tail.
        path.write_bytes(intact + b'{"kind": "op", "seq": 2')
        fresh = OpLog(path)
        assert len(fresh.records) == 2
        # The next append truncates the untrusted tail first.
        fresh.append("advance", {"until_s": 0.02}, {}, None)
        again = OpLog(path)
        assert [r.seq for r in again.records] == [0, 1, 2]
        assert again.records[2].payload == {"until_s": 0.02}

    def test_bit_rot_stops_replay_at_trusted_prefix(self, tmp_path):
        path = tmp_path / OPLOG_FILENAME
        log = OpLog(path)
        for k in range(3):
            log.append("advance", {"until_s": 0.01 * k}, {}, None)
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a payload byte in record 1: its content key fails.
        lines[1] = lines[1].replace(b'"until_s"', b'"untiL_s"')
        path.write_bytes(b"".join(lines))
        fresh = OpLog(path)
        assert [r.seq for r in fresh.records] == [0]

    def test_reordered_records_are_untrusted(self, tmp_path):
        path = tmp_path / OPLOG_FILENAME
        log = OpLog(path)
        for k in range(3):
            log.append("advance", {"until_s": 0.01 * k}, {}, None)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + lines[2] + lines[1])
        fresh = OpLog(path)
        assert [r.seq for r in fresh.records] == [0]

    def test_op_key_pins_position_and_payload(self):
        key = op_key(3, "advance", {"until_s": 0.01})
        assert key != op_key(4, "advance", {"until_s": 0.01})
        assert key != op_key(3, "inject", {"until_s": 0.01})
        assert key != op_key(3, "advance", {"until_s": 0.02})
        with pytest.raises(OpLogError):
            OpRecord.from_line({"seq": 3, "type": "advance",
                                "payload": {"until_s": 0.02},
                                "reply": {}, "key": key})

    def test_tenant_dir_name_is_safe_and_stable(self):
        name = tenant_dir_name("ten/ant: spaced*")
        assert "/" not in name and "*" not in name and " " not in name
        assert name == tenant_dir_name("ten/ant: spaced*")
        assert tenant_dir_name("a") != tenant_dir_name("b")
        # Distinct names never collide on the sanitised prefix alone.
        assert tenant_dir_name("a/b") != tenant_dir_name("a?b")


# ---------------------------------------------------------------------------
# Snapshot units


class TestSnapshots:
    def make_store(self, tmp_path):
        return TenantStore(tmp_path / "tenants" / "t",
                           tmp_path / "quarantine")

    def test_roundtrip_and_compaction(self, tmp_path):
        store = self.make_store(tmp_path)
        store.write_snapshot(4, {"state": [1, 2, 3]})
        store.write_snapshot(9, {"state": [4, 5]})
        seq, state = store.load_snapshot()
        assert (seq, state) == (9, {"state": [4, 5]})
        # Compaction: only the newest generation remains on disk.
        bins = [p.name for p in store.root.iterdir()
                if p.name.endswith(".bin")]
        assert bins == ["snapshot-000000000009.bin"]

    def test_corrupt_snapshot_quarantined_with_reason(self, tmp_path):
        store = self.make_store(tmp_path)
        path = store.write_snapshot(4, {"state": "good"})
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.load_snapshot() is None
        assert store.snapshot_quarantines == 1
        qdir = tmp_path / "quarantine"
        reasons = list(qdir.glob("*.reason.json"))
        assert len(reasons) == 1
        record = json.loads(reasons[0].read_text())
        assert "digest" in record["reason"] or "mismatch" in \
            record["reason"]
        # The snapshot pair was moved out of the tenant dir.
        assert not list(store.root.glob("snapshot-*"))

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        store = self.make_store(tmp_path)
        store.write_snapshot(4, {"gen": "old"})
        # Plant a newer, corrupt generation beside it (compaction
        # normally removes the old one; simulate a partial write).
        newest = store.root / "snapshot-000000000009.bin"
        newest.write_bytes(b"garbage")
        meta = {"format": 1, "seq": 9, "sha256": "0" * 64,
                "t_unix_s": 0.0}
        newest.with_suffix(".meta.json").write_text(json.dumps(meta))
        seq, state = store.load_snapshot()
        assert (seq, state) == (4, {"gen": "old"})
        assert store.snapshot_quarantines == 1

    def test_unpicklable_snapshot_is_survivable(self, tmp_path):
        store = self.make_store(tmp_path)
        path = store.write_snapshot(2, {"ok": True})
        # Valid digest over bytes that are not a pickle at all.
        blob = b"not a pickle"
        import hashlib
        path.write_bytes(blob)
        meta_path = path.with_suffix(".meta.json")
        meta = json.loads(meta_path.read_text())
        meta["sha256"] = hashlib.sha256(blob).hexdigest()
        meta_path.write_text(json.dumps(meta))
        assert store.load_snapshot() is None
        assert store.snapshot_quarantines == 1


# ---------------------------------------------------------------------------
# Controller recovery


class TestControllerRecovery:
    def drive(self, ctl, name, until, start=1, **adv):
        return [ctl.advance(name, until_s=0.01 * k, **adv)
                for k in range(start, until)]

    def test_replay_matches_uninterrupted_run_bitwise(self, tmp_path):
        reference = DaemonController(cache=None)
        reference.register(register_payload("t", **SENSED_SPEC))
        ref_replies = self.drive(reference, "t", 6)
        ref_digest = reference._get("t").stepper.decision_digest()

        ctl = durable_controller(tmp_path, snapshot_every=2)
        ctl.register(register_payload("t", **SENSED_SPEC))
        early = self.drive(ctl, "t", 4)
        del ctl  # crash: nothing flushed beyond the op log/snapshots

        recovered = durable_controller(tmp_path, snapshot_every=2)
        stats = recovered.last_recovery
        assert stats.tenants_recovered == 1
        assert stats.tenants_quarantined == 0
        late = self.drive(recovered, "t", 6, start=4)
        combined = early + late
        assert [json.dumps(r, sort_keys=True) for r in combined] == \
            [json.dumps(r, sort_keys=True) for r in ref_replies]
        assert recovered._get("t").stepper.decision_digest() == \
            ref_digest

    def test_snapshot_restore_bounds_replay(self, tmp_path):
        ctl = durable_controller(tmp_path, snapshot_every=2)
        ctl.register(register_payload("t"))
        self.drive(ctl, "t", 6)  # ops 1..5 -> snapshots at 1, 3, 5
        del ctl
        recovered = durable_controller(tmp_path, snapshot_every=2)
        stats = recovered.last_recovery
        assert stats.snapshot_restores == 1
        # Snapshot at seq 5 covers everything: nothing to replay.
        assert stats.ops_replayed == 0
        assert recovered.telemetry.get("snapshot_restores") == 1

    def test_corrupt_snapshot_falls_back_to_full_replay(self,
                                                        tmp_path):
        ctl = durable_controller(tmp_path, snapshot_every=2)
        ctl.register(register_payload("t"))
        self.drive(ctl, "t", 5)
        store = ctl._get("t").store
        ref_digest = ctl._get("t").stepper.decision_digest()
        del ctl
        for snap in store.root.glob("snapshot-*.bin"):
            snap.write_bytes(b"rotten")
        recovered = durable_controller(tmp_path, snapshot_every=2)
        stats = recovered.last_recovery
        assert stats.snapshot_restores == 0
        assert stats.snapshot_quarantines == 1
        assert stats.ops_replayed == 4  # full replay of ops 1..4
        assert recovered._get("t").stepper.decision_digest() == \
            ref_digest

    def test_tampered_reply_quarantines_on_divergence(self, tmp_path):
        ctl = durable_controller(tmp_path, snapshot_every=100)
        ctl.register(register_payload("t"))
        self.drive(ctl, "t", 4)
        store = ctl._get("t").store
        del ctl
        # Rewrite op 2's journaled reply (its content key covers the
        # payload, not the reply — divergence detection must catch
        # what the key cannot).
        log_path = store.root / OPLOG_FILENAME
        lines = log_path.read_bytes().splitlines(keepends=True)
        doctored = json.loads(lines[2])
        doctored["reply"]["time_s"] = 123.456
        lines[2] = (json.dumps(doctored, sort_keys=True)
                    + "\n").encode()
        log_path.write_bytes(b"".join(lines))
        recovered = durable_controller(tmp_path, snapshot_every=100)
        stats = recovered.last_recovery
        assert stats.tenants_quarantined == 1
        assert "divergence" in stats.quarantine_reasons["t"]
        assert recovered.telemetry.get("replay_divergences") == 1
        with pytest.raises(Exception) as excinfo:
            recovered.advance("t", until_s=0.05)
        assert "quarantined" in str(excinfo.value)

    def test_duplicate_request_id_replays_original_reply(self,
                                                         tmp_path):
        ctl = durable_controller(tmp_path)
        ctl.register(register_payload("t"))
        first = ctl.advance("t", until_s=0.01, request_id="a-1")
        again = ctl.advance("t", until_s=0.01, request_id="a-1")
        assert again == first
        assert ctl.telemetry.get("deduped_requests") == 1
        # The duplicate was not journaled a second time.
        assert ctl._get("t").store.oplog.next_seq == 2

    def test_dedup_window_survives_restart(self, tmp_path):
        ctl = durable_controller(tmp_path)
        ctl.register(register_payload("t"))
        first = ctl.advance("t", until_s=0.01, request_id="a-1")
        del ctl
        recovered = durable_controller(tmp_path)
        again = recovered.advance("t", until_s=0.01,
                                  request_id="a-1")
        assert again == first
        assert recovered.telemetry.get("deduped_requests") == 1

    def test_sensor_feed_journals_and_replays(self, tmp_path):
        ctl = durable_controller(tmp_path)
        ctl.register(register_payload("t", **SENSED_SPEC))
        ctl.advance("t", until_s=0.01)
        ctl.advance("t", until_s=0.02)
        fed = ctl.sensor_feed("t", [4.0, -2.0], uncore_value=1.5)
        assert fed["clamped"] == 1  # -2 W is implausible -> clamped
        assert fed["core_values"] == [4.0, 0.0]
        ref_digest = ctl._get("t").stepper.decision_digest()
        del ctl
        recovered = durable_controller(tmp_path)
        stats = recovered.last_recovery
        assert stats.tenants_quarantined == 0
        assert stats.ops_replayed == 3
        bank = recovered._get("t").stepper.sim.sensor_bank
        # The fed measurement is the channel's last-known-good again
        # (the feed was the final journaled op, so nothing has read
        # over it since).
        assert bank.core(0)._last_good == 4.0
        assert recovered._get("t").stepper.decision_digest() == \
            ref_digest

    def test_sensor_feed_without_bank_is_typed_error(self, tmp_path):
        ctl = durable_controller(tmp_path)
        ctl.register(register_payload("t"))  # no noise/watchdog
        with pytest.raises(Exception) as excinfo:
            ctl.sensor_feed("t", [1.0])
        assert "sensor bank" in str(excinfo.value)

    def test_unregister_removes_durable_state(self, tmp_path):
        ctl = durable_controller(tmp_path)
        ctl.register(register_payload("t"))
        tdir = ctl._get("t").store.root
        assert tdir.is_dir()
        ctl.unregister("t")
        assert not tdir.exists()
        del ctl
        recovered = durable_controller(tmp_path)
        assert recovered.tenants() == []

    def test_status_reports_recovery_and_tenants(self, tmp_path):
        ctl = durable_controller(tmp_path)
        ctl.register(register_payload("t"))
        ctl.advance("t", until_s=0.01)
        del ctl
        recovered = durable_controller(tmp_path)
        status = recovered.status()
        assert status["durable"] is True
        assert [t["tenant"] for t in status["tenants"]] == ["t"]
        assert status["recovery"]["tenants_recovered"] == 1
        snap = recovered.telemetry_snapshot()
        assert snap["recovery"]["tenants_recovered"] == 1
        assert snap["quarantined"] == {}

    def test_incomplete_tenant_dir_is_skipped(self, tmp_path):
        state = StateDir(tmp_path / "state")
        # A directory with no journaled register op: the daemon died
        # before admitting anything — nothing to restore.
        store = state.store_for("ghost")
        store.root.mkdir(parents=True)
        (store.root / OPLOG_FILENAME).write_bytes(b"")
        ctl = durable_controller(tmp_path)
        assert ctl.tenants() == []
        assert ctl.last_recovery.tenants_recovered == 0
        # A fresh register may adopt the name (stale dir wiped).
        ctl.register(register_payload("ghost"))
        assert ctl._get("ghost").store.oplog.next_seq == 1


# ---------------------------------------------------------------------------
# Reconnecting client


class TestReconnectingClient:
    def test_backoff_schedule_is_deterministic(self):
        delays = [backoff_delay_s(k, base_s=0.05, cap_s=2.0)
                  for k in range(8)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0]
        with pytest.raises(ValueError):
            backoff_delay_s(-1)

    def test_backoff_under_fake_clock(self):
        slept = []

        def factory(host, port, timeout_s):
            raise ConnectionRefusedError("nobody home")

        client = ReconnectingClient(
            "127.0.0.1", 1, max_retries=4, base_s=0.05, cap_s=2.0,
            sleep=slept.append, client_factory=factory)
        with pytest.raises(OSError):
            client.request("ping")
        assert slept == [0.05, 0.1, 0.2, 0.4]
        assert client.retries == 4

    def test_typed_errors_are_never_retried(self):
        ctl = DaemonController(cache=None)
        slept = []
        with ServerThread(ctl) as (host, port):
            client = ReconnectingClient(host, port,
                                        sleep=slept.append)
            with pytest.raises(DaemonError):
                client.request("advance", tenant="nope",
                               until_s=0.01)
            assert slept == []
            client.close()

    def test_drop_mid_request_retries_and_dedups(self, tmp_path):
        state = tmp_path / "state"
        ctl = DaemonController(state_dir=state, cache=None)
        thread = ServerThread(ctl)
        host, port = thread.start()
        client = ReconnectingClient(host, port, timeout_s=10)
        client.request("register", **wire_payload("t"))
        first = client.advance("t", until_s=0.01)
        thread.stop()  # the daemon "crashes" between requests

        # Requests during the outage retry, then give up.
        hopeless = ReconnectingClient(host, port, max_retries=1,
                                      base_s=0.01,
                                      sleep=lambda s: None)
        with pytest.raises(OSError):
            hopeless.ping()

        ctl2 = DaemonController(state_dir=state, cache=None)
        thread2 = ServerThread(ctl2, port=port)
        try:
            thread2.start()
            # Same request_id as the pre-crash advance: the daemon
            # replays the original reply exactly once, no re-run.
            again = client.advance("t", until_s=0.01,
                                   request_id="req-2")
            assert again == first
            assert ctl2.telemetry.get("deduped_requests") == 1
            assert client.connects == 2
            # And the run continues from where it left off.
            more = client.advance("t", until_s=0.02)
            assert more["time_s"] >= 0.02 - 1e-9
        finally:
            client.close()
            thread2.stop()

    def test_drop_mid_subscription_resubscribes(self, tmp_path):
        state = tmp_path / "state"
        ctl = DaemonController(state_dir=state, cache=None)
        thread = ServerThread(ctl)
        host, port = thread.start()
        client = ReconnectingClient(host, port, timeout_s=10)
        client.request("register", **wire_payload("t"))
        client.subscribe("t")
        client.advance("t", until_s=0.01)
        assert any(e["event"] == "decision"
                   for e in client.drain_events(timeout_s=0.3))
        thread.stop()
        # The dead wire reads as quiet, and the connection is shed.
        assert client.next_event(timeout_s=0.2) is None

        ctl2 = DaemonController(state_dir=state, cache=None)
        thread2 = ServerThread(ctl2, port=port)
        try:
            thread2.start()
            client.advance("t", until_s=0.02)  # reconnect+resubscribe
            events = client.drain_events(timeout_s=0.3)
            assert any(e["event"] == "decision" for e in events)
        finally:
            client.close()
            thread2.stop()


# ---------------------------------------------------------------------------
# SIGKILL chaos: a real daemon process, killed and restarted


@pytest.mark.slow
class TestSigkillRestart:
    def spawn(self, state_dir, port=0):
        env = dict(os.environ, REPRO_NO_CACHE="1",
                   PYTHONPATH=str(pathlib.Path("src").resolve()))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "daemon", "serve",
             "--port", str(port), "--state-dir", str(state_dir),
             "--heartbeat", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True)
        while True:
            line = proc.stdout.readline()
            assert line, "daemon died before binding"
            if "listening on" in line:
                return proc, int(line.rsplit(":", 1)[1])

    def test_sigkill_mid_run_recovers_bitwise(self, tmp_path):
        # Reference: the same tenant driven in-process, no crash.
        reference = DaemonController(cache=None)
        reference.register(register_payload("victim", **SENSED_SPEC))
        ref_all = []
        for k in range(1, 6):
            ref_all.extend(reference.advance(
                "victim", until_s=0.01 * k)["decisions"])

        state = tmp_path / "state"
        proc, port = self.spawn(state)
        client = ReconnectingClient("127.0.0.1", port, timeout_s=60)
        try:
            client.request("register",
                           **wire_payload("victim", **SENSED_SPEC),
                           request_id="reg-1")
            replies = [client.advance("victim", until_s=0.01 * k,
                                      request_id=f"adv-{k}")
                       for k in range(1, 3)]
            # Fire the next advance and SIGKILL the daemon while it
            # is (plausibly) mid-flight: the op is either journaled
            # (reply replayed on retry) or not (re-executed) — both
            # must land on the same decision stream.
            raw = client._ensure()
            raw.send_raw((json.dumps(
                {"v": 1, "type": "advance", "id": 99,
                 "tenant": "victim", "until_s": 0.03,
                 "request_id": "adv-3"}) + "\n").encode())
            time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

            proc2, port2 = self.spawn(state)
            try:
                client.host, client.port = "127.0.0.1", port2
                client.close()  # force a reconnect to the new port
                replies.append(client.advance(
                    "victim", until_s=0.03, request_id="adv-3"))
                for k in range(4, 6):
                    replies.append(client.advance(
                        "victim", until_s=0.01 * k,
                        request_id=f"adv-{k}"))
                status = client.status()
                assert status["durable"] is True
                assert status["recovery"]["tenants_quarantined"] == 0
                info, = [t for t in status["tenants"]
                         if t["tenant"] == "victim"]
                # adv-5 reaches the tenant's full 0.05 s duration.
                assert info["status"] == "finished"
                # The surviving stream is bitwise what an
                # uninterrupted run produces.
                all_decisions = [d for r in replies
                                 for d in r["decisions"]]
                assert json.dumps(all_decisions, sort_keys=True) == \
                    json.dumps(ref_all, sort_keys=True)
                # Zero quarantines of any kind after the crash.
                counters = client.telemetry()["counters"]
                assert counters["snapshot_quarantines"] == 0
                assert counters["replay_divergences"] == 0
            finally:
                proc2.kill()
                proc2.wait(timeout=30)
        finally:
            client.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
