"""Tests for repro.experiments.common and the shared runners."""

import numpy as np
import pytest

from repro.config import COST_PERFORMANCE, DEFAULT_TECH
from repro.experiments.common import (
    ChipFactory,
    format_rows,
    full_run,
    histogram,
)
from repro.experiments.pm_runner import (
    run_pm_comparison,
    standard_algorithms,
)
from repro.experiments.sched_runner import run_policy_comparison
from repro.runtime.evaluation import evaluate_max_levels
from repro.sched import RandomPolicy, VarP


class TestChipFactory:
    def test_chip_is_cached(self):
        factory = ChipFactory(seed=5)
        assert factory.chip(0) is factory.chip(0)

    def test_chips_prefix(self):
        factory = ChipFactory(seed=5)
        chips = factory.chips(2)
        assert len(chips) == 2
        assert chips[0].die_id == 0
        assert chips[1].die_id == 1

    def test_same_seed_same_chips(self):
        a = ChipFactory(seed=7).chip(0)
        b = ChipFactory(seed=7).chip(0)
        np.testing.assert_array_equal(a.fmax_array, b.fmax_array)

    def test_different_seed_differs(self):
        a = ChipFactory(seed=7).chip(0)
        b = ChipFactory(seed=8).chip(0)
        assert not np.array_equal(a.fmax_array, b.fmax_array)

    def test_batch_grows_without_invalidating(self):
        factory = ChipFactory(seed=9)
        first = factory.chip(0)
        factory.chips(3)
        assert factory.chip(0) is first

    def test_incremental_growth_matches_full_batch(self):
        """chip(i) must not depend on how the die batch was grown.

        DieBatch seeds each die independently, so a factory whose
        internal batch was regrown incrementally (default
        ``n_dies_hint=1``) must produce dies identical to one sized to
        the full batch up front.
        """
        incremental = ChipFactory(seed=11)
        full = ChipFactory(seed=11)
        inc_first = incremental.chip(0)          # batch of 1
        inc_last = incremental.chip(2)           # forces regrowth to 3
        full_last = full.chip(2, n_dies_hint=8)  # batch of 8 up front
        full_first = full.chip(0, n_dies_hint=8)
        np.testing.assert_array_equal(inc_first.fmax_array,
                                      full_first.fmax_array)
        np.testing.assert_array_equal(inc_last.fmax_array,
                                      full_last.fmax_array)
        np.testing.assert_array_equal(inc_first.static_rated_array,
                                      full_first.static_rated_array)


class TestFormatting:
    def test_format_rows_alignment(self):
        table = format_rows(["a", "long-header"],
                            [[1, 2.0], [333, 4.5]], "Title")
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "long-header" in lines[1]
        assert "333" in lines[4]

    def test_format_rows_empty(self):
        table = format_rows(["x"], [])
        assert "x" in table

    def test_format_rows_numpy_scalars(self):
        """np.float32/np.float64/np.integer format like builtins."""
        table = format_rows(
            ["a", "b", "c", "d", "e"],
            [[np.float32(1.5), np.float64(2.5), np.int32(3), 4, 5.0]])
        cells = table.splitlines()[-1].split()
        assert cells == ["1.500", "2.500", "3", "4", "5.000"]

    def test_format_rows_non_numeric_cells(self):
        table = format_rows(["name", "ok"], [["foxton", True]])
        assert "foxton" in table
        assert "True" in table

    def test_histogram(self):
        counts, edges = histogram(np.array([1.0, 1.1, 1.2, 1.9]),
                                  n_bins=3)
        assert counts.sum() == 4
        assert edges.size == 4

    def test_histogram_rejects_empty(self):
        with pytest.raises(ValueError):
            histogram(np.array([]))

    def test_full_run_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_run()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_run()
        monkeypatch.setenv("REPRO_FULL", "0")
        assert not full_run()


class TestSchedRunner:
    def test_baseline_normalised_to_one(self):
        factory = ChipFactory(seed=0)

        def evaluate(chip, workload, assignment):
            return evaluate_max_levels(chip, workload, assignment)

        result = run_policy_comparison(
            factory, (RandomPolicy(), VarP()), evaluate,
            n_threads=4, n_trials=2, n_dies=1)
        base = result["Random"]
        assert base.power == pytest.approx(1.0)
        assert base.mips == pytest.approx(1.0)
        assert base.ed2 == pytest.approx(1.0)

    def test_missing_baseline_rejected(self):
        factory = ChipFactory(seed=0)
        with pytest.raises(ValueError):
            run_policy_comparison(
                factory, (VarP(),), evaluate_max_levels,
                n_threads=4, n_trials=1, n_dies=1)


class TestPmRunner:
    def test_standard_algorithms(self):
        algos = standard_algorithms(include_sann=True)
        names = [a.name for a in algos]
        assert names == ["Random+Foxton*", "VarF&AppIPC+Foxton*",
                         "VarF&AppIPC+LinOpt", "VarF&AppIPC+SAnn"]
        assert len(standard_algorithms(include_sann=False)) == 3

    def test_static_protocol_baseline_one(self):
        factory = ChipFactory(seed=0)
        result = run_pm_comparison(
            factory, COST_PERFORMANCE, n_threads=4, n_trials=1,
            n_dies=1, protocol="static",
            algorithms=standard_algorithms(include_sann=False,
                                           online=False))
        assert result["Random+Foxton*"].mips == pytest.approx(1.0)
        assert result["VarF&AppIPC+LinOpt"].mips > 0.9

    def test_bad_protocol_rejected(self):
        factory = ChipFactory(seed=0)
        with pytest.raises(ValueError):
            run_pm_comparison(factory, COST_PERFORMANCE, 4, 1, 1,
                              protocol="banana")
