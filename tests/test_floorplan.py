"""Tests for repro.floorplan (geometry, units, CMP builder)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import ArchConfig, DEFAULT_ARCH
from repro.floorplan import (
    CORE_UNITS,
    L2_BAND_FRACTION,
    Rect,
    UnitKind,
    build_floorplan,
    layout_core_units,
)


def rects(max_coord=100.0):
    coord = st.floats(min_value=0.0, max_value=max_coord)
    size = st.floats(min_value=0.1, max_value=max_coord)
    return st.builds(
        lambda x, y, w, h: Rect(x, y, x + w, y + h),
        coord, coord, size, size)


class TestRect:
    def test_basic_properties(self):
        r = Rect(1.0, 2.0, 4.0, 6.0)
        assert r.width == pytest.approx(3.0)
        assert r.height == pytest.approx(4.0)
        assert r.area == pytest.approx(12.0)
        assert r.centre == pytest.approx((2.5, 4.0))

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 0)

    def test_contains_edges_inclusive(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains(0, 0)
        assert r.contains(1, 1)
        assert not r.contains(1.01, 0.5)

    def test_overlaps(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 3, 3))
        assert not a.overlaps(Rect(2, 0, 3, 1))  # shares edge only
        assert not a.overlaps(Rect(5, 5, 6, 6))

    @given(rects(), rects())
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    def test_inset(self):
        r = Rect(0, 0, 4, 4).inset(1.0)
        assert (r.x0, r.y0, r.x1, r.y1) == (1.0, 1.0, 3.0, 3.0)

    def test_inset_rejects_large_margin(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 2, 2).inset(1.0)

    def test_subgrid_partitions_area(self):
        r = Rect(0, 0, 6, 4)
        cells = [c for _, _, c in r.subgrid(3, 2)]
        assert len(cells) == 6
        assert sum(c.area for c in cells) == pytest.approx(r.area)
        for i, a in enumerate(cells):
            for b in cells[i + 1:]:
                assert not a.overlaps(b)

    def test_distance_to(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(3, 0, 5, 2)
        assert a.distance_to(b) == pytest.approx(3.0)


class TestCoreUnits:
    def test_area_fractions_sum_to_one(self):
        assert sum(u.area_fraction for u in CORE_UNITS) == pytest.approx(1.0)

    def test_weights_sum_to_one(self):
        assert sum(u.dynamic_weight for u in CORE_UNITS) == pytest.approx(
            1.0, abs=0.01)
        assert sum(u.leakage_weight for u in CORE_UNITS) == pytest.approx(
            1.0, abs=0.01)

    def test_both_kinds_present(self):
        kinds = {u.kind for u in CORE_UNITS}
        assert kinds == {UnitKind.LOGIC, UnitKind.SRAM}

    def test_unique_names(self):
        names = [u.name for u in CORE_UNITS]
        assert len(names) == len(set(names))

    def test_layout_covers_core_exactly(self):
        core = Rect(2.0, 3.0, 6.0, 7.0)
        placed = layout_core_units(core, core_id=3)
        assert len(placed) == len(CORE_UNITS)
        assert sum(p.rect.area for p in placed) == pytest.approx(core.area)
        for p in placed:
            assert p.core_id == 3
            assert core.contains(*p.rect.centre)


class TestBuildFloorplan:
    def test_twenty_cores_in_5x4(self):
        fp = build_floorplan(DEFAULT_ARCH)
        assert fp.n_cores == 20
        assert len(fp.l2_blocks) == 2

    def test_core_zero_is_top_left(self):
        # Figure 3: C1 sits at the top-left of the core array.
        fp = build_floorplan(DEFAULT_ARCH)
        xs = [r.centre[0] for r in fp.cores]
        ys = [r.centre[1] for r in fp.cores]
        assert fp.cores[0].centre[0] == pytest.approx(min(xs))
        assert fp.cores[0].centre[1] == pytest.approx(max(ys))

    def test_no_core_overlaps(self):
        fp = build_floorplan(DEFAULT_ARCH)
        blocks = list(fp.cores) + list(fp.l2_blocks)
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert not a.overlaps(b)

    def test_blocks_tile_the_die(self):
        fp = build_floorplan(DEFAULT_ARCH)
        total = sum(r.area for r in fp.cores)
        total += sum(r.area for r in fp.l2_blocks)
        assert total == pytest.approx(fp.die.area)

    def test_l2_band_fraction(self):
        fp = build_floorplan(DEFAULT_ARCH)
        band_area = 2 * L2_BAND_FRACTION * fp.die.area
        assert sum(r.area for r in fp.l2_blocks) == pytest.approx(band_area)

    def test_core_units_per_core(self):
        fp = build_floorplan(DEFAULT_ARCH)
        assert len(fp.core_units(0)) == len(CORE_UNITS)
        with pytest.raises(ValueError):
            fp.core_units(20)

    def test_blocks_order_cores_first(self):
        fp = build_floorplan(DEFAULT_ARCH)
        names = [n for n, _ in fp.blocks()]
        assert names[:20] == [f"core{i}" for i in range(20)]
        assert names[20:] == ["l2_0", "l2_1"]

    @pytest.mark.parametrize("n_cores", [4, 8, 15, 16])
    def test_other_core_counts(self, n_cores):
        arch = ArchConfig(n_cores=n_cores, die_area_mm2=200.0)
        fp = build_floorplan(arch)
        assert fp.n_cores == n_cores
        blocks = list(fp.cores) + list(fp.l2_blocks)
        total = sum(r.area for r in blocks)
        assert total == pytest.approx(fp.die.area)
