"""Regression tests for ``repro.parallel``: the sharded batch runner
and the persistent characterisation cache.

The load-bearing guarantees: worker count never changes a result
(sharded runs are bitwise-identical to the serial loop), a cache hit
is bitwise-identical to a cold characterisation, and the cache key
covers everything the characterisation depends on.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.common import ChipFactory
from repro.parallel import (
    CharacterizationCache,
    cache_enabled,
    cache_key,
    characterize_batch,
    get_default_cache,
    parallel_config,
    profile_from_payload,
    profile_payload,
    resolve_shard_backoff,
    resolve_shard_retries,
    resolve_workers,
    run_sharded,
    shard_indices,
    spawn_seeds,
)
from repro.parallel.sharding import (
    DEFAULT_BACKOFF_S,
    DEFAULT_MAX_SHARD_RETRIES,
)


def payloads_equal(a, b) -> bool:
    """Bitwise comparison of two characterisation payloads."""
    if set(a) != set(b):
        return False
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not np.array_equal(np.asarray(va), np.asarray(vb)):
                return False
        elif va != vb:
            return False
    return True


class TestSharding:
    def test_shards_partition_in_order(self):
        for n_items in (1, 5, 16, 17):
            for n_shards in (1, 2, 4, 40):
                shards = shard_indices(n_items, n_shards)
                merged = np.concatenate(shards)
                np.testing.assert_array_equal(merged, np.arange(n_items))
                assert len(shards) == min(n_shards, n_items)
                assert all(s.size > 0 for s in shards)

    def test_spawn_seeds_deterministic(self):
        a = spawn_seeds(42, 4)
        b = spawn_seeds(42, 4)
        assert len(a) == 4
        for sa, sb in zip(a, b):
            assert (np.random.default_rng(sa).integers(1 << 30)
                    == np.random.default_rng(sb).integers(1 << 30))

    def test_run_sharded_merges_in_item_order(self):
        items = list(range(23))
        out = run_sharded(_double_all, items, workers=3)
        assert out == [2 * i for i in items]

    def test_run_sharded_serial_fallback(self):
        items = list(range(5))
        assert run_sharded(_double_all, items, workers=1) == \
            [2 * i for i in items]


def _double_all(items):
    return [2 * i for i in items]


class TestCacheKey:
    def test_key_sensitivity(self, tech, small_arch):
        base = cache_key(tech, small_arch, 0, 0)
        assert cache_key(tech, small_arch, 0, 0) == base
        assert cache_key(tech, small_arch, 1, 0) != base
        assert cache_key(tech, small_arch, 0, 1) != base
        assert cache_key(tech.with_sigma_over_mu(0.06),
                         small_arch, 0, 0) != base
        smaller = type(small_arch)(n_cores=4, die_area_mm2=140.0,
                                   grid_resolution=32)
        assert cache_key(tech, smaller, 0, 0) != base


class TestPayloadRoundTrip:
    def test_disk_round_trip_is_bitwise(self, tech, small_arch, tmp_path):
        cache = CharacterizationCache(tmp_path / "cache")
        [profile] = characterize_batch(tech, small_arch, 7, [0],
                                       workers=1, cache=cache)
        key = cache_key(tech, small_arch, 7, 0)
        loaded = cache.load(key)
        assert loaded is not None
        assert payloads_equal(loaded, profile_payload(profile))
        rebuilt = profile_from_payload(loaded, tech, small_arch)
        assert payloads_equal(profile_payload(rebuilt),
                              profile_payload(profile))

    def test_corrupt_entry_loads_as_none_and_is_quarantined(
            self, tech, small_arch, tmp_path):
        cache = CharacterizationCache(tmp_path / "cache")
        key = cache_key(tech, small_arch, 7, 0)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz file")
        assert cache.load(key) is None
        assert cache.stats["corrupt"] == 1
        assert cache.stats["misses"] == 0
        assert (cache.quarantine_root / path.name).exists()

    def test_store_is_idempotent(self, tech, small_arch, tmp_path):
        cache = CharacterizationCache(tmp_path / "cache")
        [profile] = characterize_batch(tech, small_arch, 7, [0],
                                       workers=1, cache=None)
        payload = profile_payload(profile)
        key = cache_key(tech, small_arch, 7, 0)
        cache.store(key, payload)
        cache.store(key, payload)
        assert payloads_equal(cache.load(key), payload)


class TestDeterminism:
    N_DIES = 4

    @pytest.fixture(scope="class")
    def serial_payloads(self, tech, small_arch):
        profiles = characterize_batch(tech, small_arch, 3,
                                      list(range(self.N_DIES)),
                                      workers=1, cache=None)
        return [profile_payload(p) for p in profiles]

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_sharded_matches_serial_bitwise(self, tech, small_arch,
                                            workers, serial_payloads):
        profiles = characterize_batch(tech, small_arch, 3,
                                      list(range(self.N_DIES)),
                                      workers=workers, cache=None)
        assert len(profiles) == self.N_DIES
        for profile, expected in zip(profiles, serial_payloads):
            assert payloads_equal(profile_payload(profile), expected)

    def test_cache_hit_matches_cold_bitwise(self, tech, small_arch,
                                            tmp_path, serial_payloads):
        cache = CharacterizationCache(tmp_path / "cache")
        indices = list(range(self.N_DIES))
        cold = characterize_batch(tech, small_arch, 3, indices,
                                  workers=1, cache=cache)
        assert cache.stats["misses"] == self.N_DIES
        assert cache.stats["stores"] == self.N_DIES
        warm = characterize_batch(tech, small_arch, 3, indices,
                                  workers=1, cache=cache)
        assert cache.stats["hits"] == self.N_DIES
        for cold_p, warm_p, expected in zip(cold, warm, serial_payloads):
            assert payloads_equal(profile_payload(warm_p),
                                  profile_payload(cold_p))
            assert payloads_equal(profile_payload(warm_p), expected)

    def test_duplicate_and_unordered_indices(self, tech, small_arch):
        profiles = characterize_batch(tech, small_arch, 3, [2, 0, 2],
                                      workers=1, cache=None)
        assert profiles[0].die_id == 2
        assert profiles[1].die_id == 0
        assert payloads_equal(profile_payload(profiles[0]),
                              profile_payload(profiles[2]))


class TestConfigPlumbing:
    def test_parallel_config_overrides_and_restores(self, tmp_path):
        before_workers = resolve_workers(None)
        with parallel_config(workers=3, cache_enabled=True,
                             cache_root=tmp_path / "c"):
            assert resolve_workers(None) == 3
            assert resolve_workers(5) == 5
            assert cache_enabled()
            assert get_default_cache().root == tmp_path / "c"
        assert resolve_workers(None) == before_workers

    def test_cache_disable(self, tmp_path):
        with parallel_config(cache_enabled=False):
            assert not cache_enabled()
            assert get_default_cache() is None

    def test_env_defaults(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert resolve_workers(None) == 6
        assert not cache_enabled()
        monkeypatch.setenv("REPRO_NO_CACHE", "0")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert cache_enabled()
        assert get_default_cache().root == tmp_path / "envcache"


class TestShardRetryKnobs:
    """Satellite: configurable run_sharded retry budget and backoff."""

    def test_defaults_unchanged(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_SHARD_BACKOFF_S", raising=False)
        assert resolve_shard_retries() == DEFAULT_MAX_SHARD_RETRIES == 2
        assert resolve_shard_backoff() == DEFAULT_BACKOFF_S == 0.05

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_RETRIES", "7")
        monkeypatch.setenv("REPRO_SHARD_BACKOFF_S", "9.0")
        with parallel_config(shard_retries=5, shard_backoff_s=1.0):
            assert resolve_shard_retries(1) == 1
            assert resolve_shard_backoff(0.0) == 0.0

    def test_parallel_config_overrides_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_SHARD_BACKOFF_S", raising=False)
        with parallel_config(shard_retries=5, shard_backoff_s=0.25):
            assert resolve_shard_retries() == 5
            assert resolve_shard_backoff() == 0.25
        assert resolve_shard_retries() == DEFAULT_MAX_SHARD_RETRIES
        assert resolve_shard_backoff() == DEFAULT_BACKOFF_S

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_RETRIES", "4")
        monkeypatch.setenv("REPRO_SHARD_BACKOFF_S", "0.125")
        assert resolve_shard_retries() == 4
        assert resolve_shard_backoff() == 0.125
        monkeypatch.setenv("REPRO_SHARD_RETRIES", "junk")
        monkeypatch.setenv("REPRO_SHARD_BACKOFF_S", "junk")
        assert resolve_shard_retries() == DEFAULT_MAX_SHARD_RETRIES
        assert resolve_shard_backoff() == DEFAULT_BACKOFF_S
        monkeypatch.setenv("REPRO_SHARD_RETRIES", "-3")
        monkeypatch.setenv("REPRO_SHARD_BACKOFF_S", "-1.0")
        assert resolve_shard_retries() == 0
        assert resolve_shard_backoff() == 0.0

    def test_merge_order_unchanged_under_knobs(self):
        items = list(range(23))
        expected = [2 * i for i in items]
        assert run_sharded(_double_all, items, workers=3) == expected
        with parallel_config(shard_retries=0, shard_backoff_s=0.0):
            assert (run_sharded(_double_all, items, workers=3)
                    == expected)
        assert run_sharded(_double_all, items, workers=3,
                           max_shard_retries=0,
                           backoff_s=0.0) == expected


class TestChipFactoryIntegration:
    def test_factory_serial_equals_sharded(self, tech, small_arch,
                                           tmp_path):
        serial = ChipFactory(tech=tech, arch=small_arch, seed=11,
                             workers=1, cache=None).chips(3)
        cache = CharacterizationCache(tmp_path / "cache")
        sharded = ChipFactory(tech=tech, arch=small_arch, seed=11,
                              workers=2, cache=cache).chips(3)
        for a, b in zip(serial, sharded):
            assert payloads_equal(profile_payload(a), profile_payload(b))

    def test_chips_for_arbitrary_indices(self, tech, small_arch):
        factory = ChipFactory(tech=tech, arch=small_arch, seed=11,
                              workers=1, cache=None)
        chips = factory.chips_for([3, 1])
        assert [c.die_id for c in chips] == [3, 1]
        again = factory.chips_for([1, 3])
        assert again[0] is chips[1] and again[1] is chips[0]


class TestPerfGate:
    """The CI gate script itself (stdlib-only, importable)."""

    @pytest.fixture()
    def gate(self):
        import importlib.util
        import pathlib
        path = (pathlib.Path(__file__).parent.parent / "benchmarks"
                / "perf_gate.py")
        spec = importlib.util.spec_from_file_location("perf_gate", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def _write(self, results, name, wall, metrics, full_run=False):
        record = {"name": name, "full_run": full_run,
                  "workers": 1, "wall_time_s": wall, "cache": None,
                  "metrics": metrics}
        (results / f"BENCH_{name}.json").write_text(json.dumps(record))
        return record

    def test_update_then_clean_check(self, gate, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        self._write(results, "figX", 1.0, {"ratio": 1.5, "wall_s": 9.0})
        baseline = tmp_path / "baseline.json"
        argv = ["--results", str(results), "--baseline", str(baseline)]
        assert gate.main(["update"] + argv) == 0
        assert gate.main(["check"] + argv) == 0

    def test_check_failures(self, gate, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        self._write(results, "figX", 1.0, {"ratio": 1.5})
        baseline = tmp_path / "baseline.json"
        argv = ["--results", str(results), "--baseline", str(baseline)]
        assert gate.main(["update"] + argv) == 0

        # Metric drift fails; volatile keys and small walls don't.
        self._write(results, "figX", 1.2, {"ratio": 1.7})
        assert gate.main(["check"] + argv) == 1

        # Wall regression beyond 30% fails.
        self._write(results, "figX", 1.5, {"ratio": 1.5})
        assert gate.main(["check"] + argv) == 1
        # ...unless the escape hatch is set.
        import os
        os.environ["PERF_GATE_SKIP_WALL"] = "1"
        try:
            assert gate.main(["check"] + argv) == 0
        finally:
            del os.environ["PERF_GATE_SKIP_WALL"]

        # Missing record fails.
        (results / "BENCH_figX.json").unlink()
        assert gate.main(["check"] + argv) == 1

    def test_full_run_mismatch_skips(self, gate, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        self._write(results, "figX", 1.0, {"ratio": 1.5})
        baseline = tmp_path / "baseline.json"
        argv = ["--results", str(results), "--baseline", str(baseline)]
        assert gate.main(["update"] + argv) == 0
        self._write(results, "figX", 9.0, {"ratio": 99.0}, full_run=True)
        assert gate.main(["check"] + argv) == 0
