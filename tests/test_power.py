"""Tests for repro.power (dynamic, leakage, sensors, scaling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_ARCH, DEFAULT_TECH, T_HOT_K, T_REF_K
from repro.floorplan import build_floorplan
from repro.power import (
    CORE_STATIC_NOMINAL_W,
    CoreLeakageModel,
    IpcSensor,
    L2LeakageModel,
    L2_STATIC_NOMINAL_W,
    PowerSensor,
    SensorSpec,
    UnitLeakage,
    build_core_leakage,
    ceff_from_reference,
    dynamic_power,
    l2_dynamic_power,
    leakage_calibration,
    leakage_factor,
    subthreshold_slope_factor,
)
from repro.power.scaling import L2_DYNAMIC_FRACTION
from repro.variation import generate_variation_map


class TestDynamicPower:
    def test_formula(self):
        assert dynamic_power(1e-10, 1.0, 4e9) == pytest.approx(0.4)

    def test_quadratic_in_voltage(self):
        p1 = dynamic_power(1e-10, 0.5, 4e9)
        p2 = dynamic_power(1e-10, 1.0, 4e9)
        assert p2 == pytest.approx(4 * p1)

    def test_linear_in_frequency(self):
        p1 = dynamic_power(1e-10, 1.0, 2e9)
        p2 = dynamic_power(1e-10, 1.0, 4e9)
        assert p2 == pytest.approx(2 * p1)

    def test_rejects_negative_ceff(self):
        with pytest.raises(ValueError):
            dynamic_power(-1e-10, 1.0, 4e9)

    def test_rejects_zero_voltage(self):
        with pytest.raises(ValueError):
            dynamic_power(1e-10, 0.0, 4e9)

    def test_ceff_round_trip(self):
        ceff = ceff_from_reference(3.7, 1.0, 4e9)
        assert dynamic_power(ceff, 1.0, 4e9) == pytest.approx(3.7)

    def test_l2_fraction(self):
        assert l2_dynamic_power(50.0) == pytest.approx(
            L2_DYNAMIC_FRACTION * 50.0)
        with pytest.raises(ValueError):
            l2_dynamic_power(-1.0)


class TestLeakageFactor:
    def test_increases_with_temperature(self):
        lo = leakage_factor(1.0, 0.25, T_REF_K, DEFAULT_TECH)
        hi = leakage_factor(1.0, 0.25, T_HOT_K, DEFAULT_TECH)
        assert hi > lo

    def test_increases_with_voltage_superlinearly(self):
        # DIBL makes P_static more than linear in V (Section 4.3.1).
        p06 = leakage_factor(0.6, 0.25, T_REF_K, DEFAULT_TECH)
        p10 = leakage_factor(1.0, 0.25, T_REF_K, DEFAULT_TECH)
        assert p10 / p06 > 1.0 / 0.6

    def test_decreases_with_vth(self):
        lo_vth = leakage_factor(1.0, 0.20, T_REF_K, DEFAULT_TECH)
        hi_vth = leakage_factor(1.0, 0.30, T_REF_K, DEFAULT_TECH)
        assert lo_vth > hi_vth

    def test_exponential_vth_sensitivity(self):
        # 30 mV of Vth should change leakage by a large factor.
        a = leakage_factor(1.0, 0.25, T_REF_K, DEFAULT_TECH)
        b = leakage_factor(1.0, 0.22, T_REF_K, DEFAULT_TECH)
        assert b / a > 1.5

    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            leakage_factor(1.0, 0.25, 0.0, DEFAULT_TECH)

    def test_slope_factor_reasonable(self):
        n = subthreshold_slope_factor(DEFAULT_TECH)
        assert 1.0 < n < 2.5

    @given(st.floats(min_value=0.6, max_value=1.0),
           st.floats(min_value=300.0, max_value=400.0))
    @settings(max_examples=30)
    def test_always_positive(self, vdd, t):
        assert leakage_factor(vdd, 0.25, t, DEFAULT_TECH) > 0


class TestCoreLeakageModel:
    def _model(self, vth_values, weight=1.0):
        unit = UnitLeakage(vth_cells=np.asarray(vth_values), weight=weight)
        calib = leakage_calibration(DEFAULT_TECH)
        return CoreLeakageModel([unit], DEFAULT_TECH, calib)

    def test_nominal_calibration(self):
        model = self._model([DEFAULT_TECH.vth_mean])
        assert model.power(DEFAULT_TECH.vdd_nominal,
                           T_REF_K) == pytest.approx(CORE_STATIC_NOMINAL_W)

    def test_low_vth_core_leaks_more(self):
        low = self._model([0.22])
        high = self._model([0.28])
        assert low.power(1.0, T_REF_K) > high.power(1.0, T_REF_K)

    def test_variation_raises_mean_leakage(self):
        # exp is convex: a symmetric Vth spread leaks more than nominal.
        mu = DEFAULT_TECH.vth_mean
        spread = self._model([mu - 0.03, mu + 0.03])
        nominal = self._model([mu])
        assert spread.power(1.0, T_REF_K) > nominal.power(1.0, T_REF_K)

    def test_weights_respected(self):
        mu = DEFAULT_TECH.vth_mean
        calib = leakage_calibration(DEFAULT_TECH)
        heavy_low = CoreLeakageModel(
            [UnitLeakage(np.array([mu - 0.03]), weight=0.9),
             UnitLeakage(np.array([mu + 0.03]), weight=0.1)],
            DEFAULT_TECH, calib)
        heavy_high = CoreLeakageModel(
            [UnitLeakage(np.array([mu - 0.03]), weight=0.1),
             UnitLeakage(np.array([mu + 0.03]), weight=0.9)],
            DEFAULT_TECH, calib)
        assert heavy_low.power(1.0, T_REF_K) > heavy_high.power(1.0, T_REF_K)

    def test_rejects_empty_units(self):
        with pytest.raises(ValueError):
            CoreLeakageModel([], DEFAULT_TECH, 1.0)

    def test_rejects_empty_cells(self):
        with pytest.raises(ValueError):
            CoreLeakageModel([UnitLeakage(np.array([]), 1.0)],
                             DEFAULT_TECH, 1.0)


class TestBuiltLeakageModels:
    @pytest.fixture(scope="class")
    def vmap(self):
        return generate_variation_map(
            DEFAULT_TECH, DEFAULT_ARCH.die_edge_mm, 32,
            np.random.default_rng(5))

    @pytest.fixture(scope="class")
    def floorplan(self):
        return build_floorplan(DEFAULT_ARCH)

    def test_core_leakage_in_sane_range(self, vmap, floorplan):
        model = build_core_leakage(vmap, floorplan, 0, DEFAULT_TECH)
        p = model.power(1.0, T_REF_K)
        assert 0.1 * CORE_STATIC_NOMINAL_W < p < 10 * CORE_STATIC_NOMINAL_W

    def test_cores_differ(self, vmap, floorplan):
        p = [build_core_leakage(vmap, floorplan, c,
                                DEFAULT_TECH).power(1.0, T_REF_K)
             for c in range(4)]
        assert max(p) > min(p)

    def test_l2_blocks_sum_to_uniform_total(self, vmap, floorplan):
        l2 = L2LeakageModel(vmap, floorplan, DEFAULT_TECH)
        temps = np.full(l2.n_blocks, T_REF_K)
        per_block = l2.power_per_block(temps)
        assert per_block.sum() == pytest.approx(l2.power(T_REF_K))

    def test_l2_nominal_scale(self, vmap, floorplan):
        l2 = L2LeakageModel(vmap, floorplan, DEFAULT_TECH)
        p = l2.power(T_REF_K)
        assert 0.3 * L2_STATIC_NOMINAL_W < p < 5 * L2_STATIC_NOMINAL_W

    def test_l2_block_count_validation(self, vmap, floorplan):
        l2 = L2LeakageModel(vmap, floorplan, DEFAULT_TECH)
        with pytest.raises(ValueError):
            l2.power_per_block(np.array([T_REF_K]))


class TestSensors:
    def test_noise_free_transparent(self):
        assert PowerSensor().read(3.14) == pytest.approx(3.14)
        assert IpcSensor().read(0.7) == pytest.approx(0.7)

    def test_quantisation(self):
        s = PowerSensor(SensorSpec(quantum=0.5))
        assert s.read(3.14) == pytest.approx(3.0)
        assert s.read(3.30) == pytest.approx(3.5)

    def test_noise_is_reproducible(self):
        a = PowerSensor(SensorSpec(noise_sigma=0.1),
                        np.random.default_rng(3))
        b = PowerSensor(SensorSpec(noise_sigma=0.1),
                        np.random.default_rng(3))
        assert a.read(5.0) == b.read(5.0)

    def test_noise_changes_reading(self):
        s = PowerSensor(SensorSpec(noise_sigma=0.5),
                        np.random.default_rng(4))
        readings = {s.read(5.0) for _ in range(5)}
        assert len(readings) > 1

    def test_power_sensor_clamps_at_zero(self):
        s = PowerSensor(SensorSpec(noise_sigma=10.0),
                        np.random.default_rng(0))
        assert min(s.read(0.01) for _ in range(50)) >= 0.0

    def test_rejects_negative_spec(self):
        with pytest.raises(ValueError):
            SensorSpec(noise_sigma=-1.0)
