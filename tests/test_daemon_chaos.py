"""Chaos tests: the daemon under hostile clients and crashing tenants.

Every test stands up a real server (background thread, real sockets)
and attacks it: abrupt disconnects mid-request, malformed/oversized/
unknown-version frames, subscribers too slow for their bounded event
queue, and manager stacks that crash outright. The invariant under
test is always the same — the blast radius stays confined (one reply,
one connection, or one tenant) and the daemon keeps serving everyone
else.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.daemon import (
    DaemonClient,
    DaemonController,
    DaemonError,
    ServerThread,
)
from repro.daemon.protocol import PROTOCOL_VERSION


def fast_tenant(client, name, **overrides):
    spec = dict(seed=3, n_cores=4, n_threads=3, duration_s=0.03,
                dvfs_interval_s=0.01)
    spec.update(overrides)
    return client.register(name, **spec)


def raw_request(client, rtype, req_id=1, **payload):
    frame = {"v": PROTOCOL_VERSION, "type": rtype, "id": req_id}
    frame.update(payload)
    client.send_raw((json.dumps(frame) + "\n").encode("utf-8"))


class TestHostileFrames:
    def test_malformed_frames_get_typed_errors_not_disconnects(self):
        with ServerThread(DaemonController(cache=None)) as (host,
                                                            port):
            with DaemonClient(host, port) as client:
                for raw in (b"not json at all\n", b"[1,2,3]\n",
                            b"\xff\xfe\xfd\n", b'{"v":1}\n'):
                    client.send_raw(raw)
                    reply = client.read_frame()
                    assert reply["ok"] is False
                    assert reply["error"]["code"] == "malformed"
                # Same connection still serves real requests.
                assert client.ping()["pong"]

    def test_unknown_version_is_survivable(self):
        with ServerThread(DaemonController(cache=None)) as (host,
                                                            port):
            with DaemonClient(host, port) as client:
                client.send_raw(b'{"v": 99, "type": "ping"}\n')
                reply = client.read_frame()
                assert reply["error"]["code"] == "unknown_version"
                assert client.ping()["pong"]
                tele = client.telemetry()
                assert tele["counters"][
                    "unknown_version_frames"] == 1

    def test_oversized_frame_survives_connection(self):
        # Above the frame budget but under the transport hard limit:
        # the frame is read, refused with a typed error, and the
        # connection carries on.
        ctl = DaemonController(cache=None)
        with ServerThread(ctl, max_frame_bytes=1024) as (host, port):
            with DaemonClient(host, port) as client:
                raw_request(client, "ping", junk="x" * 4096)
                reply = client.read_frame()
                assert reply["error"]["code"] == "oversized"
                assert client.ping()["pong"]
                assert ctl.telemetry.get("oversized_frames") == 1

    def test_hard_limit_overrun_closes_only_that_connection(self):
        # A frame that overruns the 8x hard read limit desynchronises
        # the stream: that connection gets an oversized error and is
        # dropped — but the server (and other clients) live on.
        ctl = DaemonController(cache=None)
        with ServerThread(ctl, max_frame_bytes=1024) as (host, port):
            with DaemonClient(host, port) as witness:
                assert witness.ping()["pong"]
                with DaemonClient(host, port) as attacker:
                    attacker.send_raw(b"y" * (80 * 1024) + b"\n")
                    reply = attacker.read_frame()
                    assert reply["error"]["code"] == "oversized"
                    assert attacker.read_frame() is None  # EOF
                # The witness connection never noticed.
                assert witness.ping()["pong"]
                fast_tenant(witness, "t0")
                assert witness.advance("t0",
                                       to_end=True)["finished"]


class TestAbruptDisconnect:
    def test_disconnect_mid_request_leaves_server_healthy(self):
        ctl = DaemonController(cache=None)
        with ServerThread(ctl) as (host, port):
            with DaemonClient(host, port) as client:
                fast_tenant(client, "t0")
            # Fire an advance and hang up before the reply.
            rude = DaemonClient(host, port)
            raw_request(rude, "advance", tenant="t0", to_end=True)
            rude._sock.close()
            # The request still ran to completion server-side and
            # the tenant's state is intact for the next client.
            deadline = time.monotonic() + 10
            with DaemonClient(host, port) as client:
                while time.monotonic() < deadline:
                    if client.request("tenant_info",
                                      tenant="t0")["finished"]:
                        break
                    time.sleep(0.01)
                info = client.request("tenant_info", tenant="t0")
                assert info["finished"]
                assert client.request("trace",
                                      tenant="t0")["decisions"] == 3

    def test_disconnect_while_subscribed_does_not_break_publish(self):
        ctl = DaemonController(cache=None)
        with ServerThread(ctl) as (host, port):
            ghost = DaemonClient(host, port)
            ghost.subscribe("*")
            ghost._sock.close()  # subscriber vanishes without a word
            with DaemonClient(host, port) as client:
                fast_tenant(client, "t0")
                # Publishing to the dead subscriber must not disturb
                # the request path.
                assert client.advance("t0", to_end=True)["finished"]
                assert client.ping()["pong"]

    def test_idle_clients_are_reaped(self):
        ctl = DaemonController(cache=None)
        with ServerThread(ctl, idle_timeout_s=0.2) as (host, port):
            idler = DaemonClient(host, port)
            assert idler.ping()["pong"]
            # Go silent past the timeout: the server hangs up on us.
            idler._sock.settimeout(5.0)
            assert idler._readline() == b""  # EOF from the reaper
            idler.close()
            assert ctl.telemetry.get("idle_reaped") == 1
            # Fresh connections are unaffected.
            with DaemonClient(host, port) as client:
                assert client.ping()["pong"]


class TestSlowSubscriber:
    def test_bounded_queue_drops_oldest_and_counts(self):
        # queue_size=2 while one advance publishes 3 decisions plus a
        # finished event back-to-back (no scheduling point between
        # them), so the overflow is deterministic: the oldest events
        # fall out, the freshest survive, and dropped_frames says so.
        ctl = DaemonController(cache=None)
        with ServerThread(ctl, queue_size=2) as (host, port):
            with DaemonClient(host, port) as subscriber, \
                    DaemonClient(host, port) as driver:
                fast_tenant(driver, "t0")
                # Subscribe only now so the queue sees exactly the
                # advance burst (no registered event in flight).
                subscriber.subscribe("t0")
                assert driver.advance("t0", to_end=True)["finished"]
                events = subscriber.drain_events(timeout_s=0.5)
                kinds = [e["event"] for e in events]
                assert len(events) == 2  # the queue's bound
                assert kinds[-1] == "finished"
                assert events[0]["event"] == "decision"
                assert events[0]["data"]["time_s"] == 0.02  # freshest
                assert ctl.telemetry.get("dropped_frames") == 2
            # The driver's replies were never dropped: direct writes
            # bypass the event queue entirely.
            assert ctl.telemetry.get("advances") == 1

    def test_fast_subscriber_loses_nothing(self):
        ctl = DaemonController(cache=None)
        with ServerThread(ctl, queue_size=64) as (host, port):
            with DaemonClient(host, port) as client:
                client.subscribe("t0")
                fast_tenant(client, "t0")
                client.advance("t0", to_end=True)
                events = client.drain_events(timeout_s=0.5)
                kinds = [e["event"] for e in events]
                assert kinds.count("decision") == 3
                assert ctl.telemetry.get("dropped_frames") == 0


class TestTenantBlastRadius:
    def test_manager_fault_quarantines_one_tenant_only(self):
        ctl = DaemonController(cache=None)
        with ServerThread(ctl) as (host, port):
            with DaemonClient(host, port) as client:
                client.subscribe("*")
                fast_tenant(client, "victim", manager={
                    "primary": "crashing", "crash_after": 1,
                    "resilient": False})
                fast_tenant(client, "bystander")
                with pytest.raises(DaemonError) as err:
                    client.advance("victim", to_end=True)
                assert err.value.code == "quarantined"
                # The failure was announced on the event stream.
                events = client.drain_events(timeout_s=0.5)
                assert any(e["event"] == "quarantined"
                           and e["tenant"] == "victim"
                           for e in events)
                # Every later touch gets the same typed error...
                with pytest.raises(DaemonError) as err:
                    client.advance("victim", until_s=0.01)
                assert err.value.code == "quarantined"
                # ...while the bystander, the connection and the
                # server itself are all untouched.
                assert client.advance("bystander",
                                      to_end=True)["finished"]
                trace = client.request("trace", tenant="bystander")
                assert trace["fallback_activations"] == 0
                assert ctl.telemetry.get("quarantines") == 1
                # Quarantined tenants can still be unregistered.
                out = client.request("unregister", tenant="victim")
                assert out["status"] == "quarantined"

    def test_resilient_tenant_degrades_instead_of_dying(self):
        ctl = DaemonController(cache=None)
        with ServerThread(ctl) as (host, port):
            with DaemonClient(host, port) as client:
                fast_tenant(client, "t0", manager={
                    "primary": "crashing", "crash_after": 2,
                    "resilient": True})
                out = client.advance("t0", to_end=True)
                tiers = [d["resilience_tier"]
                         for d in out["decisions"]]
                assert tiers[0] == 0
                assert all(t >= 1 for t in tiers[1:])
                assert ctl.telemetry.get("quarantines") == 0


class TestRawSocketAbuse:
    def test_half_open_and_empty_lines(self):
        with ServerThread(DaemonController(cache=None)) as (host,
                                                            port):
            # A connection that sends nothing and leaves.
            drive_by = socket.create_connection((host, port),
                                                timeout=5)
            drive_by.close()
            # Empty lines are malformed frames, not crashes.
            with DaemonClient(host, port) as client:
                client.send_raw(b"\n\n")
                for _ in range(2):
                    reply = client.read_frame()
                    assert reply["error"]["code"] == "malformed"
                assert client.ping()["pong"]
