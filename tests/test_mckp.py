"""Tests for the exact MCKP solver and the OptimalFrozen manager."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LOW_POWER, PowerEnvironment
from repro.opt import MckpItem, solve_mckp
from repro.opt.mckp import _prepare_class, _upper_hull
from repro.pm import FoxtonStar, LinOpt, OptimalFrozen
from repro.sched import VarFAppIPC
from repro.workloads import Workload, get_app, make_workload


def brute_force(classes, capacity):
    best = None
    for combo in itertools.product(*[range(len(c)) for c in classes]):
        w = sum(classes[i][j].weight for i, j in enumerate(combo))
        v = sum(classes[i][j].value for i, j in enumerate(combo))
        if w <= capacity + 1e-12 and (best is None or v > best):
            best = v
    return best


class TestPreprocessing:
    def test_dominated_items_dropped(self):
        cls = [MckpItem(0, 1.0, 5.0), MckpItem(1, 2.0, 4.0),
               MckpItem(2, 3.0, 6.0)]
        kept = _prepare_class(cls)
        assert [it.index for it in kept] == [0, 2]

    def test_equal_weight_keeps_best(self):
        cls = [MckpItem(0, 1.0, 3.0), MckpItem(1, 1.0, 5.0)]
        kept = _prepare_class(cls)
        assert [it.index for it in kept] == [1]

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            _prepare_class([])

    def test_hull_removes_concave_point(self):
        cls = _prepare_class([MckpItem(0, 0.0, 0.0),
                              MckpItem(1, 1.0, 1.0),
                              MckpItem(2, 2.0, 4.0)])
        hull = _upper_hull(cls)
        # (1, 1) lies under the chord from (0,0) to (2,4).
        assert [it.index for it in hull] == [0, 2]


class TestSolveMckp:
    def test_simple_known_case(self):
        classes = [
            [MckpItem(0, 1.0, 1.0), MckpItem(1, 3.0, 4.0)],
            [MckpItem(0, 1.0, 2.0), MckpItem(1, 2.0, 3.0)],
        ]
        sol = solve_mckp(classes, capacity=5.0)
        assert sol.is_feasible
        assert sol.value == pytest.approx(7.0)  # (1, 1): 4 + 3, w = 5
        assert sol.choice == (1, 1)

    def test_infeasible(self):
        classes = [[MckpItem(0, 5.0, 1.0)]]
        sol = solve_mckp(classes, capacity=1.0)
        assert not sol.is_feasible
        assert sol.choice is None

    def test_single_class(self):
        classes = [[MckpItem(i, float(i), float(i * 2))
                    for i in range(5)]]
        sol = solve_mckp(classes, capacity=3.0)
        assert sol.choice == (3,)

    def test_exact_capacity_boundary(self):
        classes = [[MckpItem(0, 2.0, 5.0)], [MckpItem(0, 3.0, 7.0)]]
        sol = solve_mckp(classes, capacity=5.0)
        assert sol.is_feasible
        assert sol.weight == pytest.approx(5.0)

    def test_rejects_no_classes(self):
        with pytest.raises(ValueError):
            solve_mckp([], capacity=1.0)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 5))
        classes = []
        for _ in range(n):
            k = int(rng.integers(1, 5))
            classes.append([
                MckpItem(i, float(rng.uniform(0, 5)),
                         float(rng.uniform(0, 10)))
                for i in range(k)])
        cap = float(rng.uniform(0, 12))
        sol = solve_mckp(classes, cap)
        best = brute_force(classes, cap)
        if best is None:
            assert not sol.is_feasible
        else:
            assert sol.is_feasible
            assert sol.value == pytest.approx(best, abs=1e-8)

    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_integer_ties(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4))
        classes = []
        for _ in range(n):
            k = int(rng.integers(1, 5))
            classes.append([
                MckpItem(i, float(rng.integers(0, 6)),
                         float(rng.integers(0, 8)))
                for i in range(k)])
        cap = float(rng.integers(0, 14))
        sol = solve_mckp(classes, cap)
        best = brute_force(classes, cap)
        if best is None:
            assert not sol.is_feasible
        else:
            assert sol.value == pytest.approx(best, abs=1e-8)

    def test_reported_weight_consistent(self):
        classes = [
            [MckpItem(0, 1.0, 1.0), MckpItem(1, 2.5, 3.0)],
            [MckpItem(0, 0.5, 0.5), MckpItem(1, 1.5, 2.0)],
        ]
        sol = solve_mckp(classes, capacity=4.0)
        w = sum(classes[i][j].weight
                for i, j in enumerate(sol.choice))
        assert sol.weight == pytest.approx(w)


class TestOptimalFrozen:
    def test_meets_constraints(self, chip, rng):
        wl = make_workload(8, rng)
        asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
        res = OptimalFrozen(n_iterations=2).set_levels(
            chip, wl, asg, LOW_POWER)
        p_target = LOW_POWER.p_target(8, chip.n_cores)
        assert res.state.total_power <= p_target + 1e-6

    def test_not_worse_than_linopt(self, chip, rng):
        wl = make_workload(8, rng)
        asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
        lin = LinOpt().set_levels(chip, wl, asg, LOW_POWER)
        opt = OptimalFrozen(n_iterations=2).set_levels(
            chip, wl, asg, LOW_POWER)
        # Exact frozen-temperature optimum should match or beat the
        # LP heuristic (small thermal-coupling noise allowed).
        assert (opt.state.throughput_mips
                >= 0.99 * lin.state.throughput_mips)

    def test_respects_per_core_cap(self, chip, rng):
        wl = Workload((get_app("vortex"), get_app("crafty")))
        asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
        env = PowerEnvironment("Capped", 60.0, p_core_max=3.0)
        res = OptimalFrozen(n_iterations=2).set_levels(
            chip, wl, asg, env)
        assert np.all(res.state.core_power <= 3.0 + 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            OptimalFrozen(n_iterations=0)
