"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.experiments import EXPERIMENTS


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nonexistent"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_table5_runs(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "completed in" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_fig4_with_dies_flag(self, capsys):
        assert main(["fig4", "--dies", "2"]) == 0
        assert "Figure 4(a)" in capsys.readouterr().out

    def test_fig7_with_trials_flag(self, capsys):
        assert main(["fig7", "--trials", "2"]) == 0
        assert "Figure 7(a)" in capsys.readouterr().out

    def test_fig11_static_no_sann(self, capsys):
        assert main(["fig11", "--trials", "1", "--static",
                     "--no-sann"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11(a)" in out
        assert "SAnn" not in out


class TestCliParallelFlags:
    def test_workers_flag_populates_cache(self, capsys, tmp_path,
                                          monkeypatch):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        assert main(["fig5", "--dies", "2", "--workers", "2"]) == 0
        assert "Figure 5" in capsys.readouterr().out
        assert list(cache_dir.rglob("*.npz"))

    def test_no_cache_flag(self, capsys, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        assert main(["fig4", "--dies", "1", "--no-cache"]) == 0
        assert "Figure 4(a)" in capsys.readouterr().out
        assert not cache_dir.exists()


class TestCliCache:
    @pytest.fixture(autouse=True)
    def _cache_env(self, tmp_path, monkeypatch):
        self.cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(self.cache_dir))

    def _populate(self):
        assert main(["fig4", "--dies", "2", "--workers", "1"]) == 0
        return list(self.cache_dir.rglob("*.npz"))

    def test_stats(self, capsys):
        entries = self._populate()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(self.cache_dir) in out
        assert f"entries           {len(entries)}" in out

    def test_verify_clean_and_corrupt(self, capsys):
        entries = self._populate()
        assert main(["cache", "verify"]) == 0
        assert "0 corrupt" in capsys.readouterr().out
        entries[0].write_bytes(b"garbage")
        assert main(["cache", "verify"]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out
        assert "quarantined" in out

    def test_gc_requires_budget(self, capsys):
        assert main(["cache", "gc"]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_gc_evicts_to_budget(self, capsys):
        self._populate()
        assert main(["cache", "gc", "--max-bytes", "0"]) == 0
        assert "0 left" in capsys.readouterr().out
        assert not list(self.cache_dir.rglob("*.npz"))

    def test_clear(self, capsys):
        self._populate()
        assert main(["cache", "clear"]) == 0
        assert "cleared" in capsys.readouterr().out
        assert not list(self.cache_dir.rglob("*.npz"))

    def test_cache_dir_flag_overrides_env(self, tmp_path, capsys):
        other = tmp_path / "elsewhere"
        assert main(["cache", "stats", "--cache-dir", str(other)]) == 0
        assert str(other) in capsys.readouterr().out


class TestCliCharts:
    def test_fig4_chart(self, capsys):
        assert main(["fig4", "--dies", "2", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "histogram" in out
        assert "█" in out

    def test_fig5_chart(self, capsys):
        assert main(["fig5", "--dies", "2", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "ratios vs Vth" in out

    def test_chartless_experiment_is_fine(self, capsys):
        assert main(["table5", "--chart"]) == 0
        assert "Table 5" in capsys.readouterr().out
