"""Smoke + shape tests for the paper-figure experiment modules.

Every experiment must run at reduced scale and produce a formatted
table; the cheap ones additionally get shape assertions against the
paper's qualitative results.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, ChipFactory
from repro.experiments import (
    ablations,
    fig04_variation,
    fig05_sigma_sweep,
    fig06_power_freq,
    fig07_unifreq,
    fig09_nunifreq_perf,
    fig10_nunifreq_ed2,
    fig11_dvfs,
    fig14_granularity,
    fig15_linopt_time,
    table5_apps,
)


@pytest.fixture(scope="module")
def factory():
    return ChipFactory(seed=0)


class TestRegistry:
    def test_all_figures_and_tables_present(self):
        figures = {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
                   "fig10", "fig11", "fig12", "fig13", "fig14",
                   "fig15", "table5"}
        extensions = {"ext-parallel", "ext-aging", "ext-abb",
                      "ext-faults"}
        assert set(EXPERIMENTS) == figures | extensions

    def test_every_module_has_run(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)


class TestTable5:
    def test_roundtrip(self):
        result = table5_apps.run()
        assert len(result.rows) == 14
        table = result.format_table()
        assert "bzip2" in table and "vortex" in table


class TestFig4(object):
    def test_ratios_in_band(self, factory):
        result = fig04_variation.run(n_dies=4, factory=factory)
        # Frequency ratios: paper band 1.2-1.5 (we allow margin).
        assert 1.1 < result.mean_freq_ratio < 1.6
        # Power ratios: paper 1.4-1.7; our leakage-heavier calibration
        # runs somewhat above.
        assert 1.3 < result.mean_power_ratio < 2.6
        assert "Figure 4(a)" in result.format_table()


class TestFig5:
    def test_ratios_grow_with_sigma(self):
        result = fig05_sigma_sweep.run(n_dies=3,
                                       sigma_values=(0.03, 0.12))
        assert result.freq_ratio[1] > result.freq_ratio[0]
        assert result.power_ratio[1] > result.power_ratio[0]
        assert "sigma/mu" in result.format_table()


class TestFig6:
    def test_maxf_dominates_at_top(self, factory):
        result = fig06_power_freq.run(factory=factory)
        # MaxF at Vmax is the normalisation point.
        assert result.maxf_curve.freq_norm[-1] == pytest.approx(1.0)
        assert result.maxf_curve.power_norm[-1] == pytest.approx(1.0)
        # MinF cannot reach MaxF's top frequency.
        assert max(result.minf_curve.freq_norm) < 1.0

    def test_mid_frequency_cheaper_on_maxf(self, factory):
        # Paper: the same frequency costs less power on MaxF.
        result = fig06_power_freq.run(factory=factory)
        target = max(result.minf_curve.freq_norm)  # MinF at 1 V
        p_max = np.interp(target, result.maxf_curve.freq_norm,
                          result.maxf_curve.power_norm)
        assert p_max < result.minf_curve.power_norm[-1]

    def test_curves_monotone(self, factory):
        result = fig06_power_freq.run(factory=factory)
        for curve in (result.maxf_curve, result.minf_curve):
            assert all(a <= b for a, b in zip(curve.freq_norm,
                                              curve.freq_norm[1:]))
            assert all(a < b for a, b in zip(curve.power_norm,
                                             curve.power_norm[1:]))


class TestSchedulingFigures:
    def test_fig7_reproducible_across_processes(self):
        """Regression: policy RNGs were seeded with builtin hash(),
        which PYTHONHASHSEED randomises per process — figs 7-13 gave
        different numbers on every run. Seeds must be hash-stable."""
        import json
        import os
        import pathlib
        import subprocess
        import sys

        import repro
        code = (
            "import json\n"
            "from repro.config import ArchConfig\n"
            "from repro.experiments import fig07_unifreq\n"
            "from repro.experiments.common import ChipFactory\n"
            "factory = ChipFactory(arch=ArchConfig(\n"
            "    n_cores=8, die_area_mm2=140.0, grid_resolution=32))\n"
            "r = fig07_unifreq.run(n_trials=2, n_dies=2,\n"
            "                      thread_counts=(2, 4), factory=factory)\n"
            "print(json.dumps({str(nt): {p: a.power for p, a in per.items()}\n"
            "                  for nt, per in r.results.items()},\n"
            "                 sort_keys=True))\n")

        def run_with_hashseed(hashseed):
            env = dict(os.environ,
                       PYTHONHASHSEED=hashseed,
                       PYTHONPATH=str(
                           pathlib.Path(repro.__file__).parents[1]),
                       REPRO_NO_CACHE="1")
            out = subprocess.run([sys.executable, "-c", code], env=env,
                                 capture_output=True, text=True,
                                 check=True)
            return json.loads(out.stdout)

        assert run_with_hashseed("1") == run_with_hashseed("2")

    def test_fig7_varp_saves_power_at_light_load(self, factory):
        result = fig07_unifreq.run(n_trials=3, n_dies=3,
                                   thread_counts=(4, 20),
                                   factory=factory)
        light = result.results[4]
        full = result.results[20]
        assert light["VarP"].power < 0.97  # saves power at 4 threads
        assert full["VarP"].power > light["VarP"].power  # shrinks
        assert light["Random"].power == pytest.approx(1.0)

    def test_fig9_shapes(self, factory):
        result = fig09_nunifreq_perf.run(n_trials=3, n_dies=3,
                                         thread_counts=(4, 20),
                                         factory=factory)
        light = result.results[4]
        full = result.results[20]
        # VarF raises frequency at light load, degenerates at 20T.
        assert light["VarF"].frequency > 1.03
        assert full["VarF"].frequency == pytest.approx(1.0, abs=0.01)
        # VarF&AppIPC delivers throughput at both loads.
        assert light["VarF&AppIPC"].mips > 1.02
        assert full["VarF&AppIPC"].mips > 1.02
        # Section 7.4 text.
        cmp = result.nunifreq_vs_unifreq
        assert 1.05 < cmp.frequency_ratio < 1.30
        assert cmp.ed2_ratio < 1.0

    def test_fig10_ed2_improves_at_full_load(self, factory):
        result = fig10_nunifreq_ed2.run(n_trials=3, n_dies=3,
                                        thread_counts=(20,),
                                        factory=factory)
        assert result.results[20]["VarF&AppIPC"].ed2 < 1.0


class TestPmFigures:
    def test_fig11_static_ordering(self, factory):
        result = fig11_dvfs.run(n_trials=2, n_dies=2,
                                thread_counts=(8,),
                                include_sann=False,
                                protocol="static",
                                factory=factory)
        per = result.results[8]
        base = per["Random+Foxton*"]
        lin = per["VarF&AppIPC+LinOpt"]
        assert base.mips == pytest.approx(1.0)
        assert lin.mips > 1.0        # LinOpt beats the baseline
        assert lin.ed2 < 1.0         # and reduces ED^2
        assert "Figure 11(a)" in result.format_table()


class TestFig14:
    def test_deviation_shrinks_with_interval(self, factory):
        result = fig14_granularity.run(
            intervals_s=(0.1, 0.01), thread_counts=(4,),
            n_trials=1, factory=factory)
        dev = result.deviation_pct[4]
        assert dev[1] <= dev[0] + 0.3
        assert "Figure 14" in result.format_table()


class TestFig15:
    def test_time_grows_with_threads(self, factory):
        result = fig15_linopt_time.run(thread_counts=(2, 20),
                                       n_trials=2, factory=factory)
        for env_name, times in result.modelled_us.items():
            assert times[1] > times[0]
        assert "Figure 15" in result.format_table()

    def test_magnitude_order_of_paper(self, factory):
        result = fig15_linopt_time.run(thread_counts=(20,),
                                       n_trials=2, factory=factory)
        for times in result.modelled_us.values():
            assert times[0] < 100.0  # paper: ~6 us; same order


class TestAblations:
    def test_fit_ablation_runs(self, factory):
        result = ablations.run_fit_ablation(n_trials=1, n_threads=6,
                                            factory=factory)
        assert len(result.values) == 4
        assert all(v > 0.8 for v in result.values.values())

    def test_slp_ablation_improves_with_passes(self, factory):
        result = ablations.run_slp_ablation(n_trials=2, n_threads=8,
                                            factory=factory)
        assert (result.values["6 LP pass(es)"]
                >= result.values["1 LP pass(es)"] - 0.01)

    def test_thermal_ablation_runs(self, factory):
        result = ablations.run_thermal_ablation(n_trials=1, n_threads=6,
                                                factory=factory)
        assert set(result.values) == {"lateral coupling on",
                                      "lateral coupling weak"}
