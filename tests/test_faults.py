"""Fault injection, watchdog and graceful degradation (robustness).

Covers the `repro.faults` package end to end: schedules, faultable
sensors, the power-budget watchdog, the resilient manager chain, the
simulation integration (including the bitwise-transparency guarantee
with zero faults configured), and the seeded acceptance scenario of
``repro.experiments.ext_faults``.
"""

import numpy as np
import pytest

from repro.config import LOW_POWER
from repro.faults import (
    CORE_DROOP,
    CORE_OFFLINE,
    MANAGER_DEADLINE,
    MANAGER_ERROR,
    SENSOR_DEAD,
    SENSOR_DRIFT,
    SENSOR_STUCK,
    FaultEvent,
    FaultLog,
    FaultSchedule,
    FaultableSensor,
    ManagerFault,
    PowerWatchdog,
    ResilientManager,
    SensorBank,
)
from repro.pm import FoxtonStar, PmResult, meets_constraints
from repro.pm.base import PowerManager
from repro.pm.foxton import next_round_robin_victim
from repro.power import PowerSensor, SensorSpec
from repro.runtime import Assignment, OnlineSimulation, evaluate_levels
from repro.workloads import Workload, get_app


@pytest.fixture()
def sim_setup(small_chip):
    wl = Workload((get_app("bzip2"), get_app("mcf"),
                   get_app("gzip"), get_app("vortex")))
    asg = Assignment((0, 1, 2, 3))
    return small_chip, wl, asg


class TestFaultSchedule:
    def test_events_sorted_and_between(self):
        sched = FaultSchedule([
            FaultEvent(0.030, SENSOR_DEAD, target=1),
            FaultEvent(0.010, CORE_OFFLINE, target=2),
        ])
        assert [e.time_s for e in sched] == [0.010, 0.030]
        assert len(sched.between(0.0, 0.010)) == 1
        assert sched.between(0.010, 0.030)[0].kind == SENSOR_DEAD
        assert sched.event_times() == [0.010, 0.030]

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, SENSOR_DEAD)
        with pytest.raises(ValueError):
            FaultEvent(0.0, "alpha_particle")
        with pytest.raises(ValueError):
            FaultEvent(0.0, CORE_DROOP, target=0, param=0.0)

    def test_random_is_deterministic(self):
        rates = {SENSOR_DEAD: 20.0, CORE_DROOP: 10.0,
                 MANAGER_ERROR: 5.0}
        a = FaultSchedule.random(1.0, rates, 8, seed=3)
        b = FaultSchedule.random(1.0, rates, 8, seed=3)
        assert a.events == b.events
        assert len(a) > 0
        assert all(0 <= e.target < 8 for e in a
                   if e.kind != MANAGER_ERROR)

    def test_random_zero_rates_empty(self):
        assert len(FaultSchedule.random(1.0, {}, 8)) == 0

    def test_fault_log_counts(self):
        log = FaultLog()
        log.record(FaultEvent(0.0, SENSOR_DEAD))
        log.record(FaultEvent(0.1, SENSOR_DEAD))
        log.record(FaultEvent(0.2, CORE_OFFLINE, target=1))
        assert log.count() == 3
        assert log.count(SENSOR_DEAD) == 2


class TestFaultableSensor:
    def test_stuck_reads_constant_clamped(self):
        s = FaultableSensor(PowerSensor(), plausible_lo=0.0,
                            plausible_hi=10.0)
        s.apply(FaultEvent(0.0, SENSOR_STUCK, param=50.0))
        assert s.read(3.0) == 10.0  # clamped to plausible_hi
        assert not s.healthy

    def test_drift_grows_with_time(self):
        s = FaultableSensor(PowerSensor())
        assert s.read(5.0) == 5.0
        s.apply(FaultEvent(1.0, SENSOR_DRIFT, param=2.0))
        s.time_s = 1.0
        assert s.read(5.0) == pytest.approx(5.0)
        s.time_s = 3.0
        assert s.read(5.0) == pytest.approx(5.0 + 2.0 * 2.0)

    def test_dead_substitutes_last_known_good(self):
        s = FaultableSensor(PowerSensor())
        assert s.read(7.5) == 7.5
        s.apply(FaultEvent(0.0, SENSOR_DEAD))
        assert s.read(99.0) == 7.5
        assert s.read(1.0) == 7.5

    def test_dead_without_history_reads_floor(self):
        s = FaultableSensor(PowerSensor(), plausible_lo=0.5)
        s.apply(FaultEvent(0.0, SENSOR_DEAD))
        assert s.read(42.0) == 0.5

    def test_plausibility_clamp_bounds_noise(self):
        spec = SensorSpec(noise_sigma=100.0)
        s = FaultableSensor(
            PowerSensor(spec, np.random.default_rng(0)),
            plausible_lo=0.0, plausible_hi=20.0)
        reads = [s.read(10.0) for _ in range(50)]
        assert all(0.0 <= r <= 20.0 for r in reads)


class TestSensorBank:
    def test_channels_have_independent_noise(self):
        bank = SensorBank(4, spec=SensorSpec(noise_sigma=1.0), seed=0)
        a = [bank.core(0).read(10.0) for _ in range(5)]
        b = [bank.core(1).read(10.0) for _ in range(5)]
        assert a != b

    def test_reproducible_from_seed(self):
        b1 = SensorBank(4, spec=SensorSpec(noise_sigma=1.0), seed=9)
        b2 = SensorBank(4, spec=SensorSpec(noise_sigma=1.0), seed=9)
        assert ([b1.core(2).read(5.0) for _ in range(3)]
                == [b2.core(2).read(5.0) for _ in range(3)])

    def test_apply_routes_to_target(self):
        bank = SensorBank(4)
        bank.apply(FaultEvent(0.0, SENSOR_DEAD, target=2))
        assert not bank.core(2).healthy
        assert bank.core(1).healthy
        assert bank.n_unhealthy == 1
        bank.apply(FaultEvent(0.0, SENSOR_DEAD, target=-1))
        assert not bank.uncore.healthy
        assert bank.n_unhealthy == 2

    def test_read_chip_exact_when_healthy(self):
        bank = SensorBank(4)
        total = bank.read_chip([0, 2], [3.0, 4.0], 1.5)
        assert total == pytest.approx(8.5)

    def test_read_chip_freezes_dead_channel(self):
        bank = SensorBank(4)
        bank.read_chip([0], [3.0], 0.0)   # channel 0 learns 3.0 W
        bank.apply(FaultEvent(0.0, SENSOR_DEAD, target=0))
        # True power doubles but the dead channel keeps reporting 3.0.
        assert bank.read_chip([0], [6.0], 0.0) == pytest.approx(3.0)


class TestRoundRobinVictim:
    def test_skips_floor_threads(self):
        victim, ptr = next_round_robin_victim([0, 2, 3], 0)
        assert victim == 1 and ptr == 2

    def test_wraps_pointer(self):
        victim, ptr = next_round_robin_victim([1, 1], 5)
        assert victim == 1 and ptr == 6

    def test_all_floor_returns_minus_one(self):
        victim, _ = next_round_robin_victim([0, 0, 0], 0)
        assert victim == -1

    def test_blocked_mask(self):
        victim, _ = next_round_robin_victim([2, 2], 0,
                                            blocked=[True, False])
        assert victim == 1


class TestPowerWatchdog:
    def test_requires_k_consecutive_samples(self):
        wd = PowerWatchdog(guard_band_frac=0.05, k_samples=3)
        wd.reset(2)
        assert not wd.observe(0.001, 11.0, 10.0)
        assert not wd.observe(0.002, 11.0, 10.0)
        assert wd.observe(0.003, 11.0, 10.0)
        assert wd.triggers == [0.003]

    def test_in_band_sample_resets_count(self):
        wd = PowerWatchdog(guard_band_frac=0.05, k_samples=2)
        wd.reset(2)
        assert not wd.observe(0.001, 11.0, 10.0)
        assert not wd.observe(0.002, 10.0, 10.0)  # back in band
        assert not wd.observe(0.003, 11.0, 10.0)
        assert wd.observe(0.004, 11.0, 10.0)

    def test_guard_band_tolerates_small_overshoot(self):
        wd = PowerWatchdog(guard_band_frac=0.10, k_samples=1)
        wd.reset(1)
        assert not wd.observe(0.001, 10.9, 10.0)
        assert wd.observe(0.002, 11.2, 10.0)

    def test_step_down_round_robin_and_caps(self):
        wd = PowerWatchdog(k_samples=1, step_levels=2)
        wd.reset(3)
        levels, victim = wd.emergency_step_down([5, 5, 5])
        assert victim == 0 and levels == [3, 5, 5]
        levels, victim = wd.emergency_step_down(levels)
        assert victim == 1 and levels == [3, 3, 5]
        assert wd.active_caps == 2
        # The caps clamp a manager trying to undo the emergency.
        assert wd.clamp([5, 5, 5]) == [3, 3, 5]

    def test_caps_relax_after_clean_interval(self):
        wd = PowerWatchdog(k_samples=1)
        wd.reset(1)
        for _ in range(3):
            wd.observe(0.0, 11.0, 10.0)
            wd.emergency_step_down([3])
        assert wd.clamp([5]) == [2]
        tops = [5]
        wd.on_manager_invocation(tops)  # dirty interval: caps hold
        assert wd.clamp([5]) == [2]
        wd.on_manager_invocation(tops)  # clean: relax one level
        assert wd.clamp([5]) == [3]
        for _ in range(3):
            wd.on_manager_invocation(tops)
        assert wd.clamp([5]) == [5]  # cap fully released
        assert wd.active_caps == 0

    def test_all_floor_cannot_step(self):
        wd = PowerWatchdog(k_samples=1)
        wd.reset(2)
        levels, victim = wd.emergency_step_down([0, 0])
        assert victim == -1 and levels == [0, 0]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PowerWatchdog(guard_band_frac=-0.1)
        with pytest.raises(ValueError):
            PowerWatchdog(k_samples=0)
        with pytest.raises(ValueError):
            PowerWatchdog(step_levels=0)


class _CrashingManager(PowerManager):
    """Test stub: always raises."""

    name = "Crash"

    def set_levels(self, chip, workload, assignment, env, **kwargs):
        raise RuntimeError("boom")


class _FloorManager(PowerManager):
    """Test stub: parks everything at the floor."""

    name = "Floor"

    def set_levels(self, chip, workload, assignment, env, **kwargs):
        levels = [0] * assignment.n_threads
        state = evaluate_levels(
            chip, workload, assignment, levels,
            ipc_multipliers=kwargs.get("ipc_multipliers"),
            ceff_multipliers=kwargs.get("ceff_multipliers"))
        return PmResult(levels=tuple(levels), state=state, evaluations=1)


class TestResilientManager:
    def test_healthy_primary_is_tier_zero(self, sim_setup):
        chip, wl, asg = sim_setup
        mgr = ResilientManager(primary=FoxtonStar(),
                               fallback=FoxtonStar())
        res = mgr.set_levels(chip, wl, asg, LOW_POWER)
        assert res.stats["resilience_tier"] == 0.0
        assert mgr.fallback_activations == 0
        assert res.levels == FoxtonStar().set_levels(
            chip, wl, asg, LOW_POWER).levels

    def test_crashing_primary_falls_back(self, sim_setup):
        chip, wl, asg = sim_setup
        mgr = ResilientManager(primary=_CrashingManager(),
                               fallback=FoxtonStar())
        res = mgr.set_levels(chip, wl, asg, LOW_POWER)
        assert res.stats["resilience_tier"] == 1.0
        assert res.stats["primary_failed"] == 1.0
        assert mgr.fallback_activations == 1
        p_target, p_core_max = mgr._budget(chip, asg, LOW_POWER)
        assert meets_constraints(res.state, p_target, p_core_max)

    def test_both_failing_parks_at_minimum(self, sim_setup):
        chip, wl, asg = sim_setup
        mgr = ResilientManager(primary=_CrashingManager(),
                               fallback=_CrashingManager())
        res = mgr.set_levels(chip, wl, asg, LOW_POWER)
        assert res.stats["resilience_tier"] == 2.0
        assert res.levels == (0,) * asg.n_threads

    def test_injected_error_is_one_shot(self, sim_setup):
        chip, wl, asg = sim_setup
        mgr = ResilientManager(primary=FoxtonStar(),
                               fallback=FoxtonStar())
        mgr.inject_failure(MANAGER_ERROR)
        res = mgr.set_levels(chip, wl, asg, LOW_POWER)
        assert res.stats["resilience_tier"] == 1.0
        res = mgr.set_levels(chip, wl, asg, LOW_POWER)
        assert res.stats["resilience_tier"] == 0.0

    def test_injected_deadline_discards_primary(self, sim_setup):
        chip, wl, asg = sim_setup
        mgr = ResilientManager(primary=FoxtonStar(),
                               fallback=FoxtonStar())
        mgr.inject_failure(MANAGER_DEADLINE)
        res = mgr.set_levels(chip, wl, asg, LOW_POWER)
        assert res.stats["resilience_tier"] == 1.0
        assert res.stats["deadline_missed"] == 1.0

    def test_evaluation_budget_enforced(self, sim_setup):
        chip, wl, asg = sim_setup
        mgr = ResilientManager(primary=FoxtonStar(),
                               fallback=FoxtonStar(),
                               evaluation_budget=1)
        res = mgr.set_levels(chip, wl, asg, LOW_POWER)
        # Foxton* needs more than one evaluation from a cold start.
        assert res.stats["resilience_tier"] >= 1.0

    def test_accepts_infeasible_floor_from_primary(self, sim_setup):
        chip, wl, asg = sim_setup
        starved = type(LOW_POWER)("Starved", 1.0)  # impossible budget
        mgr = ResilientManager(primary=_FloorManager(),
                               fallback=_CrashingManager())
        res = mgr.set_levels(chip, wl, asg, starved)
        # The floor is accepted even though infeasible: nothing lower
        # exists, so the chain must not spin through its tiers.
        assert res.stats["resilience_tier"] == 0.0

    def test_invalid_injection_kind_rejected(self):
        with pytest.raises(ValueError):
            ResilientManager().inject_failure(SENSOR_DEAD)

    def test_manager_fault_exception_type(self):
        assert issubclass(ManagerFault, RuntimeError)


class _TopsManager(PowerManager):
    """Test stub: always asks for every core's top level."""

    name = "Tops"

    def set_levels(self, chip, workload, assignment, env, **kwargs):
        levels = self._top_levels(chip, assignment)
        state = evaluate_levels(
            chip, workload, assignment, levels,
            ipc_multipliers=kwargs.get("ipc_multipliers"),
            ceff_multipliers=kwargs.get("ceff_multipliers"))
        return PmResult(levels=tuple(levels), state=state, evaluations=1)


class TestSimulationFaultLayer:
    def test_empty_hooks_are_bitwise_transparent(self, sim_setup):
        """The transparency guarantee behind 'all fig outputs stay
        bitwise identical with zero faults configured'."""
        chip, wl, asg = sim_setup
        plain = OnlineSimulation(chip, wl, asg, LOW_POWER,
                                 manager=FoxtonStar())
        ref = plain.run(0.06, 0.01)
        # The watchdog is transparent only while power stays inside
        # its band; a wide band keeps it a pure observer here.
        hooked = OnlineSimulation(chip, wl, asg, LOW_POWER,
                                  manager=FoxtonStar(),
                                  faults=FaultSchedule([]),
                                  sensor_bank=SensorBank(chip.n_cores),
                                  watchdog=PowerWatchdog(
                                      guard_band_frac=0.5))
        trace = hooked.run(0.06, 0.01)
        np.testing.assert_array_equal(trace.power_w, ref.power_w)
        np.testing.assert_array_equal(trace.throughput_mips,
                                      ref.throughput_mips)
        assert trace.manager_runs == ref.manager_runs
        assert trace.transition_time_s == ref.transition_time_s
        assert trace.watchdog_triggers == ()
        assert trace.fault_events == ()
        assert trace.fallback_activations == 0

    def test_dense_mode_rejects_faults(self, sim_setup):
        chip, wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, LOW_POWER,
                               manager=FoxtonStar(),
                               sensor_bank=SensorBank(chip.n_cores))
        with pytest.raises(ValueError, match="event"):
            sim.run(0.02, 0.01, mode="dense")

    def test_sensor_faults_require_bank(self, sim_setup):
        chip, wl, asg = sim_setup
        faults = FaultSchedule([FaultEvent(0.01, SENSOR_DEAD, target=0)])
        with pytest.raises(ValueError, match="sensor_bank"):
            OnlineSimulation(chip, wl, asg, LOW_POWER,
                             manager=FoxtonStar(), faults=faults)

    def test_core_offline_migrates_thread(self, sim_setup):
        chip, wl, asg = sim_setup
        faults = FaultSchedule([FaultEvent(0.02, CORE_OFFLINE,
                                           target=asg.core_of[1])])
        sim = OnlineSimulation(chip, wl, asg, LOW_POWER,
                               manager=FoxtonStar(), faults=faults)
        trace = sim.run(0.06, 0.01)
        assert trace.migrations == 1
        assert [e.kind for e in trace.fault_events] == [CORE_OFFLINE]
        # The evacuation pays the migration minimum of one level.
        assert trace.level_transitions >= 1

    def test_core_droop_caps_levels(self, sim_setup):
        chip, wl, asg = sim_setup
        faults = FaultSchedule([FaultEvent(0.02, CORE_DROOP,
                                           target=asg.core_of[0],
                                           param=3.0)])
        sim = OnlineSimulation(chip, wl, asg, LOW_POWER,
                               manager=_TopsManager(), faults=faults)
        trace = sim.run(0.06, 0.01)
        ref = OnlineSimulation(chip, wl, asg, LOW_POWER,
                               manager=_TopsManager()).run(0.06, 0.01)
        # Identical up to the strike; clamped below reference after.
        np.testing.assert_array_equal(trace.power_w[:20],
                                      ref.power_w[:20])
        assert trace.power_w[-1] < ref.power_w[-1]

    def test_manager_fault_skips_plain_manager(self, sim_setup):
        chip, wl, asg = sim_setup
        faults = FaultSchedule([FaultEvent(0.015, MANAGER_ERROR)])
        sim = OnlineSimulation(chip, wl, asg, LOW_POWER,
                               manager=FoxtonStar(), faults=faults)
        trace = sim.run(0.06, 0.01)
        ref = OnlineSimulation(chip, wl, asg, LOW_POWER,
                               manager=FoxtonStar()).run(0.06, 0.01)
        # One invocation (at 20 ms) was lost.
        assert len(trace.manager_runs) == len(ref.manager_runs) - 1

    def test_manager_fault_routes_to_resilient_chain(self, sim_setup):
        chip, wl, asg = sim_setup
        faults = FaultSchedule([FaultEvent(0.015, MANAGER_ERROR)])
        mgr = ResilientManager(primary=FoxtonStar(),
                               fallback=FoxtonStar())
        sim = OnlineSimulation(chip, wl, asg, LOW_POWER,
                               manager=mgr, faults=faults)
        trace = sim.run(0.06, 0.01)
        # No invocation lost: the chain absorbed the crash.
        assert len(trace.manager_runs) == 6
        assert trace.fallback_activations == 1

    def test_watchdog_fires_on_sustained_overshoot(self, sim_setup):
        chip, wl, asg = sim_setup
        wd = PowerWatchdog(guard_band_frac=0.0, k_samples=2)
        sim = OnlineSimulation(chip, wl, asg, LOW_POWER,
                               manager=_TopsManager(), watchdog=wd)
        trace = sim.run(0.06, 0.01)
        ref = OnlineSimulation(chip, wl, asg, LOW_POWER,
                               manager=_TopsManager()).run(0.06, 0.01)
        # A manager pinned at the tops blows the Low Power budget; the
        # watchdog must intervene and drag power below the unwatched
        # reference run.
        assert len(trace.watchdog_triggers) > 0
        assert trace.sensed_power_w is not None
        assert trace.power_w.mean() < ref.power_w.mean()

    def test_sensed_power_matches_truth_with_ideal_bank(self, sim_setup):
        chip, wl, asg = sim_setup
        sim = OnlineSimulation(chip, wl, asg, LOW_POWER,
                               manager=FoxtonStar(),
                               sensor_bank=SensorBank(chip.n_cores))
        trace = sim.run(0.04, 0.01)
        np.testing.assert_allclose(trace.sensed_power_w, trace.power_w,
                                   rtol=1e-9)


class TestAcceptanceScenario:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_faults
        return ext_faults.scenario()

    def test_watchdog_arm_holds_deviation(self, result):
        """Acceptance: watchdog keeps mean |P - Ptarget| within 2x the
        fault-free run, and the run completes without exceptions."""
        assert (result.watchdog.deviation_pct
                <= 2.0 * result.fault_free.deviation_pct)

    def test_watchdog_acts_and_ablation_overshoots(self, result):
        assert result.watchdog.watchdog_triggers > 0
        assert (result.ablation.mean_overshoot_w
                > result.watchdog.mean_overshoot_w)
        assert result.ablation.watchdog_triggers == 0

    def test_faults_applied_and_thread_evacuated(self, result):
        assert result.watchdog.faults_applied == 2
        assert result.watchdog.migrations == 1
        assert result.fault_free.faults_applied == 0
