"""Tests for the trace-driven core simulator (SESC substitute)."""

import numpy as np
import pytest

from repro.coresim import (
    Cache,
    CacheHierarchy,
    CoreSimulator,
    InstrType,
    LINE_BYTES,
    TRACE_CLASSES,
    TraceGenerator,
    TraceParams,
    derive_app_profile,
    dynamic_power_from_activity,
)
from repro.coresim.core import REF_FREQ_HZ


class TestCache:
    def test_compulsory_miss_then_hit(self):
        cache = Cache(1024, 2)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)      # same line
        assert not cache.access(64)  # next line

    def test_lru_eviction(self):
        # 2 ways, hammer three lines mapping to the same set.
        cache = Cache(2 * LINE_BYTES, 2)  # a single set
        a, b, c = 0, LINE_BYTES, 2 * LINE_BYTES
        cache.access(a)
        cache.access(b)
        cache.access(c)             # evicts a (LRU)
        assert not cache.access(a)  # a was evicted
        assert cache.access(c)      # c still resident

    def test_lru_updated_on_hit(self):
        cache = Cache(2 * LINE_BYTES, 2)
        a, b, c = 0, LINE_BYTES, 2 * LINE_BYTES
        cache.access(a)
        cache.access(b)
        cache.access(a)             # refresh a
        cache.access(c)             # evicts b now
        assert cache.access(a)
        assert not cache.access(b)

    def test_capacity_behaviour(self):
        # Working set larger than the cache keeps missing; smaller
        # working set stops missing after the first pass.
        small = Cache(1024, 2)
        lines_fit = 1024 // LINE_BYTES
        for sweep in range(3):
            for i in range(lines_fit):
                small.access(i * LINE_BYTES)
        stats = small.stats
        assert stats.misses == lines_fit  # only compulsory

    def test_stats(self):
        cache = Cache(1024, 2)
        cache.access(0)
        cache.access(0)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_flush(self):
        cache = Cache(1024, 2)
        cache.access(0)
        cache.flush()
        assert not cache.access(0)

    def test_install_makes_line_resident(self):
        cache = Cache(1024, 2)
        cache.install(128)
        assert cache.access(128)
        assert cache.stats.accesses == 1  # install not counted

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache(0, 2)
        with pytest.raises(ValueError):
            Cache(1024, 3)  # 16 lines don't divide into 3 ways
        with pytest.raises(ValueError):
            Cache(1024, 2).access(-1)


class TestHierarchy:
    def test_miss_path(self):
        h = CacheHierarchy(next_line_prefetch=False)
        assert h.data_access(0) == "mem"
        assert h.data_access(0) == "l1"

    def test_l2_catches_l1_eviction(self):
        h = CacheHierarchy(next_line_prefetch=False)
        h.data_access(0)
        # Evict line 0 from the 2-way L1 by touching conflicting lines
        # (same L1 set, different L2 sets).
        for i in range(1, 7):
            h.data_access(i * 16 * 1024)
        assert h.data_access(0) == "l2"

    def test_prefetch_covers_streaming(self):
        with_pf = CacheHierarchy(next_line_prefetch=True)
        without = CacheHierarchy(next_line_prefetch=False)
        base = 1 << 20
        for h in (with_pf, without):
            for i in range(512):
                h.data_access(base + i * LINE_BYTES)
        assert (with_pf.l2.stats.misses
                < 0.3 * without.l2.stats.misses)


class TestTraceGenerator:
    def test_reproducible(self):
        p = TRACE_CLASSES["compute"]
        a = TraceGenerator(p, seed=5).generate(2000)
        b = TraceGenerator(p, seed=5).generate(2000)
        assert [(i.itype, i.pc, i.address) for i in a] == \
               [(i.itype, i.pc, i.address) for i in b]

    def test_mix_matches_params(self):
        p = TraceParams(frac_fp=0.3, frac_branch=0.1, frac_load=0.2,
                        frac_store=0.1)
        trace = TraceGenerator(p, seed=1).generate(30_000)
        counts = {t: 0 for t in InstrType}
        for instr in trace:
            counts[instr.itype] += 1
        n = len(trace)
        assert counts[InstrType.FP] / n == pytest.approx(0.3, abs=0.02)
        assert counts[InstrType.BRANCH] / n == pytest.approx(0.1,
                                                             abs=0.02)
        assert counts[InstrType.LOAD] / n == pytest.approx(0.2,
                                                           abs=0.02)

    def test_memory_ops_have_addresses(self):
        trace = TraceGenerator(TRACE_CLASSES["memory"],
                               seed=2).generate(5000)
        for instr in trace:
            if instr.itype in (InstrType.LOAD, InstrType.STORE):
                assert instr.address is not None
            else:
                assert instr.address is None

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            TraceParams(frac_fp=0.6, frac_branch=0.3, frac_load=0.2,
                        frac_store=0.1)
        with pytest.raises(ValueError):
            TraceParams(frac_sequential=0.8, frac_hot=0.5)
        with pytest.raises(ValueError):
            TraceParams(hot_set_bytes=0)

    def test_generate_validation(self):
        gen = TraceGenerator(TRACE_CLASSES["compute"])
        with pytest.raises(ValueError):
            gen.generate(0)


class TestCoreSimulator:
    def test_class_spectrum(self):
        """The three built-in classes span the Table 5 spectrum."""
        ipc = {}
        for name in ("compute", "streaming", "memory"):
            sim = CoreSimulator(TRACE_CLASSES[name], seed=0)
            summary = sim.run(40_000, warmup=40_000)
            ipc[name] = summary.ipc_at(REF_FREQ_HZ)
        assert ipc["compute"] > ipc["streaming"] > ipc["memory"]
        assert ipc["compute"] > 0.5
        assert ipc["memory"] < 0.3

    def test_memory_bound_ipc_compensates(self):
        sim = CoreSimulator(TRACE_CLASSES["memory"], seed=0)
        summary = sim.run(30_000, warmup=30_000)
        assert summary.ipc_at(2e9) > 1.3 * summary.ipc_at(4e9)

    def test_compute_bound_ipc_flat(self):
        sim = CoreSimulator(TRACE_CLASSES["compute"], seed=0)
        summary = sim.run(30_000, warmup=60_000)
        ratio = summary.ipc_at(2e9) / summary.ipc_at(4e9)
        assert 1.0 <= ratio < 1.35

    def test_throughput_still_rises_with_frequency(self):
        for name in TRACE_CLASSES:
            sim = CoreSimulator(TRACE_CLASSES[name], seed=0)
            s = sim.run(20_000, warmup=20_000)
            assert s.ipc_at(4e9) * 4e9 > s.ipc_at(2e9) * 2e9

    def test_activity_counts_cover_trace(self):
        sim = CoreSimulator(TRACE_CLASSES["compute"], seed=0)
        s = sim.run(10_000, warmup=0)
        assert s.activity["l1i"] == s.n_instructions
        assert s.activity["regfile"] == s.n_instructions
        assert s.activity["int_alu"] > 0
        assert s.activity["bpred"] > 0

    def test_validation(self):
        sim = CoreSimulator(TRACE_CLASSES["compute"])
        with pytest.raises(ValueError):
            sim.run(0)
        s = sim.run(1000, warmup=0)
        with pytest.raises(ValueError):
            s.ipc_at(0.0)


class TestProfileDerivation:
    @pytest.fixture(scope="class")
    def derived(self):
        return {name: derive_app_profile(params, f"sim-{name}",
                                         n_instructions=60_000)
                for name, params in TRACE_CLASSES.items()}

    def test_profiles_in_table5_range(self, derived):
        for sp in derived.values():
            p = sp.profile
            assert 0.03 < p.ipc_ref < 1.5
            assert 0.5 < p.dynamic_power_ref < 6.0

    def test_power_ipc_correlation(self, derived):
        """Table 5's structural fact: dynamic power tracks IPC."""
        ipcs = [sp.profile.ipc_ref for sp in derived.values()]
        pows = [sp.profile.dynamic_power_ref
                for sp in derived.values()]
        assert np.corrcoef(ipcs, pows)[0, 1] > 0.7

    def test_cpi_split_model_cross_validates(self, derived):
        """The analytical CPI-split profile must track the simulator's
        own IPC(f) — the substitution DESIGN.md claims."""
        for name, sp in derived.items():
            for freq in (1.5e9, 2e9, 3e9, 4e9):
                analytical = sp.profile.ipc_at(freq)
                simulated = sp.simulated_ipc_at(freq)
                assert analytical == pytest.approx(
                    simulated, rel=0.15), name

    def test_power_from_activity_scales(self, derived):
        sp = derived["compute"]
        p1 = dynamic_power_from_activity(sp.summary, 4e9, 1.0)
        p2 = dynamic_power_from_activity(sp.summary, 4e9, 0.8)
        assert p2 == pytest.approx(p1 * 0.64, rel=1e-9)
        with pytest.raises(ValueError):
            dynamic_power_from_activity(sp.summary, -1.0, 1.0)
