"""Tests for the journaled checkpoint/resume layer (DESIGN.md §14).

Covers the :class:`~repro.parallel.RunJournal` crash-safety
mechanics (atomic appends, torn-tail replay, completeness checks),
the trial-runner integration (an interrupted campaign resumed via the
journal reproduces the uninterrupted tables bitwise, recomputing only
the missing units), and the CLI ``--resume``/``--fresh`` plumbing.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.common import ChipFactory
from repro.experiments.sched_runner import run_policy_comparison
from repro.experiments.pm_runner import (
    AlgorithmSpec,
    run_pm_comparison,
)
from repro.parallel import (
    IncompleteJournalError,
    RunJournal,
    parallel_config,
    unit_key,
)
from repro.parallel.journal import JOURNAL_FILENAME
from repro.pm import FoxtonStar
from repro.sched import RandomPolicy, VarP


class TestRunJournal:
    def test_record_and_replay(self, tmp_path):
        journal = RunJournal.open(tmp_path, "figx")
        journal.record("k1", {"trial": 0}, [1.5, 2.5])
        journal.record("k2", {"trial": 1}, [3.5])
        reopened = RunJournal.open(tmp_path, "figx")
        assert len(reopened) == 2
        assert reopened.lookup("k1") == [1.5, 2.5]
        assert reopened.lookup("k2") == [3.5]
        assert reopened.lookup("absent") is None

    def test_floats_round_trip_bitwise(self, tmp_path):
        values = [0.1 + 0.2, 1e-308, 1.7976931348623157e308,
                  -0.3333333333333333]
        journal = RunJournal.open(tmp_path, "figx")
        journal.record("k", {}, values)
        replayed = RunJournal.open(tmp_path, "figx").lookup("k")
        assert all(a == b and str(a) == str(b)
                   for a, b in zip(replayed, values))

    def test_record_is_idempotent(self, tmp_path):
        journal = RunJournal.open(tmp_path, "figx")
        journal.record("k", {}, [1.0])
        size = journal.path.stat().st_size
        journal.record("k", {}, [999.0])  # no-op: already journaled
        assert journal.path.stat().st_size == size
        assert journal.lookup("k") == [1.0]

    def test_torn_tail_is_ignored_and_truncated(self, tmp_path):
        journal = RunJournal.open(tmp_path, "figx")
        journal.record("k1", {}, [1.0])
        # Simulate a crash mid-append: a partial, unterminated line.
        with open(journal.path, "ab") as handle:
            handle.write(b'{"kind": "unit", "key": "torn", "resu')
        reopened = RunJournal.open(tmp_path, "figx")
        assert len(reopened) == 1
        assert reopened.lookup("torn") is None
        # The next append truncates the torn bytes away.
        reopened.record("k2", {}, [2.0])
        lines = journal.path.read_bytes().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_malformed_middle_line_stops_replay(self, tmp_path):
        journal = RunJournal.open(tmp_path, "figx")
        journal.record("k1", {}, [1.0])
        with open(journal.path, "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(json.dumps({"kind": "unit", "key": "k2",
                                     "unit": {}, "result": [2.0]})
                         .encode() + b"\n")
        # Nothing after the corruption point is trusted on replay…
        reopened = RunJournal.open(tmp_path, "figx")
        assert reopened.lookup("k1") == [1.0]
        assert reopened.lookup("k2") is None
        # …and the next append through the journal truncates it away.
        reopened.record("k3", {}, [3.0])
        assert [json.loads(line)["key"] for line
                in journal.path.read_bytes().splitlines()] == ["k1", "k3"]

    def test_require_complete(self, tmp_path):
        journal = RunJournal.open(tmp_path, "figx")
        journal.record("k1", {}, [1.0])
        journal.require_complete(["k1"])
        with pytest.raises(IncompleteJournalError, match="partial"):
            journal.require_complete(["k1", "k2"], scope="figx")

    def test_complete_marker_round_trips(self, tmp_path):
        journal = RunJournal.open(tmp_path, "figx")
        journal.record("k1", {}, [1.0])
        journal.mark_complete("figx:nt4", 1)
        reopened = RunJournal.open(tmp_path, "figx")
        assert reopened.is_scope_complete("figx:nt4")
        assert not reopened.is_scope_complete("figx:nt8")

    def test_bad_run_names_rejected(self, tmp_path):
        for bad in ("", ".", "..", "a/b"):
            with pytest.raises(ValueError):
                RunJournal.open(tmp_path, bad)


class TestUnitKey:
    def test_key_sensitivity(self):
        base = unit_key(experiment="fig7", trial=0, policy="Random")
        assert unit_key(experiment="fig7", trial=0,
                        policy="Random") == base
        assert unit_key(experiment="fig8", trial=0,
                        policy="Random") != base
        assert unit_key(experiment="fig7", trial=1,
                        policy="Random") != base
        assert unit_key(experiment="fig7", trial=0, policy="VarP") != base


class _CountingEvaluate:
    """Wraps an evaluate fn; optionally raises after ``crash_after``."""

    def __init__(self, inner, crash_after=None):
        self.inner = inner
        self.calls = 0
        self.crash_after = crash_after

    def __call__(self, chip, workload, assignment):
        if (self.crash_after is not None
                and self.calls >= self.crash_after):
            raise RuntimeError("injected campaign crash")
        self.calls += 1
        return self.inner(chip, workload, assignment)


class TestSchedRunnerResume:
    N_TRIALS = 3
    POLICIES = (RandomPolicy, VarP)

    def _run(self, tech, small_arch, root, evaluate,
             experiment="figtest"):
        from repro.runtime.evaluation import evaluate_uniform_frequency
        with parallel_config(resume=True, journal_root=root):
            factory = ChipFactory(tech=tech, arch=small_arch, seed=5,
                                  workers=1, cache=None)
            return run_policy_comparison(
                factory, [cls() for cls in self.POLICIES],
                evaluate or evaluate_uniform_frequency,
                n_threads=4, n_trials=self.N_TRIALS, n_dies=2, seed=3,
                experiment=experiment)

    @pytest.fixture(scope="class")
    def reference(self, tech, small_arch):
        """Uninterrupted run, journaling off (the pre-journal path)."""
        from repro.runtime.evaluation import evaluate_uniform_frequency
        factory = ChipFactory(tech=tech, arch=small_arch, seed=5,
                              workers=1, cache=None)
        return run_policy_comparison(
            factory, [cls() for cls in self.POLICIES],
            evaluate_uniform_frequency,
            n_threads=4, n_trials=self.N_TRIALS, n_dies=2, seed=3)

    def test_journaled_run_matches_unjournaled(self, tech, small_arch,
                                               tmp_path, reference):
        from repro.runtime.evaluation import evaluate_uniform_frequency
        counting = _CountingEvaluate(evaluate_uniform_frequency)
        result = self._run(tech, small_arch, tmp_path, counting)
        assert result == reference
        assert counting.calls == self.N_TRIALS * len(self.POLICIES)
        journal = RunJournal.open(tmp_path, "figtest")
        assert len(journal) == self.N_TRIALS * len(self.POLICIES)

    def test_interrupted_campaign_resumes_bitwise(self, tech, small_arch,
                                                  tmp_path, reference):
        from repro.runtime.evaluation import evaluate_uniform_frequency
        n_units = self.N_TRIALS * len(self.POLICIES)
        crash_at = 3
        crashing = _CountingEvaluate(evaluate_uniform_frequency,
                                     crash_after=crash_at)
        with pytest.raises(RuntimeError, match="injected"):
            self._run(tech, small_arch, tmp_path, crashing)
        journal = RunJournal.open(tmp_path, "figtest")
        assert len(journal) == crash_at  # completed units survived

        # Resume: only the remaining units are recomputed, and the
        # final tables equal the uninterrupted run bitwise.
        resumed = _CountingEvaluate(evaluate_uniform_frequency)
        result = self._run(tech, small_arch, tmp_path, resumed)
        assert resumed.calls == n_units - crash_at
        assert result == reference

        # A third run replays everything from the journal.
        replay = _CountingEvaluate(evaluate_uniform_frequency)
        again = self._run(tech, small_arch, tmp_path, replay)
        assert replay.calls == 0
        assert again == reference

    def test_changed_parameters_miss_the_journal(self, tech, small_arch,
                                                 tmp_path, reference):
        from repro.runtime.evaluation import evaluate_uniform_frequency
        first = _CountingEvaluate(evaluate_uniform_frequency)
        self._run(tech, small_arch, tmp_path, first)
        # A different seed must not resurrect journaled results.
        with parallel_config(resume=True, journal_root=tmp_path):
            factory = ChipFactory(tech=tech, arch=small_arch, seed=5,
                                  workers=1, cache=None)
            counting = _CountingEvaluate(evaluate_uniform_frequency)
            run_policy_comparison(
                factory, [cls() for cls in self.POLICIES], counting,
                n_threads=4, n_trials=self.N_TRIALS, n_dies=2, seed=4,
                experiment="figtest")
        assert counting.calls == self.N_TRIALS * len(self.POLICIES)


class TestPmRunnerResume:
    def test_static_pm_campaign_resumes_bitwise(self, tech, small_arch,
                                                tmp_path):
        from repro.config import COST_PERFORMANCE
        algorithms = [
            AlgorithmSpec("Random+Foxton*", RandomPolicy(), FoxtonStar),
            AlgorithmSpec("VarP+Foxton*", VarP(), FoxtonStar),
        ]

        def run(root=None):
            config = (parallel_config(resume=True, journal_root=root)
                      if root is not None else parallel_config())
            with config:
                factory = ChipFactory(tech=tech, arch=small_arch,
                                      seed=5, workers=1, cache=None)
                return run_pm_comparison(
                    factory, COST_PERFORMANCE, n_threads=4, n_trials=2,
                    n_dies=1, algorithms=algorithms, protocol="static",
                    seed=3, experiment="pmtest")

        reference = run()
        partial = run(root=tmp_path)  # full journaled pass
        assert partial == reference
        journal = RunJournal.open(tmp_path, "pmtest")
        assert len(journal) == 4
        # Replay-only pass (all units journaled) is still identical.
        assert run(root=tmp_path) == reference


class TestCliResume:
    @pytest.fixture(autouse=True)
    def _journal_env(self, tmp_path, monkeypatch):
        self.root = tmp_path / "results"
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(self.root))

    def _table_of(self, capsys):
        out = capsys.readouterr().out
        return "\n".join(line for line in out.splitlines()
                         if not line.startswith("[fig7 completed"))

    def test_resume_journals_and_replays(self, capsys):
        assert main(["fig7", "--trials", "1", "--resume"]) == 0
        first = self._table_of(capsys)
        journal_path = self.root / "fig7" / JOURNAL_FILENAME
        assert journal_path.exists()
        size = journal_path.stat().st_size
        assert size > 0

        # Second run replays from the journal: identical table, no
        # new units appended (only idempotent complete markers).
        assert main(["fig7", "--trials", "1", "--resume"]) == 0
        second = self._table_of(capsys)
        assert second == first
        assert journal_path.stat().st_size == size

    def test_fresh_discards_journal(self, capsys):
        assert main(["fig7", "--trials", "1", "--resume"]) == 0
        journal_path = self.root / "fig7" / JOURNAL_FILENAME
        entries = len(RunJournal(journal_path))
        assert entries > 0
        assert main(["fig7", "--trials", "1", "--fresh"]) == 0
        # Journal was rebuilt from scratch with the same unit count.
        assert len(RunJournal(journal_path)) == entries

    def test_without_resume_no_journal(self, capsys):
        assert main(["fig7", "--trials", "1"]) == 0
        assert not (self.root / "fig7").exists()
