"""Tests for repro.thermal (RC network + leakage fixed point)."""

import numpy as np
import pytest

from repro.config import DEFAULT_ARCH
from repro.floorplan import Rect, build_floorplan
from repro.thermal import (
    DEFAULT_AMBIENT_K,
    ThermalNetwork,
    shared_edge_length,
    solve_with_leakage,
)
from repro.thermal.hotspot import ThermalRunawayError


class TestSharedEdgeLength:
    def test_vertical_neighbours(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(2, 0, 4, 2)
        assert shared_edge_length(a, b) == pytest.approx(2.0)

    def test_horizontal_neighbours_partial(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 2, 5, 4)
        assert shared_edge_length(a, b) == pytest.approx(1.0)

    def test_disjoint(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(5, 5, 6, 6)
        assert shared_edge_length(a, b) == 0.0

    def test_corner_touch_is_zero(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 1, 2, 2)
        assert shared_edge_length(a, b) == pytest.approx(0.0)

    def test_symmetry(self):
        a = Rect(0, 0, 2, 3)
        b = Rect(2, 1, 4, 5)
        assert shared_edge_length(a, b) == shared_edge_length(b, a)


class TestThermalNetwork:
    @pytest.fixture(scope="class")
    def network(self):
        return ThermalNetwork(build_floorplan(DEFAULT_ARCH))

    def test_zero_power_gives_ambient(self, network):
        temps = network.solve(np.zeros(network.n_blocks))
        np.testing.assert_allclose(temps, network.ambient_k)

    def test_power_raises_temperature(self, network):
        p = np.zeros(network.n_blocks)
        p[0] = 5.0
        temps = network.solve(p)
        assert temps[0] > network.ambient_k
        assert np.all(temps >= network.ambient_k - 1e-9)

    def test_heated_block_is_hottest(self, network):
        p = np.zeros(network.n_blocks)
        p[7] = 5.0
        temps = network.solve(p)
        assert np.argmax(temps) == 7

    def test_linearity(self, network):
        p = np.zeros(network.n_blocks)
        p[3] = 2.0
        rise1 = network.solve(p) - network.ambient_k
        rise2 = network.solve(2 * p) - network.ambient_k
        np.testing.assert_allclose(rise2, 2 * rise1, rtol=1e-9)

    def test_superposition(self, network):
        pa = np.zeros(network.n_blocks)
        pb = np.zeros(network.n_blocks)
        pa[1] = 3.0
        pb[5] = 4.0
        amb = network.ambient_k
        combined = network.solve(pa + pb) - amb
        separate = (network.solve(pa) - amb) + (network.solve(pb) - amb)
        np.testing.assert_allclose(combined, separate, rtol=1e-9)

    def test_neighbour_warmer_than_far_block(self, network):
        # Heat core 0 (top-left): core 1 (adjacent) should run warmer
        # than core 19 (opposite corner).
        p = np.zeros(network.n_blocks)
        p[0] = 8.0
        temps = network.solve(p)
        assert temps[1] > temps[19]

    def test_full_load_temperature_plausible(self, network):
        # ~95 W across the die should land near the paper's 95-105 C.
        p = np.full(network.n_blocks, 95.0 / network.n_blocks)
        temps = network.solve(p)
        assert 360.0 < temps.max() < 390.0

    def test_rejects_wrong_length(self, network):
        with pytest.raises(ValueError):
            network.solve(np.zeros(3))

    def test_rejects_negative_power(self, network):
        p = np.zeros(network.n_blocks)
        p[0] = -1.0
        with pytest.raises(ValueError):
            network.solve(p)

    def test_rejects_bad_parameters(self):
        fp = build_floorplan(DEFAULT_ARCH)
        with pytest.raises(ValueError):
            ThermalNetwork(fp, ambient_k=-1.0)
        with pytest.raises(ValueError):
            ThermalNetwork(fp, g_vertical=0.0)

    def test_core_temperatures_slice(self, network):
        temps = network.solve(np.zeros(network.n_blocks))
        assert network.core_temperatures(temps).shape == (20,)


class TestLeakageFixedPoint:
    @pytest.fixture(scope="class")
    def network(self):
        return ThermalNetwork(build_floorplan(DEFAULT_ARCH))

    def test_constant_leakage_converges_immediately(self, network):
        dyn = np.full(network.n_blocks, 1.0)
        sol = solve_with_leakage(network, dyn, lambda t: np.zeros_like(t))
        # Under-relaxation needs a few sweeps even with zero feedback.
        assert sol.iterations <= 10
        np.testing.assert_allclose(sol.block_power_w, dyn)

    def test_mild_feedback_converges(self, network):
        dyn = np.full(network.n_blocks, 2.0)

        def leak(temps):
            return 0.5 + 0.005 * (temps - network.ambient_k)

        sol = solve_with_leakage(network, dyn, leak)
        # Fixed point: leakage consistent with final temperatures.
        expected = 0.5 + 0.005 * (sol.block_temps_k - network.ambient_k)
        np.testing.assert_allclose(
            sol.block_power_w, dyn + expected, rtol=0.02)

    def test_runaway_detected(self, network):
        dyn = np.full(network.n_blocks, 2.0)

        def explosive(temps):
            return 5.0 * np.exp((temps - network.ambient_k) / 10.0)

        with pytest.raises(ThermalRunawayError):
            solve_with_leakage(network, dyn, explosive)

    def test_rejects_wrong_dynamic_length(self, network):
        with pytest.raises(ValueError):
            solve_with_leakage(network, np.zeros(2),
                               lambda t: np.zeros_like(t))

    def test_rejects_wrong_leakage_length(self, network):
        dyn = np.zeros(network.n_blocks)
        with pytest.raises(ValueError):
            solve_with_leakage(network, dyn, lambda t: np.zeros(3))


class TestTransient:
    @pytest.fixture(scope="class")
    def network(self):
        return ThermalNetwork(build_floorplan(DEFAULT_ARCH))

    def test_converges_to_steady_state(self, network):
        from repro.thermal import TransientThermal
        tr = TransientThermal(network)
        p = np.full(network.n_blocks, 3.0)
        t_ss = network.solve(p)
        for _ in range(200):
            tr.step(p, 0.05)
        np.testing.assert_allclose(tr.temps, t_ss, atol=0.2)

    def test_warms_monotonically_from_ambient(self, network):
        from repro.thermal import TransientThermal
        tr = TransientThermal(network)
        p = np.full(network.n_blocks, 3.0)
        prev = tr.temps.copy()
        for _ in range(5):
            cur = tr.step(p, 0.01).copy()
            assert np.all(cur >= prev - 1e-9)
            prev = cur

    def test_short_step_moves_little(self, network):
        # Thermal time constants >> 1 ms: a millisecond barely moves T.
        from repro.thermal import TransientThermal
        tr = TransientThermal(network)
        p = np.full(network.n_blocks, 5.0)
        t_ss = network.solve(p)
        tr.step(p, 1e-3)
        moved = np.abs(tr.temps - network.ambient_k).max()
        total = np.abs(t_ss - network.ambient_k).max()
        assert moved < 0.2 * total

    def test_time_constants_scale(self, network):
        from repro.thermal import TransientThermal
        tr = TransientThermal(network)
        tau = tr.time_constants_s()
        # Slowest mode in the tens-of-ms to seconds range.
        assert 0.005 < tau[0] < 30.0
        assert np.all(np.diff(tau) <= 1e-12)

    def test_reset(self, network):
        from repro.thermal import TransientThermal
        tr = TransientThermal(network)
        tr.step(np.full(network.n_blocks, 5.0), 1.0)
        tr.reset()
        np.testing.assert_allclose(tr.temps, network.ambient_k)

    def test_validation(self, network):
        from repro.thermal import TransientThermal
        tr = TransientThermal(network)
        with pytest.raises(ValueError):
            tr.step(np.zeros(2), 0.01)
        with pytest.raises(ValueError):
            tr.step(np.zeros(network.n_blocks), 0.0)
        with pytest.raises(ValueError):
            TransientThermal(network, thickness_mm=0.0)
