"""Tests for variogram estimation and spherical-model fitting."""

import numpy as np
import pytest

from repro.variation import (
    empirical_variogram,
    fit_spherical,
    pooled_variogram,
)
from repro.variation.spatial import CirculantFieldSampler


@pytest.fixture(scope="module")
def fields():
    sampler = CirculantFieldSampler(40, 18.0, 9.0)
    rng = np.random.default_rng(7)
    return [sampler.sample(rng) for _ in range(20)]


class TestEmpiricalVariogram:
    def test_shapes_and_counts(self, fields):
        vg = empirical_variogram(fields[0], 18.0, n_bins=12)
        assert vg.lags.size == vg.gamma.size == vg.counts.size
        assert vg.lags.size <= 12
        assert np.all(vg.counts > 0)

    def test_gamma_non_negative(self, fields):
        vg = empirical_variogram(fields[0], 18.0)
        assert np.all(vg.gamma >= 0)

    def test_gamma_increases_from_origin(self, fields):
        # Short lags are strongly correlated: semivariance small there,
        # larger at long lags.
        vg = pooled_variogram(fields, 18.0)
        assert vg.gamma[0] < vg.gamma[-1]

    def test_constant_field_has_zero_gamma(self):
        # A constant field is degenerate for the *sampler* but fine
        # for the estimator.
        field = np.ones((16, 16))
        vg = empirical_variogram(field, 10.0)
        np.testing.assert_allclose(vg.gamma, 0.0)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            empirical_variogram(np.ones((4, 5)), 10.0)

    def test_rejects_bad_edge(self):
        with pytest.raises(ValueError):
            empirical_variogram(np.ones((4, 4)), -1.0)

    def test_deterministic_given_rng(self, fields):
        a = empirical_variogram(fields[0], 18.0,
                                rng=np.random.default_rng(1))
        b = empirical_variogram(fields[0], 18.0,
                                rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a.gamma, b.gamma)


class TestSphericalFit:
    def test_recovers_generating_range(self, fields):
        vg = pooled_variogram(fields, 18.0)
        fit = fit_spherical(vg, edge_hint=18.0)
        assert fit.phi == pytest.approx(9.0, rel=0.25)
        assert fit.sill == pytest.approx(1.0, rel=0.3)

    def test_fit_on_exact_model_values(self):
        # Noise-free variogram of a known spherical model.
        from repro.variation import EmpiricalVariogram
        from repro.variation.spatial import spherical_correlation
        lags = np.linspace(0.5, 12.0, 14)
        sill, phi = 2.0, 6.0
        gamma = sill * (1 - spherical_correlation(lags, phi))
        vg = EmpiricalVariogram(lags=lags, gamma=gamma,
                                counts=np.full(14, 100))
        fit = fit_spherical(vg, edge_hint=12.0)
        assert fit.phi == pytest.approx(phi, rel=0.02)
        assert fit.sill == pytest.approx(sill, rel=0.02)
        assert fit.residual < 1e-6 * 100 * 14

    def test_model_gamma_evaluates(self):
        from repro.variation import SphericalFit
        fit = SphericalFit(sill=1.5, phi=4.0, residual=0.0)
        assert fit.gamma(0.0) == pytest.approx(0.0)
        assert fit.gamma(4.0) == pytest.approx(1.5)
        assert fit.gamma(100.0) == pytest.approx(1.5)

    def test_too_few_bins_rejected(self):
        from repro.variation import EmpiricalVariogram
        vg = EmpiricalVariogram(lags=np.array([1.0, 2.0]),
                                gamma=np.array([0.1, 0.2]),
                                counts=np.array([5, 5]))
        with pytest.raises(ValueError):
            fit_spherical(vg)

    def test_pooled_requires_fields(self):
        with pytest.raises(ValueError):
            pooled_variogram([], 10.0)
