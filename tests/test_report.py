"""Tests for the terminal chart renderer."""

import numpy as np
import pytest

from repro.report import bar_chart, histogram_chart, line_chart


class TestBarChart:
    def test_renders_all_rows(self):
        out = bar_chart(["a", "bb", "ccc"], [1.0, 2.0, 3.0],
                        title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 4
        assert "3.000" in lines[3]

    def test_longest_bar_is_max(self):
        out = bar_chart(["a", "b"], [1.0, 4.0], width=20)
        bars = [line.split("|")[1] for line in out.splitlines()]
        assert bars[1].count("█") > bars[0].count("█")
        assert bars[1].count("█") == 20

    def test_baseline_marker(self):
        out = bar_chart(["x"], [1.2], baseline=1.0)
        assert "^ 1" in out

    def test_zero_values_ok(self):
        out = bar_chart(["x", "y"], [0.0, 0.0])
        assert "0.000" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=2)


class TestLineChart:
    def test_renders_series(self):
        xs = [1, 2, 3, 4]
        out = line_chart(xs, {"up": [1, 2, 3, 4],
                              "down": [4, 3, 2, 1]})
        assert "o up" in out
        assert "x down" in out
        assert "4.000" in out  # y max label

    def test_flat_series_does_not_crash(self):
        out = line_chart([0, 1], {"flat": [2.0, 2.0]})
        assert "flat" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {})
        with pytest.raises(ValueError):
            line_chart([1, 2], {"a": [1.0]})
        with pytest.raises(ValueError):
            line_chart([1, 2], {"a": [1.0, 2.0]}, width=4)


class TestHistogramChart:
    def test_counts_sum(self):
        values = np.random.default_rng(0).normal(size=200)
        out = histogram_chart(values, n_bins=6, title="H")
        assert out.splitlines()[0] == "H"
        total = sum(float(line.rsplit(" ", 1)[-1])
                    for line in out.splitlines()[1:])
        assert total == pytest.approx(200)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram_chart([])


class TestSerialize:
    def test_round_trip_dataclass(self, tmp_path):
        import dataclasses
        import numpy as np
        from repro.report import dump_result, load_result

        @dataclasses.dataclass(frozen=True)
        class Inner:
            xs: tuple

        @dataclasses.dataclass(frozen=True)
        class Result:
            name: str
            value: float
            arr: np.ndarray
            nested: Inner
            table: dict

        r = Result(name="fig", value=np.float64(1.5),
                   arr=np.array([1.0, 2.0]),
                   nested=Inner(xs=(1, 2)),
                   table={4: Inner(xs=(3,))})
        path = tmp_path / "r.json"
        dump_result(r, path)
        loaded = load_result(path)
        assert loaded["name"] == "fig"
        assert loaded["value"] == 1.5
        assert loaded["arr"] == [1.0, 2.0]
        assert loaded["nested"]["xs"] == [1, 2]
        assert loaded["table"]["4"]["xs"] == [3]

    def test_real_experiment_result_serialises(self, tmp_path):
        from repro.experiments import table5_apps
        from repro.report import dump_result, load_result
        result = table5_apps.run()
        path = tmp_path / "table5.json"
        dump_result(result, path)
        loaded = load_result(path)
        assert len(loaded["rows"]) == 14

    def test_unserialisable_rejected(self):
        from repro.report import to_jsonable
        with pytest.raises(TypeError):
            to_jsonable(object())
