"""Tests for the Section 8 extensions: parallel apps, barrier-aware
DVFS, and NBTI wearout."""

import numpy as np
import pytest

from repro.aging import (
    AgingState,
    NbtiParams,
    SECONDS_PER_MONTH,
    aged_chip,
    delta_vth,
    equivalent_stress_time,
)
from repro.config import COST_PERFORMANCE, PowerEnvironment
from repro.pm import BarrierAwarePm, FoxtonStar
from repro.pm.barrier import levels_for_pace
from repro.runtime import Assignment, evaluate_max_levels
from repro.sched import VarF
from repro.workloads import ParallelApplication, Workload, get_app


@pytest.fixture()
def papp():
    return ParallelApplication(worker=get_app("crafty"), n_threads=4)


class TestParallelApplication:
    def test_iteration_time_set_by_slowest(self, papp):
        uniform = papp.iteration_time_s([3e9] * 4)
        skewed = papp.iteration_time_s([3e9, 3e9, 3e9, 2e9])
        assert skewed > uniform
        assert skewed == pytest.approx(
            papp.worker_time_s(2e9) + papp.barrier_overhead_s)

    def test_throughput_scales_with_workers(self):
        small = ParallelApplication(get_app("crafty"), n_threads=2)
        big = ParallelApplication(get_app("crafty"), n_threads=4)
        tp2 = small.throughput_ips([3e9] * 2)
        tp4 = big.throughput_ips([3e9] * 4)
        assert tp4 == pytest.approx(2 * tp2, rel=1e-9)

    def test_slack_zero_when_uniform(self, papp):
        assert papp.slack_fraction([2.5e9] * 4) == pytest.approx(0.0)

    def test_slack_positive_when_skewed(self, papp):
        assert papp.slack_fraction([3e9, 3e9, 3e9, 2e9]) > 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelApplication(get_app("crafty"), n_threads=0)
        with pytest.raises(ValueError):
            ParallelApplication(get_app("crafty"), 4,
                                instructions_per_barrier=0)
        papp = ParallelApplication(get_app("crafty"), 2)
        with pytest.raises(ValueError):
            papp.iteration_time_s([3e9])  # wrong worker count
        with pytest.raises(ValueError):
            papp.worker_time_s(0.0)


class TestBarrierAwarePm:
    @pytest.fixture()
    def setup(self, chip, rng):
        wl = Workload(tuple(get_app("crafty") for _ in range(8)))
        asg = VarF().assign(chip, wl, rng)
        return wl, asg

    def test_levels_for_pace_monotone(self, chip, setup):
        _, asg = setup
        slow = levels_for_pace(chip, asg, 1.0e9)
        fast = levels_for_pace(chip, asg, 3.0e9)
        assert all(a <= b for a, b in zip(slow, fast))

    def test_unreachable_pace_pins_to_top(self, chip, setup):
        _, asg = setup
        levels = levels_for_pace(chip, asg, 100e9)
        tops = [chip.cores[c].vf_table.n_levels - 1
                for c in asg.core_of]
        assert levels == tops

    def test_meets_budget(self, chip, setup):
        wl, asg = setup
        res = BarrierAwarePm().set_levels(chip, wl, asg,
                                          COST_PERFORMANCE)
        p_target = COST_PERFORMANCE.p_target(8, chip.n_cores)
        assert res.state.total_power <= p_target + 1e-6

    def test_equalises_pace_with_generous_budget(self, chip, setup):
        wl, asg = setup
        generous = PowerEnvironment("Generous", 400.0, p_core_max=50.0)
        res = BarrierAwarePm().set_levels(chip, wl, asg, generous)
        papp = ParallelApplication(get_app("crafty"), n_threads=8)
        slack = papp.slack_fraction(res.state.freqs)
        # Frequencies quantised to table levels: small residual slack.
        assert slack < 0.06

    def test_saves_power_vs_max_levels(self, chip, setup):
        wl, asg = setup
        generous = PowerEnvironment("Generous", 400.0, p_core_max=50.0)
        res = BarrierAwarePm().set_levels(chip, wl, asg, generous)
        maxed = evaluate_max_levels(chip, wl, asg)
        assert res.state.total_power < maxed.total_power


class TestNbtiModel:
    def test_shift_grows_sublinearly_with_time(self):
        a = delta_vth(SECONDS_PER_MONTH, 360.0, 1.0, 1.0)
        b = delta_vth(4 * SECONDS_PER_MONTH, 360.0, 1.0, 1.0)
        assert a < b < 4 * a

    def test_hotter_ages_faster(self):
        cool = delta_vth(SECONDS_PER_MONTH, 330.0, 1.0, 1.0)
        hot = delta_vth(SECONDS_PER_MONTH, 380.0, 1.0, 1.0)
        assert hot > cool

    def test_higher_voltage_ages_faster(self):
        lo = delta_vth(SECONDS_PER_MONTH, 360.0, 0.8, 1.0)
        hi = delta_vth(SECONDS_PER_MONTH, 360.0, 1.0, 1.0)
        assert hi > lo

    def test_zero_duty_no_aging(self):
        assert delta_vth(SECONDS_PER_MONTH, 360.0, 1.0, 0.0) == 0.0

    def test_three_year_guard_band_scale(self):
        # Calibration anchor: ~30 mV after 3 years at reference stress.
        shift = delta_vth(36 * SECONDS_PER_MONTH, 353.15, 1.0, 1.0)
        assert 0.02 < shift < 0.045

    def test_equivalent_time_round_trip(self):
        shift = delta_vth(7 * SECONDS_PER_MONTH, 365.0, 0.95, 0.8)
        t_eq = equivalent_stress_time(shift, 365.0, 0.95, 0.8)
        assert t_eq == pytest.approx(7 * SECONDS_PER_MONTH, rel=1e-6)

    def test_accumulation_is_order_consistent(self):
        # One long epoch equals two half epochs at equal conditions.
        one = AgingState(1)
        one.apply_epoch(10 * SECONDS_PER_MONTH, [1.0], [365.0], [1.0])
        two = AgingState(1)
        for _ in range(2):
            two.apply_epoch(5 * SECONDS_PER_MONTH, [1.0], [365.0],
                            [1.0])
        assert one.shifts[0] == pytest.approx(two.shifts[0], rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            delta_vth(-1.0, 360.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            delta_vth(1.0, 360.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            AgingState(0)
        with pytest.raises(ValueError):
            NbtiParams(amplitude=-1.0)


class TestAgedChip:
    def test_aging_slows_and_unleaks(self, chip):
        shifts = np.full(chip.n_cores, 0.030)
        old = aged_chip(chip, shifts)
        assert np.all(old.fmax_array < chip.fmax_array)
        assert np.all(old.static_rated_array
                      < chip.static_rated_array)

    def test_zero_shift_is_identity(self, chip):
        same = aged_chip(chip, np.zeros(chip.n_cores))
        np.testing.assert_allclose(same.fmax_array, chip.fmax_array)

    def test_selective_aging_levels_the_spread(self, chip):
        # Age only the fastest half of the cores: spread must shrink.
        shifts = np.zeros(chip.n_cores)
        fast_half = np.argsort(chip.fmax_array)[::-1][: chip.n_cores // 2]
        shifts[fast_half] = 0.030
        old = aged_chip(chip, shifts)
        new_ratio = old.fmax_array.max() / old.fmax_array.min()
        orig_ratio = chip.fmax_array.max() / chip.fmax_array.min()
        assert new_ratio < orig_ratio

    def test_rejects_negative_shift(self, chip):
        shifts = np.zeros(chip.n_cores)
        shifts[0] = -0.01
        with pytest.raises(ValueError):
            aged_chip(chip, shifts)

    def test_rejects_wrong_length(self, chip):
        with pytest.raises(ValueError):
            aged_chip(chip, np.zeros(3))


class TestAgingPlusAbb:
    """Field-recalibration scenario: an aged chip is re-levelled with
    body bias, recovering part of the lost frequency floor."""

    def test_abb_recovers_aged_floor(self, chip):
        from repro.mitigation import (biased_chip,
                                      frequency_levelling_biases)
        shifts = np.full(chip.n_cores, 0.020)
        old = aged_chip(chip, shifts)
        assert old.min_fmax < chip.min_fmax
        biases = frequency_levelling_biases(
            old, target_hz=float(np.median(old.fmax_array)))
        recovered = biased_chip(old, biases)
        # Forward bias on the slow cores lifts the UniFreq floor back.
        assert recovered.min_fmax > old.min_fmax

    def test_selective_aging_then_levelling_is_tightest(self, chip):
        from repro.mitigation import (biased_chip,
                                      frequency_levelling_biases)
        # Age the fast half (the VarF usage pattern), then level.
        shifts = np.zeros(chip.n_cores)
        fast = np.argsort(chip.fmax_array)[::-1][: chip.n_cores // 2]
        shifts[fast] = 0.020
        old = aged_chip(chip, shifts)
        levelled = biased_chip(old, frequency_levelling_biases(old))
        ratios = [
            chip.fmax_array.max() / chip.fmax_array.min(),
            old.fmax_array.max() / old.fmax_array.min(),
            levelled.fmax_array.max() / levelled.fmax_array.min(),
        ]
        # fresh > aged > aged+ABB in spread.
        assert ratios[0] > ratios[1] > ratios[2]
