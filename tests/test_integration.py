"""End-to-end integration tests across the full stack.

These exercise the complete pipeline — variation map -> binning ->
scheduling -> power management -> thermal/power evaluation — and
assert the paper's headline qualitative claims hold on small runs.
"""

import numpy as np
import pytest

from repro.config import (
    COST_PERFORMANCE,
    DEFAULT_ARCH,
    DEFAULT_TECH,
    HIGH_PERFORMANCE,
    LOW_POWER,
    celsius,
)
from repro.pm import FoxtonStar, LinOpt, meets_constraints
from repro.runtime import (
    evaluate_max_levels,
    evaluate_uniform_frequency,
    profile_threads,
)
from repro.sched import POLICIES, RandomPolicy, VarFAppIPC, VarP
from repro.workloads import make_workload


class TestFullPipeline:
    def test_heterogeneity_is_visible_end_to_end(self, chip):
        """A variation-affected die is not homogeneous (Section 1)."""
        assert chip.fmax_array.std() / chip.fmax_array.mean() > 0.02
        rated = chip.static_rated_array
        assert rated.std() / rated.mean() > 0.10

    def test_full_load_reaches_paper_temperatures(self, chip, rng):
        wl = make_workload(20, rng)
        asg = RandomPolicy().assign_with_profiling(chip, wl, rng)
        state = evaluate_max_levels(chip, wl, asg)
        tmax = celsius(float(state.block_temps.max()))
        assert 80.0 < tmax < 115.0  # paper observes ~95 C

    def test_full_load_power_magnitude(self, chip, rng):
        wl = make_workload(20, rng)
        asg = RandomPolicy().assign_with_profiling(chip, wl, rng)
        state = evaluate_max_levels(chip, wl, asg)
        # Unconstrained full-load power sits between the Cost-Perf and
        # well above the Low-Power budget (else DVFS would be moot).
        assert 70.0 < state.total_power < 130.0

    def test_varp_saves_power_at_light_load(self, chip, rng):
        wl = make_workload(4, rng)
        p_random, p_varp = [], []
        for seed in range(4):
            r = np.random.default_rng(seed)
            asg_r = RandomPolicy().assign_with_profiling(chip, wl, r)
            asg_v = VarP().assign_with_profiling(chip, wl, r)
            p_random.append(evaluate_uniform_frequency(
                chip, wl, asg_r).total_power)
            p_varp.append(evaluate_uniform_frequency(
                chip, wl, asg_v).total_power)
        assert np.mean(p_varp) < np.mean(p_random)

    def test_varfappipc_beats_random_throughput(self, chip, rng):
        gains = []
        for seed in range(4):
            r = np.random.default_rng(seed)
            wl = make_workload(8, r)
            asg_r = RandomPolicy().assign_with_profiling(chip, wl, r)
            asg_v = VarFAppIPC().assign_with_profiling(chip, wl, r)
            tp_r = evaluate_max_levels(chip, wl, asg_r).throughput_mips
            tp_v = evaluate_max_levels(chip, wl, asg_v).throughput_mips
            gains.append(tp_v / tp_r)
        assert np.mean(gains) > 1.0

    def test_linopt_beats_foxton_under_tight_budget(self, chip, rng):
        ratios = []
        for seed in range(3):
            r = np.random.default_rng(seed)
            wl = make_workload(12, r)
            asg = VarFAppIPC().assign_with_profiling(chip, wl, r)
            fox = FoxtonStar().set_levels(chip, wl, asg, LOW_POWER)
            lin = LinOpt().set_levels(chip, wl, asg, LOW_POWER)
            ratios.append(lin.state.throughput_mips
                          / fox.state.throughput_mips)
        assert np.mean(ratios) > 1.0

    def test_gains_grow_as_budget_tightens(self, chip, rng):
        """Figure 12's shape: tighter budget, larger LinOpt gain."""
        gains = {}
        for env in (LOW_POWER, HIGH_PERFORMANCE):
            ratios = []
            for seed in range(3):
                r = np.random.default_rng(seed)
                wl = make_workload(16, r)
                asg_rand = RandomPolicy().assign_with_profiling(
                    chip, wl, r)
                asg_smart = VarFAppIPC().assign_with_profiling(
                    chip, wl, r)
                base = FoxtonStar().set_levels(chip, wl, asg_rand, env)
                lin = LinOpt().set_levels(chip, wl, asg_smart, env)
                ratios.append(lin.state.throughput_mips
                              / base.state.throughput_mips)
            gains[env.name] = np.mean(ratios)
        assert gains["Low Power"] >= gains["High Performance"] - 0.02

    def test_every_policy_produces_valid_assignment(self, chip, rng):
        wl = make_workload(10, rng)
        for name, policy in POLICIES.items():
            asg = policy.assign_with_profiling(chip, wl, rng)
            assert len(set(asg.core_of)) == 10
            state = evaluate_max_levels(chip, wl, asg)
            assert state.total_power > 0

    def test_budgets_respected_across_environments(self, chip, rng):
        wl = make_workload(10, rng)
        asg = VarFAppIPC().assign_with_profiling(chip, wl, rng)
        for env in (LOW_POWER, COST_PERFORMANCE, HIGH_PERFORMANCE):
            for manager in (FoxtonStar(), LinOpt()):
                result = manager.set_levels(chip, wl, asg, env)
                p_target = env.p_target(10, chip.n_cores)
                assert meets_constraints(result.state, p_target,
                                         env.p_core_max, slack=1e-6)
