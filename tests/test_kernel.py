"""Bitwise-identity and regression tests for the batched EvalKernel.

The contract of :class:`repro.runtime.kernel.EvalKernel` is that every
row of a batch is *bitwise identical* to the serial
:func:`repro.runtime.evaluation.evaluate_levels` call for the same
levels — including which candidates raise, with what exception — and
that the policies rewired onto it return exactly the decisions,
evaluation counts and states of their serial implementations.
"""

import numpy as np
import pytest

from repro.config import COST_PERFORMANCE, LOW_POWER
from repro.pm import (BarrierAwarePm, ExhaustiveSearch, FoxtonStar, LinOpt,
                      LinOptConfig, OptimalFrozen, SAnnManager,
                      fit_power_lines)
from repro.power import PowerSensor
from repro.runtime.evaluation import (EVALUATION_COUNTER, Assignment,
                                      evaluate_levels)
from repro.runtime.kernel import EvalKernel
from repro.workloads import make_workload


def _random_case(chip, n_threads, seed):
    """(workload, assignment, level matrix) drawn from one rng stream."""
    rng = np.random.default_rng(seed)
    workload = make_workload(n_threads, rng)
    cores = rng.choice(chip.n_cores, size=n_threads, replace=False)
    assignment = Assignment(core_of=tuple(int(c) for c in cores))
    max_lv = min(chip.cores[c].vf_table.n_levels
                 for c in assignment.core_of)
    matrix = rng.integers(0, max_lv, size=(37, n_threads))
    return workload, assignment, matrix


def _assert_state_bitwise(batch_state, serial_state):
    np.testing.assert_array_equal(batch_state.voltages,
                                  serial_state.voltages)
    np.testing.assert_array_equal(batch_state.freqs, serial_state.freqs)
    np.testing.assert_array_equal(batch_state.ipcs, serial_state.ipcs)
    np.testing.assert_array_equal(batch_state.core_dynamic,
                                  serial_state.core_dynamic)
    np.testing.assert_array_equal(batch_state.core_leakage,
                                  serial_state.core_leakage)
    np.testing.assert_array_equal(batch_state.block_temps,
                                  serial_state.block_temps)
    assert batch_state.l2_power == serial_state.l2_power
    assert batch_state.total_power == serial_state.total_power


class TestBitwiseIdentity:
    """Property: batch rows == serial evaluations, bit for bit."""

    @pytest.mark.parametrize("n_threads,seed", [(1, 3), (4, 4), (8, 5)])
    def test_batch_matches_serial(self, small_chip, n_threads, seed):
        wl, asg, matrix = _random_case(small_chip, n_threads, seed)
        kernel = EvalKernel(small_chip, wl, asg)
        states = kernel.evaluate_levels_batch(matrix)
        assert len(states) == matrix.shape[0]
        for row, state in zip(matrix, states):
            ref = evaluate_levels(small_chip, wl, asg, list(row))
            _assert_state_bitwise(state, ref)

    def test_full_die_batch(self, chip):
        wl, asg, matrix = _random_case(chip, 6, 17)
        kernel = EvalKernel(chip, wl, asg)
        states = kernel.evaluate_levels_batch(matrix[:20])
        for row, state in zip(matrix[:20], states):
            _assert_state_bitwise(
                state, evaluate_levels(chip, wl, asg, list(row)))

    def test_phase_multipliers(self, small_chip):
        wl, asg, matrix = _random_case(small_chip, 4, 6)
        rng = np.random.default_rng(8)
        ipc_m = rng.uniform(0.6, 1.4, size=4)
        ceff_m = rng.uniform(0.6, 1.4, size=4)
        kernel = EvalKernel(small_chip, wl, asg,
                            ipc_multipliers=ipc_m, ceff_multipliers=ceff_m)
        for row, state in zip(matrix[:10],
                              kernel.evaluate_levels_batch(matrix[:10])):
            ref = evaluate_levels(small_chip, wl, asg, list(row),
                                  ipc_multipliers=ipc_m,
                                  ceff_multipliers=ceff_m)
            _assert_state_bitwise(state, ref)

    def test_single_candidate_wrapper(self, small_chip):
        wl, asg, matrix = _random_case(small_chip, 4, 7)
        kernel = EvalKernel(small_chip, wl, asg)
        state = kernel.evaluate_levels(list(matrix[0]))
        _assert_state_bitwise(
            state, evaluate_levels(small_chip, wl, asg, list(matrix[0])))

    def test_batch_independent_of_neighbours(self, small_chip):
        """A row's result cannot depend on what it is batched with."""
        wl, asg, matrix = _random_case(small_chip, 4, 9)
        kernel = EvalKernel(small_chip, wl, asg)
        together = kernel.evaluate_levels_batch(matrix)
        alone = [kernel.evaluate_levels_batch(matrix[b:b + 1])[0]
                 for b in range(matrix.shape[0])]
        for a, b in zip(together, alone):
            _assert_state_bitwise(a, b)


class TestErrorParity:
    """Failing candidates fail identically to the serial path."""

    def _runaway_setup(self, small_chip):
        rng = np.random.default_rng(42)
        n = 8
        wl = make_workload(n, rng)
        cores = rng.choice(small_chip.n_cores, size=n, replace=False)
        asg = Assignment(core_of=tuple(int(c) for c in cores))
        max_lv = min(small_chip.cores[c].vf_table.n_levels
                     for c in asg.core_of)
        # Enormous dynamic power makes the top-level rows run away.
        ceff_m = [40.0] * n
        matrix = np.zeros((12, n), dtype=int)
        matrix[[1, 4, 9]] = max_lv - 1
        matrix[5] = 3
        return wl, asg, ceff_m, matrix

    def test_isolate_matches_serial_per_row(self, small_chip):
        wl, asg, ceff_m, matrix = self._runaway_setup(small_chip)
        kernel = EvalKernel(small_chip, wl, asg, ceff_multipliers=ceff_m)
        results = kernel.evaluate_levels_batch(matrix, errors="isolate")
        n_err = 0
        for row, item in zip(matrix, results):
            try:
                ref = evaluate_levels(small_chip, wl, asg, list(row),
                                      ceff_multipliers=ceff_m)
                ref_err = None
            except Exception as exc:  # noqa: BLE001 — parity check
                ref, ref_err = None, exc
            if ref_err is not None:
                n_err += 1
                assert isinstance(item, Exception)
                assert type(item) is type(ref_err)
                assert str(item) == str(ref_err)
            else:
                _assert_state_bitwise(item, ref)
        assert n_err > 0  # the setup must actually exercise failures

    def test_raise_mode_raises_lowest_index_error(self, small_chip):
        wl, asg, ceff_m, matrix = self._runaway_setup(small_chip)
        kernel = EvalKernel(small_chip, wl, asg, ceff_multipliers=ceff_m)
        isolated = kernel.evaluate_levels_batch(matrix, errors="isolate")
        first = next(i for i, r in enumerate(isolated)
                     if isinstance(r, Exception))
        with pytest.raises(type(isolated[first]),
                           match=str(isolated[first]).split(":")[0]):
            kernel.evaluate_levels_batch(matrix)

    def test_out_of_range_level_message(self, small_chip):
        wl, asg, matrix = _random_case(small_chip, 4, 10)
        kernel = EvalKernel(small_chip, wl, asg)
        bad = matrix[:3].copy()
        bad[1, 2] = 99
        with pytest.raises(ValueError) as batch_err:
            kernel.evaluate_levels_batch(bad)
        with pytest.raises(ValueError) as serial_err:
            evaluate_levels(small_chip, wl, asg, list(bad[1]))
        assert str(batch_err.value) == str(serial_err.value)

    def test_shape_validation(self, small_chip):
        wl, asg, _ = _random_case(small_chip, 4, 11)
        kernel = EvalKernel(small_chip, wl, asg)
        with pytest.raises(ValueError, match="one level per thread"):
            kernel.evaluate_levels_batch(np.zeros((2, 3), dtype=int))
        with pytest.raises(ValueError, match="raise.*isolate"):
            kernel.evaluate_levels_batch(np.zeros((2, 4), dtype=int),
                                         errors="always")
        assert kernel.evaluate_levels_batch(
            np.zeros((0, 4), dtype=int)) == []


class TestKernelStats:
    def test_stats_and_global_counter(self, small_chip):
        wl, asg, matrix = _random_case(small_chip, 4, 12)
        kernel = EvalKernel(small_chip, wl, asg)
        EVALUATION_COUNTER.reset()
        kernel.evaluate_levels_batch(matrix[:5])
        kernel.evaluate_levels_batch(matrix[:2])
        stats = kernel.stats
        assert stats.evaluations == 7
        assert stats.batch_calls == 2
        assert stats.batch_size_hist == {5: 1, 2: 1}
        assert stats.fixed_point_iterations > 0
        assert stats.wall_s > 0
        assert EVALUATION_COUNTER.count == 7
        assert EVALUATION_COUNTER.batch_calls == 2
        assert EVALUATION_COUNTER.batch_size_hist == {5: 1, 2: 1}
        scalars = stats.as_result_stats()
        assert scalars["kernel_evaluations"] == 7.0
        assert scalars["kernel_batches"] == 2.0
        assert scalars["kernel_batch_max"] == 5.0
        assert scalars["kernel_batch_mean"] == pytest.approx(3.5)


def _pm_case(chip, n_threads, seed):
    rng = np.random.default_rng(seed)
    wl = make_workload(n_threads, rng)
    cores = rng.choice(chip.n_cores, size=n_threads, replace=False)
    return wl, Assignment(core_of=tuple(int(c) for c in cores))


class TestPolicyRegression:
    """use_kernel=True must change nothing but speed and stats."""

    @pytest.mark.parametrize("factory", [
        lambda uk: FoxtonStar(use_kernel=uk),
        lambda uk: SAnnManager(n_evaluations=150, use_kernel=uk),
        lambda uk: SAnnManager(n_evaluations=100, objective="weighted",
                               use_kernel=uk),
        lambda uk: LinOpt(LinOptConfig(n_iterations=2), use_kernel=uk),
        lambda uk: OptimalFrozen(n_iterations=2, use_kernel=uk),
        lambda uk: BarrierAwarePm(use_kernel=uk),
    ], ids=["foxton", "sann", "sann-weighted", "linopt", "optimal",
            "barrier"])
    @pytest.mark.parametrize("env", [COST_PERFORMANCE, LOW_POWER],
                             ids=["cost-perf", "low-power"])
    def test_kernel_matches_serial_decision(self, small_chip, factory,
                                            env):
        wl, asg = _pm_case(small_chip, 5, 21)
        with_kernel = factory(True).set_levels(
            small_chip, wl, asg, env, rng=np.random.default_rng(33))
        serial = factory(False).set_levels(
            small_chip, wl, asg, env, rng=np.random.default_rng(33))
        assert with_kernel.levels == serial.levels
        assert with_kernel.evaluations == serial.evaluations
        _assert_state_bitwise(with_kernel.state, serial.state)
        non_kernel = {k: v for k, v in with_kernel.stats.items()
                      if not k.startswith("kernel_")}
        assert non_kernel == {k: v for k, v in serial.stats.items()
                              if not k.startswith("kernel_")}
        assert with_kernel.stats["kernel_evaluations"] > 0
        assert "kernel_evaluations" not in serial.stats

    def test_exhaustive_matches_serial_decision(self, small_chip):
        wl, asg = _pm_case(small_chip, 3, 23)
        with_kernel = ExhaustiveSearch(use_kernel=True).set_levels(
            small_chip, wl, asg, COST_PERFORMANCE)
        serial = ExhaustiveSearch(use_kernel=False).set_levels(
            small_chip, wl, asg, COST_PERFORMANCE)
        assert with_kernel.levels == serial.levels
        assert with_kernel.evaluations == serial.evaluations
        _assert_state_bitwise(with_kernel.state, serial.state)
        assert (with_kernel.stats["combinations"]
                == serial.stats["combinations"])
        # Every combination went through the kernel, none was wasted.
        assert (with_kernel.stats["kernel_evaluations"]
                == with_kernel.evaluations)

    def test_sann_reports_cache_hits(self, small_chip):
        wl, asg = _pm_case(small_chip, 4, 25)
        result = SAnnManager(n_evaluations=150).set_levels(
            small_chip, wl, asg, COST_PERFORMANCE,
            rng=np.random.default_rng(1))
        assert result.stats["sa_cache_hits"] > 0

    def test_sann_cache_bound_does_not_change_decision(
            self, small_chip, monkeypatch):
        """A tiny LRU bound may cost re-evaluations, never the answer."""
        wl, asg = _pm_case(small_chip, 4, 27)
        reference = SAnnManager(n_evaluations=80).set_levels(
            small_chip, wl, asg, COST_PERFORMANCE,
            rng=np.random.default_rng(2))
        monkeypatch.setattr("repro.pm.sann.STATE_CACHE_CAPACITY", 4)
        bounded = SAnnManager(n_evaluations=80).set_levels(
            small_chip, wl, asg, COST_PERFORMANCE,
            rng=np.random.default_rng(2))
        assert bounded.levels == reference.levels
        _assert_state_bitwise(bounded.state, reference.state)
        # With four live entries nearly every revisit re-evaluates.
        assert bounded.evaluations >= reference.evaluations


class TestFitPowerLinesWindow:
    """The local profiling window must honour n_profile_voltages."""

    class CountingPowerSensor(PowerSensor):
        def __init__(self):
            super().__init__()
            self.reads = 0

        def read(self, true_value):
            self.reads += 1
            return super().read(true_value)

    @pytest.mark.parametrize("n_voltages,expected", [(2, 2), (3, 3),
                                                     (5, 5)])
    def test_local_window_point_count(self, small_chip, n_voltages,
                                      expected):
        wl, asg = _pm_case(small_chip, 2, 29)
        temps = np.full(small_chip.n_cores, 350.0)
        sensor = self.CountingPowerSensor()
        # Centre 4, span 2 on a 9-level table: window levels 2..6, wide
        # enough to hold all requested point counts distinctly.
        fit_power_lines(small_chip, wl, asg, temps, n_voltages, sensor,
                        center_levels=[4, 4], span_levels=2)
        assert sensor.reads == expected * asg.n_threads

    def test_narrow_window_collapses_duplicates(self, small_chip):
        wl, asg = _pm_case(small_chip, 2, 29)
        temps = np.full(small_chip.n_cores, 350.0)
        sensor = self.CountingPowerSensor()
        # Window 0..1 has two levels: even 5 requested points collapse.
        fit_power_lines(small_chip, wl, asg, temps, 5, sensor,
                        center_levels=[0, 0], span_levels=1)
        assert sensor.reads == 2 * asg.n_threads

    def test_local_fit_matches_window_polyfit(self, small_chip):
        """n_voltages=2 fits exactly the window's two endpoints."""
        wl, asg = _pm_case(small_chip, 2, 29)
        temps = np.full(small_chip.n_cores, 350.0)
        fit = fit_power_lines(small_chip, wl, asg, temps, 2,
                              PowerSensor(), center_levels=[4, 4],
                              span_levels=2)
        i = 0
        core = small_chip.cores[asg.core_of[i]]
        table = core.vf_table
        xs, ys = [], []
        for lv in (2, 6):
            v = float(table.voltages[lv])
            f = float(table.freqs[lv])
            p = (wl[i].dynamic_power_at(v, f)
                 + core.leakage.power(v, 350.0))
            xs.append(v)
            ys.append(p)
        slope, intercept = np.polyfit(np.array(xs), np.array(ys), 1)
        assert fit.slope[i] == pytest.approx(slope)
        assert fit.intercept[i] == pytest.approx(intercept)
