"""Die characterisation: manufacturer binning of variation-affected dies."""

from .characterize import ChipProfile, CoreDescriptor, characterize_die
from .batch import CharacterizationKernel, characterize_dies

__all__ = [
    "CharacterizationKernel",
    "ChipProfile",
    "CoreDescriptor",
    "characterize_die",
    "characterize_dies",
]
