"""Die characterisation: manufacturer binning of variation-affected dies."""

from .characterize import ChipProfile, CoreDescriptor, characterize_die

__all__ = ["ChipProfile", "CoreDescriptor", "characterize_die"]
