"""Post-manufacturing die characterisation.

This layer plays the role of the chip manufacturer's binning flow
(Table 3): from a die's variation map it derives, per core, the
(V, f) table, the frequency model, the leakage model, and the static
power measured at maximum voltage under zero load — the profile data
the scheduling and power-management algorithms are allowed to see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config import T_HOT_K, T_REF_K, ArchConfig, TechParams
from ..floorplan import Floorplan, build_floorplan
from ..freq import (
    CoreFrequencyModel,
    VFTable,
    build_vf_table,
    extract_core_paths,
    frequency_calibration,
)
from ..power import CoreLeakageModel, L2LeakageModel, build_core_leakage
from ..thermal import ThermalNetwork
from ..variation import Die


@dataclass(frozen=True)
class CoreDescriptor:
    """Everything known about one manufactured core.

    Attributes:
        core_id: Index on the die.
        vf_table: Manufacturer-binned (V, f) operating points.
        freq_model: Underlying continuous f(V, T) model.
        leakage: Leakage power model p_static(V, T).
        static_power_rated: Static power (W) measured by the
            manufacturer at maximum voltage, zero load, reference
            temperature — the VarP ranking input.
    """

    core_id: int
    vf_table: VFTable
    freq_model: CoreFrequencyModel
    leakage: CoreLeakageModel
    static_power_rated: float

    @property
    def fmax(self) -> float:
        """Rated maximum frequency (Hz) at maximum voltage."""
        return self.vf_table.fmax

    def static_power_at(self, vdd: float,
                        t_kelvin: float = T_REF_K) -> float:
        """Static power at a voltage level (VarP&AppP profile data)."""
        return self.leakage.power(vdd, t_kelvin)


@dataclass(frozen=True)
class ChipProfile:
    """A fully characterised die.

    Holds the per-core descriptors plus shared structures (floorplan,
    thermal network, L2 leakage) that system-level evaluation needs.
    """

    die_id: int
    tech: TechParams
    arch: ArchConfig
    floorplan: Floorplan
    cores: Tuple[CoreDescriptor, ...]
    l2_leakage: L2LeakageModel
    thermal: ThermalNetwork

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    @property
    def fmax_array(self) -> np.ndarray:
        """Rated fmax of every core (Hz).

        The cores are immutable, so the array is built once and cached
        (fleet analysis stacks it per die per chunk, and every
        scheduling policy ranks on it). The cached array is read-only
        so one caller cannot corrupt another's view.
        """
        cached = getattr(self, "_fmax_array", None)
        if cached is None:
            cached = np.array([c.fmax for c in self.cores])
            cached.setflags(write=False)
            object.__setattr__(self, "_fmax_array", cached)
        return cached

    @property
    def static_rated_array(self) -> np.ndarray:
        """Rated static power of every core (W).

        Cached read-only, like :attr:`fmax_array`.
        """
        cached = getattr(self, "_static_rated_array", None)
        if cached is None:
            cached = np.array([c.static_power_rated for c in self.cores])
            cached.setflags(write=False)
            object.__setattr__(self, "_static_rated_array", cached)
        return cached

    @property
    def min_fmax(self) -> float:
        """Frequency of the slowest core — the UniFreq chip frequency."""
        return float(self.fmax_array.min())


def characterize_die(
    die: Die,
    tech: TechParams,
    arch: ArchConfig,
    floorplan: Optional[Floorplan] = None,
    thermal: Optional[ThermalNetwork] = None,
) -> ChipProfile:
    """Characterise one die into a :class:`ChipProfile`.

    Path sampling uses a per-die deterministic seed so the same die
    always bins identically.
    """
    if floorplan is None:
        floorplan = build_floorplan(arch)
    if floorplan.n_cores != arch.n_cores:
        raise ValueError("floorplan core count does not match arch")
    if thermal is None:
        thermal = ThermalNetwork(floorplan)
    calib = frequency_calibration(tech, arch)
    rng = np.random.default_rng([die.die_id, 0xC0DE])
    cores = []
    for core_id in range(arch.n_cores):
        paths = extract_core_paths(die.variation, floorplan, core_id,
                                   tech, rng)
        freq_model = CoreFrequencyModel(paths, tech, calib)
        vf_table = build_vf_table(freq_model, tech, arch)
        leakage = build_core_leakage(die.variation, floorplan, core_id, tech)
        rated = leakage.power(tech.vdd_max, T_REF_K)
        cores.append(CoreDescriptor(
            core_id=core_id,
            vf_table=vf_table,
            freq_model=freq_model,
            leakage=leakage,
            static_power_rated=rated,
        ))
    l2 = L2LeakageModel(die.variation, floorplan, tech)
    return ChipProfile(
        die_id=die.die_id,
        tech=tech,
        arch=arch,
        floorplan=floorplan,
        cores=tuple(cores),
        l2_leakage=l2,
        thermal=thermal,
    )
