"""Die-batched characterisation kernel.

:func:`characterize_dies` bins many dies at once, bitwise-identical to
calling :func:`~repro.chip.characterize.characterize_die` per die. It
follows the lockstep recipe proven by ``EvalKernel``/``FleetEvalKernel``
(DESIGN.md §13/§17): every floating-point expression of the serial
binning flow is either hoisted (when it does not depend on the die) or
replayed in exact serial form over stacked arrays (when IEEE semantics
guarantee elementwise/broadcast equality), and reductions whose
accumulation order is implementation-defined stay in their serial shape.

Concretely, per chunk of dies sharing a map geometry:

* per-die RNG draws are coalesced into one ``standard_normal`` call per
  die in the exact serial stream order;
* candidate-path (Vth, Leff) values are one stacked gather over a
  precomputed flat cell index plus one broadcast add of the random
  offsets — identical binary ops to the serial per-unit loop;
* Pareto pruning calls the (vectorised) serial ``pareto_prune`` per
  (die, core) — its keep-set depends on sort order, not accumulation;
* ``gate_delay`` evaluates one ``(levels, total_paths)`` block for the
  whole chunk, with per-(die, core) ragged segments reduced by
  ``np.maximum.reduceat`` (max is order-independent) and V/f binning
  (`floor`/`maximum.accumulate`) running column-batched;
* leakage models are rebuilt per die from stacked region-cell gathers
  through ``CoreLeakageModel.from_arrays`` with per-core weights
  computed once, and the rated power is the serial ``power()`` call on
  the rebuilt model.

Dies whose paths would push ``gate_delay`` sub-threshold are detected
up front with the serial predicate, excluded from the batched block,
and re-run through the serial path so their exception (or profile) is
exactly the serial one; ``errors="raise"`` then re-raises the
lowest-index die's failure — serial-scan parity — while
``errors="isolate"`` returns the exception object in that die's slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..config import T_HOT_K, T_REF_K, ArchConfig, TechParams
from ..floorplan import Floorplan, UnitKind, build_floorplan
from ..freq.alpha_power import gate_delay, vth_at_temperature
from ..freq.critical_path import (
    GATES_PER_PATH,
    CoreFrequencyModel,
    PathSet,
    frequency_calibration,
    pareto_prune,
)
from ..freq.sram import worst_cell_quantile
from ..freq.vf_table import FREQ_QUANTUM_HZ, VFTable
from ..power.leakage import (
    CoreLeakageModel,
    L2LeakageModel,
    leakage_calibration,
)
from ..thermal import ThermalNetwork
from ..variation import Die
from .characterize import ChipProfile, CoreDescriptor, characterize_die

__all__ = ["CharacterizationKernel", "characterize_dies"]

CharacterizeResult = Union[ChipProfile, Exception]


@dataclass(frozen=True)
class _BatchGeometry:
    """Per-(floorplan, map-geometry) gather layout, shared by all dies.

    The floorplan is fixed per kernel and every die of a chunk shares
    its grid resolution and edge, so the region-cell index sets, the
    candidate-path layout, the random-draw slot assignment and the
    normalised leakage weights are all die-independent and computed
    once.
    """

    #: Flat (row-major) grid indices of every candidate path's cell,
    #: concatenated core-major in the serial unit order.
    path_idx: np.ndarray
    #: Half-open (start, end) bounds of each core's path segment.
    core_path_bounds: Tuple[Tuple[int, int], ...]
    #: Path positions belonging to LOGIC units (take random draws).
    logic_pos: np.ndarray
    #: Per-logic-position draw slot for the Vth offset.
    vth_slot: np.ndarray
    #: Per-logic-position draw slot for the Leff offset.
    leff_slot: np.ndarray
    #: Path positions belonging to SRAM units (worst-cell quantile).
    sram_pos: np.ndarray
    #: Gaussian draws one die consumes (the serial stream length).
    n_draws: int
    #: Flat grid indices of every leakage cell, concatenated core-major.
    leak_idx: np.ndarray
    #: Half-open (start, end) bounds of each core's leakage segment.
    core_leak_bounds: Tuple[Tuple[int, int], ...]
    #: Per-core normalised leakage weights (read-only, shared).
    leak_weights: Tuple[np.ndarray, ...]


class CharacterizationKernel:
    """Bins batches of dies bitwise-identically to the serial flow.

    One kernel instance pins (tech, arch, floorplan, thermal) — the
    same shared structures :func:`characterize_die` attaches — and
    caches the gather geometry per map resolution/edge, so repeated
    :meth:`characterize` calls (e.g. one per fleet chunk) pay the
    layout cost once.
    """

    def __init__(self, tech: TechParams, arch: ArchConfig,
                 floorplan: Optional[Floorplan] = None,
                 thermal: Optional[ThermalNetwork] = None) -> None:
        if floorplan is None:
            floorplan = build_floorplan(arch)
        if floorplan.n_cores != arch.n_cores:
            raise ValueError("floorplan core count does not match arch")
        if thermal is None:
            thermal = ThermalNetwork(floorplan)
        self.tech = tech
        self.arch = arch
        self.floorplan = floorplan
        self.thermal = thermal
        # Die-independent constants, computed with the exact serial
        # expressions so downstream float ops see identical operands.
        self._calib = frequency_calibration(tech, arch)
        self._sigma_ran_vth = tech.vth_sigma / np.sqrt(2.0)
        self._sigma_ran_leff = tech.leff_sigma / np.sqrt(2.0)
        self._path_sigma_vth = self._sigma_ran_vth / np.sqrt(GATES_PER_PATH)
        self._path_sigma_leff = self._sigma_ran_leff / np.sqrt(GATES_PER_PATH)
        self._z_sram = worst_cell_quantile()
        self._voltages = np.linspace(tech.vdd_min, tech.vdd_max,
                                     arch.n_voltage_levels)
        self._voltages.setflags(write=False)
        self._geometry: Dict[Tuple[int, float], _BatchGeometry] = {}

    # ------------------------------------------------------------------
    # geometry

    def _geometry_for(self, vmap) -> _BatchGeometry:
        key = (vmap.resolution, float(vmap.edge))
        geom = self._geometry.get(key)
        if geom is None:
            geom = self._build_geometry(vmap)
            self._geometry[key] = geom
        return geom

    def _build_geometry(self, vmap) -> _BatchGeometry:
        res = vmap.resolution
        path_idx_parts: List[np.ndarray] = []
        core_path_bounds: List[Tuple[int, int]] = []
        logic_pos: List[np.ndarray] = []
        vth_slot: List[np.ndarray] = []
        leff_slot: List[np.ndarray] = []
        sram_pos: List[np.ndarray] = []
        core_leak_bounds: List[Tuple[int, int]] = []
        leak_weights: List[np.ndarray] = []
        p = 0  # position in the concatenated path layout
        t = 0  # position in the per-die draw stream
        for core_id in range(self.arch.n_cores):
            p0 = p
            weight_parts: List[np.ndarray] = []
            for unit in self.floorplan.core_units(core_id):
                r = unit.rect
                i0, i1, j0, j1 = vmap.region_bounds(r.x0, r.y0, r.x1, r.y1)
                block = (np.arange(i0, i1)[:, None] * res
                         + np.arange(j0, j1)[None, :]).ravel()
                s = block.size
                path_idx_parts.append(block)
                if unit.spec.kind is UnitKind.LOGIC:
                    logic_pos.append(np.arange(p, p + s))
                    vth_slot.append(np.arange(t, t + s))
                    leff_slot.append(np.arange(t + s, t + 2 * s))
                    t += 2 * s
                else:
                    sram_pos.append(np.arange(p, p + s))
                p += s
                # The serial CoreLeakageModel splits each unit's weight
                # uniformly over its cells, then normalises the core.
                weight_parts.append(
                    np.full(s, unit.spec.leakage_weight / s))
            core_path_bounds.append((p0, p))
            weights = np.concatenate(weight_parts)
            total = weights.sum()
            if total <= 0:
                raise ValueError("total leakage weight must be positive")
            weights = weights / total
            weights.setflags(write=False)
            leak_weights.append(weights)
            # Leakage cells are the same per-unit regions, so the path
            # layout's per-core bounds double as the leakage bounds.
            core_leak_bounds.append((p0, p))

        def cat(parts: List[np.ndarray]) -> np.ndarray:
            if not parts:
                return np.empty(0, dtype=np.intp)
            return np.concatenate(parts).astype(np.intp)

        path_idx = cat(path_idx_parts)
        return _BatchGeometry(
            path_idx=path_idx,
            core_path_bounds=tuple(core_path_bounds),
            logic_pos=cat(logic_pos),
            vth_slot=cat(vth_slot),
            leff_slot=cat(leff_slot),
            sram_pos=cat(sram_pos),
            n_draws=t,
            leak_idx=path_idx,
            core_leak_bounds=tuple(core_leak_bounds),
            leak_weights=tuple(leak_weights),
        )

    # ------------------------------------------------------------------
    # characterisation

    def characterize(self, dies: Sequence[Die],
                     errors: str = "raise") -> List[CharacterizeResult]:
        """Characterise every die, batched.

        Args:
            dies: Dies to bin; dies of mixed map geometry are grouped
                and each group is batched separately.
            errors: ``"raise"`` re-raises the exception of the
                lowest-index failing die (what the serial in-order
                loop would have raised); ``"isolate"`` returns the
                exception object in that die's result slot and
                characterises every other die normally.

        Returns:
            One :class:`~repro.chip.ChipProfile` per die (or the
            die's exception under ``errors="isolate"``), in order.
        """
        if errors not in ("raise", "isolate"):
            raise ValueError("errors must be 'raise' or 'isolate'")
        dies = list(dies)
        results: List[Optional[CharacterizeResult]] = [None] * len(dies)
        groups: Dict[Tuple[int, float], List[int]] = {}
        for i, die in enumerate(dies):
            vmap = die.variation
            groups.setdefault((vmap.resolution, float(vmap.edge)),
                              []).append(i)
        for idxs in groups.values():
            self._characterize_group(dies, idxs, results)
        if errors == "raise":
            for result in results:
                if isinstance(result, Exception):
                    raise result
        return results  # type: ignore[return-value]

    def _characterize_group(self, dies: List[Die], idxs: List[int],
                            results: List[Optional[CharacterizeResult]],
                            ) -> None:
        tech = self.tech
        n_cores = self.arch.n_cores
        geom = self._geometry_for(dies[idxs[0]].variation)
        d_count = len(idxs)
        vth_maps = np.stack(
            [dies[i].variation.vth_sys for i in idxs]).reshape(d_count, -1)

        # One coalesced draw per die, in the exact serial stream order
        # (per core, per unit: Vth offsets then Leff offsets).
        draws = np.empty((d_count, geom.n_draws))
        for d, i in enumerate(idxs):
            rng = np.random.default_rng([dies[i].die_id, 0xC0DE])
            draws[d] = rng.standard_normal(geom.n_draws)

        path_vth = vth_maps[:, geom.path_idx]
        leff_maps = np.stack(
            [dies[i].variation.leff_sys for i in idxs]).reshape(d_count, -1)
        path_leff = leff_maps[:, geom.path_idx]
        if geom.logic_pos.size:
            path_vth[:, geom.logic_pos] += (
                self._path_sigma_vth * draws[:, geom.vth_slot])
            path_leff[:, geom.logic_pos] += (
                self._path_sigma_leff * draws[:, geom.leff_slot])
        if geom.sram_pos.size:
            path_vth[:, geom.sram_pos] += self._z_sram * self._sigma_ran_vth

        # Pareto pruning per (die, core): the same call the serial path
        # makes, on the same values.
        pruned: List[List[PathSet]] = []
        for d in range(d_count):
            row = []
            for p0, p1 in geom.core_path_bounds:
                row.append(pareto_prune(PathSet(vth=path_vth[d, p0:p1],
                                                leff=path_leff[d, p0:p1])))
            pruned.append(row)

        # Detect dies the serial path would fail on (sub-threshold
        # overdrive at the lowest table voltage — the exact predicate
        # gate_delay raises on, evaluated at its weakest point) and
        # route them through the serial path for exception parity.
        sizes = np.array([pruned[d][c].vth.size for d in range(d_count)
                          for c in range(n_cores)], dtype=np.intp)
        all_vth = np.concatenate(
            [pruned[d][c].vth for d in range(d_count)
             for c in range(n_cores)])
        vth_t = vth_at_temperature(all_vth, T_HOT_K, tech)
        bad = (self._voltages[0] - vth_t) <= 0
        die_failed = np.zeros(d_count, dtype=bool)
        if bad.any():
            col_die = np.repeat(
                np.arange(d_count * n_cores) // n_cores, sizes)
            die_failed[np.unique(col_die[bad])] = True
            for d in np.flatnonzero(die_failed):
                i = idxs[d]
                try:
                    results[i] = characterize_die(
                        dies[i], tech, self.arch,
                        floorplan=self.floorplan, thermal=self.thermal)
                except Exception as exc:  # noqa: BLE001 — slot-isolated
                    results[i] = exc

        alive = np.flatnonzero(~die_failed)
        if alive.size == 0:
            return

        # Ragged-pack the surviving dies' pruned paths and evaluate the
        # whole (levels, paths) block at once. Broadcast elementwise
        # ops match the serial per-core fmax_many columns exactly;
        # segment maxima via reduceat equal per-segment .max(axis=1).
        segs = [pruned[d][c] for d in alive for c in range(n_cores)]
        flat_vth = np.concatenate([s.vth for s in segs])
        flat_leff = np.concatenate([s.leff for s in segs])
        seg_sizes = np.array([s.vth.size for s in segs], dtype=np.intp)
        offsets = np.zeros(len(segs), dtype=np.intp)
        np.cumsum(seg_sizes[:-1], out=offsets[1:])
        delays = gate_delay(self._voltages[:, None], flat_vth[None, :],
                            flat_leff[None, :], tech, T_HOT_K)
        maxima = np.maximum.reduceat(delays, offsets, axis=1)
        raw = self._calib / maxima
        freqs = np.floor(raw / FREQ_QUANTUM_HZ) * FREQ_QUANTUM_HZ
        freqs = np.maximum.accumulate(
            np.maximum(freqs, FREQ_QUANTUM_HZ), axis=0)

        # Leakage: stacked region-cell gather, per-die model rebuild.
        leak_calib = leakage_calibration(tech)
        leak_cells = vth_maps[:, geom.leak_idx]
        for a, d in enumerate(alive):
            i = idxs[d]
            cores = []
            for c in range(n_cores):
                seg = a * n_cores + c
                paths = pruned[d][c]
                freq_model = CoreFrequencyModel(paths, tech, self._calib)
                vf_table = VFTable(
                    voltages=self._voltages,
                    freqs=np.ascontiguousarray(freqs[:, seg]))
                q0, q1 = geom.core_leak_bounds[c]
                leakage = CoreLeakageModel.from_arrays(
                    leak_cells[d, q0:q1].copy(), geom.leak_weights[c],
                    tech, leak_calib)
                rated = leakage.power(tech.vdd_max, T_REF_K)
                cores.append(CoreDescriptor(
                    core_id=c,
                    vf_table=vf_table,
                    freq_model=freq_model,
                    leakage=leakage,
                    static_power_rated=rated,
                ))
            l2 = L2LeakageModel(dies[i].variation, self.floorplan, tech)
            results[i] = ChipProfile(
                die_id=dies[i].die_id,
                tech=tech,
                arch=self.arch,
                floorplan=self.floorplan,
                cores=tuple(cores),
                l2_leakage=l2,
                thermal=self.thermal,
            )


def characterize_dies(
    dies: Sequence[Die],
    tech: TechParams,
    arch: ArchConfig,
    floorplan: Optional[Floorplan] = None,
    thermal: Optional[ThermalNetwork] = None,
    errors: str = "raise",
) -> List[CharacterizeResult]:
    """Characterise many dies at once, bitwise-identical to the serial
    per-die :func:`~repro.chip.characterize.characterize_die` loop.

    The die-batched entry point of the binning flow (Table 3): one
    :class:`CharacterizationKernel` is built for (tech, arch) and the
    whole batch runs through the lockstep pipeline. See the module
    docstring for the parity scheme and ``errors`` semantics.
    """
    kernel = CharacterizationKernel(tech, arch, floorplan=floorplan,
                                    thermal=thermal)
    return kernel.characterize(dies, errors=errors)
