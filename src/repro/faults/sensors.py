"""Faultable sensors and per-core sensor banks.

Wraps the ideal :class:`repro.power.Sensor` with a health model: a
sensor can be healthy, stuck at a constant, drifting, or dead.
Readings always come back *bounded* — a plausibility clamp limits the
reported range and a dead sensor substitutes its last-known-good
reading — so managers consume degraded-but-safe values instead of
NaNs or physical impossibilities (the Foxton firmware does the same).

A :class:`SensorBank` holds one faultable sensor per core (plus one
for the uncore), each with an *independent* noise stream spawned from
a single parent seed. The bank quacks like a plain sensor
(``read(value)`` reads the uncore channel) and additionally exposes
``core(core_id)``, the accessor :func:`repro.power.core_reader`
dispatches through — so a bank can be handed to LinOpt wherever a
scalar sensor was expected.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type

from ..power import PowerSensor, Sensor, SensorSpec, independent_rngs
from .schedule import (
    SENSOR_DEAD,
    SENSOR_DRIFT,
    SENSOR_KINDS,
    SENSOR_STUCK,
    FaultEvent,
)

#: Health states of a faultable sensor.
HEALTHY = "healthy"
STUCK = "stuck"
DRIFTING = "drifting"
DEAD = "dead"


class FaultableSensor:
    """A sensor with a health state, plausibility clamp and memory.

    Args:
        base: The underlying (possibly noisy) ideal sensor.
        plausible_lo: Lower plausibility bound on any reported value.
        plausible_hi: Upper bound (``None`` = unbounded above).

    Readings pass through the base sensor, then through the active
    fault transform, then through the plausibility clamp. The last
    clamped reading is remembered as the last-known-good substitute a
    dead sensor keeps reporting.
    """

    def __init__(self, base: Sensor, plausible_lo: float = 0.0,
                 plausible_hi: Optional[float] = None) -> None:
        if plausible_hi is not None and plausible_hi < plausible_lo:
            raise ValueError("plausibility bounds out of order")
        self.base = base
        self.plausible_lo = plausible_lo
        self.plausible_hi = plausible_hi
        self.state = HEALTHY
        self.time_s = 0.0
        self._stuck_value = 0.0
        self._drift_rate = 0.0
        self._drift_start_s = 0.0
        self._last_good: Optional[float] = None

    def _clamp(self, value: float) -> float:
        value = max(value, self.plausible_lo)
        if self.plausible_hi is not None:
            value = min(value, self.plausible_hi)
        return value

    def read(self, true_value: float) -> float:
        """Observe a true value through noise, fault state and clamp."""
        if self.state == DEAD:
            if self._last_good is None:
                return self.plausible_lo
            return self._last_good
        if self.state == STUCK:
            return self._clamp(self._stuck_value)
        value = self.base.read(true_value)
        if self.state == DRIFTING:
            value += self._drift_rate * (self.time_s - self._drift_start_s)
        value = self._clamp(value)
        self._last_good = value
        return value

    def feed(self, value: float) -> float:
        """Ingest an externally measured value through the clamp.

        The daemon's ``sensor_feed`` path: a client-supplied
        measurement is bounded by the same plausibility clamp every
        model-driven reading passes through, then adopted as the
        channel's last-known-good — so a later ``dead`` fault reports
        the fed measurement, exactly as it would the last healthy
        read. Returns the clamped value actually adopted.
        """
        value = self._clamp(float(value))
        self._last_good = value
        return value

    def apply(self, event: FaultEvent) -> None:
        """Transition health state per a sensor fault event."""
        if event.kind not in SENSOR_KINDS:
            raise ValueError(f"not a sensor fault: {event.kind!r}")
        if event.kind == SENSOR_STUCK:
            self.state = STUCK
            self._stuck_value = event.param
        elif event.kind == SENSOR_DRIFT:
            self.state = DRIFTING
            self._drift_rate = event.param
            self._drift_start_s = event.time_s
        elif event.kind == SENSOR_DEAD:
            self.state = DEAD

    @property
    def healthy(self) -> bool:
        """Whether the sensor is in its nominal state."""
        return self.state == HEALTHY


class SensorBank:
    """Per-core faultable sensors plus one uncore channel.

    Args:
        n_cores: Number of per-core channels.
        spec: Noise/quantisation spec shared by all channels (each
            channel still gets an independent noise stream).
        seed: Parent seed for the independent per-channel generators.
        sensor_cls: Ideal-sensor class to wrap (power by default).
        plausible_lo / plausible_hi: Plausibility clamp bounds.
    """

    def __init__(self, n_cores: int, spec: Optional[SensorSpec] = None,
                 seed: int = 0, sensor_cls: Type[Sensor] = PowerSensor,
                 plausible_lo: float = 0.0,
                 plausible_hi: Optional[float] = None) -> None:
        if n_cores < 1:
            raise ValueError("need at least one core channel")
        rngs = independent_rngs(n_cores + 1, seed)
        self.channels: List[FaultableSensor] = [
            FaultableSensor(sensor_cls(spec, rng), plausible_lo,
                            plausible_hi)
            for rng in rngs]

    @property
    def n_cores(self) -> int:
        """Number of per-core channels (excludes the uncore one)."""
        return len(self.channels) - 1

    def core(self, core_id: int) -> FaultableSensor:
        """The per-core channel (``repro.power.core_reader`` protocol)."""
        if not 0 <= core_id < self.n_cores:
            raise ValueError(f"core {core_id} out of range")
        return self.channels[core_id]

    @property
    def uncore(self) -> FaultableSensor:
        """The chip-level (uncore) channel."""
        return self.channels[-1]

    def read(self, true_value: float) -> float:
        """Chip-level read (a bank is a valid scalar sensor)."""
        return self.uncore.read(true_value)

    def advance(self, time_s: float) -> None:
        """Propagate simulated time to every channel (drift faults)."""
        for channel in self.channels:
            channel.time_s = time_s

    def apply(self, event: FaultEvent) -> None:
        """Route a sensor fault event to its target channel."""
        channel = (self.uncore if event.target < 0
                   else self.core(event.target))
        channel.apply(event)

    def feed(self, core_values: Sequence[float],
             uncore_value: Optional[float] = None) -> dict:
        """Ingest external measurements through every clamp.

        ``core_values`` feeds channels ``0..len-1`` (at most
        :attr:`n_cores` entries); ``uncore_value`` feeds the uncore
        channel. Returns the adopted (clamped) values plus how many
        were clamped — the daemon surfaces that count as its
        ``sensor_feed_clamps`` telemetry.
        """
        if len(core_values) > self.n_cores:
            raise ValueError(
                f"{len(core_values)} core values for "
                f"{self.n_cores} core channels")
        accepted = []
        clamped = 0
        for core_id, value in enumerate(core_values):
            adopted = self.core(core_id).feed(value)
            accepted.append(adopted)
            if adopted != float(value):
                clamped += 1
        uncore_adopted = None
        if uncore_value is not None:
            uncore_adopted = self.uncore.feed(uncore_value)
            if uncore_adopted != float(uncore_value):
                clamped += 1
        return {"core_values": accepted,
                "uncore_value": uncore_adopted,
                "clamped": clamped}

    def read_chip(self, core_ids: Sequence[int],
                  core_values: Sequence[float],
                  uncore_value: float) -> float:
        """Sensor-sampled chip power: per-core reads plus uncore.

        This is the watchdog's measurement path — each active core is
        read through its own (possibly faulty) channel, so a dead or
        stuck per-core sensor corrupts the chip estimate in a bounded
        way rather than poisoning it with garbage.
        """
        total = self.uncore.read(uncore_value)
        for core_id, value in zip(core_ids, core_values):
            total += self.core(core_id).read(value)
        return total

    @property
    def n_unhealthy(self) -> int:
        """How many channels are currently degraded."""
        return sum(0 if c.healthy else 1 for c in self.channels)
