"""Power-budget watchdog (emergency Foxton*-style step-down).

The regular power manager runs only every DVFS interval (10 ms in the
paper); between invocations, phase drift, sensor faults or a wrong LP
model can push chip power past ``Ptarget``. Real controllers treat
that as a thermal/voltage emergency handled in hardware: the Foxton
controller steps voltage down within microseconds, independently of
firmware policy. :class:`PowerWatchdog` reproduces that layer on the
1 ms sensor grid: when the *sensor-sampled* chip power exceeds the
budget by more than a guard band for K consecutive samples, one victim
core (round-robin, like Foxton*) is stepped down ``step_levels``
levels, and an emergency cap pins that core until the system has been
clean for a full manager interval.

The watchdog never acts while power is inside the band, so with
healthy sensors and a working manager it is completely transparent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..pm.foxton import next_round_robin_victim


class PowerWatchdog:
    """K-out-of-K over-budget detector with round-robin step-down.

    Args:
        guard_band_frac: Overshoot tolerance as a fraction of
            ``Ptarget`` (0.05 = trigger only above 105 % of budget).
        k_samples: Consecutive over-band sensor samples required to
            trigger (debounce against single-sample noise spikes).
        step_levels: DVFS levels removed from the victim per trigger.

    One instance drives one simulation run; :meth:`reset` re-arms it.
    """

    def __init__(self, guard_band_frac: float = 0.05,
                 k_samples: int = 3, step_levels: int = 1) -> None:
        if guard_band_frac < 0:
            raise ValueError("guard band must be non-negative")
        if k_samples < 1:
            raise ValueError("k_samples must be positive")
        if step_levels < 1:
            raise ValueError("step_levels must be positive")
        self.guard_band_frac = guard_band_frac
        self.k_samples = k_samples
        self.step_levels = step_levels
        self.reset(0)

    def reset(self, n_threads: int) -> None:
        """Re-arm for a fresh run over ``n_threads`` threads."""
        self._count = 0
        self._pointer = 0
        self._caps: List[Optional[int]] = [None] * n_threads
        self._triggered_since_manager = False
        self.triggers: List[float] = []

    def observe(self, time_s: float, sensed_power_w: float,
                p_target_w: float) -> bool:
        """Feed one sensor sample; True when an emergency fires.

        The consecutive-sample counter resets whenever a sample lands
        back inside the band, and after every trigger (giving the
        step-down K samples to take effect before escalating).
        """
        if sensed_power_w > p_target_w * (1.0 + self.guard_band_frac):
            self._count += 1
        else:
            self._count = 0
        if self._count < self.k_samples:
            return False
        self._count = 0
        self._triggered_since_manager = True
        self.triggers.append(time_s)
        return True

    def emergency_step_down(self, levels: Sequence[int],
                            ) -> Tuple[List[int], int]:
        """Step one victim down; returns (new levels, victim index).

        Victim selection is Foxton*-style round-robin over threads
        still above the floor; the victim's emergency cap is set to its
        new level so the next manager decision cannot immediately undo
        the step. Returns ``victim = -1`` (levels unchanged) when every
        thread is already at the floor.
        """
        new_levels = list(levels)
        victim, self._pointer = next_round_robin_victim(
            new_levels, self._pointer)
        if victim < 0:
            return new_levels, victim
        new_levels[victim] = max(new_levels[victim] - self.step_levels, 0)
        self._caps[victim] = new_levels[victim]
        return new_levels, victim

    def clamp(self, levels: Sequence[int]) -> List[int]:
        """Apply the emergency caps to a manager's requested levels."""
        return [lv if cap is None else min(lv, cap)
                for lv, cap in zip(levels, self._caps)]

    def on_manager_invocation(self, tops: Sequence[int]) -> None:
        """Relax caps one level per clean manager interval.

        Called at every regular manager invocation. If no emergency
        fired since the previous one, each cap rises one level (and
        disappears at the core's top level); if one did, caps hold.
        """
        if self._triggered_since_manager:
            self._triggered_since_manager = False
            return
        for i, cap in enumerate(self._caps):
            if cap is None:
                continue
            cap += 1
            self._caps[i] = None if cap >= tops[i] else cap

    @property
    def n_triggers(self) -> int:
        """Emergencies fired so far in this run."""
        return len(self.triggers)

    @property
    def active_caps(self) -> int:
        """How many threads are currently pinned by an emergency cap."""
        return sum(1 for cap in self._caps if cap is not None)
