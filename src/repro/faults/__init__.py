"""Fault injection and graceful degradation for the online runtime.

The paper's Figure 2 loop assumes ideal sensors, a working LP solver
and twenty healthy cores. This package drops those assumptions:

* :mod:`~repro.faults.schedule` — deterministic, seeded schedules of
  sensor faults (stuck-at / drift / dead), core faults (V/f droop,
  permanent core-offline) and manager faults (crash, missed deadline).
* :mod:`~repro.faults.sensors` — per-core faultable sensors with
  plausibility clamps and last-known-good substitution, banked with
  independent noise streams.
* :mod:`~repro.faults.watchdog` — the emergency power-budget watchdog
  the online simulation runs on the 1 ms sensor grid.
* :mod:`~repro.faults.resilient` — the LinOpt -> Foxton* ->
  all-minimum fallback chain as a drop-in power manager.

Everything here is transparent by default: an empty schedule, a
healthy bank and an untriggered watchdog leave every experiment's
output bit-identical to a run without them (asserted in
``tests/test_faults.py``).
"""

from .schedule import (
    ALL_KINDS,
    CORE_DROOP,
    CORE_KINDS,
    CORE_OFFLINE,
    MANAGER_DEADLINE,
    MANAGER_ERROR,
    MANAGER_KINDS,
    SENSOR_DEAD,
    SENSOR_DRIFT,
    SENSOR_KINDS,
    SENSOR_STUCK,
    FaultEvent,
    FaultLog,
    FaultSchedule,
)
from .sensors import FaultableSensor, SensorBank
from .watchdog import PowerWatchdog
from .resilient import ManagerFault, ResilientManager

__all__ = [
    "ALL_KINDS",
    "CORE_DROOP",
    "CORE_KINDS",
    "CORE_OFFLINE",
    "FaultEvent",
    "FaultLog",
    "FaultSchedule",
    "FaultableSensor",
    "MANAGER_DEADLINE",
    "MANAGER_ERROR",
    "MANAGER_KINDS",
    "ManagerFault",
    "PowerWatchdog",
    "ResilientManager",
    "SENSOR_DEAD",
    "SENSOR_DRIFT",
    "SENSOR_KINDS",
    "SENSOR_STUCK",
    "SensorBank",
]
