"""Deterministic fault-injection schedules.

A :class:`FaultSchedule` is an ordered, reproducible list of
:class:`FaultEvent` objects — sensor faults (stuck-at, drift, dead),
core faults (frequency-droop clamp, permanent core-offline) and
manager faults (forced failure, evaluation-deadline exceeded) — that
the online simulation applies as simulated time passes. Schedules are
either written out explicitly (the regression scenarios) or generated
from per-kind Poisson rates with a fixed seed
(:meth:`FaultSchedule.random`), so every run is bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Sensor fault kinds (target = core id; -1 targets the uncore sensor).
SENSOR_STUCK = "sensor_stuck"      # reads a constant (param = value)
SENSOR_DRIFT = "sensor_drift"      # reading drifts (param = units/s)
SENSOR_DEAD = "sensor_dead"        # dropout: last-known-good substituted

#: Core fault kinds (target = core id).
CORE_DROOP = "core_droop"          # V/f ceiling clamped down param levels
CORE_OFFLINE = "core_offline"      # permanent core loss; thread migrates

#: Manager fault kinds (target ignored).
MANAGER_ERROR = "manager_error"        # next invocation raises
MANAGER_DEADLINE = "manager_deadline"  # next invocation blows its budget

SENSOR_KINDS = (SENSOR_STUCK, SENSOR_DRIFT, SENSOR_DEAD)
CORE_KINDS = (CORE_DROOP, CORE_OFFLINE)
MANAGER_KINDS = (MANAGER_ERROR, MANAGER_DEADLINE)
ALL_KINDS = SENSOR_KINDS + CORE_KINDS + MANAGER_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault.

    Attributes:
        time_s: Simulated time at which the fault strikes.
        kind: One of the module's ``*_KINDS`` constants.
        target: Core id for sensor/core faults (-1 = chip/uncore
            scope); ignored for manager faults.
        param: Kind-specific magnitude (stuck-at value, drift rate in
            units/s, droop depth in DVFS levels).
    """

    time_s: float
    kind: str
    target: int = -1
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("fault time must be non-negative")
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == CORE_DROOP and self.param < 1:
            raise ValueError("core_droop needs param >= 1 level")


class FaultSchedule:
    """An immutable, time-ordered fault schedule.

    Iterating yields events in time order; :meth:`between` is the
    simulation's per-sample query. An empty schedule is valid (and is
    the transparent default everywhere).
    """

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.time_s))

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """All events, ascending in time."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def between(self, t_from: float, t_to: float) -> List[FaultEvent]:
        """Events with ``t_from < time_s <= t_to`` (simulation step)."""
        return [e for e in self._events if t_from < e.time_s <= t_to]

    def event_times(self) -> List[float]:
        """Distinct strike times, ascending."""
        return sorted({e.time_s for e in self._events})

    @classmethod
    def random(
        cls,
        duration_s: float,
        rates_per_s: Dict[str, float],
        n_cores: int,
        seed: int = 0,
        param_ranges: Optional[Dict[str, Tuple[float, float]]] = None,
    ) -> "FaultSchedule":
        """Poisson-generate a schedule from per-kind rates.

        Args:
            duration_s: Horizon over which to draw events.
            rates_per_s: Mean events per second, per fault kind.
            n_cores: Targets are drawn uniformly from ``range(n_cores)``.
            seed: Everything is derived from this one seed.
            param_ranges: Optional per-kind (lo, hi) for ``param``
                (defaults: stuck 0, drift ±2 units/s, droop 1-3
                levels).

        Returns:
            A reproducible schedule (same arguments, same events).
        """
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        defaults: Dict[str, Tuple[float, float]] = {
            SENSOR_STUCK: (0.0, 0.0),
            SENSOR_DRIFT: (-2.0, 2.0),
            CORE_DROOP: (1.0, 3.0),
        }
        ranges = dict(defaults)
        ranges.update(param_ranges or {})
        rng = np.random.default_rng(np.random.SeedSequence(
            entropy=seed, spawn_key=(0xFA, 0x17)))
        events: List[FaultEvent] = []
        for kind in ALL_KINDS:  # fixed order keeps draws reproducible
            rate = rates_per_s.get(kind, 0.0)
            if rate < 0:
                raise ValueError(f"negative rate for {kind}")
            if rate == 0.0:
                continue
            n = int(rng.poisson(rate * duration_s))
            for _ in range(n):
                t = float(rng.uniform(0.0, duration_s))
                target = int(rng.integers(n_cores))
                lo, hi = ranges.get(kind, (0.0, 0.0))
                param = float(rng.uniform(lo, hi)) if hi > lo else lo
                if kind == CORE_DROOP:
                    param = float(max(1, round(param)))
                events.append(FaultEvent(time_s=t, kind=kind,
                                         target=target, param=param))
        return cls(events)


@dataclass
class FaultLog:
    """Mutable record of faults actually applied during one run."""

    applied: List[FaultEvent] = field(default_factory=list)

    def record(self, event: FaultEvent) -> None:
        """Append one applied event."""
        self.applied.append(event)

    def count(self, kind: Optional[str] = None) -> int:
        """Applied events, optionally filtered by kind."""
        if kind is None:
            return len(self.applied)
        return sum(1 for e in self.applied if e.kind == kind)
