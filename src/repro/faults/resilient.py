"""Graceful-degradation wrapper around any power manager.

Implements the fallback chain **primary (LinOpt) -> Foxton* ->
all-minimum**: if the wrapped manager raises, returns an infeasible
state, or blows its evaluation budget (the stand-in for missing the
10 ms decision deadline), the decision is retried with the simpler
Foxton* controller; if that also fails, every thread is parked at its
minimum V/f level — the one operating point that needs no model, no
sensors and no optimisation to be safe. Which tier actually decided is
surfaced in ``PmResult.stats`` (``resilience_tier``: 0 = primary,
1 = fallback, 2 = all-minimum) so traces and experiments can count
activations.

Manager faults from a :class:`~repro.faults.schedule.FaultSchedule`
are delivered through :meth:`ResilientManager.inject_failure`; the
next invocation then behaves as if the primary had crashed (or
overrun its deadline), exercising the same chain.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

import numpy as np

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..pm import FoxtonStar, LinOpt, PmResult, PowerManager, meets_constraints
from ..runtime.evaluation import Assignment, SystemState, evaluate_levels
from ..workloads import Workload
from .schedule import MANAGER_DEADLINE, MANAGER_ERROR


class ManagerFault(RuntimeError):
    """Raised inside a manager to simulate an injected crash."""


class ResilientManager(PowerManager):
    """LinOpt -> Foxton* -> all-minimum fallback chain.

    Args:
        primary: The preferred manager (default LinOpt).
        fallback: The simpler emergency manager (default Foxton*).
        evaluation_budget: Maximum full-system evaluations the primary
            may spend per invocation; exceeding it counts as a missed
            deadline and discards the primary's answer. ``None``
            disables the budget.
        deadline_s: Wall-clock budget for the primary's invocation
            (the supervision hook long-running services use: the
            power-management daemon arms it per tenant). A primary
            that answers but took longer is treated exactly like a
            blown evaluation budget — the answer is discarded and the
            chain falls to the next tier. ``None`` disables the
            deadline. Note this makes tier selection wall-clock
            dependent; deterministic tests should prefer
            ``evaluation_budget``.
        accept_infeasible_floor: An all-floor result (every level 0)
            is accepted from the primary even if still infeasible —
            there is nothing further down the chain could do about a
            budget below the chip's minimum operating point.
        clock: Monotonic time source for the deadline (injectable for
            deterministic tests; defaults to :func:`time.monotonic`).

    The wrapper is itself a :class:`PowerManager`, so it drops into
    :class:`~repro.runtime.OnlineSimulation` unchanged.
    """

    name = "Resilient"

    def __init__(self, primary: Optional[PowerManager] = None,
                 fallback: Optional[PowerManager] = None,
                 evaluation_budget: Optional[int] = None,
                 deadline_s: Optional[float] = None,
                 accept_infeasible_floor: bool = True,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if evaluation_budget is not None and evaluation_budget < 1:
            raise ValueError("evaluation budget must be positive")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline must be positive")
        self.primary = primary if primary is not None else LinOpt()
        self.fallback = fallback if fallback is not None else FoxtonStar()
        self.evaluation_budget = evaluation_budget
        self.deadline_s = deadline_s
        self.clock = clock if clock is not None else time.monotonic
        self.accept_infeasible_floor = accept_infeasible_floor
        self.name = f"Resilient({self.primary.name})"
        #: Cumulative count of invocations decided below tier 0.
        self.fallback_activations = 0
        #: Cumulative count of LP solves inside the primary that came
        #: back non-optimal and fell back to the clamp-to-floor plan
        #: (surfaced by LinOpt as ``lp_fallbacks`` — a *within-tier-0*
        #: degradation, distinct from tier changes).
        self.lp_fallbacks = 0
        self._injected: Optional[str] = None

    def inject_failure(self, kind: str = MANAGER_ERROR) -> None:
        """Arm a one-shot failure for the next invocation.

        ``manager_error`` makes the primary raise; ``manager_deadline``
        makes its invocation count as over-budget regardless of the
        actual evaluation count.
        """
        if kind not in (MANAGER_ERROR, MANAGER_DEADLINE):
            raise ValueError(f"unknown manager fault kind {kind!r}")
        self._injected = kind

    def _acceptable(self, result: PmResult, p_target: float,
                    p_core_max: float) -> bool:
        """Whether a delegate's result may be used as-is."""
        if meets_constraints(result.state, p_target, p_core_max):
            return True
        if self.accept_infeasible_floor and all(
                lv == 0 for lv in result.levels):
            return True
        return False

    def set_levels(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        rng: Optional[np.random.Generator] = None,
        initial_levels: Optional[Sequence[int]] = None,
        initial_state: Optional[SystemState] = None,
        ipc_multipliers: Optional[Sequence[float]] = None,
        ceff_multipliers: Optional[Sequence[float]] = None,
    ) -> PmResult:
        """Decide levels, falling down the chain on failure."""
        p_target, p_core_max = self._budget(chip, assignment, env)
        kwargs = dict(rng=rng, initial_levels=initial_levels,
                      initial_state=initial_state,
                      ipc_multipliers=ipc_multipliers,
                      ceff_multipliers=ceff_multipliers)
        injected, self._injected = self._injected, None
        evaluations = 0
        primary_failed = 0.0
        deadline_missed = 0.0

        # --- Tier 0: the primary manager. ---
        result: Optional[PmResult] = None
        try:
            if injected == MANAGER_ERROR:
                raise ManagerFault("injected manager failure")
            t0 = self.clock() if self.deadline_s is not None else 0.0
            result = self.primary.set_levels(chip, workload, assignment,
                                             env, **kwargs)
            wall_s = (self.clock() - t0
                      if self.deadline_s is not None else 0.0)
            evaluations += result.evaluations
            # LP-level fallbacks are counted even when the tier-0
            # answer is later discarded: the solver still degraded.
            self.lp_fallbacks += int(
                result.stats.get("lp_fallbacks", 0.0))
            if injected == MANAGER_DEADLINE or (
                    self.evaluation_budget is not None
                    and result.evaluations > self.evaluation_budget
            ) or (self.deadline_s is not None
                  and wall_s > self.deadline_s):
                deadline_missed = 1.0
                result = None
            elif not self._acceptable(result, p_target, p_core_max):
                result = None
        except Exception:
            primary_failed = 1.0
            result = None
        if result is not None:
            return result.with_stats(resilience_tier=0.0,
                                     primary_failed=0.0,
                                     deadline_missed=0.0)

        # --- Tier 1: the simple fallback controller. ---
        self.fallback_activations += 1
        try:
            result = self.fallback.set_levels(chip, workload, assignment,
                                              env, **kwargs)
            evaluations += result.evaluations
            if not self._acceptable(result, p_target, p_core_max):
                result = None
        except Exception:
            result = None
        if result is not None:
            return result.with_stats(
                resilience_tier=1.0,
                primary_failed=primary_failed,
                deadline_missed=deadline_missed,
                evaluations_total=float(evaluations))

        # --- Tier 2: park every thread at its minimum level. ---
        levels = [0] * assignment.n_threads
        state = evaluate_levels(chip, workload, assignment, levels,
                                ipc_multipliers=ipc_multipliers,
                                ceff_multipliers=ceff_multipliers)
        evaluations += 1
        return PmResult(
            levels=tuple(levels), state=state, evaluations=evaluations,
            stats={"resilience_tier": 2.0,
                   "primary_failed": primary_failed,
                   "deadline_missed": deadline_missed})
