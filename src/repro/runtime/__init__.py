"""Runtime layer: system evaluation, profiling, online simulation."""

from .evaluation import (
    Assignment,
    SystemState,
    evaluate_explicit,
    evaluate_levels,
    evaluate_max_levels,
    evaluate_uniform_frequency,
)
from .profiling import ThreadProfile, profile_threads
from .simulation import (
    DECISION_EMERGENCY,
    DECISION_MANAGER,
    ManagerDecision,
    OnlineSimulation,
    SimulationStepper,
    SimulationTrace,
)

__all__ = [
    "Assignment",
    "DECISION_EMERGENCY",
    "DECISION_MANAGER",
    "ManagerDecision",
    "SystemState",
    "ThreadProfile",
    "evaluate_explicit",
    "evaluate_levels",
    "evaluate_max_levels",
    "evaluate_uniform_frequency",
    "profile_threads",
    "OnlineSimulation",
    "SimulationStepper",
    "SimulationTrace",
]
