"""Online time-stepped system simulation (Figure 2 timeline).

Simulates the CMP running a phased workload under an online power
manager: sensors sample every millisecond, the power manager re-runs at
the DVFS interval (10 ms in the paper's experiments), and the OS-level
scheduler runs at a longer interval. Between manager invocations the
applications drift through phases, so consumed power deviates from
``Ptarget`` — the effect Figure 14 quantifies as a function of the
DVFS interval.

DVFS transitions are modelled with a per-level switching latency
(XScale-class, conservative per Section 5.1): during a transition the
core contributes no useful work, and the lost time is accounted in the
throughput integral.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from typing import TYPE_CHECKING

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..workloads import PhasedApplication, Workload
from .evaluation import Assignment, evaluate_levels

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..pm.base import PowerManager

# Sensor sampling period (s): power deviation is recorded at this rate.
SENSOR_PERIOD_S = 1e-3
# Voltage/frequency transition latency per level stepped (s).
TRANSITION_LATENCY_PER_LEVEL_S = 20e-6


@dataclass
class SimulationTrace:
    """Recorded time series of one online run.

    Attributes:
        times_s: Sample timestamps.
        power_w: Total chip power at each sample.
        p_target_w: The power budget in force.
        throughput_mips: Aggregate throughput at each sample.
        manager_runs: Timestamps of power-manager invocations.
        transition_time_s: Total core-time lost to DVFS transitions.
    """

    times_s: np.ndarray
    power_w: np.ndarray
    p_target_w: float
    throughput_mips: np.ndarray
    weighted_throughput: np.ndarray
    manager_runs: List[float]
    transition_time_s: float
    migrations: int

    @property
    def mean_abs_deviation_pct(self) -> float:
        """Mean |power - Ptarget| as a percentage of Ptarget (Fig 14).

        Matches the paper's measurement: every millisecond the average
        power of the past window is compared to Ptarget and the
        absolute difference recorded; values are averaged over the run.
        """
        dev = np.abs(self.power_w - self.p_target_w)
        return float(dev.mean() / self.p_target_w * 100.0)

    @property
    def mean_power_w(self) -> float:
        return float(self.power_w.mean())

    @property
    def mean_throughput_mips(self) -> float:
        return float(self.throughput_mips.mean())

    @property
    def mean_weighted_throughput(self) -> float:
        return float(self.weighted_throughput.mean())

    @property
    def ed2_relative(self) -> float:
        """Time-averaged ED^2 up to a constant (see SystemState)."""
        tp = self.mean_throughput_mips
        if tp <= 0:
            return float("inf")
        return self.mean_power_w / tp ** 3

    @property
    def weighted_ed2_relative(self) -> float:
        tp = self.mean_weighted_throughput
        if tp <= 0:
            return float("inf")
        return self.mean_power_w / tp ** 3


class OnlineSimulation:
    """Time-stepped execution of a phased workload under a manager.

    Implements the full Figure 2 timeline: the power manager runs at
    the (short) DVFS interval; optionally, an OS scheduling policy
    re-runs at the (long) OS interval and may migrate threads between
    cores based on fresh profiling. Migrations pay the same per-level
    V/f transition accounting as DVFS changes (a conservative proxy
    for cache-warmup cost).
    """

    def __init__(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        manager: Optional["PowerManager"] = None,
        phase_seed: int = 0,
        phase_sigma: float = 0.35,
        mean_phase_s: float = 0.050,
        policy=None,
        os_interval_s: Optional[float] = None,
    ) -> None:
        if (policy is None) != (os_interval_s is None):
            raise ValueError("policy and os_interval_s go together")
        if os_interval_s is not None and os_interval_s <= 0:
            raise ValueError("os_interval_s must be positive")
        self.chip = chip
        self.workload = workload
        self.assignment = assignment
        self.env = env
        if manager is None:
            # Imported here to keep repro.runtime importable without
            # repro.pm (which itself builds on repro.runtime).
            from ..pm.linopt import LinOpt
            manager = LinOpt()
        self.manager = manager
        self.policy = policy
        self.os_interval_s = os_interval_s
        self._policy_rng = np.random.default_rng([phase_seed, 0x05])
        self.phased = [
            PhasedApplication(app, seed=i * 1000 + phase_seed,
                              sigma=phase_sigma, mean_phase_s=mean_phase_s)
            for i, app in enumerate(workload)
        ]

    def _multipliers(self, time_s: float) -> Tuple[np.ndarray, np.ndarray]:
        ipc_mult = np.empty(len(self.phased))
        ceff_mult = np.empty(len(self.phased))
        for i, ph in enumerate(self.phased):
            state = ph.state_at(time_s)
            ipc_mult[i] = state.ipc_multiplier
            ceff_mult[i] = state.power_multiplier
        return ipc_mult, ceff_mult

    def run(self, duration_s: float, dvfs_interval_s: float,
            ) -> SimulationTrace:
        """Simulate ``duration_s`` with the manager run at an interval.

        Args:
            duration_s: Total simulated time.
            dvfs_interval_s: Period between power-manager invocations
                (the x-axis of Figure 14).

        Returns:
            A :class:`SimulationTrace`.
        """
        if duration_s <= 0 or dvfs_interval_s <= 0:
            raise ValueError("duration and interval must be positive")
        p_target = self.env.p_target(self.assignment.n_threads,
                                     self.chip.n_cores)
        n_steps = int(round(duration_s / SENSOR_PERIOD_S))
        times = np.arange(n_steps) * SENSOR_PERIOD_S
        power = np.empty(n_steps)
        tput = np.empty(n_steps)
        wtput = np.empty(n_steps)
        manager_runs: List[float] = []
        transition_time = 0.0

        levels: Optional[List[int]] = None
        state = None
        assignment = self.assignment
        next_manager_t = 0.0
        next_os_t = (self.os_interval_s
                     if self.os_interval_s is not None else None)
        migrations = 0
        for step in range(n_steps):
            t = times[step]
            ipc_mult, ceff_mult = self._multipliers(t)
            if next_os_t is not None and t >= next_os_t - 1e-12:
                new_assignment = self.policy.assign_with_profiling(
                    self.chip, self.workload, self._policy_rng)
                if new_assignment.core_of != assignment.core_of:
                    migrations += sum(
                        a != b for a, b in zip(new_assignment.core_of,
                                               assignment.core_of))
                    assignment = new_assignment
                    # Force a fresh manager decision for the new map.
                    levels = None
                    next_manager_t = t
                next_os_t += self.os_interval_s
            if t >= next_manager_t - 1e-12:
                kwargs = dict(ipc_multipliers=ipc_mult,
                              ceff_multipliers=ceff_mult)
                if levels is not None:
                    # Warm start from the current operating point.
                    kwargs.update(initial_levels=levels,
                                  initial_state=state)
                result = self.manager.set_levels(
                    self.chip, self.workload, assignment, self.env,
                    **kwargs)
                new_levels = list(result.levels)
                if levels is not None:
                    stepped = sum(abs(a - b)
                                  for a, b in zip(levels, new_levels))
                    transition_time += (
                        stepped * TRANSITION_LATENCY_PER_LEVEL_S)
                levels = new_levels
                manager_runs.append(t)
                next_manager_t += dvfs_interval_s
            state = evaluate_levels(self.chip, self.workload,
                                    assignment, levels,
                                    ipc_multipliers=ipc_mult,
                                    ceff_multipliers=ceff_mult)
            power[step] = state.total_power
            tput[step] = state.throughput_mips
            wtput[step] = state.weighted_throughput(self.workload)
        return SimulationTrace(
            times_s=times,
            power_w=power,
            p_target_w=p_target,
            throughput_mips=tput,
            weighted_throughput=wtput,
            manager_runs=manager_runs,
            transition_time_s=transition_time,
            migrations=migrations,
        )
