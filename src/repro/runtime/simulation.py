"""Online event-driven system simulation (Figure 2 timeline).

Simulates the CMP running a phased workload under an online power
manager: sensors sample every millisecond, the power manager re-runs at
the DVFS interval (10 ms in the paper's experiments), and the OS-level
scheduler runs at a longer interval. Between manager invocations the
applications drift through phases, so consumed power deviates from
``Ptarget`` — the effect Figure 14 quantifies as a function of the
DVFS interval.

The steady-state system evaluation is memoryless: between two
consecutive *events* — a phase boundary of any application, a
power-manager invocation, an OS reschedule, a fault strike or a
watchdog emergency — the operating point is constant, so the
leakage-temperature fixed point needs to be solved only once per event
rather than once per sensor sample. The simulation therefore builds
each application's phase-boundary timeline up front, advances event to
event with a single cached
:class:`~repro.runtime.evaluation.SystemState`, and fills the 1 ms
sensor samples in between from that cached state. A per-millisecond
reference loop (``mode="dense"``) is kept for validation and
benchmarking; both modes produce bitwise-identical traces.

DVFS transitions are modelled with a per-level switching latency
(XScale-class, conservative per Section 5.1): during a transition the
core contributes no useful work, and the lost time is charged against
the throughput trace — the sensor sample covering a manager invocation
that stepped a core by ``k`` levels sees that core's committed work
scaled by ``1 - k * latency / sample period``. Thread migrations pay
the same per-level accounting (a conservative proxy for cache-warmup
cost), with a minimum of one level per migrated thread.

**Faults and graceful degradation.** The simulation optionally runs a
:class:`repro.faults.FaultSchedule` (sensor, core and manager faults
applied as simulated time passes), samples chip power through a
per-core :class:`repro.faults.SensorBank`, and arms a
:class:`repro.faults.PowerWatchdog` that fires an emergency
Foxton*-style round-robin step-down when the *sensed* power stays
above ``Ptarget`` plus a guard band for K consecutive samples —
exactly the between-invocations protection a hardware controller
provides. Core-offline faults force a reschedule of the stranded
thread onto the fastest surviving free core through the existing
migration path. All three hooks default to ``None`` and the fault
layer is then completely transparent: traces are bit-identical to a
build without it. Fault injection requires ``mode="event"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from typing import TYPE_CHECKING

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..workloads import PhasedApplication, Workload
from .evaluation import Assignment, evaluate_levels

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..faults import FaultEvent, FaultSchedule, PowerWatchdog, SensorBank
    from ..pm.base import PowerManager

# Sensor sampling period (s): power deviation is recorded at this rate.
SENSOR_PERIOD_S = 1e-3
# Voltage/frequency transition latency per level stepped (s).
TRANSITION_LATENCY_PER_LEVEL_S = 20e-6
# Timer comparison slack (matches the sensor-grid quantisation).
_TIME_EPS = 1e-12


@dataclass
class SimulationTrace:
    """Recorded time series of one online run.

    Attributes:
        times_s: Sample timestamps.
        power_w: Total chip power at each sample (ground truth).
        p_target_w: The power budget in force.
        throughput_mips: Aggregate throughput at each sample (net of
            work lost to V/f transitions and migrations).
        manager_runs: Timestamps of power-manager invocations.
        transition_time_s: Total core-time lost to DVFS transitions
            and migrations (including watchdog emergencies).
        migrations: Number of thread migrations performed (OS
            reschedules and core-offline evacuations).
        level_transitions: Total DVFS levels stepped across the run
            (including the per-migration minimum); equals
            ``transition_time_s / transition_latency_s`` when the
            latency is non-zero.
        sensed_power_w: Chip power as sampled through the (possibly
            faulty) sensor bank; ``None`` when no bank or watchdog was
            configured.
        watchdog_triggers: Timestamps of emergency watchdog step-downs.
        fault_events: The fault events actually applied during the run.
        fallback_activations: Manager invocations decided below the
            primary tier (``resilience_tier > 0`` in the manager's
            stats — see :class:`repro.faults.ResilientManager`).
    """

    times_s: np.ndarray
    power_w: np.ndarray
    p_target_w: float
    throughput_mips: np.ndarray
    weighted_throughput: np.ndarray
    manager_runs: List[float]
    transition_time_s: float
    migrations: int
    level_transitions: int = 0
    sensed_power_w: Optional[np.ndarray] = None
    watchdog_triggers: Tuple[float, ...] = ()
    fault_events: Tuple["FaultEvent", ...] = ()
    fallback_activations: int = 0

    @property
    def mean_abs_deviation_pct(self) -> float:
        """Mean |power - Ptarget| as a percentage of Ptarget (Fig 14).

        Matches the paper's measurement: every millisecond the average
        power of the past window is compared to Ptarget and the
        absolute difference recorded; values are averaged over the run.
        """
        dev = np.abs(self.power_w - self.p_target_w)
        return float(dev.mean() / self.p_target_w * 100.0)

    @property
    def overshoot_fraction(self) -> float:
        """Fraction of samples with true power above Ptarget."""
        return float(np.mean(self.power_w > self.p_target_w))

    @property
    def mean_power_w(self) -> float:
        return float(self.power_w.mean())

    @property
    def mean_throughput_mips(self) -> float:
        return float(self.throughput_mips.mean())

    @property
    def mean_weighted_throughput(self) -> float:
        return float(self.weighted_throughput.mean())

    @property
    def ed2_relative(self) -> float:
        """Time-averaged ED^2 up to a constant (see SystemState)."""
        tp = self.mean_throughput_mips
        if tp <= 0:
            return float("inf")
        return self.mean_power_w / tp ** 3

    @property
    def weighted_ed2_relative(self) -> float:
        tp = self.mean_weighted_throughput
        if tp <= 0:
            return float("inf")
        return self.mean_power_w / tp ** 3


@dataclass
class _FaultRuntime:
    """Mutable per-run fault state (event loop bookkeeping)."""

    events: List["FaultEvent"] = field(default_factory=list)
    event_steps: List[int] = field(default_factory=list)
    next_event: int = 0
    applied: List["FaultEvent"] = field(default_factory=list)
    dead_cores: Set[int] = field(default_factory=set)
    core_caps: Dict[int, int] = field(default_factory=dict)
    skip_next_manager: bool = False


class OnlineSimulation:
    """Event-driven execution of a phased workload under a manager.

    Implements the full Figure 2 timeline: the power manager runs at
    the (short) DVFS interval; optionally, an OS scheduling policy
    re-runs at the (long) OS interval and may migrate threads between
    cores based on fresh profiling. Migrations pay the same per-level
    V/f transition accounting as DVFS changes (a conservative proxy
    for cache-warmup cost), with a minimum of one level per migrated
    thread.

    Args:
        transition_latency_s: Core-time lost per DVFS level stepped.
            Zero disables transition accounting entirely (useful for
            ablations and for validating the event-driven loop against
            the dense reference).
        faults: Optional fault schedule applied as time passes
            (sensor faults require ``sensor_bank``).
        sensor_bank: Optional per-core sensor bank the chip power is
            sampled through (the watchdog's measurement path, and the
            target of sensor faults).
        watchdog: Optional emergency power watchdog run on every
            sensor sample between manager invocations.
    """

    def __init__(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        manager: Optional["PowerManager"] = None,
        phase_seed: int = 0,
        phase_sigma: float = 0.35,
        mean_phase_s: float = 0.050,
        policy=None,
        os_interval_s: Optional[float] = None,
        transition_latency_s: float = TRANSITION_LATENCY_PER_LEVEL_S,
        faults: Optional["FaultSchedule"] = None,
        sensor_bank: Optional["SensorBank"] = None,
        watchdog: Optional["PowerWatchdog"] = None,
    ) -> None:
        if (policy is None) != (os_interval_s is None):
            raise ValueError("policy and os_interval_s go together")
        if os_interval_s is not None and os_interval_s <= 0:
            raise ValueError("os_interval_s must be positive")
        if transition_latency_s < 0:
            raise ValueError("transition latency must be non-negative")
        self.chip = chip
        self.workload = workload
        self.assignment = assignment
        self.env = env
        if manager is None:
            # Imported here to keep repro.runtime importable without
            # repro.pm (which itself builds on repro.runtime).
            from ..pm.linopt import LinOpt
            manager = LinOpt()
        self.manager = manager
        self.policy = policy
        self.os_interval_s = os_interval_s
        self.transition_latency_s = transition_latency_s
        self.faults = faults
        self.sensor_bank = sensor_bank
        self.watchdog = watchdog
        if faults is not None and sensor_bank is None and any(
                e.kind.startswith("sensor") for e in faults):
            raise ValueError(
                "a FaultSchedule with sensor faults needs a sensor_bank")
        self._policy_rng = np.random.default_rng([phase_seed, 0x05])
        self.phased = [
            PhasedApplication(app, seed=i * 1000 + phase_seed,
                              sigma=phase_sigma, mean_phase_s=mean_phase_s)
            for i, app in enumerate(workload)
        ]

    @property
    def _faulty(self) -> bool:
        """Whether any fault-layer hook is configured."""
        return (self.faults is not None or self.sensor_bank is not None
                or self.watchdog is not None)

    def _multipliers(self, time_s: float) -> Tuple[np.ndarray, np.ndarray]:
        ipc_mult = np.empty(len(self.phased))
        ceff_mult = np.empty(len(self.phased))
        for i, ph in enumerate(self.phased):
            state = ph.state_at(time_s)
            ipc_mult[i] = state.ipc_multiplier
            ceff_mult[i] = state.power_multiplier
        return ipc_mult, ceff_mult

    def _multiplier_grid(
        self, times: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-sample (ipc, ceff) multipliers for every application.

        Built from each application's phase timeline; selecting the
        segment via ``searchsorted(..., side="right")`` performs the
        identical comparison :meth:`PhasedApplication.state_at` does,
        so the grid matches a per-sample ``state_at`` sweep exactly.
        """
        n_steps = times.size
        n_apps = len(self.phased)
        ipc_grid = np.empty((n_steps, n_apps))
        ceff_grid = np.empty((n_steps, n_apps))
        horizon = float(times[-1]) if n_steps else 0.0
        for i, ph in enumerate(self.phased):
            ends, ipc, power = ph.timeline_until(horizon)
            idx = np.searchsorted(ends, times, side="right")
            ipc_grid[:, i] = ipc[idx]
            ceff_grid[:, i] = power[idx]
        return ipc_grid, ceff_grid

    def _transition_steps(
        self,
        prev_levels: Sequence[int],
        new_levels: Sequence[int],
        migrated: Tuple[int, ...],
    ) -> List[int]:
        """Per-thread DVFS levels stepped by a manager decision.

        Migrated threads pay at least one level even if they land on
        the same level index of their new core.
        """
        stepped = [abs(a - b) for a, b in zip(prev_levels, new_levels)]
        for i in migrated:
            stepped[i] = max(stepped[i], 1)
        return stepped

    def _lossy_sample(
        self, state, stepped: Sequence[int],
    ) -> Tuple[float, float]:
        """(throughput, weighted throughput) of the sample covering a
        transition: each stepping core does no useful work for
        ``stepped[i] * transition_latency_s`` of the sample period."""
        frac = np.clip(
            1.0 - np.asarray(stepped, dtype=float)
            * self.transition_latency_s / SENSOR_PERIOD_S,
            0.0, 1.0)
        lossy = state.scaled(frac)
        return (lossy.throughput_mips,
                lossy.weighted_throughput(self.workload))

    def _thread_tops(self, assignment: Assignment) -> List[int]:
        """Per-thread top DVFS level under the current assignment."""
        return [self.chip.cores[c].vf_table.n_levels - 1
                for c in assignment.core_of]

    def run(self, duration_s: float, dvfs_interval_s: float,
            mode: str = "event") -> SimulationTrace:
        """Simulate ``duration_s`` with the manager run at an interval.

        Args:
            duration_s: Total simulated time.
            dvfs_interval_s: Period between power-manager invocations
                (the x-axis of Figure 14).
            mode: ``"event"`` (default) advances between events with a
                cached system state; ``"dense"`` re-evaluates every
                sensor sample (the reference loop — identical traces,
                ~an order of magnitude more fixed-point solves). Fault
                injection, sensor banks and the watchdog require
                ``"event"``.

        Returns:
            A :class:`SimulationTrace`.
        """
        if duration_s <= 0 or dvfs_interval_s <= 0:
            raise ValueError("duration and interval must be positive")
        if mode not in ("event", "dense"):
            raise ValueError("mode must be 'event' or 'dense'")
        if mode == "dense" and self._faulty:
            raise ValueError("fault injection requires mode='event'")
        n_steps = int(round(duration_s / SENSOR_PERIOD_S))
        times = np.arange(n_steps) * SENSOR_PERIOD_S
        ipc_grid, ceff_grid = self._multiplier_grid(times)
        if mode == "dense":
            return self._run_dense(times, dvfs_interval_s,
                                   ipc_grid, ceff_grid)
        return self._run_event(times, dvfs_interval_s,
                               ipc_grid, ceff_grid)

    # ------------------------------------------------------------------
    # Shared per-event logic
    # ------------------------------------------------------------------

    def _os_reschedule(self, t: float, assignment: Assignment,
                       dead_cores: Optional[Set[int]] = None,
                       ) -> Tuple[Assignment, Tuple[int, ...]]:
        """Run the OS policy; returns (assignment, migrated threads)."""
        new_assignment = self.policy.assign_with_profiling(
            self.chip, self.workload, self._policy_rng)
        if dead_cores:
            new_assignment, _ = self._remap_off_dead(new_assignment,
                                                     dead_cores)
        if new_assignment.core_of == assignment.core_of:
            return assignment, ()
        migrated = tuple(
            i for i, (a, b) in enumerate(zip(new_assignment.core_of,
                                             assignment.core_of))
            if a != b)
        return new_assignment, migrated

    def _remap_off_dead(self, assignment: Assignment,
                        dead_cores: Set[int],
                        ) -> Tuple[Assignment, Tuple[int, ...]]:
        """Evacuate threads from dead cores onto surviving spares.

        Each stranded thread moves to the fastest alive core not
        currently hosting a thread (deterministic, fmax-greedy — the
        same ranking VarF uses). With no spare left the thread stays
        put; the caller pins the dead core's V/f at the floor via its
        level cap, which is the best that can be done short of
        dropping the thread.
        """
        core_of = list(assignment.core_of)
        used = set(core_of)
        moved: List[int] = []
        for i, core in enumerate(core_of):
            if core not in dead_cores:
                continue
            spares = [c for c in range(self.chip.n_cores)
                      if c not in dead_cores and c not in used]
            if not spares:
                continue
            spare = max(spares,
                        key=lambda c: self.chip.cores[c].vf_table.fmax)
            used.discard(core)
            used.add(spare)
            core_of[i] = spare
            moved.append(i)
        if not moved:
            return assignment, ()
        return Assignment(tuple(core_of)), tuple(moved)

    def _clamp_levels(self, levels: List[int], assignment: Assignment,
                      fr: "_FaultRuntime",
                      watchdog: Optional["PowerWatchdog"],
                      ) -> List[int]:
        """Apply droop caps and watchdog emergency caps to levels."""
        if fr.core_caps:
            levels = [min(lv, fr.core_caps.get(c, lv))
                      for lv, c in zip(levels, assignment.core_of)]
        if watchdog is not None:
            levels = watchdog.clamp(levels)
        return levels

    # ------------------------------------------------------------------
    # Fault application (event mode only)
    # ------------------------------------------------------------------

    def _build_fault_runtime(self, times: np.ndarray) -> "_FaultRuntime":
        """Precompute the sample index at which each fault strikes."""
        fr = _FaultRuntime()
        if self.faults is None:
            return fr
        for event in self.faults:
            step = int(np.searchsorted(times, event.time_s - _TIME_EPS,
                                       side="left"))
            if step >= times.size:
                continue  # beyond the simulated horizon
            fr.events.append(event)
            fr.event_steps.append(step)
        return fr

    def _apply_fault(self, event: "FaultEvent", fr: "_FaultRuntime",
                     assignment: Assignment,
                     ) -> Tuple[Assignment, Tuple[int, ...], bool]:
        """Apply one fault event; returns (assignment, migrated, force).

        ``force`` requests an immediate manager re-decision (the
        operating point or thread map changed under the manager's
        feet).
        """
        from ..faults.schedule import (
            CORE_DROOP,
            CORE_OFFLINE,
            MANAGER_KINDS,
        )
        fr.applied.append(event)
        migrated: Tuple[int, ...] = ()
        force = False
        if event.kind.startswith("sensor"):
            self.sensor_bank.apply(event)
        elif event.kind == CORE_DROOP:
            top = self.chip.cores[event.target].vf_table.n_levels - 1
            current = fr.core_caps.get(event.target, top)
            fr.core_caps[event.target] = max(
                current - int(event.param), 0)
            force = event.target in assignment.core_of
        elif event.kind == CORE_OFFLINE:
            fr.dead_cores.add(event.target)
            # A dead core that cannot be evacuated is at least parked
            # at its V/f floor.
            fr.core_caps[event.target] = 0
            if event.target in assignment.core_of:
                assignment, migrated = self._remap_off_dead(
                    assignment, fr.dead_cores)
                force = True
        elif event.kind in MANAGER_KINDS:
            inject = getattr(self.manager, "inject_failure", None)
            if callable(inject):
                inject(event.kind)
            else:
                # A plain manager has no failure model: the invocation
                # is simply lost and the previous levels persist.
                fr.skip_next_manager = True
        return assignment, migrated, force

    # ------------------------------------------------------------------
    # Event-driven loop
    # ------------------------------------------------------------------

    def _run_event(self, times: np.ndarray, dvfs_interval_s: float,
                   ipc_grid: np.ndarray, ceff_grid: np.ndarray,
                   ) -> SimulationTrace:
        n_steps = times.size
        p_target = self.env.p_target(self.assignment.n_threads,
                                     self.chip.n_cores)
        power = np.empty(n_steps)
        tput = np.empty(n_steps)
        wtput = np.empty(n_steps)
        manager_runs: List[float] = []
        transition_time = 0.0
        level_transitions = 0
        migrations = 0
        fallback_activations = 0

        bank = self.sensor_bank
        watchdog = self.watchdog
        sensed: Optional[np.ndarray] = None
        if bank is not None or watchdog is not None:
            sensed = np.empty(n_steps)
        if watchdog is not None:
            watchdog.reset(self.assignment.n_threads)
        fr = self._build_fault_runtime(times)

        # Steps at which any application's multipliers change.
        changed = np.zeros(n_steps, dtype=bool)
        changed[1:] = np.any(
            (ipc_grid[1:] != ipc_grid[:-1])
            | (ceff_grid[1:] != ceff_grid[:-1]), axis=1)
        change_steps = np.flatnonzero(changed)

        def next_timer_step(target_t: float, step: int) -> int:
            """First sample index after ``step`` whose time reaches
            ``target_t`` (a timer fires at most once per sample)."""
            s = int(np.searchsorted(times, target_t - _TIME_EPS,
                                    side="left"))
            return min(max(s, step + 1), n_steps)

        levels: Optional[List[int]] = None
        prev_levels: Optional[List[int]] = None
        state = None
        assignment = self.assignment
        next_manager_t = 0.0
        next_os_t = (self.os_interval_s
                     if self.os_interval_s is not None else None)
        pending_lossy: Optional[List[int]] = None
        step = 0
        while step < n_steps:
            t = times[step]
            ipc_mult = ipc_grid[step]
            ceff_mult = ceff_grid[step]
            migrated: Tuple[int, ...] = ()
            # --- Apply fault events due at this sample. ---
            while (fr.next_event < len(fr.events)
                   and fr.event_steps[fr.next_event] <= step):
                event = fr.events[fr.next_event]
                fr.next_event += 1
                assignment, moved, force = self._apply_fault(
                    event, fr, assignment)
                if moved:
                    migrations += len(moved)
                    migrated = migrated + moved
                if force:
                    # Operating point or map changed under the
                    # manager: re-decide now, cold-started.
                    levels = None
                    state = None
                    next_manager_t = t
            if next_os_t is not None and t >= next_os_t - _TIME_EPS:
                assignment, moved = self._os_reschedule(
                    t, assignment, fr.dead_cores)
                if moved:
                    migrations += len(moved)
                    migrated = migrated + moved
                    # Force a fresh manager decision for the new map.
                    levels = None
                    next_manager_t = t
                next_os_t += self.os_interval_s
            stepped: Optional[List[int]] = None
            if t >= next_manager_t - _TIME_EPS:
                if fr.skip_next_manager:
                    # Injected manager fault on a chain-less manager:
                    # the decision is lost, previous levels persist.
                    fr.skip_next_manager = False
                    if levels is None:
                        levels = self._thread_tops(assignment)
                        levels = self._clamp_levels(levels, assignment,
                                                    fr, watchdog)
                        prev_levels = list(levels)
                        state = None
                    next_manager_t += dvfs_interval_s
                else:
                    kwargs = dict(ipc_multipliers=ipc_mult,
                                  ceff_multipliers=ceff_mult)
                    if levels is not None:
                        # Warm start from the current operating point.
                        kwargs.update(initial_levels=levels,
                                      initial_state=state)
                    result = self.manager.set_levels(
                        self.chip, self.workload, assignment, self.env,
                        **kwargs)
                    if result.stats.get("resilience_tier", 0.0) > 0:
                        fallback_activations += 1
                    new_levels = list(result.levels)
                    if self._faulty:
                        if watchdog is not None:
                            watchdog.on_manager_invocation(
                                self._thread_tops(assignment))
                        new_levels = self._clamp_levels(
                            new_levels, assignment, fr, watchdog)
                    if prev_levels is not None:
                        stepped = self._transition_steps(prev_levels,
                                                         new_levels,
                                                         migrated)
                        n_stepped = sum(stepped)
                        level_transitions += n_stepped
                        transition_time += (
                            n_stepped * self.transition_latency_s)
                        if n_stepped == 0:
                            stepped = None
                    levels = new_levels
                    prev_levels = list(new_levels)
                    manager_runs.append(t)
                    next_manager_t += dvfs_interval_s
                    state = None  # operating point changed
            if state is None or changed[step]:
                state = evaluate_levels(self.chip, self.workload,
                                        assignment, levels,
                                        ipc_multipliers=ipc_mult,
                                        ceff_multipliers=ceff_mult)
            # The state is constant until the next event: fill the
            # sensor samples directly from the cached evaluation.
            nxt = n_steps
            j = int(np.searchsorted(change_steps, step, side="right"))
            if j < change_steps.size:
                nxt = min(nxt, int(change_steps[j]))
            nxt = min(nxt, next_timer_step(next_manager_t, step))
            if next_os_t is not None:
                nxt = min(nxt, next_timer_step(next_os_t, step))
            if fr.next_event < len(fr.events):
                nxt = min(nxt, max(fr.event_steps[fr.next_event],
                                   step + 1))
            power[step:nxt] = state.total_power
            tput[step:nxt] = state.throughput_mips
            wtput[step:nxt] = state.weighted_throughput(self.workload)
            if pending_lossy is not None:
                if stepped is None:
                    stepped = pending_lossy
                else:
                    stepped = [a + b for a, b in zip(stepped,
                                                     pending_lossy)]
                pending_lossy = None
            if stepped is not None and self.transition_latency_s > 0:
                tput[step], wtput[step] = self._lossy_sample(state, stepped)
            # --- Sensor sampling and watchdog over the span. ---
            if sensed is not None:
                s = step
                while s < nxt:
                    if bank is not None:
                        bank.advance(times[s])
                        view = bank.read_chip(assignment.core_of,
                                              state.core_power,
                                              state.l2_power)
                    else:
                        view = state.total_power
                    sensed[s] = view
                    if (watchdog is not None and levels is not None
                            and watchdog.observe(times[s], view,
                                                 p_target)):
                        new_levels, victim = (
                            watchdog.emergency_step_down(levels))
                        if victim >= 0:
                            em = [abs(a - b) for a, b in
                                  zip(levels, new_levels)]
                            n_em = sum(em)
                            level_transitions += n_em
                            transition_time += (
                                n_em * self.transition_latency_s)
                            levels = new_levels
                            prev_levels = list(new_levels)
                            pending_lossy = em
                            state = None
                            nxt = s + 1
                            break
                    s += 1
            step = nxt
        return SimulationTrace(
            times_s=times,
            power_w=power,
            p_target_w=p_target,
            throughput_mips=tput,
            weighted_throughput=wtput,
            manager_runs=manager_runs,
            transition_time_s=transition_time,
            migrations=migrations,
            level_transitions=level_transitions,
            sensed_power_w=sensed,
            watchdog_triggers=(tuple(watchdog.triggers)
                               if watchdog is not None else ()),
            fault_events=tuple(fr.applied),
            fallback_activations=fallback_activations,
        )

    # ------------------------------------------------------------------
    # Dense reference loop (per-sample re-evaluation)
    # ------------------------------------------------------------------

    def _run_dense(self, times: np.ndarray, dvfs_interval_s: float,
                   ipc_grid: np.ndarray, ceff_grid: np.ndarray,
                   ) -> SimulationTrace:
        """Per-millisecond reference loop.

        Semantically identical to the event-driven loop (same manager
        invocations, same evaluations at events) but re-solves the
        leakage-temperature fixed point at every sensor sample. Kept
        for validation and for the perf benchmark's baseline. Does not
        support the fault layer (``run`` rejects that combination).
        """
        n_steps = times.size
        p_target = self.env.p_target(self.assignment.n_threads,
                                     self.chip.n_cores)
        power = np.empty(n_steps)
        tput = np.empty(n_steps)
        wtput = np.empty(n_steps)
        manager_runs: List[float] = []
        transition_time = 0.0
        level_transitions = 0
        migrations = 0

        levels: Optional[List[int]] = None
        prev_levels: Optional[List[int]] = None
        state = None
        assignment = self.assignment
        next_manager_t = 0.0
        next_os_t = (self.os_interval_s
                     if self.os_interval_s is not None else None)
        for step in range(n_steps):
            t = times[step]
            ipc_mult = ipc_grid[step]
            ceff_mult = ceff_grid[step]
            migrated: Tuple[int, ...] = ()
            if next_os_t is not None and t >= next_os_t - _TIME_EPS:
                assignment, migrated = self._os_reschedule(t, assignment)
                if migrated:
                    migrations += len(migrated)
                    levels = None
                    next_manager_t = t
                next_os_t += self.os_interval_s
            stepped: Optional[List[int]] = None
            if t >= next_manager_t - _TIME_EPS:
                kwargs = dict(ipc_multipliers=ipc_mult,
                              ceff_multipliers=ceff_mult)
                if levels is not None:
                    kwargs.update(initial_levels=levels,
                                  initial_state=state)
                result = self.manager.set_levels(
                    self.chip, self.workload, assignment, self.env,
                    **kwargs)
                new_levels = list(result.levels)
                if prev_levels is not None:
                    stepped = self._transition_steps(prev_levels,
                                                     new_levels, migrated)
                    n_stepped = sum(stepped)
                    level_transitions += n_stepped
                    transition_time += (
                        n_stepped * self.transition_latency_s)
                    if n_stepped == 0:
                        stepped = None
                levels = new_levels
                prev_levels = list(new_levels)
                manager_runs.append(t)
                next_manager_t += dvfs_interval_s
            state = evaluate_levels(self.chip, self.workload,
                                    assignment, levels,
                                    ipc_multipliers=ipc_mult,
                                    ceff_multipliers=ceff_mult)
            power[step] = state.total_power
            tput[step] = state.throughput_mips
            wtput[step] = state.weighted_throughput(self.workload)
            if stepped is not None and self.transition_latency_s > 0:
                tput[step], wtput[step] = self._lossy_sample(state, stepped)
        return SimulationTrace(
            times_s=times,
            power_w=power,
            p_target_w=p_target,
            throughput_mips=tput,
            weighted_throughput=wtput,
            manager_runs=manager_runs,
            transition_time_s=transition_time,
            migrations=migrations,
            level_transitions=level_transitions,
        )
