"""Online event-driven system simulation (Figure 2 timeline).

Simulates the CMP running a phased workload under an online power
manager: sensors sample every millisecond, the power manager re-runs at
the DVFS interval (10 ms in the paper's experiments), and the OS-level
scheduler runs at a longer interval. Between manager invocations the
applications drift through phases, so consumed power deviates from
``Ptarget`` — the effect Figure 14 quantifies as a function of the
DVFS interval.

The steady-state system evaluation is memoryless: between two
consecutive *events* — a phase boundary of any application, a
power-manager invocation, or an OS reschedule — the operating point is
constant, so the leakage-temperature fixed point needs to be solved
only once per event rather than once per sensor sample. The simulation
therefore builds each application's phase-boundary timeline up front,
advances event to event with a single cached
:class:`~repro.runtime.evaluation.SystemState`, and fills the 1 ms
sensor samples in between from that cached state. A per-millisecond
reference loop (``mode="dense"``) is kept for validation and
benchmarking; both modes produce bitwise-identical traces.

DVFS transitions are modelled with a per-level switching latency
(XScale-class, conservative per Section 5.1): during a transition the
core contributes no useful work, and the lost time is charged against
the throughput trace — the sensor sample covering a manager invocation
that stepped a core by ``k`` levels sees that core's committed work
scaled by ``1 - k * latency / sample period``. Thread migrations pay
the same per-level accounting (a conservative proxy for cache-warmup
cost), with a minimum of one level per migrated thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from typing import TYPE_CHECKING

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..workloads import PhasedApplication, Workload
from .evaluation import Assignment, evaluate_levels

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..pm.base import PowerManager

# Sensor sampling period (s): power deviation is recorded at this rate.
SENSOR_PERIOD_S = 1e-3
# Voltage/frequency transition latency per level stepped (s).
TRANSITION_LATENCY_PER_LEVEL_S = 20e-6
# Timer comparison slack (matches the sensor-grid quantisation).
_TIME_EPS = 1e-12


@dataclass
class SimulationTrace:
    """Recorded time series of one online run.

    Attributes:
        times_s: Sample timestamps.
        power_w: Total chip power at each sample.
        p_target_w: The power budget in force.
        throughput_mips: Aggregate throughput at each sample (net of
            work lost to V/f transitions and migrations).
        manager_runs: Timestamps of power-manager invocations.
        transition_time_s: Total core-time lost to DVFS transitions
            and migrations.
        migrations: Number of thread migrations performed.
        level_transitions: Total DVFS levels stepped across the run
            (including the per-migration minimum); equals
            ``transition_time_s / transition_latency_s`` when the
            latency is non-zero.
    """

    times_s: np.ndarray
    power_w: np.ndarray
    p_target_w: float
    throughput_mips: np.ndarray
    weighted_throughput: np.ndarray
    manager_runs: List[float]
    transition_time_s: float
    migrations: int
    level_transitions: int = 0

    @property
    def mean_abs_deviation_pct(self) -> float:
        """Mean |power - Ptarget| as a percentage of Ptarget (Fig 14).

        Matches the paper's measurement: every millisecond the average
        power of the past window is compared to Ptarget and the
        absolute difference recorded; values are averaged over the run.
        """
        dev = np.abs(self.power_w - self.p_target_w)
        return float(dev.mean() / self.p_target_w * 100.0)

    @property
    def mean_power_w(self) -> float:
        return float(self.power_w.mean())

    @property
    def mean_throughput_mips(self) -> float:
        return float(self.throughput_mips.mean())

    @property
    def mean_weighted_throughput(self) -> float:
        return float(self.weighted_throughput.mean())

    @property
    def ed2_relative(self) -> float:
        """Time-averaged ED^2 up to a constant (see SystemState)."""
        tp = self.mean_throughput_mips
        if tp <= 0:
            return float("inf")
        return self.mean_power_w / tp ** 3

    @property
    def weighted_ed2_relative(self) -> float:
        tp = self.mean_weighted_throughput
        if tp <= 0:
            return float("inf")
        return self.mean_power_w / tp ** 3


class OnlineSimulation:
    """Event-driven execution of a phased workload under a manager.

    Implements the full Figure 2 timeline: the power manager runs at
    the (short) DVFS interval; optionally, an OS scheduling policy
    re-runs at the (long) OS interval and may migrate threads between
    cores based on fresh profiling. Migrations pay the same per-level
    V/f transition accounting as DVFS changes (a conservative proxy
    for cache-warmup cost), with a minimum of one level per migrated
    thread.

    Args:
        transition_latency_s: Core-time lost per DVFS level stepped.
            Zero disables transition accounting entirely (useful for
            ablations and for validating the event-driven loop against
            the dense reference).
    """

    def __init__(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        manager: Optional["PowerManager"] = None,
        phase_seed: int = 0,
        phase_sigma: float = 0.35,
        mean_phase_s: float = 0.050,
        policy=None,
        os_interval_s: Optional[float] = None,
        transition_latency_s: float = TRANSITION_LATENCY_PER_LEVEL_S,
    ) -> None:
        if (policy is None) != (os_interval_s is None):
            raise ValueError("policy and os_interval_s go together")
        if os_interval_s is not None and os_interval_s <= 0:
            raise ValueError("os_interval_s must be positive")
        if transition_latency_s < 0:
            raise ValueError("transition latency must be non-negative")
        self.chip = chip
        self.workload = workload
        self.assignment = assignment
        self.env = env
        if manager is None:
            # Imported here to keep repro.runtime importable without
            # repro.pm (which itself builds on repro.runtime).
            from ..pm.linopt import LinOpt
            manager = LinOpt()
        self.manager = manager
        self.policy = policy
        self.os_interval_s = os_interval_s
        self.transition_latency_s = transition_latency_s
        self._policy_rng = np.random.default_rng([phase_seed, 0x05])
        self.phased = [
            PhasedApplication(app, seed=i * 1000 + phase_seed,
                              sigma=phase_sigma, mean_phase_s=mean_phase_s)
            for i, app in enumerate(workload)
        ]

    def _multipliers(self, time_s: float) -> Tuple[np.ndarray, np.ndarray]:
        ipc_mult = np.empty(len(self.phased))
        ceff_mult = np.empty(len(self.phased))
        for i, ph in enumerate(self.phased):
            state = ph.state_at(time_s)
            ipc_mult[i] = state.ipc_multiplier
            ceff_mult[i] = state.power_multiplier
        return ipc_mult, ceff_mult

    def _multiplier_grid(
        self, times: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-sample (ipc, ceff) multipliers for every application.

        Built from each application's phase timeline; selecting the
        segment via ``searchsorted(..., side="right")`` performs the
        identical comparison :meth:`PhasedApplication.state_at` does,
        so the grid matches a per-sample ``state_at`` sweep exactly.
        """
        n_steps = times.size
        n_apps = len(self.phased)
        ipc_grid = np.empty((n_steps, n_apps))
        ceff_grid = np.empty((n_steps, n_apps))
        horizon = float(times[-1]) if n_steps else 0.0
        for i, ph in enumerate(self.phased):
            ends, ipc, power = ph.timeline_until(horizon)
            idx = np.searchsorted(ends, times, side="right")
            ipc_grid[:, i] = ipc[idx]
            ceff_grid[:, i] = power[idx]
        return ipc_grid, ceff_grid

    def _transition_steps(
        self,
        prev_levels: Sequence[int],
        new_levels: Sequence[int],
        migrated: Tuple[int, ...],
    ) -> List[int]:
        """Per-thread DVFS levels stepped by a manager decision.

        Migrated threads pay at least one level even if they land on
        the same level index of their new core.
        """
        stepped = [abs(a - b) for a, b in zip(prev_levels, new_levels)]
        for i in migrated:
            stepped[i] = max(stepped[i], 1)
        return stepped

    def _lossy_sample(
        self, state, stepped: Sequence[int],
    ) -> Tuple[float, float]:
        """(throughput, weighted throughput) of the sample covering a
        transition: each stepping core does no useful work for
        ``stepped[i] * transition_latency_s`` of the sample period."""
        frac = np.clip(
            1.0 - np.asarray(stepped, dtype=float)
            * self.transition_latency_s / SENSOR_PERIOD_S,
            0.0, 1.0)
        lossy = state.scaled(frac)
        return (lossy.throughput_mips,
                lossy.weighted_throughput(self.workload))

    def run(self, duration_s: float, dvfs_interval_s: float,
            mode: str = "event") -> SimulationTrace:
        """Simulate ``duration_s`` with the manager run at an interval.

        Args:
            duration_s: Total simulated time.
            dvfs_interval_s: Period between power-manager invocations
                (the x-axis of Figure 14).
            mode: ``"event"`` (default) advances between events with a
                cached system state; ``"dense"`` re-evaluates every
                sensor sample (the reference loop — identical traces,
                ~an order of magnitude more fixed-point solves).

        Returns:
            A :class:`SimulationTrace`.
        """
        if duration_s <= 0 or dvfs_interval_s <= 0:
            raise ValueError("duration and interval must be positive")
        if mode not in ("event", "dense"):
            raise ValueError("mode must be 'event' or 'dense'")
        n_steps = int(round(duration_s / SENSOR_PERIOD_S))
        times = np.arange(n_steps) * SENSOR_PERIOD_S
        ipc_grid, ceff_grid = self._multiplier_grid(times)
        if mode == "dense":
            return self._run_dense(times, dvfs_interval_s,
                                   ipc_grid, ceff_grid)
        return self._run_event(times, dvfs_interval_s,
                               ipc_grid, ceff_grid)

    # ------------------------------------------------------------------
    # Shared per-event logic
    # ------------------------------------------------------------------

    def _os_reschedule(self, t: float, assignment: Assignment,
                       ) -> Tuple[Assignment, Tuple[int, ...]]:
        """Run the OS policy; returns (assignment, migrated threads)."""
        new_assignment = self.policy.assign_with_profiling(
            self.chip, self.workload, self._policy_rng)
        if new_assignment.core_of == assignment.core_of:
            return assignment, ()
        migrated = tuple(
            i for i, (a, b) in enumerate(zip(new_assignment.core_of,
                                             assignment.core_of))
            if a != b)
        return new_assignment, migrated

    # ------------------------------------------------------------------
    # Event-driven loop
    # ------------------------------------------------------------------

    def _run_event(self, times: np.ndarray, dvfs_interval_s: float,
                   ipc_grid: np.ndarray, ceff_grid: np.ndarray,
                   ) -> SimulationTrace:
        n_steps = times.size
        p_target = self.env.p_target(self.assignment.n_threads,
                                     self.chip.n_cores)
        power = np.empty(n_steps)
        tput = np.empty(n_steps)
        wtput = np.empty(n_steps)
        manager_runs: List[float] = []
        transition_time = 0.0
        level_transitions = 0
        migrations = 0

        # Steps at which any application's multipliers change.
        changed = np.zeros(n_steps, dtype=bool)
        changed[1:] = np.any(
            (ipc_grid[1:] != ipc_grid[:-1])
            | (ceff_grid[1:] != ceff_grid[:-1]), axis=1)
        change_steps = np.flatnonzero(changed)

        def next_timer_step(target_t: float, step: int) -> int:
            """First sample index after ``step`` whose time reaches
            ``target_t`` (a timer fires at most once per sample)."""
            s = int(np.searchsorted(times, target_t - _TIME_EPS,
                                    side="left"))
            return min(max(s, step + 1), n_steps)

        levels: Optional[List[int]] = None
        prev_levels: Optional[List[int]] = None
        state = None
        assignment = self.assignment
        next_manager_t = 0.0
        next_os_t = (self.os_interval_s
                     if self.os_interval_s is not None else None)
        step = 0
        while step < n_steps:
            t = times[step]
            ipc_mult = ipc_grid[step]
            ceff_mult = ceff_grid[step]
            migrated: Tuple[int, ...] = ()
            if next_os_t is not None and t >= next_os_t - _TIME_EPS:
                assignment, migrated = self._os_reschedule(t, assignment)
                if migrated:
                    migrations += len(migrated)
                    # Force a fresh manager decision for the new map.
                    levels = None
                    next_manager_t = t
                next_os_t += self.os_interval_s
            stepped: Optional[List[int]] = None
            if t >= next_manager_t - _TIME_EPS:
                kwargs = dict(ipc_multipliers=ipc_mult,
                              ceff_multipliers=ceff_mult)
                if levels is not None:
                    # Warm start from the current operating point.
                    kwargs.update(initial_levels=levels,
                                  initial_state=state)
                result = self.manager.set_levels(
                    self.chip, self.workload, assignment, self.env,
                    **kwargs)
                new_levels = list(result.levels)
                if prev_levels is not None:
                    stepped = self._transition_steps(prev_levels,
                                                     new_levels, migrated)
                    n_stepped = sum(stepped)
                    level_transitions += n_stepped
                    transition_time += (
                        n_stepped * self.transition_latency_s)
                    if n_stepped == 0:
                        stepped = None
                levels = new_levels
                prev_levels = list(new_levels)
                manager_runs.append(t)
                next_manager_t += dvfs_interval_s
                state = None  # operating point changed
            if state is None or changed[step]:
                state = evaluate_levels(self.chip, self.workload,
                                        assignment, levels,
                                        ipc_multipliers=ipc_mult,
                                        ceff_multipliers=ceff_mult)
            # The state is constant until the next event: fill the
            # sensor samples directly from the cached evaluation.
            nxt = n_steps
            j = int(np.searchsorted(change_steps, step, side="right"))
            if j < change_steps.size:
                nxt = min(nxt, int(change_steps[j]))
            nxt = min(nxt, next_timer_step(next_manager_t, step))
            if next_os_t is not None:
                nxt = min(nxt, next_timer_step(next_os_t, step))
            power[step:nxt] = state.total_power
            tput[step:nxt] = state.throughput_mips
            wtput[step:nxt] = state.weighted_throughput(self.workload)
            if stepped is not None and self.transition_latency_s > 0:
                tput[step], wtput[step] = self._lossy_sample(state, stepped)
            step = nxt
        return SimulationTrace(
            times_s=times,
            power_w=power,
            p_target_w=p_target,
            throughput_mips=tput,
            weighted_throughput=wtput,
            manager_runs=manager_runs,
            transition_time_s=transition_time,
            migrations=migrations,
            level_transitions=level_transitions,
        )

    # ------------------------------------------------------------------
    # Dense reference loop (per-sample re-evaluation)
    # ------------------------------------------------------------------

    def _run_dense(self, times: np.ndarray, dvfs_interval_s: float,
                   ipc_grid: np.ndarray, ceff_grid: np.ndarray,
                   ) -> SimulationTrace:
        """Per-millisecond reference loop.

        Semantically identical to the event-driven loop (same manager
        invocations, same evaluations at events) but re-solves the
        leakage-temperature fixed point at every sensor sample. Kept
        for validation and for the perf benchmark's baseline.
        """
        n_steps = times.size
        p_target = self.env.p_target(self.assignment.n_threads,
                                     self.chip.n_cores)
        power = np.empty(n_steps)
        tput = np.empty(n_steps)
        wtput = np.empty(n_steps)
        manager_runs: List[float] = []
        transition_time = 0.0
        level_transitions = 0
        migrations = 0

        levels: Optional[List[int]] = None
        prev_levels: Optional[List[int]] = None
        state = None
        assignment = self.assignment
        next_manager_t = 0.0
        next_os_t = (self.os_interval_s
                     if self.os_interval_s is not None else None)
        for step in range(n_steps):
            t = times[step]
            ipc_mult = ipc_grid[step]
            ceff_mult = ceff_grid[step]
            migrated: Tuple[int, ...] = ()
            if next_os_t is not None and t >= next_os_t - _TIME_EPS:
                assignment, migrated = self._os_reschedule(t, assignment)
                if migrated:
                    migrations += len(migrated)
                    levels = None
                    next_manager_t = t
                next_os_t += self.os_interval_s
            stepped: Optional[List[int]] = None
            if t >= next_manager_t - _TIME_EPS:
                kwargs = dict(ipc_multipliers=ipc_mult,
                              ceff_multipliers=ceff_mult)
                if levels is not None:
                    kwargs.update(initial_levels=levels,
                                  initial_state=state)
                result = self.manager.set_levels(
                    self.chip, self.workload, assignment, self.env,
                    **kwargs)
                new_levels = list(result.levels)
                if prev_levels is not None:
                    stepped = self._transition_steps(prev_levels,
                                                     new_levels, migrated)
                    n_stepped = sum(stepped)
                    level_transitions += n_stepped
                    transition_time += (
                        n_stepped * self.transition_latency_s)
                    if n_stepped == 0:
                        stepped = None
                levels = new_levels
                prev_levels = list(new_levels)
                manager_runs.append(t)
                next_manager_t += dvfs_interval_s
            state = evaluate_levels(self.chip, self.workload,
                                    assignment, levels,
                                    ipc_multipliers=ipc_mult,
                                    ceff_multipliers=ceff_mult)
            power[step] = state.total_power
            tput[step] = state.throughput_mips
            wtput[step] = state.weighted_throughput(self.workload)
            if stepped is not None and self.transition_latency_s > 0:
                tput[step], wtput[step] = self._lossy_sample(state, stepped)
        return SimulationTrace(
            times_s=times,
            power_w=power,
            p_target_w=p_target,
            throughput_mips=tput,
            weighted_throughput=wtput,
            manager_runs=manager_runs,
            transition_time_s=transition_time,
            migrations=migrations,
            level_transitions=level_transitions,
        )
