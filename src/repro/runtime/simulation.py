"""Online event-driven system simulation (Figure 2 timeline).

Simulates the CMP running a phased workload under an online power
manager: sensors sample every millisecond, the power manager re-runs at
the DVFS interval (10 ms in the paper's experiments), and the OS-level
scheduler runs at a longer interval. Between manager invocations the
applications drift through phases, so consumed power deviates from
``Ptarget`` — the effect Figure 14 quantifies as a function of the
DVFS interval.

The steady-state system evaluation is memoryless: between two
consecutive *events* — a phase boundary of any application, a
power-manager invocation, an OS reschedule, a fault strike or a
watchdog emergency — the operating point is constant, so the
leakage-temperature fixed point needs to be solved only once per event
rather than once per sensor sample. The simulation therefore builds
each application's phase-boundary timeline up front, advances event to
event with a single cached
:class:`~repro.runtime.evaluation.SystemState`, and fills the 1 ms
sensor samples in between from that cached state. A per-millisecond
reference loop (``mode="dense"``) is kept for validation and
benchmarking; both modes produce bitwise-identical traces.

DVFS transitions are modelled with a per-level switching latency
(XScale-class, conservative per Section 5.1): during a transition the
core contributes no useful work, and the lost time is charged against
the throughput trace — the sensor sample covering a manager invocation
that stepped a core by ``k`` levels sees that core's committed work
scaled by ``1 - k * latency / sample period``. Thread migrations pay
the same per-level accounting (a conservative proxy for cache-warmup
cost), with a minimum of one level per migrated thread.

**Faults and graceful degradation.** The simulation optionally runs a
:class:`repro.faults.FaultSchedule` (sensor, core and manager faults
applied as simulated time passes), samples chip power through a
per-core :class:`repro.faults.SensorBank`, and arms a
:class:`repro.faults.PowerWatchdog` that fires an emergency
Foxton*-style round-robin step-down when the *sensed* power stays
above ``Ptarget`` plus a guard band for K consecutive samples —
exactly the between-invocations protection a hardware controller
provides. Core-offline faults force a reschedule of the stranded
thread onto the fastest surviving free core through the existing
migration path. All three hooks default to ``None`` and the fault
layer is then completely transparent: traces are bit-identical to a
build without it. Fault injection requires ``mode="event"``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from typing import TYPE_CHECKING

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..workloads import PhasedApplication, Workload
from .evaluation import Assignment, evaluate_levels

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from ..faults import FaultEvent, FaultSchedule, PowerWatchdog, SensorBank
    from ..pm.base import PowerManager

# Sensor sampling period (s): power deviation is recorded at this rate.
SENSOR_PERIOD_S = 1e-3
# Voltage/frequency transition latency per level stepped (s).
TRANSITION_LATENCY_PER_LEVEL_S = 20e-6
# Timer comparison slack (matches the sensor-grid quantisation).
_TIME_EPS = 1e-12


@dataclass
class SimulationTrace:
    """Recorded time series of one online run.

    Attributes:
        times_s: Sample timestamps.
        power_w: Total chip power at each sample (ground truth).
        p_target_w: The power budget in force.
        throughput_mips: Aggregate throughput at each sample (net of
            work lost to V/f transitions and migrations).
        manager_runs: Timestamps of power-manager invocations.
        transition_time_s: Total core-time lost to DVFS transitions
            and migrations (including watchdog emergencies).
        migrations: Number of thread migrations performed (OS
            reschedules and core-offline evacuations).
        level_transitions: Total DVFS levels stepped across the run
            (including the per-migration minimum); equals
            ``transition_time_s / transition_latency_s`` when the
            latency is non-zero.
        sensed_power_w: Chip power as sampled through the (possibly
            faulty) sensor bank; ``None`` when no bank or watchdog was
            configured.
        watchdog_triggers: Timestamps of emergency watchdog step-downs.
        fault_events: The fault events actually applied during the run.
        fallback_activations: Manager invocations decided below the
            primary tier (``resilience_tier > 0`` in the manager's
            stats — see :class:`repro.faults.ResilientManager`).
        fallback_times_s: Timestamps of those below-primary decisions
            (``len == fallback_activations`` in event mode).
        tier_transitions: ``(time_s, tier)`` pairs recorded whenever a
            manager decision lands on a different resilience tier than
            the previous one (tier 0 assumed before the first
            decision) — the escalation/recovery path through the
            LinOpt -> Foxton* -> all-minimum chain.
        lp_fallbacks: Total within-tier-0 LP fallbacks (LinOpt solves
            that came back non-optimal and clamped to the window
            floor) summed over all manager invocations.
        lp_fallback_times_s: Timestamps of invocations whose decision
            involved at least one LP fallback.
    """

    times_s: np.ndarray
    power_w: np.ndarray
    p_target_w: float
    throughput_mips: np.ndarray
    weighted_throughput: np.ndarray
    manager_runs: List[float]
    transition_time_s: float
    migrations: int
    level_transitions: int = 0
    sensed_power_w: Optional[np.ndarray] = None
    watchdog_triggers: Tuple[float, ...] = ()
    fault_events: Tuple["FaultEvent", ...] = ()
    fallback_activations: int = 0
    fallback_times_s: Tuple[float, ...] = ()
    tier_transitions: Tuple[Tuple[float, int], ...] = ()
    lp_fallbacks: int = 0
    lp_fallback_times_s: Tuple[float, ...] = ()

    @property
    def mean_abs_deviation_pct(self) -> float:
        """Mean |power - Ptarget| as a percentage of Ptarget (Fig 14).

        Matches the paper's measurement: every millisecond the average
        power of the past window is compared to Ptarget and the
        absolute difference recorded; values are averaged over the run.
        """
        dev = np.abs(self.power_w - self.p_target_w)
        return float(dev.mean() / self.p_target_w * 100.0)

    @property
    def overshoot_fraction(self) -> float:
        """Fraction of samples with true power above Ptarget."""
        return float(np.mean(self.power_w > self.p_target_w))

    @property
    def mean_power_w(self) -> float:
        return float(self.power_w.mean())

    @property
    def mean_throughput_mips(self) -> float:
        return float(self.throughput_mips.mean())

    @property
    def mean_weighted_throughput(self) -> float:
        return float(self.weighted_throughput.mean())

    @property
    def ed2_relative(self) -> float:
        """Time-averaged ED^2 up to a constant (see SystemState)."""
        tp = self.mean_throughput_mips
        if tp <= 0:
            return float("inf")
        return self.mean_power_w / tp ** 3

    @property
    def weighted_ed2_relative(self) -> float:
        tp = self.mean_weighted_throughput
        if tp <= 0:
            return float("inf")
        return self.mean_power_w / tp ** 3


@dataclass
class _FaultRuntime:
    """Mutable per-run fault state (event loop bookkeeping)."""

    events: List["FaultEvent"] = field(default_factory=list)
    event_steps: List[int] = field(default_factory=list)
    next_event: int = 0
    applied: List["FaultEvent"] = field(default_factory=list)
    dead_cores: Set[int] = field(default_factory=set)
    core_caps: Dict[int, int] = field(default_factory=dict)
    skip_next_manager: bool = False


#: ``ManagerDecision.kind`` values: a scheduled power-manager
#: invocation vs a watchdog emergency step-down between invocations.
DECISION_MANAGER = "manager"
DECISION_EMERGENCY = "emergency"


@dataclass(frozen=True)
class ManagerDecision:
    """One actuation decision taken during an event-driven run.

    The decision stream is what an external controller (e.g. the
    power-management daemon) consumes as its upstream actuation plan:
    per-thread V/f levels, the thread-to-core map in force, and which
    resilience tier produced the answer.

    Attributes:
        time_s: Simulated time of the decision.
        kind: :data:`DECISION_MANAGER` for a scheduled manager
            invocation, :data:`DECISION_EMERGENCY` for a watchdog
            step-down between invocations.
        levels: Per-thread DVFS levels after the decision (clamped by
            droop caps and watchdog emergency caps).
        core_of: Thread-to-core assignment in force at decision time.
        migrated: Threads migrated by this decision's reschedule.
        resilience_tier: Which tier of the fallback chain decided
            (0 = primary; see :class:`repro.faults.ResilientManager`);
            0 for plain managers and emergencies.
        lp_fallbacks: Within-tier-0 LP fallbacks this invocation.
        evaluations: Full-system evaluations the decision consumed.
    """

    time_s: float
    kind: str
    levels: Tuple[int, ...]
    core_of: Tuple[int, ...]
    migrated: Tuple[int, ...] = ()
    resilience_tier: int = 0
    lp_fallbacks: int = 0
    evaluations: int = 0


class OnlineSimulation:
    """Event-driven execution of a phased workload under a manager.

    Implements the full Figure 2 timeline: the power manager runs at
    the (short) DVFS interval; optionally, an OS scheduling policy
    re-runs at the (long) OS interval and may migrate threads between
    cores based on fresh profiling. Migrations pay the same per-level
    V/f transition accounting as DVFS changes (a conservative proxy
    for cache-warmup cost), with a minimum of one level per migrated
    thread.

    Args:
        transition_latency_s: Core-time lost per DVFS level stepped.
            Zero disables transition accounting entirely (useful for
            ablations and for validating the event-driven loop against
            the dense reference).
        faults: Optional fault schedule applied as time passes
            (sensor faults require ``sensor_bank``).
        sensor_bank: Optional per-core sensor bank the chip power is
            sampled through (the watchdog's measurement path, and the
            target of sensor faults).
        watchdog: Optional emergency power watchdog run on every
            sensor sample between manager invocations.
    """

    def __init__(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        manager: Optional["PowerManager"] = None,
        phase_seed: int = 0,
        phase_sigma: float = 0.35,
        mean_phase_s: float = 0.050,
        policy=None,
        os_interval_s: Optional[float] = None,
        transition_latency_s: float = TRANSITION_LATENCY_PER_LEVEL_S,
        faults: Optional["FaultSchedule"] = None,
        sensor_bank: Optional["SensorBank"] = None,
        watchdog: Optional["PowerWatchdog"] = None,
    ) -> None:
        if (policy is None) != (os_interval_s is None):
            raise ValueError("policy and os_interval_s go together")
        if os_interval_s is not None and os_interval_s <= 0:
            raise ValueError("os_interval_s must be positive")
        if transition_latency_s < 0:
            raise ValueError("transition latency must be non-negative")
        self.chip = chip
        self.workload = workload
        self.assignment = assignment
        self.env = env
        if manager is None:
            # Imported here to keep repro.runtime importable without
            # repro.pm (which itself builds on repro.runtime).
            from ..pm.linopt import LinOpt
            manager = LinOpt()
        self.manager = manager
        self.policy = policy
        self.os_interval_s = os_interval_s
        self.transition_latency_s = transition_latency_s
        self.faults = faults
        self.sensor_bank = sensor_bank
        self.watchdog = watchdog
        if faults is not None and sensor_bank is None and any(
                e.kind.startswith("sensor") for e in faults):
            raise ValueError(
                "a FaultSchedule with sensor faults needs a sensor_bank")
        self._policy_rng = np.random.default_rng([phase_seed, 0x05])
        self.phased = [
            PhasedApplication(app, seed=i * 1000 + phase_seed,
                              sigma=phase_sigma, mean_phase_s=mean_phase_s)
            for i, app in enumerate(workload)
        ]

    @property
    def _faulty(self) -> bool:
        """Whether any fault-layer hook is configured."""
        return (self.faults is not None or self.sensor_bank is not None
                or self.watchdog is not None)

    def _multipliers(self, time_s: float) -> Tuple[np.ndarray, np.ndarray]:
        ipc_mult = np.empty(len(self.phased))
        ceff_mult = np.empty(len(self.phased))
        for i, ph in enumerate(self.phased):
            state = ph.state_at(time_s)
            ipc_mult[i] = state.ipc_multiplier
            ceff_mult[i] = state.power_multiplier
        return ipc_mult, ceff_mult

    def _multiplier_grid(
        self, times: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-sample (ipc, ceff) multipliers for every application.

        Built from each application's phase timeline; selecting the
        segment via ``searchsorted(..., side="right")`` performs the
        identical comparison :meth:`PhasedApplication.state_at` does,
        so the grid matches a per-sample ``state_at`` sweep exactly.
        """
        n_steps = times.size
        n_apps = len(self.phased)
        ipc_grid = np.empty((n_steps, n_apps))
        ceff_grid = np.empty((n_steps, n_apps))
        horizon = float(times[-1]) if n_steps else 0.0
        for i, ph in enumerate(self.phased):
            ends, ipc, power = ph.timeline_until(horizon)
            idx = np.searchsorted(ends, times, side="right")
            ipc_grid[:, i] = ipc[idx]
            ceff_grid[:, i] = power[idx]
        return ipc_grid, ceff_grid

    def _transition_steps(
        self,
        prev_levels: Sequence[int],
        new_levels: Sequence[int],
        migrated: Tuple[int, ...],
    ) -> List[int]:
        """Per-thread DVFS levels stepped by a manager decision.

        Migrated threads pay at least one level even if they land on
        the same level index of their new core.
        """
        stepped = [abs(a - b) for a, b in zip(prev_levels, new_levels)]
        for i in migrated:
            stepped[i] = max(stepped[i], 1)
        return stepped

    def _lossy_sample(
        self, state, stepped: Sequence[int],
    ) -> Tuple[float, float]:
        """(throughput, weighted throughput) of the sample covering a
        transition: each stepping core does no useful work for
        ``stepped[i] * transition_latency_s`` of the sample period."""
        frac = np.clip(
            1.0 - np.asarray(stepped, dtype=float)
            * self.transition_latency_s / SENSOR_PERIOD_S,
            0.0, 1.0)
        lossy = state.scaled(frac)
        return (lossy.throughput_mips,
                lossy.weighted_throughput(self.workload))

    def _thread_tops(self, assignment: Assignment) -> List[int]:
        """Per-thread top DVFS level under the current assignment."""
        return [self.chip.cores[c].vf_table.n_levels - 1
                for c in assignment.core_of]

    def run(self, duration_s: float, dvfs_interval_s: float,
            mode: str = "event") -> SimulationTrace:
        """Simulate ``duration_s`` with the manager run at an interval.

        Args:
            duration_s: Total simulated time.
            dvfs_interval_s: Period between power-manager invocations
                (the x-axis of Figure 14).
            mode: ``"event"`` (default) advances between events with a
                cached system state; ``"dense"`` re-evaluates every
                sensor sample (the reference loop — identical traces,
                ~an order of magnitude more fixed-point solves). Fault
                injection, sensor banks and the watchdog require
                ``"event"``.

        Returns:
            A :class:`SimulationTrace`.
        """
        if duration_s <= 0 or dvfs_interval_s <= 0:
            raise ValueError("duration and interval must be positive")
        if mode not in ("event", "dense"):
            raise ValueError("mode must be 'event' or 'dense'")
        if mode == "dense" and self._faulty:
            raise ValueError("fault injection requires mode='event'")
        if mode == "dense":
            n_steps = int(round(duration_s / SENSOR_PERIOD_S))
            times = np.arange(n_steps) * SENSOR_PERIOD_S
            ipc_grid, ceff_grid = self._multiplier_grid(times)
            return self._run_dense(times, dvfs_interval_s,
                                   ipc_grid, ceff_grid)
        stepper = self.stepper(duration_s, dvfs_interval_s)
        stepper.run_to_end()
        return stepper.trace()

    def stepper(self, duration_s: float,
                dvfs_interval_s: float) -> "SimulationStepper":
        """An incremental driver of the event loop (controller mode).

        Returns a :class:`SimulationStepper` positioned at t = 0.
        ``run(mode="event")`` is exactly ``stepper(...)`` advanced to
        the end, so stepped execution — however the advances are
        chunked — produces bitwise-identical traces and decisions.
        """
        if duration_s <= 0 or dvfs_interval_s <= 0:
            raise ValueError("duration and interval must be positive")
        return SimulationStepper(self, duration_s, dvfs_interval_s)

    # ------------------------------------------------------------------
    # Shared per-event logic
    # ------------------------------------------------------------------

    def _os_reschedule(self, t: float, assignment: Assignment,
                       dead_cores: Optional[Set[int]] = None,
                       ) -> Tuple[Assignment, Tuple[int, ...]]:
        """Run the OS policy; returns (assignment, migrated threads)."""
        new_assignment = self.policy.assign_with_profiling(
            self.chip, self.workload, self._policy_rng)
        if dead_cores:
            new_assignment, _ = self._remap_off_dead(new_assignment,
                                                     dead_cores)
        if new_assignment.core_of == assignment.core_of:
            return assignment, ()
        migrated = tuple(
            i for i, (a, b) in enumerate(zip(new_assignment.core_of,
                                             assignment.core_of))
            if a != b)
        return new_assignment, migrated

    def _remap_off_dead(self, assignment: Assignment,
                        dead_cores: Set[int],
                        ) -> Tuple[Assignment, Tuple[int, ...]]:
        """Evacuate threads from dead cores onto surviving spares.

        Each stranded thread moves to the fastest alive core not
        currently hosting a thread (deterministic, fmax-greedy — the
        same ranking VarF uses). With no spare left the thread stays
        put; the caller pins the dead core's V/f at the floor via its
        level cap, which is the best that can be done short of
        dropping the thread.
        """
        core_of = list(assignment.core_of)
        used = set(core_of)
        moved: List[int] = []
        for i, core in enumerate(core_of):
            if core not in dead_cores:
                continue
            spares = [c for c in range(self.chip.n_cores)
                      if c not in dead_cores and c not in used]
            if not spares:
                continue
            spare = max(spares,
                        key=lambda c: self.chip.cores[c].vf_table.fmax)
            used.discard(core)
            used.add(spare)
            core_of[i] = spare
            moved.append(i)
        if not moved:
            return assignment, ()
        return Assignment(tuple(core_of)), tuple(moved)

    def _clamp_levels(self, levels: List[int], assignment: Assignment,
                      fr: "_FaultRuntime",
                      watchdog: Optional["PowerWatchdog"],
                      ) -> List[int]:
        """Apply droop caps and watchdog emergency caps to levels."""
        if fr.core_caps:
            levels = [min(lv, fr.core_caps.get(c, lv))
                      for lv, c in zip(levels, assignment.core_of)]
        if watchdog is not None:
            levels = watchdog.clamp(levels)
        return levels

    # ------------------------------------------------------------------
    # Fault application (event mode only)
    # ------------------------------------------------------------------

    def _build_fault_runtime(self, times: np.ndarray) -> "_FaultRuntime":
        """Precompute the sample index at which each fault strikes."""
        fr = _FaultRuntime()
        if self.faults is None:
            return fr
        for event in self.faults:
            step = int(np.searchsorted(times, event.time_s - _TIME_EPS,
                                       side="left"))
            if step >= times.size:
                continue  # beyond the simulated horizon
            fr.events.append(event)
            fr.event_steps.append(step)
        return fr

    def _apply_fault(self, event: "FaultEvent", fr: "_FaultRuntime",
                     assignment: Assignment,
                     ) -> Tuple[Assignment, Tuple[int, ...], bool]:
        """Apply one fault event; returns (assignment, migrated, force).

        ``force`` requests an immediate manager re-decision (the
        operating point or thread map changed under the manager's
        feet).
        """
        from ..faults.schedule import (
            CORE_DROOP,
            CORE_OFFLINE,
            MANAGER_KINDS,
        )
        fr.applied.append(event)
        migrated: Tuple[int, ...] = ()
        force = False
        if event.kind.startswith("sensor"):
            self.sensor_bank.apply(event)
        elif event.kind == CORE_DROOP:
            top = self.chip.cores[event.target].vf_table.n_levels - 1
            current = fr.core_caps.get(event.target, top)
            fr.core_caps[event.target] = max(
                current - int(event.param), 0)
            force = event.target in assignment.core_of
        elif event.kind == CORE_OFFLINE:
            fr.dead_cores.add(event.target)
            # A dead core that cannot be evacuated is at least parked
            # at its V/f floor.
            fr.core_caps[event.target] = 0
            if event.target in assignment.core_of:
                assignment, migrated = self._remap_off_dead(
                    assignment, fr.dead_cores)
                force = True
        elif event.kind in MANAGER_KINDS:
            inject = getattr(self.manager, "inject_failure", None)
            if callable(inject):
                inject(event.kind)
            else:
                # A plain manager has no failure model: the invocation
                # is simply lost and the previous levels persist.
                fr.skip_next_manager = True
        return assignment, migrated, force

    # ------------------------------------------------------------------
    # Dense reference loop (per-sample re-evaluation)
    # ------------------------------------------------------------------

    def _run_dense(self, times: np.ndarray, dvfs_interval_s: float,
                   ipc_grid: np.ndarray, ceff_grid: np.ndarray,
                   ) -> SimulationTrace:
        """Per-millisecond reference loop.

        Semantically identical to the event-driven loop (same manager
        invocations, same evaluations at events) but re-solves the
        leakage-temperature fixed point at every sensor sample. Kept
        for validation and for the perf benchmark's baseline. Does not
        support the fault layer (``run`` rejects that combination).
        """
        n_steps = times.size
        p_target = self.env.p_target(self.assignment.n_threads,
                                     self.chip.n_cores)
        power = np.empty(n_steps)
        tput = np.empty(n_steps)
        wtput = np.empty(n_steps)
        manager_runs: List[float] = []
        transition_time = 0.0
        level_transitions = 0
        migrations = 0

        levels: Optional[List[int]] = None
        prev_levels: Optional[List[int]] = None
        state = None
        assignment = self.assignment
        next_manager_t = 0.0
        next_os_t = (self.os_interval_s
                     if self.os_interval_s is not None else None)
        for step in range(n_steps):
            t = times[step]
            ipc_mult = ipc_grid[step]
            ceff_mult = ceff_grid[step]
            migrated: Tuple[int, ...] = ()
            if next_os_t is not None and t >= next_os_t - _TIME_EPS:
                assignment, migrated = self._os_reschedule(t, assignment)
                if migrated:
                    migrations += len(migrated)
                    levels = None
                    next_manager_t = t
                next_os_t += self.os_interval_s
            stepped: Optional[List[int]] = None
            if t >= next_manager_t - _TIME_EPS:
                kwargs = dict(ipc_multipliers=ipc_mult,
                              ceff_multipliers=ceff_mult)
                if levels is not None:
                    kwargs.update(initial_levels=levels,
                                  initial_state=state)
                result = self.manager.set_levels(
                    self.chip, self.workload, assignment, self.env,
                    **kwargs)
                new_levels = list(result.levels)
                if prev_levels is not None:
                    stepped = self._transition_steps(prev_levels,
                                                     new_levels, migrated)
                    n_stepped = sum(stepped)
                    level_transitions += n_stepped
                    transition_time += (
                        n_stepped * self.transition_latency_s)
                    if n_stepped == 0:
                        stepped = None
                levels = new_levels
                prev_levels = list(new_levels)
                manager_runs.append(t)
                next_manager_t += dvfs_interval_s
            state = evaluate_levels(self.chip, self.workload,
                                    assignment, levels,
                                    ipc_multipliers=ipc_mult,
                                    ceff_multipliers=ceff_mult)
            power[step] = state.total_power
            tput[step] = state.throughput_mips
            wtput[step] = state.weighted_throughput(self.workload)
            if stepped is not None and self.transition_latency_s > 0:
                tput[step], wtput[step] = self._lossy_sample(state, stepped)
        return SimulationTrace(
            times_s=times,
            power_w=power,
            p_target_w=p_target,
            throughput_mips=tput,
            weighted_throughput=wtput,
            manager_runs=manager_runs,
            transition_time_s=transition_time,
            migrations=migrations,
            level_transitions=level_transitions,
        )


class SimulationStepper:
    """Incremental, controller-stepped driver of the event loop.

    Owns the entire mutable state of one event-driven run of an
    :class:`OnlineSimulation` and exposes it one *span* at a time: a
    span is the stretch between two consecutive events (phase
    boundary, manager timer, OS timer, fault strike, watchdog
    emergency) during which the operating point is constant.
    ``run(mode="event")`` simply advances a stepper to the end, so a
    run is bitwise-identical no matter how the advances are chunked —
    the property the power-management daemon's per-tenant isolation
    tests pin.

    Every actuation the run takes is appended to :attr:`decisions`
    (see :class:`ManagerDecision`); an external controller forwards
    those upstream as its V/f-plan stream.
    """

    def __init__(self, sim: OnlineSimulation, duration_s: float,
                 dvfs_interval_s: float) -> None:
        if duration_s <= 0 or dvfs_interval_s <= 0:
            raise ValueError("duration and interval must be positive")
        self.sim = sim
        self.duration_s = float(duration_s)
        self.dvfs_interval_s = float(dvfs_interval_s)
        n_steps = int(round(duration_s / SENSOR_PERIOD_S))
        self._n_steps = n_steps
        self.times = np.arange(n_steps) * SENSOR_PERIOD_S
        self._ipc_grid, self._ceff_grid = sim._multiplier_grid(
            self.times)
        self._p_target = sim.env.p_target(sim.assignment.n_threads,
                                          sim.chip.n_cores)
        self._power = np.empty(n_steps)
        self._tput = np.empty(n_steps)
        self._wtput = np.empty(n_steps)
        self._manager_runs: List[float] = []
        self._transition_time = 0.0
        self._level_transitions = 0
        self._migrations = 0
        self._fallback_activations = 0
        self._fallback_times: List[float] = []
        self._tier_transitions: List[Tuple[float, int]] = []
        self._last_tier = 0
        self._lp_fallbacks = 0
        self._lp_fallback_times: List[float] = []
        #: Actuation decisions taken so far, in time order.
        self.decisions: List[ManagerDecision] = []

        self._bank = sim.sensor_bank
        self._watchdog = sim.watchdog
        self._sensed: Optional[np.ndarray] = None
        if self._bank is not None or self._watchdog is not None:
            self._sensed = np.empty(n_steps)
        if self._watchdog is not None:
            self._watchdog.reset(sim.assignment.n_threads)
        self._fr = sim._build_fault_runtime(self.times)

        # Steps at which any application's multipliers change.
        changed = np.zeros(n_steps, dtype=bool)
        changed[1:] = np.any(
            (self._ipc_grid[1:] != self._ipc_grid[:-1])
            | (self._ceff_grid[1:] != self._ceff_grid[:-1]), axis=1)
        self._changed = changed
        self._change_steps = np.flatnonzero(changed)

        self._levels: Optional[List[int]] = None
        self._prev_levels: Optional[List[int]] = None
        self._state = None
        self._assignment = sim.assignment
        self._next_manager_t = 0.0
        self._next_os_t = (sim.os_interval_s
                           if sim.os_interval_s is not None else None)
        self._pending_lossy: Optional[List[int]] = None
        self._step = 0

    # -- Progress -----------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether every sensor sample has been produced."""
        return self._step >= self._n_steps

    @property
    def applied_faults(self) -> Tuple["FaultEvent", ...]:
        """Fault events applied so far, in application order."""
        return tuple(self._fr.applied)

    @property
    def time_s(self) -> float:
        """Simulated time of the next unprocessed sensor sample."""
        if self.finished:
            return self.duration_s
        return float(self.times[self._step])

    def advance_until(self, time_s: float) -> List[ManagerDecision]:
        """Process every sensor sample strictly before ``time_s``.

        Advancement is span-at-a-time, so the stepper may land
        slightly past ``time_s`` (at the next event boundary); the
        produced trace is unaffected by how calls are chunked.

        Returns:
            The decisions taken during this call, in time order.
        """
        first = len(self.decisions)
        while (self._step < self._n_steps
               and self.times[self._step] < time_s - _TIME_EPS):
            self._advance_span()
        return list(self.decisions[first:])

    def run_to_end(self) -> List[ManagerDecision]:
        """Advance to the end of the run; returns the new decisions."""
        first = len(self.decisions)
        while self._step < self._n_steps:
            self._advance_span()
        return list(self.decisions[first:])

    def decision_digest(self) -> str:
        """sha256 over the decision stream taken so far.

        The replay-determinism hook: two steppers that executed the
        same run — no matter how the advances were chunked, or
        whether one of them was rebuilt by the daemon's crash
        recovery — produce the same digest, and any divergence
        (reordered, dropped or altered actuation) changes it. Floats
        are hashed via ``repr``, which round-trips IEEE-754 doubles
        exactly, so the comparison is bitwise, not approximate.
        """
        h = hashlib.sha256(b"decision-stream-v1\n")
        for d in self.decisions:
            h.update((f"{d.time_s!r}|{d.kind}|{list(d.levels)!r}|"
                      f"{list(d.core_of)!r}|{list(d.migrated)!r}|"
                      f"{d.resilience_tier}|{d.lp_fallbacks}|"
                      f"{d.evaluations}\n").encode("utf-8"))
        return h.hexdigest()

    # -- The event loop body ------------------------------------------

    def _next_timer_step(self, target_t: float, step: int) -> int:
        """First sample index after ``step`` whose time reaches
        ``target_t`` (a timer fires at most once per sample)."""
        s = int(np.searchsorted(self.times, target_t - _TIME_EPS,
                                side="left"))
        return min(max(s, step + 1), self._n_steps)

    def _advance_span(self) -> None:
        """Execute one event-to-event span of the run."""
        sim = self.sim
        fr = self._fr
        watchdog = self._watchdog
        bank = self._bank
        step = self._step
        t = self.times[step]
        ipc_mult = self._ipc_grid[step]
        ceff_mult = self._ceff_grid[step]
        migrated: Tuple[int, ...] = ()
        # --- Apply fault events due at this sample. ---
        while (fr.next_event < len(fr.events)
               and fr.event_steps[fr.next_event] <= step):
            event = fr.events[fr.next_event]
            fr.next_event += 1
            self._assignment, moved, force = sim._apply_fault(
                event, fr, self._assignment)
            if moved:
                self._migrations += len(moved)
                migrated = migrated + moved
            if force:
                # Operating point or map changed under the
                # manager: re-decide now, cold-started.
                self._levels = None
                self._state = None
                self._next_manager_t = t
        if (self._next_os_t is not None
                and t >= self._next_os_t - _TIME_EPS):
            self._assignment, moved = sim._os_reschedule(
                t, self._assignment, fr.dead_cores)
            if moved:
                self._migrations += len(moved)
                migrated = migrated + moved
                # Force a fresh manager decision for the new map.
                self._levels = None
                self._next_manager_t = t
            self._next_os_t += sim.os_interval_s
        stepped: Optional[List[int]] = None
        if t >= self._next_manager_t - _TIME_EPS:
            if fr.skip_next_manager:
                # Injected manager fault on a chain-less manager:
                # the decision is lost, previous levels persist.
                fr.skip_next_manager = False
                if self._levels is None:
                    levels = sim._thread_tops(self._assignment)
                    self._levels = sim._clamp_levels(
                        levels, self._assignment, fr, watchdog)
                    self._prev_levels = list(self._levels)
                    self._state = None
                self._next_manager_t += self.dvfs_interval_s
            else:
                kwargs = dict(ipc_multipliers=ipc_mult,
                              ceff_multipliers=ceff_mult)
                if self._levels is not None:
                    # Warm start from the current operating point.
                    kwargs.update(initial_levels=self._levels,
                                  initial_state=self._state)
                result = sim.manager.set_levels(
                    sim.chip, sim.workload, self._assignment, sim.env,
                    **kwargs)
                tier = int(result.stats.get("resilience_tier", 0.0))
                lp_fb = int(result.stats.get("lp_fallbacks", 0.0))
                if tier > 0:
                    self._fallback_activations += 1
                    self._fallback_times.append(float(t))
                if tier != self._last_tier:
                    self._tier_transitions.append((float(t), tier))
                    self._last_tier = tier
                if lp_fb > 0:
                    self._lp_fallbacks += lp_fb
                    self._lp_fallback_times.append(float(t))
                new_levels = list(result.levels)
                if sim._faulty:
                    if watchdog is not None:
                        watchdog.on_manager_invocation(
                            sim._thread_tops(self._assignment))
                    new_levels = sim._clamp_levels(
                        new_levels, self._assignment, fr, watchdog)
                if self._prev_levels is not None:
                    stepped = sim._transition_steps(self._prev_levels,
                                                    new_levels,
                                                    migrated)
                    n_stepped = sum(stepped)
                    self._level_transitions += n_stepped
                    self._transition_time += (
                        n_stepped * sim.transition_latency_s)
                    if n_stepped == 0:
                        stepped = None
                self._levels = new_levels
                self._prev_levels = list(new_levels)
                self._manager_runs.append(t)
                self._next_manager_t += self.dvfs_interval_s
                self._state = None  # operating point changed
                self.decisions.append(ManagerDecision(
                    time_s=float(t), kind=DECISION_MANAGER,
                    levels=tuple(new_levels),
                    core_of=tuple(self._assignment.core_of),
                    migrated=tuple(migrated),
                    resilience_tier=tier, lp_fallbacks=lp_fb,
                    evaluations=int(result.evaluations)))
        if self._state is None or self._changed[step]:
            self._state = evaluate_levels(
                sim.chip, sim.workload, self._assignment, self._levels,
                ipc_multipliers=ipc_mult, ceff_multipliers=ceff_mult)
        state = self._state
        # The state is constant until the next event: fill the
        # sensor samples directly from the cached evaluation.
        nxt = self._n_steps
        j = int(np.searchsorted(self._change_steps, step,
                                side="right"))
        if j < self._change_steps.size:
            nxt = min(nxt, int(self._change_steps[j]))
        nxt = min(nxt, self._next_timer_step(self._next_manager_t,
                                             step))
        if self._next_os_t is not None:
            nxt = min(nxt, self._next_timer_step(self._next_os_t,
                                                 step))
        if fr.next_event < len(fr.events):
            nxt = min(nxt, max(fr.event_steps[fr.next_event],
                               step + 1))
        self._power[step:nxt] = state.total_power
        self._tput[step:nxt] = state.throughput_mips
        self._wtput[step:nxt] = state.weighted_throughput(sim.workload)
        if self._pending_lossy is not None:
            if stepped is None:
                stepped = self._pending_lossy
            else:
                stepped = [a + b for a, b in zip(stepped,
                                                 self._pending_lossy)]
            self._pending_lossy = None
        if stepped is not None and sim.transition_latency_s > 0:
            self._tput[step], self._wtput[step] = sim._lossy_sample(
                state, stepped)
        # --- Sensor sampling and watchdog over the span. ---
        if self._sensed is not None:
            s = step
            while s < nxt:
                if bank is not None:
                    bank.advance(self.times[s])
                    view = bank.read_chip(self._assignment.core_of,
                                          state.core_power,
                                          state.l2_power)
                else:
                    view = state.total_power
                self._sensed[s] = view
                if (watchdog is not None and self._levels is not None
                        and watchdog.observe(self.times[s], view,
                                             self._p_target)):
                    new_levels, victim = (
                        watchdog.emergency_step_down(self._levels))
                    if victim >= 0:
                        em = [abs(a - b) for a, b in
                              zip(self._levels, new_levels)]
                        n_em = sum(em)
                        self._level_transitions += n_em
                        self._transition_time += (
                            n_em * sim.transition_latency_s)
                        self._levels = new_levels
                        self._prev_levels = list(new_levels)
                        self._pending_lossy = em
                        self._state = None
                        self.decisions.append(ManagerDecision(
                            time_s=float(self.times[s]),
                            kind=DECISION_EMERGENCY,
                            levels=tuple(new_levels),
                            core_of=tuple(self._assignment.core_of),
                            resilience_tier=self._last_tier))
                        nxt = s + 1
                        break
                s += 1
        self._step = nxt

    # -- Results ------------------------------------------------------

    def trace(self) -> SimulationTrace:
        """The completed run's trace (requires :attr:`finished`)."""
        if not self.finished:
            raise RuntimeError(
                "run not finished; advance to the end before asking "
                "for the trace")
        watchdog = self._watchdog
        return SimulationTrace(
            times_s=self.times,
            power_w=self._power,
            p_target_w=self._p_target,
            throughput_mips=self._tput,
            weighted_throughput=self._wtput,
            manager_runs=self._manager_runs,
            transition_time_s=self._transition_time,
            migrations=self._migrations,
            level_transitions=self._level_transitions,
            sensed_power_w=self._sensed,
            watchdog_triggers=(tuple(watchdog.triggers)
                               if watchdog is not None else ()),
            fault_events=tuple(self._fr.applied),
            fallback_activations=self._fallback_activations,
            fallback_times_s=tuple(self._fallback_times),
            tier_transitions=tuple(self._tier_transitions),
            lp_fallbacks=self._lp_fallbacks,
            lp_fallback_times_s=tuple(self._lp_fallback_times),
        )
