"""Batched, vectorized evaluation kernel for the PM search loops.

Every power-management policy in the repro — SAnn's annealing probes
and quench sweeps, ExhaustiveSearch's combination enumeration,
LinOpt's correction/refill trials, Foxton*'s victim descent — funnels
through system evaluations of candidate DVFS operating points, and
the serial path (:func:`repro.runtime.evaluation.evaluate_levels`)
runs a Python per-core leakage loop inside the damped thermal fixed
point for every single candidate. That per-candidate Python overhead,
not the floating-point math, is the wall-clock bottleneck of the
SAnn/exhaustive validation runs (the paper's Table 4 gap).

:class:`EvalKernel` is precomputed once per (chip, workload,
assignment, phase multipliers): it packs the per-core V/f tables and
the per-level IPC / dynamic-power values into contiguous arrays,
holds direct references to every core's leakage cell state, and
evaluates ``B`` candidate operating points simultaneously — the
leakage-temperature fixed point runs in lockstep across candidates
with per-column convergence masks, so each candidate sees exactly the
serial iteration schedule and the results are **bitwise identical**
to the serial loop (tests/test_kernel.py property-tests this).

Bitwise equality is engineered, not hoped for:

* elementwise work is broadcast through the *same* expression trees
  the serial path uses (:func:`repro.power.leakage.leakage_factor` is
  called directly with column-shaped operands — IEEE elementwise ops
  are value-deterministic under broadcasting);
* reductions whose summation order is implementation-defined (the
  per-core ``weights @ factors`` dot, the per-L2-block ``np.mean``,
  the LU triangular solves) are kept in exactly the serial form, one
  contiguous-row call per candidate — BLAS ``dgemv`` and LAPACK
  multi-RHS ``getrs`` produce different per-column rounding than
  their single-vector counterparts, so they are deliberately avoided
  (see DESIGN.md §13);
* converged candidates are frozen and compacted out of the working
  set, so a candidate's iterate sequence never depends on its batch
  neighbours.

The kernel reports into the process-global
:data:`repro.runtime.evaluation.EVALUATION_COUNTER` (every candidate
counts as one full evaluation) and into a per-instance
:class:`KernelStats` that policies surface through
``PmResult.stats`` and the BENCH_*.json emitters.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..chip import ChipProfile
from ..config import BOLTZMANN_EV, T_REF_K
from ..power.leakage import DIBL_COEFF, subthreshold_slope_factor
from ..power.scaling import L2_DYNAMIC_FRACTION, L2_VDD
from ..thermal.hotspot import (
    DAMPING,
    DEFAULT_TOLERANCE_K,
    MAX_ITERATIONS,
    RUNAWAY_TEMP_K,
    ThermalRunawayError,
)
from ..workloads import Workload
from .evaluation import EVALUATION_COUNTER, Assignment, SystemState

# Rows per internal fixed-point chunk: keeps the (rows, total_cells)
# working matrices inside the L2 cache (16 x ~2.5k cells x 8 B = 320 kB
# per matrix). Purely an execution-shaping knob — results are
# independent of it.
_CHUNK_ROWS = 16


def _scalar_pow_prefactor(temps_cols: np.ndarray,
                          vdd_cols: np.ndarray) -> np.ndarray:
    """Per-(row, occupied block) scalar leakage prefactor.

    ``vdd * (t / Tref) ** 2`` computed with the serial path's *scalar*
    semantics: the square goes through libm ``pow()`` (what a 0-d
    ``** 2`` resolves to), which differs from every numpy array square
    by 1 ulp for rare inputs — the one place scalar and array float
    paths genuinely diverge. The division and multiply are
    single-rounded IEEE ops, identical either way, so only the ``pow``
    needs the scalar loop — a few dozen scalars per row, not one per
    cell. Shared by the candidate-batched and die-batched kernels.
    """
    ratio = temps_cols / T_REF_K
    sq = np.array([math.pow(x, 2.0) for x in ratio.ravel().tolist()])
    return vdd_cols * sq.reshape(ratio.shape)


def _leakage_factors_inplace(vth: np.ndarray, t: np.ndarray,
                             dib: np.ndarray, pref: np.ndarray,
                             tmp: np.ndarray, n_slope: float,
                             vth_temp_coeff: float) -> np.ndarray:
    """Leakage factor over a row x cell matrix, in place.

    Evaluates the exact expression tree of
    :func:`repro.power.leakage.leakage_factor` — same operations, same
    associativity, constants hoisted by the caller — as a chain of
    in-place ufuncs over preallocated scratch (``tmp``); ``t`` is
    destroyed, ``dib`` is the hoisted DIBL term
    ``DIBL_COEFF * (vdd - vdd_nominal)`` and ``pref`` the per-cell
    gather of :func:`_scalar_pow_prefactor`. The only deviations from
    the source expression are commuted multiplication/addition
    operands, which IEEE-754 guarantees bit-identical, so entry
    ``[b, c]`` is bit-for-bit the serial scalar result for row ``b``
    (property-tested in tests/test_kernel.py and tests/test_fleet.py).
    ``vth`` may be one shared cell row (candidate batching) or one row
    per die (fleet batching) — broadcasting is value-deterministic
    either way. Returns ``tmp``.
    """
    np.subtract(t, T_REF_K, out=tmp)
    np.multiply(tmp, vth_temp_coeff, out=tmp)
    np.add(tmp, vth, out=tmp)
    np.subtract(tmp, dib, out=tmp)          # tmp = vth_eff
    np.multiply(t, BOLTZMANN_EV, out=t)
    np.multiply(t, n_slope, out=t)          # t = n_slope * v_t
    np.negative(tmp, out=tmp)
    np.divide(tmp, t, out=tmp)
    np.exp(tmp, out=tmp)
    np.multiply(tmp, pref, out=tmp)
    return tmp


class KernelStats:
    """Per-kernel observability counters.

    Mirrors the process-global counter for one kernel instance so a
    policy can report exactly the work *it* did. All quantities are
    cumulative over the kernel's lifetime.
    """

    __slots__ = ("evaluations", "batch_calls", "fixed_point_iterations",
                 "wall_s", "batch_size_hist")

    def __init__(self) -> None:
        self.evaluations = 0
        self.batch_calls = 0
        self.fixed_point_iterations = 0
        self.wall_s = 0.0
        self.batch_size_hist: Dict[int, int] = {}

    def record(self, batch_size: int, iterations: int,
               wall_s: float) -> None:
        self.evaluations += batch_size
        self.batch_calls += 1
        self.fixed_point_iterations += iterations
        self.wall_s += wall_s
        self.batch_size_hist[batch_size] = (
            self.batch_size_hist.get(batch_size, 0) + 1)

    @property
    def max_batch(self) -> int:
        return max(self.batch_size_hist) if self.batch_size_hist else 0

    def as_result_stats(self) -> Dict[str, float]:
        """Scalar view merged into ``PmResult.stats`` (floats only)."""
        mean_batch = (self.evaluations / self.batch_calls
                      if self.batch_calls else 0.0)
        return {
            "kernel_evaluations": float(self.evaluations),
            "kernel_batches": float(self.batch_calls),
            "kernel_batch_max": float(self.max_batch),
            "kernel_batch_mean": float(mean_batch),
            "kernel_fp_iterations": float(self.fixed_point_iterations),
            "kernel_wall_s": float(self.wall_s),
        }


class EvalKernel:
    """Batched system evaluation for one (chip, workload, assignment).

    Precomputes everything that does not depend on the candidate
    levels — per-level voltages/frequencies/IPCs/dynamic powers, the
    L2 area-share vector, leakage cell state references — then
    :meth:`evaluate_levels_batch` evaluates a whole matrix of level
    candidates with the per-candidate Python overhead amortised over
    the batch.

    Args:
        chip: Characterised die.
        workload: The threads (``workload[i]`` runs on
            ``assignment.core_of[i]``).
        assignment: Thread-to-core mapping.
        ipc_multipliers: Optional per-thread phase IPC multipliers.
        ceff_multipliers: Optional per-thread phase power multipliers.
    """

    def __init__(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        ipc_multipliers: Optional[Sequence[float]] = None,
        ceff_multipliers: Optional[Sequence[float]] = None,
    ) -> None:
        n = assignment.n_threads
        if workload.n_threads != n:
            raise ValueError("workload and assignment sizes differ")
        if max(assignment.core_of) >= chip.n_cores:
            raise ValueError("assignment references a core beyond the die")
        ipc_mult = (np.ones(n) if ipc_multipliers is None
                    else np.asarray(ipc_multipliers, dtype=float))
        ceff_mult = (np.ones(n) if ceff_multipliers is None
                     else np.asarray(ceff_multipliers, dtype=float))
        if ipc_mult.shape != (n,) or ceff_mult.shape != (n,):
            raise ValueError("need one multiplier per thread")

        self.chip = chip
        self.workload = workload
        self.assignment = assignment
        self.stats = KernelStats()
        self._tech = chip.tech
        self._thermal = chip.thermal
        self._n = n
        self._core_of = np.asarray(assignment.core_of, dtype=int)
        self._n_cores = chip.n_cores
        self._n_blocks = chip.thermal.n_blocks

        # Per-thread, per-level lookup tables. Each entry is computed
        # with the exact scalar expression the serial path uses, so a
        # table lookup is bit-for-bit the serial computation.
        self._n_levels = np.array(
            [chip.cores[c].vf_table.n_levels for c in assignment.core_of])
        max_levels = int(self._n_levels.max())
        self._volts_tab = np.zeros((n, max_levels))
        self._freqs_tab = np.zeros((n, max_levels))
        self._ipc_tab = np.zeros((n, max_levels))
        self._dyn_tab = np.zeros((n, max_levels))
        for i, core in enumerate(assignment.core_of):
            table = chip.cores[core].vf_table
            for lv in range(table.n_levels):
                v = table.voltages[lv]
                f = table.freqs[lv]
                self._volts_tab[i, lv] = v
                self._freqs_tab[i, lv] = f
                self._ipc_tab[i, lv] = workload[i].ipc_at(f) * ipc_mult[i]
                self._dyn_tab[i, lv] = (workload[i].ceff * ceff_mult[i]
                                        * v ** 2 * f)

        # Leakage state: (vth cells, normalised weights, calibration)
        # per active thread, plus the shared L2's per-block state.
        self._leak_cells = [chip.cores[c].leakage.cell_vth
                            for c in assignment.core_of]
        self._leak_weights = [chip.cores[c].leakage.cell_weights
                              for c in assignment.core_of]
        self._leak_calib = [chip.cores[c].leakage.calibration
                            for c in assignment.core_of]
        l2 = chip.l2_leakage
        self._l2_vth = l2.block_vth
        self._l2_share = l2.block_share
        self._l2_calib = l2.calibration
        if len(self._l2_vth) != self._n_blocks - self._n_cores:
            raise ValueError("L2 leakage blocks do not match the "
                             "thermal network")
        self._l2_dyn_share = chip.floorplan.l2_area_share

        # Constants of the leakage-factor expression, hoisted so the
        # inner loop can evaluate the *identical* expression tree as
        # :func:`repro.power.leakage.leakage_factor` without its
        # per-call validation/dispatch overhead (the single hottest
        # cost of the serial path). tests/test_kernel.py property-tests
        # that this mirror stays bitwise-faithful to the original.
        self._n_slope = subthreshold_slope_factor(chip.tech)
        self._vth_temp_coeff = chip.tech.vth_temp_coeff
        self._vdd_nominal = chip.tech.vdd_nominal

        # Concatenated cell row: every leakage cell of every active
        # core and every L2 block, packed into one contiguous vector so
        # each fixed-point iteration runs ONE broadcast expression over
        # a (B, total_cells) matrix instead of one per block — ufunc
        # dispatch, not floating-point math, dominates small batches.
        # ``_cell_vsrc`` maps each cell to its supply column (thread
        # index, or the appended L2_VDD column) and ``_cell_block`` to
        # its thermal block, so per-cell (vdd, T) operand matrices are
        # single gathers. Reductions never cross segment boundaries:
        # each thread/block reduces its own contiguous slice, which is
        # bitwise-identical to reducing a standalone row.
        parts = list(self._leak_cells) + list(self._l2_vth)
        sizes = [p.size for p in parts]
        bounds = np.concatenate([[0], np.cumsum(sizes)]).astype(int)
        self._cells_row = np.concatenate(parts)
        n_cells = self._cells_row.size
        self._core_segs = [(int(bounds[i]), int(bounds[i + 1]))
                           for i in range(n)]
        self._l2_segs = [(int(bounds[n + j]), int(bounds[n + j + 1]))
                         for j in range(len(self._l2_vth))]
        self._n_core_cells = int(bounds[n])
        cell_vsrc = np.empty(n_cells, dtype=int)
        cell_block = np.empty(n_cells, dtype=int)
        for i, (s0, s1) in enumerate(self._core_segs):
            cell_vsrc[s0:s1] = i
            cell_block[s0:s1] = assignment.core_of[i]
        for j, (s0, s1) in enumerate(self._l2_segs):
            cell_vsrc[s0:s1] = n
            cell_block[s0:s1] = self._n_cores + j
        self._cell_block = cell_block

        # The leakage prefactor ``vdd * (t / Tref) ** 2`` is shared by
        # every cell of a block, and the serial path computes it with
        # *scalar* semantics: a 0-d ``t / Tref`` yields an np.float64
        # whose ``** 2`` goes through libm ``pow()``, which disagrees
        # with the array paths (``x ** 2`` / ``np.square`` / ``x * x``
        # — all the correctly-rounded product) by 1 ulp for ~0.1% of
        # inputs. The kernel therefore computes one scalar prefactor
        # per (candidate, occupied block) via ``math.pow`` — bitwise
        # the same libm call — and gathers it per cell. ``_pow_cols``
        # lists the occupied thermal blocks, ``_cell_powcol`` maps each
        # cell to its column in that compact matrix, ``_powcol_vsrc``
        # maps each column to its supply (thread index, or the appended
        # L2_VDD column).
        used = sorted(set(cell_block.tolist()))
        self._pow_cols = np.array(used, dtype=int)
        col_of = {blk: k for k, blk in enumerate(used)}
        self._cell_powcol = np.array(
            [col_of[blk] for blk in cell_block.tolist()], dtype=int)
        powcol_vsrc = np.empty(len(used), dtype=int)
        for c in range(n_cells):
            powcol_vsrc[self._cell_powcol[c]] = cell_vsrc[c]
        self._powcol_vsrc = powcol_vsrc

    # ------------------------------------------------------------------
    def evaluate_levels(self, levels: Sequence[int]) -> SystemState:
        """Single-candidate convenience wrapper (batch of one)."""
        return self.evaluate_levels_batch([list(levels)])[0]

    def evaluate_levels_batch(
        self, levels_matrix: Sequence[Sequence[int]],
        errors: str = "raise",
    ) -> List[SystemState]:
        """Evaluate ``B`` candidate level vectors in one pass.

        Args:
            levels_matrix: ``(B, n_threads)`` integer array-like; row
                ``b`` is one candidate assignment of per-thread DVFS
                levels.
            errors: ``"raise"`` (default) re-raises the exception of
                the lowest-index failing row — exactly what a serial
                in-order scan of the rows would raise first (all the
                fixed-point error messages are static, so which row
                trips first inside the lockstep iteration cannot leak
                into the raised error). ``"isolate"`` instead returns
                the exception *object* in that row's slot, so
                speculative callers can batch candidates a serial
                search might never have evaluated without a divergent
                speculation aborting the real ones.

        Returns:
            One converged :class:`SystemState` per row, in row order —
            element ``b`` is bitwise-identical to
            ``evaluate_levels(chip, workload, assignment,
            levels_matrix[b])`` (including, under ``"isolate"``, which
            rows raise and with what message).
        """
        if errors not in ("raise", "isolate"):
            raise ValueError("errors must be 'raise' or 'isolate'")
        start = time.perf_counter()
        levels = np.asarray(levels_matrix, dtype=int)
        if levels.ndim == 1:
            levels = levels[None, :]
        if levels.ndim != 2 or (levels.size and levels.shape[1] != self._n):
            raise ValueError("need one level per thread")
        n_rows = levels.shape[0]
        if n_rows == 0:
            return []
        bad = (levels < 0) | (levels >= self._n_levels[None, :])
        if bad.any():
            b, i = np.argwhere(bad)[0]
            raise ValueError(
                f"level {levels[b, i]} out of range for core "
                f"{self._core_of[i]}")

        # Past ~16 candidates the (rows, total_cells) working matrices
        # outgrow the L2 cache and per-candidate cost climbs ~60%, so
        # oversized batches are processed in cache-sized chunks.
        # Candidates are fully independent (each runs its own serial
        # iteration schedule), so chunking cannot change any result.
        out: List[SystemState] = []
        total_iters = 0
        for c0 in range(0, n_rows, _CHUNK_ROWS):
            states, iters = self._eval_rows(levels[c0:c0 + _CHUNK_ROWS])
            out.extend(states)
            total_iters += iters

        wall = time.perf_counter() - start
        self.stats.record(n_rows, total_iters, wall)
        EVALUATION_COUNTER.record_batch(n_rows, total_iters, wall)
        if errors == "raise":
            for item in out:
                if isinstance(item, Exception):
                    raise item
        return out

    def _eval_rows(self, levels: np.ndarray):
        """Evaluate one cache-sized chunk of validated level rows."""
        n_rows = levels.shape[0]
        thread_ix = np.arange(self._n)[None, :]
        volts = self._volts_tab[thread_ix, levels]
        freqs = self._freqs_tab[thread_ix, levels]
        ipcs = self._ipc_tab[thread_ix, levels]
        core_dyn = self._dyn_tab[thread_ix, levels]

        block_dyn = np.zeros((n_rows, self._n_blocks))
        block_dyn[:, self._core_of] = core_dyn
        l2_dyn_total = L2_DYNAMIC_FRACTION * core_dyn.sum(axis=1)
        block_dyn[:, self._n_cores:] = (l2_dyn_total[:, None]
                                        * self._l2_dyn_share[None, :])

        # np.take (not fancy indexing) so the per-cell operand matrices
        # are C-contiguous: fancy indexing along axis 1 returns
        # Fortran-ordered results, which would propagate to the factor
        # matrix and silently flip the row reductions from contiguous
        # BLAS ddot to strided ddot — a *different* summation order.
        volts_ext = np.concatenate(
            [volts, np.full((n_rows, 1), L2_VDD)], axis=1)
        vdd_cols = np.take(volts_ext, self._powcol_vsrc, axis=1)
        # The DIBL term only depends on the candidate's supplies, not
        # on temperature — hoist it out of the fixed-point iterations
        # (computed per block, then gathered per cell; exact ops, so
        # identical to the serial per-cell broadcast).
        dib_cols = DIBL_COEFF * (vdd_cols - self._vdd_nominal)
        dib_full = np.take(dib_cols, self._cell_powcol, axis=1)
        temps, powers, iters, row_errors = self._fixed_point(
            block_dyn, vdd_cols, dib_full)
        # Failed rows hold uninitialised temperatures; park them at the
        # ambient so the shared final recompute stays well-defined (the
        # garbage results are replaced by the exception objects below,
        # and every surviving row is untouched — candidates are
        # independent).
        for b, err in enumerate(row_errors):
            if err is not None:
                temps[b] = self._thermal.ambient_k

        if np.any(temps <= 0):
            raise ValueError("temperature must be positive kelvin")
        dot = np.dot
        cc = self._n_core_cells
        pref_cols = self._pref_cols(
            np.take(temps, self._pow_cols, axis=1), vdd_cols)
        pref = np.take(pref_cols, self._cell_powcol[:cc], axis=1)
        tgat = np.take(temps, self._cell_block[:cc], axis=1)
        factors = self._factors(self._cells_row[:cc], tgat,
                                dib_full[:, :cc], pref,
                                np.empty_like(tgat))
        core_leak = np.empty((n_rows, self._n))
        for i in range(self._n):
            s0, s1 = self._core_segs[i]
            weights = self._leak_weights[i]
            vals = np.empty(n_rows)
            for b in range(n_rows):
                vals[b] = dot(weights, factors[b, s0:s1])
            core_leak[:, i] = self._leak_calib[i] * vals

        out: List = []
        for b in range(n_rows):
            if row_errors[b] is not None:
                out.append(row_errors[b])
                continue
            l2_power = float(powers[b, self._n_cores:].sum())
            total = float(core_dyn[b].sum() + core_leak[b].sum()) + l2_power
            out.append(SystemState(
                voltages=volts[b].copy(),
                freqs=freqs[b].copy(),
                ipcs=ipcs[b].copy(),
                core_dynamic=core_dyn[b].copy(),
                core_leakage=core_leak[b].copy(),
                block_temps=temps[b].copy(),
                l2_power=l2_power,
                total_power=total,
            ))
        return out, int(iters.sum())

    # ------------------------------------------------------------------
    def _pref_cols(self, temps_cols: np.ndarray,
                   vdd_cols: np.ndarray) -> np.ndarray:
        """Per-(candidate, occupied block) scalar leakage prefactor.

        ``vdd * (t / Tref) ** 2`` computed with the serial path's
        *scalar* semantics: the square goes through libm ``pow()``
        (what a 0-d ``** 2`` resolves to), which differs from every
        numpy array square by 1 ulp for rare inputs — the one place
        scalar and array float paths genuinely diverge. The division
        and multiply are single-rounded IEEE ops, identical either
        way, so only the ``pow`` needs the scalar loop — a few dozen
        scalars per candidate, not one per cell.
        """
        return _scalar_pow_prefactor(temps_cols, vdd_cols)

    def _factors(self, vth: np.ndarray, t: np.ndarray, dib: np.ndarray,
                 pref: np.ndarray, tmp: np.ndarray) -> np.ndarray:
        """Leakage factor over a candidate x cell matrix, in place.

        Evaluates the exact expression tree of
        :func:`repro.power.leakage.leakage_factor` — same operations,
        same associativity, constants hoisted at construction — as a
        chain of in-place ufuncs over preallocated ``(A, cells)``
        scratch (``tmp``); ``t`` is destroyed, ``dib`` is the hoisted
        DIBL term ``DIBL_COEFF * (vdd - vdd_nominal)`` and ``pref``
        the per-cell gather of :meth:`_pref_cols`. The only
        deviations from the source expression are commuted
        multiplication/addition operands, which IEEE-754 guarantees
        bit-identical, so entry ``[b, c]`` is bit-for-bit the serial
        scalar result for candidate ``b`` (property-tested in
        tests/test_kernel.py). Returns ``tmp``.
        """
        return _leakage_factors_inplace(vth, t, dib, pref, tmp,
                                        self._n_slope,
                                        self._vth_temp_coeff)

    def _leakage_matrix(self, temps: np.ndarray, vdd_cols: np.ndarray,
                        dib: np.ndarray, tgat: np.ndarray,
                        tmp: np.ndarray, pref: np.ndarray) -> np.ndarray:
        """Per-candidate per-block leakage power (bitwise-serial).

        The elementwise leakage factor is evaluated in ONE broadcast
        :meth:`_factors` call over the whole ``(active, total_cells)``
        packed cell row; reductions whose summation order matters stay
        in exactly the serial form — one contiguous-slice ``dot`` per
        candidate for cores (BLAS ``dgemv`` rounds differently than
        per-row ``ddot``), one contiguous-slice pairwise sum per
        candidate per L2 block (bitwise equal to the serial
        ``np.mean``) — matching ``CoreLeakageModel.power`` /
        ``L2LeakageModel.power_per_block``.
        """
        if np.any(temps <= 0):
            raise ValueError("temperature must be positive kelvin")
        n_active = temps.shape[0]
        dot = np.dot
        add_reduce = np.add.reduce
        pref_cols = self._pref_cols(
            np.take(temps, self._pow_cols, axis=1), vdd_cols)
        np.take(pref_cols, self._cell_powcol, axis=1, out=pref)
        np.take(temps, self._cell_block, axis=1, out=tgat)
        factors = self._factors(self._cells_row, tgat, dib, pref, tmp)
        leak = np.zeros((n_active, self._n_blocks))
        for i in range(self._n):
            s0, s1 = self._core_segs[i]
            weights = self._leak_weights[i]
            vals = np.empty(n_active)
            for b in range(n_active):
                vals[b] = dot(weights, factors[b, s0:s1])
            leak[:, self._core_of[i]] = self._leak_calib[i] * vals
        for j, (s0, s1) in enumerate(self._l2_segs):
            size = s1 - s0
            vals = np.empty(n_active)
            for b in range(n_active):
                vals[b] = add_reduce(factors[b, s0:s1])
            leak[:, self._n_cores + j] = (
                (self._l2_calib * self._l2_share[j]) * (vals / size))
        return leak

    def _fixed_point(self, block_dyn: np.ndarray, vdd_cols: np.ndarray,
                     dib_full: np.ndarray):
        """Lockstep leakage-temperature fixed point with column masks.

        Every candidate starts from the ambient temperature and takes
        exactly the damped iteration sequence of
        :func:`repro.thermal.solve_with_leakage`; candidates that
        converge are frozen (their temperatures stop updating) and
        compacted out of the working set, so survivors never feel
        their finished neighbours. A candidate that diverges is
        likewise compacted out, with the exception the serial path
        would have raised (same type, same message) recorded in its
        ``row_errors`` slot — its batch neighbours run to completion
        untouched.
        """
        n_rows = block_dyn.shape[0]
        out_temps = np.empty((n_rows, self._n_blocks))
        out_powers = np.empty((n_rows, self._n_blocks))
        out_iters = np.zeros(n_rows, dtype=int)
        row_errors: List[Optional[Exception]] = [None] * n_rows

        # Scratch for the leakage evaluation, allocated once per chunk
        # and reused every iteration (prefix-sliced as the active set
        # shrinks) — the iteration loop itself allocates nothing big.
        n_cells = self._cells_row.size
        tgat = np.empty((n_rows, n_cells))
        tmp = np.empty((n_rows, n_cells))
        pref = np.empty((n_rows, n_cells))

        orig = np.arange(n_rows)
        work_temps = np.full((n_rows, self._n_blocks),
                             self._thermal.ambient_k)
        work_dyn = block_dyn
        work_vdd = vdd_cols
        work_dib = dib_full

        for iteration in range(1, MAX_ITERATIONS + 1):

            def fail(bad: np.ndarray, make_error) -> bool:
                """Record errors for ``bad`` rows, compact them away.

                Returns True when no active rows remain.
                """
                nonlocal orig, work_temps, work_dyn, work_vdd, work_dib
                for r in orig[bad]:
                    row_errors[r] = make_error()
                    out_iters[r] = iteration
                keep = ~bad
                orig = orig[keep]
                work_temps = work_temps[keep]
                work_dyn = work_dyn[keep]
                work_vdd = work_vdd[keep]
                work_dib = work_dib[keep]
                return orig.size == 0

            # A non-positive iterate would raise inside the serial
            # leakage_factor call of this iteration.
            bad = (work_temps <= 0).any(axis=1)
            if bad.any() and fail(bad, lambda: ValueError(
                    "temperature must be positive kelvin")):
                return out_temps, out_powers, out_iters, row_errors
            a = work_temps.shape[0]
            leak = self._leakage_matrix(work_temps, work_vdd, work_dib,
                                        tgat[:a], tmp[:a], pref[:a])
            total = work_dyn + leak
            bad = ~np.isfinite(total).all(axis=1)
            if bad.any():
                keep = ~bad
                kept_total = total[keep]
                if fail(bad, lambda: ThermalRunawayError(
                        "leakage diverged before the temperature did")):
                    return out_temps, out_powers, out_iters, row_errors
                total = kept_total
            solved = self._thermal.solve_many(total)
            new_temps = DAMPING * solved + (1.0 - DAMPING) * work_temps
            bad = new_temps.max(axis=1) > RUNAWAY_TEMP_K
            if bad.any():
                keep = ~bad
                kept_total = total[keep]
                kept_new = new_temps[keep]
                if fail(bad, lambda: ThermalRunawayError(
                        f"block temperature exceeded {RUNAWAY_TEMP_K} K: "
                        "the leakage-temperature loop gain is above unity "
                        "for these power/cooling parameters")):
                    return out_temps, out_powers, out_iters, row_errors
                total = kept_total
                new_temps = kept_new
            delta = np.abs(new_temps - work_temps).max(axis=1)
            converged = delta < DEFAULT_TOLERANCE_K
            if converged.any():
                done = orig[converged]
                out_temps[done] = new_temps[converged]
                out_powers[done] = total[converged]
                out_iters[done] = iteration
                keep = ~converged
                orig = orig[keep]
                if orig.size == 0:
                    return out_temps, out_powers, out_iters, row_errors
                work_temps = new_temps[keep]
                work_dyn = work_dyn[keep]
                work_vdd = work_vdd[keep]
                work_dib = work_dib[keep]
            else:
                work_temps = new_temps
        for r in orig:
            row_errors[r] = RuntimeError(
                "leakage-temperature iteration did not converge "
                f"within {MAX_ITERATIONS} iterations (thermal runaway?)")
            out_iters[r] = MAX_ITERATIONS
        return out_temps, out_powers, out_iters, row_errors


class FleetEvalKernel:
    """Die-batched system evaluation: one decision, many variation maps.

    The dual of :class:`EvalKernel`: where that class batches *many
    candidate decisions on one die*, this one batches *one decision
    across many dies* — the Monte-Carlo axis of the paper's per-die
    results (Figs 4/5, Table 5), where every sampled variation map is
    evaluated at the same operating point and only the statistics over
    the fleet matter. The leakage/IPC/Ceff lookup tables and the
    packed leakage-cell row gain a leading *die* axis, and the
    leakage-temperature fixed point runs in lockstep across dies with
    per-row convergence masks and compaction, so die ``d``'s iterate
    sequence is exactly the serial
    :func:`repro.runtime.evaluation.evaluate_levels` schedule on
    ``chips[d]`` and the results are **bitwise identical** to the
    per-die serial loop (tests/test_fleet.py property-tests this).

    All dies must come off the same design: identical
    :class:`~repro.config.TechParams` and
    :class:`~repro.config.ArchConfig`, hence identical floorplans,
    thermal networks, V/f-table level grids and variation-cell layouts
    — only the *values* (per-die binned frequencies, Vth maps,
    calibrations) differ. The thermal solve uses ``chips[0]``'s
    network; networks built from the same floorplan factor the same
    matrix, so the shared solve is bit-for-bit each die's own.

    Args:
        chips: The fleet ('s current slab) of characterised dies.
        workload: The threads (``workload[i]`` runs on
            ``assignment.core_of[i]`` of every die).
        assignment: Thread-to-core mapping, shared by all dies.
        ipc_multipliers: Optional per-thread phase IPC multipliers.
        ceff_multipliers: Optional per-thread phase power multipliers.
    """

    def __init__(
        self,
        chips: Sequence[ChipProfile],
        workload: Workload,
        assignment: Assignment,
        ipc_multipliers: Optional[Sequence[float]] = None,
        ceff_multipliers: Optional[Sequence[float]] = None,
    ) -> None:
        if not chips:
            raise ValueError("fleet must contain at least one die")
        first = chips[0]
        for chip in chips:
            if chip.tech != first.tech or chip.arch != first.arch:
                raise ValueError(
                    "fleet dies must share TechParams and ArchConfig")
            if chip.thermal.n_blocks != first.thermal.n_blocks:
                raise ValueError("fleet dies must share the thermal "
                                 "network shape")
        n = assignment.n_threads
        if workload.n_threads != n:
            raise ValueError("workload and assignment sizes differ")
        if max(assignment.core_of) >= first.n_cores:
            raise ValueError("assignment references a core beyond the die")
        ipc_mult = (np.ones(n) if ipc_multipliers is None
                    else np.asarray(ipc_multipliers, dtype=float))
        ceff_mult = (np.ones(n) if ceff_multipliers is None
                     else np.asarray(ceff_multipliers, dtype=float))
        if ipc_mult.shape != (n,) or ceff_mult.shape != (n,):
            raise ValueError("need one multiplier per thread")

        d = len(chips)
        self.chips = list(chips)
        self.workload = workload
        self.assignment = assignment
        self.stats = KernelStats()
        self._tech = first.tech
        self._thermal = first.thermal
        self._n = n
        self._d = d
        self._core_of = np.asarray(assignment.core_of, dtype=int)
        self._n_cores = first.n_cores
        self._n_blocks = first.thermal.n_blocks

        # Per-(die, thread, level) lookup tables, each entry computed
        # with the exact scalar expression the serial path uses.
        self._n_levels = np.array(
            [first.cores[c].vf_table.n_levels for c in assignment.core_of])
        for chip in chips:
            for i, c in enumerate(assignment.core_of):
                if chip.cores[c].vf_table.n_levels != self._n_levels[i]:
                    raise ValueError("fleet dies must share the DVFS "
                                     "level grid")
        max_levels = int(self._n_levels.max())
        self._volts_tab = np.zeros((d, n, max_levels))
        self._freqs_tab = np.zeros((d, n, max_levels))
        self._ipc_tab = np.zeros((d, n, max_levels))
        self._dyn_tab = np.zeros((d, n, max_levels))
        for k, chip in enumerate(chips):
            for i, core in enumerate(assignment.core_of):
                table = chip.cores[core].vf_table
                for lv in range(table.n_levels):
                    v = table.voltages[lv]
                    f = table.freqs[lv]
                    self._volts_tab[k, i, lv] = v
                    self._freqs_tab[k, i, lv] = f
                    self._ipc_tab[k, i, lv] = (workload[i].ipc_at(f)
                                               * ipc_mult[i])
                    self._dyn_tab[k, i, lv] = (workload[i].ceff
                                               * ceff_mult[i] * v ** 2 * f)

        # Packed leakage state: the same concatenated cell row as
        # EvalKernel, but one row PER DIE — per-die Vth maps, weights
        # and calibrations are the whole point of the fleet axis.
        # Segment boundaries must agree across dies (same floorplan
        # => same cell counts), so the per-cell bookkeeping vectors
        # stay shared.
        ref_parts = ([first.cores[c].leakage.cell_vth
                      for c in assignment.core_of]
                     + list(first.l2_leakage.block_vth))
        sizes = [p.size for p in ref_parts]
        bounds = np.concatenate([[0], np.cumsum(sizes)]).astype(int)
        n_cells = int(bounds[-1])
        n_l2 = len(first.l2_leakage.block_vth)
        if n_l2 != self._n_blocks - self._n_cores:
            raise ValueError("L2 leakage blocks do not match the "
                             "thermal network")
        self._core_segs = [(int(bounds[i]), int(bounds[i + 1]))
                           for i in range(n)]
        self._l2_segs = [(int(bounds[n + j]), int(bounds[n + j + 1]))
                         for j in range(n_l2)]
        self._n_core_cells = int(bounds[n])
        self._cells_mat = np.empty((d, n_cells))
        self._w_mat = np.zeros((d, self._n_core_cells))
        self._calib_mat = np.empty((d, n))
        self._l2_calib = np.empty(d)
        self._l2_share_mat = np.empty((d, n_l2))
        self._l2_dyn_share = first.floorplan.l2_area_share
        for k, chip in enumerate(chips):
            parts = ([chip.cores[c].leakage.cell_vth
                      for c in assignment.core_of]
                     + list(chip.l2_leakage.block_vth))
            if [p.size for p in parts] != sizes:
                raise ValueError("fleet dies must share the variation-"
                                 "cell layout")
            self._cells_mat[k] = np.concatenate(parts)
            for i, c in enumerate(assignment.core_of):
                s0, s1 = self._core_segs[i]
                self._w_mat[k, s0:s1] = chip.cores[c].leakage.cell_weights
                self._calib_mat[k, i] = chip.cores[c].leakage.calibration
            self._l2_calib[k] = chip.l2_leakage.calibration
            self._l2_share_mat[k] = chip.l2_leakage.block_share
            if not np.array_equal(chip.floorplan.l2_area_share,
                                  self._l2_dyn_share):
                raise ValueError("fleet dies must share the floorplan")

        cell_vsrc = np.empty(n_cells, dtype=int)
        cell_block = np.empty(n_cells, dtype=int)
        for i, (s0, s1) in enumerate(self._core_segs):
            cell_vsrc[s0:s1] = i
            cell_block[s0:s1] = assignment.core_of[i]
        for j, (s0, s1) in enumerate(self._l2_segs):
            cell_vsrc[s0:s1] = n
            cell_block[s0:s1] = self._n_cores + j
        self._cell_block = cell_block
        used = sorted(set(cell_block.tolist()))
        self._pow_cols = np.array(used, dtype=int)
        col_of = {blk: k for k, blk in enumerate(used)}
        self._cell_powcol = np.array(
            [col_of[blk] for blk in cell_block.tolist()], dtype=int)
        powcol_vsrc = np.empty(len(used), dtype=int)
        for c in range(n_cells):
            powcol_vsrc[self._cell_powcol[c]] = cell_vsrc[c]
        self._powcol_vsrc = powcol_vsrc

        self._n_slope = subthreshold_slope_factor(first.tech)
        self._vth_temp_coeff = first.tech.vth_temp_coeff
        self._vdd_nominal = first.tech.vdd_nominal

    @property
    def n_dies(self) -> int:
        return self._d

    # ------------------------------------------------------------------
    def evaluate_levels_fleet(
        self, levels: Sequence[int],
        errors: str = "raise",
    ) -> List[SystemState]:
        """Evaluate one decision on every die of the fleet.

        Args:
            levels: ``(n_threads,)`` per-thread DVFS levels applied to
                every die (the fleet's shared decision), or a
                ``(n_dies, n_threads)`` matrix with one row per die.
            errors: ``"raise"`` (default) re-raises the exception of
                the lowest-index failing die — exactly what a serial
                in-order scan of the dies would raise first.
                ``"isolate"`` returns the exception *object* in that
                die's slot instead, so campaign drivers can record the
                failure and keep streaming the rest of the fleet.

        Returns:
            One converged :class:`SystemState` per die, in die order —
            element ``k`` is bitwise-identical to
            ``evaluate_levels(chips[k], workload, assignment,
            levels[k])``.
        """
        if errors not in ("raise", "isolate"):
            raise ValueError("errors must be 'raise' or 'isolate'")
        start = time.perf_counter()
        lv = np.asarray(levels, dtype=int)
        if lv.ndim == 1:
            lv = np.broadcast_to(lv[None, :], (self._d, lv.size)).copy()
        if lv.shape != (self._d, self._n):
            raise ValueError("need one level per thread (optionally "
                             "one row per die)")
        bad = (lv < 0) | (lv >= self._n_levels[None, :])
        if bad.any():
            b, i = np.argwhere(bad)[0]
            raise ValueError(
                f"level {lv[b, i]} out of range for core "
                f"{self._core_of[i]}")

        out: List[SystemState] = []
        total_iters = 0
        for c0 in range(0, self._d, _CHUNK_ROWS):
            c1 = min(c0 + _CHUNK_ROWS, self._d)
            states, iters = self._eval_dies(c0, c1, lv[c0:c1])
            out.extend(states)
            total_iters += iters

        wall = time.perf_counter() - start
        self.stats.record(self._d, total_iters, wall)
        EVALUATION_COUNTER.record_batch(self._d, total_iters, wall)
        if errors == "raise":
            for item in out:
                if isinstance(item, Exception):
                    raise item
        return out

    def evaluate_max_levels_fleet(self,
                                  errors: str = "raise",
                                  ) -> List[SystemState]:
        """Every die at its cores' top operating points (NUniFreq)."""
        return self.evaluate_levels_fleet(self._n_levels - 1,
                                          errors=errors)

    def _eval_dies(self, c0: int, c1: int, levels: np.ndarray):
        """Evaluate one cache-sized slab of dies (rows ``c0:c1``)."""
        n_rows = c1 - c0
        # Per-(die, thread) gathers from the (die, thread, level)
        # tables; ascontiguousarray for the same reason EvalKernel
        # uses np.take — downstream row reductions must see
        # C-contiguous rows so BLAS takes the contiguous-ddot path.
        ix_d = np.arange(n_rows)[:, None]
        ix_t = np.arange(self._n)[None, :]
        volts = np.ascontiguousarray(
            self._volts_tab[c0:c1][ix_d, ix_t, levels])
        freqs = np.ascontiguousarray(
            self._freqs_tab[c0:c1][ix_d, ix_t, levels])
        ipcs = np.ascontiguousarray(
            self._ipc_tab[c0:c1][ix_d, ix_t, levels])
        core_dyn = np.ascontiguousarray(
            self._dyn_tab[c0:c1][ix_d, ix_t, levels])

        block_dyn = np.zeros((n_rows, self._n_blocks))
        block_dyn[:, self._core_of] = core_dyn
        l2_dyn_total = L2_DYNAMIC_FRACTION * core_dyn.sum(axis=1)
        block_dyn[:, self._n_cores:] = (l2_dyn_total[:, None]
                                        * self._l2_dyn_share[None, :])

        volts_ext = np.concatenate(
            [volts, np.full((n_rows, 1), L2_VDD)], axis=1)
        vdd_cols = np.take(volts_ext, self._powcol_vsrc, axis=1)
        dib_cols = DIBL_COEFF * (vdd_cols - self._vdd_nominal)
        dib_full = np.take(dib_cols, self._cell_powcol, axis=1)
        cells = self._cells_mat[c0:c1]
        temps, powers, iters, row_errors = self._fixed_point(
            c0, cells, block_dyn, vdd_cols, dib_full)
        for b, err in enumerate(row_errors):
            if err is not None:
                temps[b] = self._thermal.ambient_k

        if np.any(temps <= 0):
            raise ValueError("temperature must be positive kelvin")
        dot = np.dot
        cc = self._n_core_cells
        pref_cols = _scalar_pow_prefactor(
            np.take(temps, self._pow_cols, axis=1), vdd_cols)
        pref = np.take(pref_cols, self._cell_powcol[:cc], axis=1)
        tgat = np.take(temps, self._cell_block[:cc], axis=1)
        factors = _leakage_factors_inplace(
            cells[:, :cc], tgat, dib_full[:, :cc], pref,
            np.empty_like(tgat), self._n_slope, self._vth_temp_coeff)
        core_leak = np.empty((n_rows, self._n))
        for i in range(self._n):
            s0, s1 = self._core_segs[i]
            vals = np.empty(n_rows)
            for b in range(n_rows):
                vals[b] = dot(self._w_mat[c0 + b, s0:s1],
                              factors[b, s0:s1])
            core_leak[:, i] = self._calib_mat[c0:c1, i] * vals

        out: List = []
        for b in range(n_rows):
            if row_errors[b] is not None:
                out.append(row_errors[b])
                continue
            l2_power = float(powers[b, self._n_cores:].sum())
            total = float(core_dyn[b].sum() + core_leak[b].sum()) + l2_power
            out.append(SystemState(
                voltages=volts[b].copy(),
                freqs=freqs[b].copy(),
                ipcs=ipcs[b].copy(),
                core_dynamic=core_dyn[b].copy(),
                core_leakage=core_leak[b].copy(),
                block_temps=temps[b].copy(),
                l2_power=l2_power,
                total_power=total,
            ))
        return out, int(iters.sum())

    # ------------------------------------------------------------------
    def _leakage_matrix(self, c0: int, rows: np.ndarray,
                        temps: np.ndarray, vdd_cols: np.ndarray,
                        dib: np.ndarray, cells: np.ndarray,
                        tgat: np.ndarray, tmp: np.ndarray,
                        pref: np.ndarray) -> np.ndarray:
        """Per-die per-block leakage power (bitwise-serial).

        ``rows`` maps each active working row to its die index within
        the current slab (offset ``c0`` into the fleet arrays), so
        compacted survivors keep reading *their own* weights and
        calibrations. Reduction forms exactly mirror
        ``CoreLeakageModel.power`` / ``L2LeakageModel.power_per_block``
        — one contiguous-slice ``dot`` / pairwise sum per die per
        segment, never a batched BLAS call (see DESIGN.md §13/§17).
        """
        if np.any(temps <= 0):
            raise ValueError("temperature must be positive kelvin")
        n_active = temps.shape[0]
        dot = np.dot
        add_reduce = np.add.reduce
        pref_cols = _scalar_pow_prefactor(
            np.take(temps, self._pow_cols, axis=1), vdd_cols)
        np.take(pref_cols, self._cell_powcol, axis=1, out=pref)
        np.take(temps, self._cell_block, axis=1, out=tgat)
        factors = _leakage_factors_inplace(
            cells, tgat, dib, pref, tmp,
            self._n_slope, self._vth_temp_coeff)
        leak = np.zeros((n_active, self._n_blocks))
        for i in range(self._n):
            s0, s1 = self._core_segs[i]
            vals = np.empty(n_active)
            for b in range(n_active):
                vals[b] = dot(self._w_mat[c0 + rows[b], s0:s1],
                              factors[b, s0:s1])
            leak[:, self._core_of[i]] = (
                self._calib_mat[c0 + rows, i] * vals)
        for j, (s0, s1) in enumerate(self._l2_segs):
            size = s1 - s0
            vals = np.empty(n_active)
            for b in range(n_active):
                vals[b] = add_reduce(factors[b, s0:s1])
            leak[:, self._n_cores + j] = (
                (self._l2_calib[c0 + rows]
                 * self._l2_share_mat[c0 + rows, j]) * (vals / size))
        return leak

    def _fixed_point(self, c0: int, cells: np.ndarray,
                     block_dyn: np.ndarray, vdd_cols: np.ndarray,
                     dib_full: np.ndarray):
        """Lockstep leakage-temperature fixed point across dies.

        Identical control flow to :meth:`EvalKernel._fixed_point` —
        per-row convergence masks, freezing, compaction, error parity
        — with the per-die cell matrix compacted alongside the other
        row state so a surviving die never feels its finished or
        failed fleet neighbours.
        """
        n_rows = block_dyn.shape[0]
        out_temps = np.empty((n_rows, self._n_blocks))
        out_powers = np.empty((n_rows, self._n_blocks))
        out_iters = np.zeros(n_rows, dtype=int)
        row_errors: List[Optional[Exception]] = [None] * n_rows

        n_cells = cells.shape[1]
        tgat = np.empty((n_rows, n_cells))
        tmp = np.empty((n_rows, n_cells))
        pref = np.empty((n_rows, n_cells))

        orig = np.arange(n_rows)
        work_temps = np.full((n_rows, self._n_blocks),
                             self._thermal.ambient_k)
        work_dyn = block_dyn
        work_vdd = vdd_cols
        work_dib = dib_full
        work_cells = cells

        for iteration in range(1, MAX_ITERATIONS + 1):

            def fail(bad: np.ndarray, make_error) -> bool:
                """Record errors for ``bad`` rows, compact them away."""
                nonlocal orig, work_temps, work_dyn, work_vdd
                nonlocal work_dib, work_cells
                for r in orig[bad]:
                    row_errors[r] = make_error()
                    out_iters[r] = iteration
                keep = ~bad
                orig = orig[keep]
                work_temps = work_temps[keep]
                work_dyn = work_dyn[keep]
                work_vdd = work_vdd[keep]
                work_dib = work_dib[keep]
                work_cells = work_cells[keep]
                return orig.size == 0

            bad = (work_temps <= 0).any(axis=1)
            if bad.any() and fail(bad, lambda: ValueError(
                    "temperature must be positive kelvin")):
                return out_temps, out_powers, out_iters, row_errors
            a = work_temps.shape[0]
            leak = self._leakage_matrix(
                c0, orig, work_temps, work_vdd, work_dib, work_cells,
                tgat[:a], tmp[:a], pref[:a])
            total = work_dyn + leak
            bad = ~np.isfinite(total).all(axis=1)
            if bad.any():
                keep = ~bad
                kept_total = total[keep]
                if fail(bad, lambda: ThermalRunawayError(
                        "leakage diverged before the temperature did")):
                    return out_temps, out_powers, out_iters, row_errors
                total = kept_total
            solved = self._thermal.solve_many(total)
            new_temps = DAMPING * solved + (1.0 - DAMPING) * work_temps
            bad = new_temps.max(axis=1) > RUNAWAY_TEMP_K
            if bad.any():
                keep = ~bad
                kept_total = total[keep]
                kept_new = new_temps[keep]
                if fail(bad, lambda: ThermalRunawayError(
                        f"block temperature exceeded {RUNAWAY_TEMP_K} K: "
                        "the leakage-temperature loop gain is above unity "
                        "for these power/cooling parameters")):
                    return out_temps, out_powers, out_iters, row_errors
                total = kept_total
                new_temps = kept_new
            delta = np.abs(new_temps - work_temps).max(axis=1)
            converged = delta < DEFAULT_TOLERANCE_K
            if converged.any():
                done = orig[converged]
                out_temps[done] = new_temps[converged]
                out_powers[done] = total[converged]
                out_iters[done] = iteration
                keep = ~converged
                orig = orig[keep]
                if orig.size == 0:
                    return out_temps, out_powers, out_iters, row_errors
                work_temps = new_temps[keep]
                work_dyn = work_dyn[keep]
                work_vdd = work_vdd[keep]
                work_dib = work_dib[keep]
                work_cells = work_cells[keep]
            else:
                work_temps = new_temps
        for r in orig:
            row_errors[r] = RuntimeError(
                "leakage-temperature iteration did not converge "
                f"within {MAX_ITERATIONS} iterations (thermal runaway?)")
            out_iters[r] = MAX_ITERATIONS
        return out_temps, out_powers, out_iters, row_errors
