"""System-level evaluation of an operating point.

Given a characterised chip, a workload, an assignment of threads to
cores and per-core DVFS settings, compute the steady-state power,
temperature and performance of the CMP. Idle cores are power-gated
(the paper assumes unused cores are powered off). Total chip power
includes core dynamic + leakage, and the shared L2's dynamic + leakage
(Section 6.6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from ..chip import ChipProfile
from ..power.scaling import L2_DYNAMIC_FRACTION
from ..thermal import solve_with_leakage
from ..workloads import REF_FREQ_HZ, Workload


class EvaluationCounter:
    """Counts full-system evaluations (thermal fixed-point solves).

    The online simulation's perf benchmark uses this to assert that the
    event-driven loop performs far fewer :func:`evaluate_levels` calls
    than the per-millisecond reference loop.

    The batched evaluation kernel (:mod:`repro.runtime.kernel`) also
    reports here: ``count`` includes every batched candidate (each is
    one full fixed-point solve), and the ``batch_*`` / ``kernel_*``
    fields record how the batched path was exercised — batch calls,
    per-batch-size histogram, total fixed-point iterations, and kernel
    wall time — for the BENCH_* emitters and the CI perf gate.
    """

    __slots__ = ("count", "batch_calls", "batched_evaluations",
                 "fixed_point_iterations", "kernel_wall_s",
                 "batch_size_hist")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.batch_calls = 0
        self.batched_evaluations = 0
        self.fixed_point_iterations = 0
        self.kernel_wall_s = 0.0
        self.batch_size_hist: dict = {}

    def record_batch(self, batch_size: int, iterations: int,
                     wall_s: float) -> None:
        """Record one kernel batch (``batch_size`` candidates)."""
        self.count += batch_size
        self.batch_calls += 1
        self.batched_evaluations += batch_size
        self.fixed_point_iterations += iterations
        self.kernel_wall_s += wall_s
        self.batch_size_hist[batch_size] = (
            self.batch_size_hist.get(batch_size, 0) + 1)


#: Process-global counter, incremented by every evaluate_levels call.
EVALUATION_COUNTER = EvaluationCounter()


@dataclass(frozen=True)
class Assignment:
    """Thread-to-core mapping: ``core_of[i]`` is thread i's core."""

    core_of: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.core_of:
            raise ValueError("assignment must map at least one thread")
        if len(set(self.core_of)) != len(self.core_of):
            raise ValueError("two threads mapped to the same core")
        if any(c < 0 for c in self.core_of):
            raise ValueError("negative core id")

    @property
    def n_threads(self) -> int:
        return len(self.core_of)

    @property
    def active_cores(self) -> Tuple[int, ...]:
        return self.core_of


@dataclass(frozen=True)
class SystemState:
    """Steady-state outcome of evaluating one operating point.

    Per-thread arrays are ordered by thread index. Powers are watts,
    frequencies Hz, temperatures kelvin.
    """

    voltages: np.ndarray
    freqs: np.ndarray
    ipcs: np.ndarray
    core_dynamic: np.ndarray
    core_leakage: np.ndarray
    block_temps: np.ndarray
    l2_power: float
    total_power: float

    @property
    def core_power(self) -> np.ndarray:
        """Per-thread total core power (W)."""
        return self.core_dynamic + self.core_leakage

    @property
    def throughput_mips(self) -> float:
        """Aggregate throughput in MIPS (Section 6.6)."""
        return float(np.sum(self.ipcs * self.freqs) / 1e6)

    @property
    def per_thread_mips(self) -> np.ndarray:
        return self.ipcs * self.freqs / 1e6

    @property
    def mean_frequency(self) -> float:
        """Average frequency of the active cores (Hz)."""
        return float(np.mean(self.freqs))

    def weighted_throughput(self, workload: Workload) -> float:
        """Weighted throughput: sum of per-thread normalised MIPS.

        Each thread's throughput is normalised to its throughput at
        reference conditions (nominal frequency), giving equal weight
        to all applications (Snavely-Tullsen style, Section 6.6).
        """
        if workload.n_threads != self.ipcs.size:
            raise ValueError("workload does not match this state")
        ref = np.array([app.throughput_at(REF_FREQ_HZ) for app in workload])
        return float(np.sum(self.ipcs * self.freqs / ref))

    @property
    def ed2_relative(self) -> float:
        """Energy-delay-squared metric, up to a constant factor.

        For a fixed instruction count N: E = P * N / TP and
        D = N / TP, so ED^2 = P * N^3 / TP^3. The N^3 factor is common
        to all configurations of one workload, so P / TP^3 compares
        directly (the paper always plots ED^2 *relative* to a
        baseline).
        """
        tp = self.throughput_mips
        if tp <= 0:
            return float("inf")
        return self.total_power / tp ** 3

    def weighted_ed2_relative(self, workload: Workload) -> float:
        """ED^2 computed on weighted throughput (Figure 13b)."""
        tp = self.weighted_throughput(workload)
        if tp <= 0:
            return float("inf")
        return self.total_power / tp ** 3

    def scaled(self, work_fractions: Sequence[float]) -> "SystemState":
        """This state with per-thread useful work scaled down.

        Models stalls that burn power without committing instructions
        (V/f transitions, thread migrations): the returned state keeps
        every power and thermal quantity but scales each thread's
        committed IPC by ``work_fractions[i]`` in [0, 1], so all
        throughput-derived metrics reflect the lost work.
        """
        frac = np.asarray(work_fractions, dtype=float)
        if frac.shape != self.ipcs.shape:
            raise ValueError("need one work fraction per thread")
        if np.any(frac < 0) or np.any(frac > 1):
            raise ValueError("work fractions must lie in [0, 1]")
        return replace(self, ipcs=self.ipcs * frac)


def evaluate_explicit(
    chip: ChipProfile,
    workload: Workload,
    assignment: Assignment,
    voltages: Sequence[float],
    freqs: Sequence[float],
    ipc_multipliers: Optional[Sequence[float]] = None,
    ceff_multipliers: Optional[Sequence[float]] = None,
) -> SystemState:
    """Evaluate an operating point given explicit per-thread (V, f).

    Args:
        chip: Characterised die.
        workload: The threads (``workload[i]`` runs on
            ``assignment.core_of[i]``).
        assignment: Thread-to-core mapping.
        voltages: Per-thread core supply voltage (V).
        freqs: Per-thread core frequency (Hz).
        ipc_multipliers: Optional per-thread phase IPC multipliers.
        ceff_multipliers: Optional per-thread phase power multipliers.

    Returns:
        The converged :class:`SystemState`.
    """
    n = assignment.n_threads
    if workload.n_threads != n:
        raise ValueError("workload and assignment sizes differ")
    if max(assignment.core_of) >= chip.n_cores:
        raise ValueError("assignment references a core beyond the die")
    volts = np.asarray(voltages, dtype=float)
    fr = np.asarray(freqs, dtype=float)
    if volts.shape != (n,) or fr.shape != (n,):
        raise ValueError("need one voltage and frequency per thread")
    ipc_mult = (np.ones(n) if ipc_multipliers is None
                else np.asarray(ipc_multipliers, dtype=float))
    ceff_mult = (np.ones(n) if ceff_multipliers is None
                 else np.asarray(ceff_multipliers, dtype=float))

    ipcs = np.array([
        workload[i].ipc_at(fr[i]) * ipc_mult[i] for i in range(n)])
    core_dyn = np.array([
        workload[i].ceff * ceff_mult[i] * volts[i] ** 2 * fr[i]
        for i in range(n)])

    n_cores = chip.n_cores
    n_blocks = chip.thermal.n_blocks
    block_dyn = np.zeros(n_blocks)
    for i, core in enumerate(assignment.core_of):
        block_dyn[core] = core_dyn[i]
    l2_dyn_total = L2_DYNAMIC_FRACTION * float(core_dyn.sum())
    block_dyn[n_cores:] = l2_dyn_total * chip.floorplan.l2_area_share

    core_volt = np.zeros(n_cores)
    for i, core in enumerate(assignment.core_of):
        core_volt[core] = volts[i]
    active = np.zeros(n_cores, dtype=bool)
    for core in assignment.core_of:
        active[core] = True

    def leakage_fn(temps: np.ndarray) -> np.ndarray:
        leak = np.zeros(n_blocks)
        for core in range(n_cores):
            if active[core]:
                leak[core] = chip.cores[core].leakage.power(
                    core_volt[core], temps[core])
        leak[n_cores:] = chip.l2_leakage.power_per_block(temps[n_cores:])
        return leak

    solution = solve_with_leakage(chip.thermal, block_dyn, leakage_fn)
    temps = solution.block_temps_k
    core_leak = np.array([
        chip.cores[core].leakage.power(volts[i], temps[core])
        for i, core in enumerate(assignment.core_of)])
    l2_power = float(solution.block_power_w[n_cores:].sum())
    total = float(core_dyn.sum() + core_leak.sum()) + l2_power
    return SystemState(
        voltages=volts,
        freqs=fr,
        ipcs=ipcs,
        core_dynamic=core_dyn,
        core_leakage=core_leak,
        block_temps=temps,
        l2_power=l2_power,
        total_power=total,
    )


def evaluate_levels(
    chip: ChipProfile,
    workload: Workload,
    assignment: Assignment,
    levels: Sequence[int],
    ipc_multipliers: Optional[Sequence[float]] = None,
    ceff_multipliers: Optional[Sequence[float]] = None,
) -> SystemState:
    """Evaluate with per-thread DVFS levels into each core's V/f table."""
    EVALUATION_COUNTER.count += 1
    n = assignment.n_threads
    levels = list(levels)
    if len(levels) != n:
        raise ValueError("need one level per thread")
    if max(assignment.core_of) >= chip.n_cores:
        raise ValueError("assignment references a core beyond the die")
    volts = np.empty(n)
    freqs = np.empty(n)
    for i, core in enumerate(assignment.core_of):
        table = chip.cores[core].vf_table
        if not 0 <= levels[i] < table.n_levels:
            raise ValueError(f"level {levels[i]} out of range for core {core}")
        volts[i] = table.voltages[levels[i]]
        freqs[i] = table.freqs[levels[i]]
    return evaluate_explicit(chip, workload, assignment, volts, freqs,
                             ipc_multipliers, ceff_multipliers)


def evaluate_max_levels(
    chip: ChipProfile,
    workload: Workload,
    assignment: Assignment,
) -> SystemState:
    """NUniFreq operating point: every core at its own (Vmax, fmax)."""
    if max(assignment.core_of) >= chip.n_cores:
        raise ValueError("assignment references a core beyond the die")
    top = [chip.cores[c].vf_table.n_levels - 1 for c in assignment.core_of]
    return evaluate_levels(chip, workload, assignment, top)


def evaluate_uniform_frequency(
    chip: ChipProfile,
    workload: Workload,
    assignment: Assignment,
    freq_hz: Optional[float] = None,
) -> SystemState:
    """UniFreq operating point: all cores at the chip frequency.

    The chip frequency defaults to the slowest core's fmax (all cores
    run at the frequency of the slowest one, Section 4.1); all cores
    are at maximum voltage since there is no DVFS.
    """
    f_chip = chip.min_fmax if freq_hz is None else float(freq_hz)
    if f_chip <= 0:
        raise ValueError("chip frequency must be positive")
    n = assignment.n_threads
    volts = np.full(n, chip.tech.vdd_max)
    freqs = np.full(n, f_chip)
    return evaluate_explicit(chip, workload, assignment, volts, freqs)
