"""Profiling support for the scheduling and PM algorithms (Table 3).

Two kinds of profile information exist:

* **Manufacturer data** — per-core static power at each voltage and the
  per-core (V, f) tables. These live on :class:`repro.chip.ChipProfile`
  already.
* **Dynamic measurements** — each thread's dynamic power and IPC,
  measured by running it briefly on *one random core* and reading the
  core's power sensor and performance counters (Section 5.2). The
  measured dynamic power is scaled by the profiling core's V^2*f so
  different threads are comparable; the measured IPC is taken as
  frequency-independent (the paper's stated approximation).

Measurements go through :class:`repro.power.PowerSensor` /
:class:`repro.power.IpcSensor`, so sensor noise (if configured)
propagates into the rankings exactly as it would on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..chip import ChipProfile
from ..power import IpcSensor, PowerSensor
from ..workloads import Workload


@dataclass(frozen=True)
class ThreadProfile:
    """Dynamic profile of the workload's threads.

    Attributes:
        ceff_estimate: Per-thread scaled dynamic power (an effective-
            capacitance estimate, F) — the VarP&AppP ranking input.
        ipc_estimate: Per-thread measured IPC — the VarF&AppIPC
            ranking input.
        profiling_core: The core each thread was profiled on.
    """

    ceff_estimate: np.ndarray
    ipc_estimate: np.ndarray
    profiling_core: Tuple[int, ...]


def profile_threads(
    chip: ChipProfile,
    workload: Workload,
    rng: np.random.Generator,
    power_sensor: Optional[PowerSensor] = None,
    ipc_sensor: Optional[IpcSensor] = None,
    t_profile_k: float = 350.0,
) -> ThreadProfile:
    """Profile each thread on one random core (Section 5.2).

    The profiling run happens at the core's maximum operating point.
    The power sensor reads *total* core power; the known per-core
    static power at the profiling voltage (manufacturer data) is
    subtracted to estimate dynamic power, which is then normalised by
    V^2 * f.

    Args:
        chip: Characterised die (supplies sensors' ground truth).
        workload: Threads to profile.
        rng: Source of the random core choices.
        power_sensor: Power sensor model (noise-free by default).
        ipc_sensor: IPC sensor model (noise-free by default).
        t_profile_k: Core temperature during the profiling run, used
            for the true static power behind the sensor reading.

    Returns:
        A :class:`ThreadProfile`.
    """
    power_sensor = power_sensor or PowerSensor()
    ipc_sensor = ipc_sensor or IpcSensor()
    n = workload.n_threads
    ceff = np.empty(n)
    ipc = np.empty(n)
    cores = []
    for i, app in enumerate(workload):
        core_id = int(rng.integers(chip.n_cores))
        cores.append(core_id)
        core = chip.cores[core_id]
        vdd = core.vf_table.vmax
        freq = core.vf_table.fmax
        true_dynamic = app.dynamic_power_at(vdd, freq)
        true_static = core.leakage.power(vdd, t_profile_k)
        measured_total = power_sensor.read(true_dynamic + true_static)
        # Manufacturer's static rating is at the reference temperature,
        # not the live one — an inherent (small) profiling error.
        static_rated = core.static_power_at(vdd)
        dynamic_est = max(measured_total - static_rated, 0.0)
        ceff[i] = dynamic_est / (vdd ** 2 * freq)
        ipc[i] = ipc_sensor.read(app.ipc_at(freq))
    return ThreadProfile(ceff_estimate=ceff, ipc_estimate=ipc,
                         profiling_core=tuple(cores))
