"""Discrete optimisation engines (exact MCKP branch and bound)."""

from .mckp import MckpItem, MckpSolution, solve_mckp

__all__ = ["MckpItem", "MckpSolution", "solve_mckp"]
