"""Exact multiple-choice knapsack (MCKP) solver.

The frozen-temperature DVFS-assignment problem is an MCKP: from each
thread's class of (power, throughput) operating points choose exactly
one per thread, maximising total throughput subject to a total power
budget. This module solves it *exactly* with the classical MCKP
branch and bound:

* classes are preprocessed with dominance pruning (a point costing
  more power for less throughput can never be chosen) and their upper
  convex hulls are extracted — on the hull, incremental efficiencies
  decrease, which makes Dantzig's greedy LP bound exact;
* each node evaluates the LP relaxation by walking a single globally
  pre-sorted list of hull upgrades (skipping fixed classes); the LP
  optimum is fractional in at most one class;
* branching fixes that *fractional class* to each of its items. When
  the LP optimum is integral it is also feasible, so the node yields
  an incumbent directly and closes.

Used by :class:`repro.pm.optimal.OptimalFrozen` as an exact reference
point between LinOpt's LP heuristic and the full thermally-coupled
SAnn search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

EPS = 1e-12


@dataclass(frozen=True)
class MckpItem:
    """One operating point: its weight (power) and value (throughput).

    ``index`` is the caller's identifier (the DVFS level).
    """

    index: int
    weight: float
    value: float


@dataclass(frozen=True)
class MckpSolution:
    """Exact MCKP outcome.

    Attributes:
        choice: Chosen item ``index`` per class (None if infeasible).
        value: Total value of the chosen items.
        weight: Total weight of the chosen items.
        nodes: Branch-and-bound nodes explored.
    """

    choice: Optional[Tuple[int, ...]]
    value: float
    weight: float
    nodes: int

    @property
    def is_feasible(self) -> bool:
        return self.choice is not None


def _prepare_class(items: Sequence[MckpItem]) -> List[MckpItem]:
    """Sort by weight and drop dominated items."""
    if not items:
        raise ValueError("empty MCKP class")
    by_weight = sorted(items, key=lambda it: (it.weight, -it.value))
    kept: List[MckpItem] = []
    best_value = -np.inf
    for item in by_weight:
        if item.value > best_value:
            kept.append(item)
            best_value = item.value
    return kept


def _upper_hull(cls: Sequence[MckpItem]) -> List[MckpItem]:
    """Upper convex hull of a dominance-pruned class in (w, v) space."""
    hull: List[MckpItem] = []
    for item in cls:  # sorted by weight, value strictly increasing
        while len(hull) >= 2:
            a, b = hull[-2], hull[-1]
            lhs = (item.value - a.value) * (b.weight - a.weight)
            rhs = (b.value - a.value) * (item.weight - a.weight)
            if lhs >= rhs:
                hull.pop()
            else:
                break
        hull.append(item)
    return hull


@dataclass(frozen=True)
class _Upgrade:
    """A hull step of one class: pay dw weight for dv value."""

    cls: int
    step: int  # index within the class hull (to item step+1)
    dw: float
    dv: float

    @property
    def efficiency(self) -> float:
        return self.dv / self.dw


class _Instance:
    """Preprocessed problem shared by all nodes."""

    def __init__(self, classes: Sequence[Sequence[MckpItem]]) -> None:
        self.classes = [_prepare_class(c) for c in classes]
        self.hulls = [_upper_hull(c) for c in self.classes]
        upgrades: List[_Upgrade] = []
        for ci, hull in enumerate(self.hulls):
            for si in range(len(hull) - 1):
                dw = hull[si + 1].weight - hull[si].weight
                dv = hull[si + 1].value - hull[si].value
                if dw > EPS:
                    upgrades.append(_Upgrade(ci, si, dw, dv))
        # Tie-break by (class, step) so a class's equal-efficiency
        # upgrades stay in step order — the greedy walk requires it.
        self.upgrades = sorted(
            upgrades, key=lambda u: (-u.efficiency, u.cls, u.step))
        self.n = len(self.classes)


def _lp_relaxation(inst: _Instance, fixed: Dict[int, MckpItem],
                   capacity: float):
    """Greedy LP bound over the unfixed classes.

    Returns ``(bound, fractional_class, hull_steps)`` where
    ``hull_steps[c]`` is the hull position the greedy reached for each
    unfixed class (the integral LP choice when no class is
    fractional), or ``(-inf, None, None)`` when infeasible.
    """
    weight = 0.0
    value = 0.0
    for item in fixed.values():
        weight += item.weight
        value += item.value
    steps: Dict[int, int] = {}
    for ci in range(inst.n):
        if ci in fixed:
            continue
        base = inst.hulls[ci][0]
        weight += base.weight
        value += base.value
        steps[ci] = 0
    if weight > capacity + 1e-9:
        return -np.inf, None, None
    remaining = capacity - weight
    for up in inst.upgrades:
        if up.cls in fixed:
            continue
        if steps[up.cls] != up.step:
            continue  # earlier hull step was skipped: not applicable
        if up.dw <= remaining + EPS:
            remaining -= up.dw
            value += up.dv
            steps[up.cls] = up.step + 1
        else:
            value += up.efficiency * remaining
            return value, up.cls, steps
    return value, None, steps


def solve_mckp(
    classes: Sequence[Sequence[MckpItem]],
    capacity: float,
    node_limit: int = 200_000,
) -> MckpSolution:
    """Solve the MCKP exactly.

    Args:
        classes: One sequence of items per class; exactly one item per
            class must be chosen.
        capacity: Total weight budget.
        node_limit: Safety cap on explored nodes.

    Returns:
        An :class:`MckpSolution`; ``choice`` is None when even the
        lightest selection exceeds the capacity.
    """
    if not classes:
        raise ValueError("need at least one class")
    inst = _Instance(classes)

    best_value = -np.inf
    best_fixed: Optional[Dict[int, MckpItem]] = None
    nodes = 0

    def consider_integral(fixed: Dict[int, MckpItem],
                          steps: Dict[int, int], value: float) -> None:
        nonlocal best_value, best_fixed
        if value > best_value + EPS:
            full = dict(fixed)
            for ci, step in steps.items():
                full[ci] = inst.hulls[ci][step]
            best_value = value
            best_fixed = full

    stack: List[Dict[int, MckpItem]] = [{}]
    while stack:
        fixed = stack.pop()
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError("MCKP node limit exceeded")
        bound, frac_cls, steps = _lp_relaxation(inst, fixed, capacity)
        if bound <= best_value + 1e-11:
            continue
        if frac_cls is None:
            # LP optimum integral -> feasible incumbent; node closed.
            consider_integral(fixed, steps, bound)
            continue
        # Branch: fix the fractional class to each of its items
        # (including non-hull items, which only branching can reach).
        for item in inst.classes[frac_cls]:
            child = dict(fixed)
            child[frac_cls] = item
            stack.append(child)

    if best_fixed is None:
        return MckpSolution(choice=None, value=-np.inf, weight=np.inf,
                            nodes=nodes)
    choice = [0] * inst.n
    total_weight = 0.0
    for ci, item in best_fixed.items():
        choice[ci] = item.index
        total_weight += item.weight
    return MckpSolution(choice=tuple(choice), value=float(best_value),
                        weight=float(total_weight), nodes=nodes)
