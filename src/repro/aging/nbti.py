"""NBTI-style wearout model (paper Section 8: "how our
variation-aware algorithms affect CMP wearout").

Negative-bias temperature instability shifts a PMOS transistor's
threshold voltage over time under (voltage, temperature) stress:

    dVth(t) = A * duty^n * (V / Vnom)^gamma * exp(-Ea / (k T)) * t^n

with the classic fractional-power time dependence (n ~ 1/6). Stress
accumulated across epochs with *different* operating conditions is
combined with the standard equivalent-time trick: the existing shift
is converted to the stress time that would have produced it at the
new conditions, the epoch is added, and the law is re-applied —
making accumulation order-consistent and saturating.

A core's Vth shift feeds back into both its critical paths (slower
fmax, re-binned V/f table) and its leakage (lower). The asymmetry the
paper anticipates: variation-aware policies concentrate load on the
fastest (lowest-Vth) cores, so those age fastest — the frequency
spread *self-levels* over the chip's lifetime.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..chip import ChipProfile, CoreDescriptor
from ..config import BOLTZMANN_EV, T_REF_K
from ..freq import build_vf_table

SECONDS_PER_MONTH = 30 * 24 * 3600.0


@dataclass(frozen=True)
class NbtiParams:
    """NBTI model constants.

    ``amplitude`` is calibrated so a core held at nominal conditions
    (V = Vnom, T = 80 C, duty 1.0) loses roughly 30 mV of Vth over
    three years — a typical guard-band figure.
    """

    amplitude: float = 0.0165
    time_exponent: float = 1.0 / 6.0
    activation_energy_ev: float = 0.12
    voltage_exponent: float = 2.0
    reference_temp_k: float = 353.15

    def __post_init__(self) -> None:
        if self.amplitude <= 0 or not 0 < self.time_exponent < 1:
            raise ValueError("bad NBTI constants")


def delta_vth(stress_time_s: float, t_kelvin: float, vdd: float,
              duty: float, params: Optional[NbtiParams] = None,
              vdd_nominal: float = 1.0) -> float:
    """Vth shift (V) after stressing at fixed conditions.

    Args:
        stress_time_s: Total stress time at these conditions.
        t_kelvin: Core temperature during stress.
        vdd: Supply voltage during stress.
        duty: Fraction of time the core was actually active.
        params: NBTI constants.
        vdd_nominal: Voltage the amplitude is referenced to.
    """
    params = params or NbtiParams()
    if stress_time_s < 0 or not 0 <= duty <= 1:
        raise ValueError("bad stress parameters")
    if stress_time_s == 0 or duty == 0:
        return 0.0
    arrhenius = np.exp(-params.activation_energy_ev
                       * (1.0 / (BOLTZMANN_EV * t_kelvin)
                          - 1.0 / (BOLTZMANN_EV * params.reference_temp_k)))
    v_term = (vdd / vdd_nominal) ** params.voltage_exponent
    months = stress_time_s / SECONDS_PER_MONTH
    return float(params.amplitude * duty ** params.time_exponent
                 * v_term * arrhenius
                 * months ** params.time_exponent)


def equivalent_stress_time(current_shift: float, t_kelvin: float,
                           vdd: float, duty: float,
                           params: Optional[NbtiParams] = None,
                           vdd_nominal: float = 1.0) -> float:
    """Stress time (s) that would produce ``current_shift`` at the
    given conditions — the equivalent-time accumulation trick."""
    params = params or NbtiParams()
    if current_shift <= 0:
        return 0.0
    probe = delta_vth(SECONDS_PER_MONTH, t_kelvin, vdd, duty, params,
                      vdd_nominal)
    if probe <= 0:
        return 0.0
    # delta ~ t^n  =>  t = month * (shift / probe)^(1/n)
    ratio = current_shift / probe
    return SECONDS_PER_MONTH * ratio ** (1.0 / params.time_exponent)


class AgingState:
    """Cumulative per-core Vth shifts of one die."""

    def __init__(self, n_cores: int,
                 params: Optional[NbtiParams] = None) -> None:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        self.params = params or NbtiParams()
        self.shifts = np.zeros(n_cores)

    def apply_epoch(self, epoch_s: float, vdd: Sequence[float],
                    t_kelvin: Sequence[float],
                    duty: Sequence[float]) -> None:
        """Accumulate one epoch of stress on every core."""
        vdd = np.asarray(vdd, dtype=float)
        temps = np.asarray(t_kelvin, dtype=float)
        duty = np.asarray(duty, dtype=float)
        if not (vdd.shape == temps.shape == duty.shape
                == self.shifts.shape):
            raise ValueError("per-core arrays must match core count")
        for i in range(self.shifts.size):
            if duty[i] <= 0:
                continue  # idle (power-gated) cores do not stress
            t_eq = equivalent_stress_time(
                self.shifts[i], temps[i], vdd[i], duty[i], self.params)
            self.shifts[i] = delta_vth(
                t_eq + epoch_s, temps[i], vdd[i], duty[i], self.params)


def aged_chip(chip: ChipProfile, shifts: Sequence[float]) -> ChipProfile:
    """Re-bin a chip with per-core Vth shifts applied.

    Frequency models, V/f tables, leakage models and the rated static
    power are all rebuilt — the manufacturer's tables are effectively
    refreshed, as a field re-characterisation would.
    """
    shifts = np.asarray(shifts, dtype=float)
    if shifts.shape != (chip.n_cores,):
        raise ValueError("need one Vth shift per core")
    if np.any(shifts < 0):
        raise ValueError("NBTI shifts are non-negative")
    new_cores: List[CoreDescriptor] = []
    for core, dv in zip(chip.cores, shifts):
        freq_model = core.freq_model.shifted(float(dv))
        leakage = core.leakage.shifted(float(dv))
        vf_table = build_vf_table(freq_model, chip.tech, chip.arch)
        new_cores.append(CoreDescriptor(
            core_id=core.core_id,
            vf_table=vf_table,
            freq_model=freq_model,
            leakage=leakage,
            static_power_rated=leakage.power(chip.tech.vdd_max, T_REF_K),
        ))
    return dataclasses.replace(chip, cores=tuple(new_cores))
