"""Wearout extension: NBTI aging model (paper Section 8)."""

from .nbti import (
    AgingState,
    NbtiParams,
    SECONDS_PER_MONTH,
    aged_chip,
    delta_vth,
    equivalent_stress_time,
)

__all__ = [
    "AgingState",
    "NbtiParams",
    "SECONDS_PER_MONTH",
    "aged_chip",
    "delta_vth",
    "equivalent_stress_time",
]
