"""Linear programming engines for LinOpt (two-phase Simplex family).

Three cross-checked engines live here: the tableau reference solver
(:mod:`.simplex`), the warm-started bounded-variable engine
(:mod:`.bounded`), and an optional scipy/HiGHS wrapper — all unified
behind the :mod:`.backends` seam (``REPRO_LP_BACKEND``).
"""

from .backends import (
    DEFAULT_BACKEND,
    ENV_VAR,
    BoundedSimplexBackend,
    HighsBackend,
    LpBackend,
    LpProblem,
    ReferenceSimplexBackend,
    make_backend,
)
from .bounded import WarmState, solve_bounded
from .simplex import (
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    STATUS_UNBOUNDED,
    LpResult,
    solve_lp_maximize,
)

__all__ = [
    "BoundedSimplexBackend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "HighsBackend",
    "LpBackend",
    "LpProblem",
    "LpResult",
    "ReferenceSimplexBackend",
    "STATUS_INFEASIBLE",
    "STATUS_OPTIMAL",
    "STATUS_UNBOUNDED",
    "WarmState",
    "make_backend",
    "solve_bounded",
    "solve_lp_maximize",
]
