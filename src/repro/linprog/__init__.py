"""From-scratch linear programming (two-phase Simplex)."""

from .simplex import (
    LpResult,
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    STATUS_UNBOUNDED,
    solve_lp_maximize,
)

__all__ = [
    "LpResult",
    "STATUS_INFEASIBLE",
    "STATUS_OPTIMAL",
    "STATUS_UNBOUNDED",
    "solve_lp_maximize",
]
