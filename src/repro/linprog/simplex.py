"""Dense two-phase Simplex linear-programming solver.

Solves problems of the form used by LinOpt (Section 4.3.1):

    maximize    c^T x
    subject to  A x <= b
                0 <= x  (and optionally x <= upper)

The implementation is the classic tableau Simplex from Numerical
Recipes lineage: phase 1 drives artificial variables out of the basis
when the all-slack start is infeasible; phase 2 optimises the true
objective. Dantzig pricing is used, with a Bland's-rule fallback after
a degeneracy threshold to guarantee termination.

The solver counts floating-point work (``flops``); the Fig. 15
experiment converts that count into execution time on a 4 GHz core.
The accounting is shared with :mod:`repro.linprog.bounded` so LP time
is comparable across pricing modes and backends:

* entering-variable scan — one flop per scanned column, charged
  identically by the Dantzig (``argmin``) and Bland (first negative)
  branches;
* ratio test — ``3 m`` flops: forming the ratios (compare + divide,
  ``2 m``) plus the tie-break scan (``m``);
* pivot — ``2 * table.size`` flops (scale row + rank-1 update).

This module is the *bitwise reference*: the faster engines in
:mod:`repro.linprog.bounded` and the optional HiGHS backend
(:mod:`repro.linprog.backends`) are cross-checked against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

# Numerical tolerance for reduced costs / feasibility.
EPS = 1e-9
# Switch from Dantzig pricing to Bland's rule after this many pivots
# without objective improvement (anti-cycling).
BLAND_THRESHOLD = 40
MAX_PIVOTS = 10_000

STATUS_OPTIMAL = "optimal"
STATUS_INFEASIBLE = "infeasible"
STATUS_UNBOUNDED = "unbounded"


@dataclass
class LpResult:
    """Outcome of one LP solve.

    Attributes:
        status: "optimal", "infeasible" or "unbounded".
        x: Optimal variable values (zeros unless optimal).
        objective: Optimal objective value (``nan`` unless optimal).
        iterations: Total Simplex pivots across both phases (for the
            bounded engine this includes bound flips; for the HiGHS
            backend it is the solver-reported iteration count).
        flops: Approximate floating-point operations performed (0 for
            the HiGHS backend, which does not expose its work count).
        backend: Name of the backend that produced the result.
        warm: Whether the solve reused a previous basis (bounded
            engine only).
    """

    status: str
    x: np.ndarray
    objective: float
    iterations: int
    flops: int
    backend: str = "reference"
    warm: bool = False

    @property
    def is_optimal(self) -> bool:
        return self.status == STATUS_OPTIMAL


class _Tableau:
    """Mutable Simplex tableau with pivot bookkeeping."""

    def __init__(self, table: np.ndarray, basis: np.ndarray) -> None:
        self.table = table
        self.basis = basis
        self.pivots = 0
        self.flops = 0

    def pivot(self, row: int, col: int) -> None:
        t = self.table
        t[row] /= t[row, col]
        pivot_col = t[:, col].copy()
        pivot_col[row] = 0.0
        t -= np.outer(pivot_col, t[row])
        # Guard against drift: the pivot column must become a unit vector.
        t[:, col] = 0.0
        t[row, col] = 1.0
        self.basis[row] = col
        self.pivots += 1
        self.flops += 2 * t.size

    def run(self, n_cols: int) -> str:
        """Optimise the last row's objective; returns a status string.

        ``n_cols`` restricts entering-variable choice. Both phases pass
        ``n + n_slack``: phase 2 to exclude artificial columns from the
        true objective, and phase 1 so artificial variables that have
        already left the basis can never *re-enter* as pivot columns —
        re-admitting them lets phase 1 churn on wasted pivots and
        inflates the pivot/flop counts Fig. 15 reports.
        """
        stall = 0
        last_obj = self.table[-1, -1]
        while self.pivots < MAX_PIVOTS:
            costs = self.table[-1, :n_cols]
            # Entering scan: one comparison per scanned column, charged
            # identically whichever pricing branch runs.
            self.flops += n_cols
            if stall > BLAND_THRESHOLD:
                candidates = np.nonzero(costs < -EPS)[0]
                col = int(candidates[0]) if candidates.size else -1
            else:
                col = int(np.argmin(costs))
                if costs[col] >= -EPS:
                    col = -1
            if col < 0:
                return STATUS_OPTIMAL
            ratios = self._ratio_test(col)
            if ratios is None:
                return STATUS_UNBOUNDED
            self.pivot(*ratios)
            obj = self.table[-1, -1]
            stall = stall + 1 if obj <= last_obj + EPS else 0
            last_obj = obj
        raise RuntimeError("simplex exceeded pivot limit")

    def _ratio_test(self, col: int) -> Optional[Tuple[int, int]]:
        t = self.table
        column = t[:-1, col]
        rhs = t[:-1, -1]
        # Ratios (compare + divide) plus the tie-break scan below: the
        # tie-break walks the whole ratio vector, so it is charged like
        # the other full-column passes.
        self.flops += 3 * column.size
        positive = column > EPS
        if not np.any(positive):
            return None
        ratios = np.full(column.shape, np.inf)
        ratios[positive] = rhs[positive] / column[positive]
        best = np.min(ratios)
        # Bland-style tie-break: smallest basis index among the ties.
        ties = np.nonzero(ratios <= best + EPS)[0]
        row = int(ties[np.argmin(self.basis[ties])])
        return row, col


def solve_lp_maximize(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    upper: Optional[np.ndarray] = None,
) -> LpResult:
    """Maximise ``c @ x`` subject to ``a_ub @ x <= b_ub`` and bounds.

    Args:
        c: Objective coefficients, shape (n,).
        a_ub: Inequality matrix, shape (m, n).
        b_ub: Inequality right-hand sides, shape (m,).
        upper: Optional per-variable upper bounds (appended as rows).

    Returns:
        An :class:`LpResult`.
    """
    c = np.asarray(c, dtype=float)
    a = np.atleast_2d(np.asarray(a_ub, dtype=float))
    b = np.asarray(b_ub, dtype=float)
    n = c.size
    if a.shape[1] != n or a.shape[0] != b.size:
        raise ValueError("inconsistent LP dimensions")
    if upper is not None:
        upper = np.asarray(upper, dtype=float)
        if upper.shape != (n,):
            raise ValueError("upper bounds must match variable count")
        a = np.vstack([a, np.eye(n)])
        b = np.concatenate([b, upper])
    m = a.shape[0]

    # Normalise rows so negative RHS rows get artificial variables.
    signs = np.where(b < 0, -1.0, 1.0)
    a = a * signs[:, None]
    b = b * signs
    slack_sign = signs  # slack coefficient is +1 on original rows, -1 flipped
    needs_artificial = slack_sign < 0
    n_art = int(needs_artificial.sum())

    n_slack = m
    total = n + n_slack + n_art
    table = np.zeros((m + 1, total + 1))
    table[:m, :n] = a
    table[:m, n:n + n_slack] = np.diag(slack_sign)
    art_cols = []
    k = 0
    for i in range(m):
        if needs_artificial[i]:
            col = n + n_slack + k
            table[i, col] = 1.0
            art_cols.append(col)
            k += 1
    table[:m, -1] = b

    basis = np.zeros(m, dtype=int)
    for i in range(m):
        if needs_artificial[i]:
            basis[i] = art_cols.pop(0)
        else:
            basis[i] = n + i
    tab = _Tableau(table, basis)

    if n_art > 0:
        # Phase 1: minimise sum of artificials == maximise -sum.
        table[-1, :] = 0.0
        table[-1, n + n_slack:total] = 1.0
        # Make reduced costs consistent with the starting basis.
        for i in range(m):
            if basis[i] >= n + n_slack:
                table[-1, :] -= table[i, :]
        # Scan only structural + slack columns: an artificial that has
        # left the basis must never re-enter (it cannot lower the
        # phase-1 objective at the optimum, and re-admitting it wastes
        # pivots on degenerate churn).
        status = tab.run(n + n_slack)
        if status != STATUS_OPTIMAL or table[-1, -1] < -1e-7:
            return LpResult(STATUS_INFEASIBLE, np.zeros(n), float("nan"),
                            tab.pivots, tab.flops)
        # Drive any remaining artificial variables out of the basis. A
        # row with no usable pivot is a redundant (linearly dependent)
        # constraint: leaving its artificial basic while zeroing the
        # artificial columns would break the basis invariant (every
        # basic column a unit vector) and corrupt phase 2, so such
        # rows are dropped from the tableau instead.
        redundant = []
        for i in range(m):
            if basis[i] >= n + n_slack:
                row_coeffs = np.abs(table[i, :n + n_slack])
                j = int(np.argmax(row_coeffs))
                if row_coeffs[j] > EPS:
                    tab.pivot(i, j)
                else:
                    redundant.append(i)
        if redundant:
            table = np.delete(table, redundant, axis=0)
            basis = np.delete(basis, redundant)
            m -= len(redundant)
            tab.table = table
            tab.basis = basis
        table[:, n + n_slack:total] = 0.0

    # Phase 2: true objective. Row = -c expressed in current basis.
    table[-1, :] = 0.0
    table[-1, :n] = -c
    for i in range(m):
        if basis[i] < n and abs(c[basis[i]]) > 0:
            table[-1, :] += c[basis[i]] * table[i, :]
    status = tab.run(n + n_slack)
    if status != STATUS_OPTIMAL:
        return LpResult(status, np.zeros(n), float("nan"),
                        tab.pivots, tab.flops)

    x = np.zeros(n)
    for i in range(m):
        if basis[i] < n:
            x[basis[i]] = table[i, -1]
    return LpResult(STATUS_OPTIMAL, x, float(c @ x), tab.pivots, tab.flops)
