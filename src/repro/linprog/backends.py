"""Pluggable LP backend seam for LinOpt's per-interval solves.

LinOpt re-solves a near-identical LP every 10 ms interval (Section
4.3.1), so the solver sits on a hot path *and* feeds Fig. 15's
flops-to-time model. This module wraps the available engines behind a
single :class:`LpBackend` interface so the power manager can swap
between them without caring which is active:

* ``reference`` — :func:`repro.linprog.simplex.solve_lp_maximize`,
  the bitwise reference (upper bounds appended as rows);
* ``bounded`` (default) — :func:`repro.linprog.bounded.solve_bounded`
  with warm-started re-solves, carrying a :class:`WarmState` across
  calls;
* ``highs`` — ``scipy.optimize.linprog(method="highs")``, optional and
  import-guarded; used to cross-check the from-scratch engines.

The active backend is chosen by :func:`make_backend`, which reads the
``REPRO_LP_BACKEND`` environment variable when no explicit spec is
given — the same seam shape PR 4 used for ``EvalKernel``.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from .bounded import WarmState, solve_bounded
from .simplex import (
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    STATUS_UNBOUNDED,
    LpResult,
    solve_lp_maximize,
)

# Environment variable naming the backend when none is passed in code.
ENV_VAR = "REPRO_LP_BACKEND"
DEFAULT_BACKEND = "bounded"


@dataclass(frozen=True)
class LpProblem:
    """One LinOpt-shaped LP: maximise ``c @ x`` under row constraints.

    Attributes:
        c: Objective coefficients, shape (n,).
        a_ub: Inequality matrix (``a_ub @ x <= b_ub``), shape (m, n).
        b_ub: Inequality right-hand sides, shape (m,).
        upper: Optional per-variable upper bounds (``0 <= x <= upper``;
            ``None`` leaves variables unbounded above).
    """

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    upper: Optional[np.ndarray] = None


class LpBackend(ABC):
    """Interface every LP engine implements.

    Backends may keep cross-solve state (the bounded engine carries the
    previous optimal basis for warm starts); :meth:`reset` drops it,
    e.g. when the caller switches to an unrelated problem sequence.
    """

    #: Short name recorded in ``LpResult.backend``.
    name: str = "abstract"

    @abstractmethod
    def solve(self, problem: LpProblem) -> LpResult:
        """Solve one problem and return an :class:`LpResult`."""

    def reset(self) -> None:
        """Drop any cross-solve state (no-op for stateless backends)."""


class ReferenceSimplexBackend(LpBackend):
    """The from-scratch two-phase tableau solver (bitwise reference)."""

    name = "reference"

    def solve(self, problem: LpProblem) -> LpResult:
        """Cold-solve via :func:`solve_lp_maximize`."""
        return solve_lp_maximize(problem.c, problem.a_ub,
                                 problem.b_ub, upper=problem.upper)


class BoundedSimplexBackend(LpBackend):
    """Bounded-variable engine with warm-started re-solves.

    Holds the :class:`WarmState` from the previous optimal solve and
    feeds it to the next call; :func:`solve_bounded` validates it
    against the new data and silently falls back to a cold solve when
    it is stale, so correctness never depends on the carried state.
    """

    name = "bounded"

    def __init__(self, warm_start: bool = True) -> None:
        """``warm_start=False`` forces every solve cold (for tests)."""
        self.warm_start = warm_start
        self._warm: Optional[WarmState] = None

    def solve(self, problem: LpProblem) -> LpResult:
        """Solve, reusing the previous basis when it is still valid."""
        warm = self._warm if self.warm_start else None
        result, self._warm = solve_bounded(
            problem.c, problem.a_ub, problem.b_ub,
            upper=problem.upper, warm=warm)
        return result

    def reset(self) -> None:
        """Discard the carried warm-start basis."""
        self._warm = None


class HighsBackend(LpBackend):
    """``scipy.optimize.linprog`` (HiGHS) cross-check backend.

    Reports ``flops=0`` — HiGHS does not expose a work count, so
    Fig. 15's flops-to-time model has nothing to convert (the
    experiment documents this; see EXPERIMENTS.md).
    """

    name = "highs"

    # scipy linprog status codes -> our status strings.
    _STATUS_MAP = {
        0: STATUS_OPTIMAL,
        2: STATUS_INFEASIBLE,
        3: STATUS_UNBOUNDED,
    }

    @staticmethod
    def available() -> bool:
        """Whether scipy's ``linprog`` can be imported."""
        try:
            from scipy.optimize import linprog  # noqa: F401
        except ImportError:  # pragma: no cover - scipy is a core dep
            return False
        return True

    def solve(self, problem: LpProblem) -> LpResult:
        """Solve via HiGHS; raises ImportError when scipy is absent."""
        from scipy.optimize import linprog

        c = np.asarray(problem.c, dtype=float)
        n = c.size
        if problem.upper is None:
            bounds = [(0.0, None)] * n
        else:
            upper = np.asarray(problem.upper, dtype=float)
            bounds = [(0.0, float(u)) for u in upper]
        res = linprog(-c, A_ub=problem.a_ub, b_ub=problem.b_ub,
                      bounds=bounds, method="highs")
        status = self._STATUS_MAP.get(int(res.status),
                                      STATUS_INFEASIBLE)
        iterations = int(res.nit) if res.nit is not None else 0
        if status != STATUS_OPTIMAL or res.x is None:
            return LpResult(status, np.zeros(n), float("nan"),
                            iterations, 0, backend=self.name)
        x = np.asarray(res.x, dtype=float)
        return LpResult(STATUS_OPTIMAL, x, float(c @ x),
                        iterations, 0, backend=self.name)


_REGISTRY = {
    "reference": ReferenceSimplexBackend,
    "bounded": BoundedSimplexBackend,
    "highs": HighsBackend,
}


def make_backend(
    spec: Union[str, LpBackend, None] = None,
) -> LpBackend:
    """Resolve a backend spec into a fresh :class:`LpBackend`.

    Args:
        spec: A backend name (``"reference"``, ``"bounded"``,
            ``"highs"``), an existing :class:`LpBackend` instance
            (returned as-is, so callers can inject configured or mock
            backends), or ``None`` to consult the ``REPRO_LP_BACKEND``
            environment variable and fall back to ``"bounded"``.

    Returns:
        An :class:`LpBackend` ready to solve.

    Raises:
        ValueError: for an unknown backend name.
        ImportError: for ``"highs"`` when scipy is not installed.
    """
    if isinstance(spec, LpBackend):
        return spec
    name = spec if spec is not None else os.environ.get(
        ENV_VAR, DEFAULT_BACKEND)
    name = name.strip().lower()
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown LP backend {name!r}; expected one of "
            f"{sorted(_REGISTRY)}")
    if name == "highs" and not HighsBackend.available():
        raise ImportError(
            "LP backend 'highs' requires scipy.optimize.linprog")
    return _REGISTRY[name]()
