"""Bounded-variable two-phase Simplex with warm-started re-solves.

The reference solver (:mod:`repro.linprog.simplex`) handles upper
bounds by appending ``np.eye(n)`` rows, growing the tableau from
``m x (m + n)`` to ``(m + n) x (m + 2n)``. This engine pivots the
bounds natively — nonbasic variables may rest at either bound, the
ratio test considers basic variables hitting *both* bounds plus the
entering variable flipping to its opposite bound — so LinOpt's
(budget row + per-core rows + box bounds) LP keeps its natural
``(n + 1) x (2n + 1)`` tableau.

Warm starts exploit LinOpt's 10 ms re-invocation loop (Section 4.3.1):
successive solves differ only in objective/RHS drift, so the previous
optimal basis is usually primal feasible and at most a handful of
pivots from optimal. :func:`solve_bounded` accepts the
:class:`WarmState` returned by the previous call, validates it against
the *new* data (see ``WarmState``), and falls back to a cold two-phase
solve whenever the stale basis is unusable.

Determinism anchor: at optimality the solution is *recomputed
canonically* from the final ``(basis, at_upper)`` pair via one
``np.linalg.solve`` against the original column data, so the returned
``x`` is a pure function of the final basis — a warm solve that ends
in the same basis as a cold solve returns bitwise-identical ``x``
regardless of the pivot path taken to get there. The regression suite
pins this on LinOpt-shaped interval campaigns.

Flop accounting follows the unified rules documented in
:mod:`repro.linprog.simplex` (entering scan ``n_cols``, ratio test
``3 m``, pivot ``2 * table.size``), plus bounded-engine specifics:
a bound flip charges ``2 m`` (RHS update) and a warm tableau rebuild
charges ``m^2 (N + 1) + m^3`` (factor + multi-RHS solve).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .simplex import (
    BLAND_THRESHOLD,
    EPS,
    MAX_PIVOTS,
    STATUS_INFEASIBLE,
    STATUS_OPTIMAL,
    STATUS_UNBOUNDED,
    LpResult,
)

# Residual sum of artificial variables above which phase 1 declares
# the problem infeasible (matches the reference solver).
_FEAS_TOL = 1e-7
# Bound tolerance when validating a stale basis for warm start.
_WARM_TOL = 1e-9


@dataclass
class WarmState:
    """Reusable outcome of a bounded-variable solve.

    Attributes:
        basis: Variable index basic in each row (structural ``0..n``,
            slack ``n..n+m``; never an artificial).
        at_upper: Per-variable flag: nonbasic at its *upper* bound.
        n: Structural variable count of the originating problem.
        m: Constraint row count of the originating problem.

    A stale state must be **discarded** (cold solve) when any of the
    following hold for the new problem — these are the warm-start
    invariants DESIGN.md §15 documents:

    * the problem shape changed (``n`` or ``m`` differ);
    * the basis matrix built from the new columns is singular;
    * the basic point it induces violates a bound by more than
      ``1e-9`` (RHS drifted past the old vertex);
    * the originating solve dropped redundant rows or ended non-optimal
      (such solves return ``None`` instead of a state).
    """

    basis: np.ndarray
    at_upper: np.ndarray
    n: int
    m: int


class _BoundedTableau:
    """Mutable bounded-variable tableau with pivot bookkeeping.

    The RHS column stores the *values of the basic variables* (not
    ``B^-1 b``): contributions of nonbasic-at-upper variables are
    folded in, and every pivot recomputes the column explicitly from
    the ratio-test step so all four leave/enter bound combinations
    stay consistent.
    """

    def __init__(self, table: np.ndarray, basis: np.ndarray,
                 at_upper: np.ndarray, upper_ext: np.ndarray) -> None:
        self.table = table
        self.basis = basis
        self.at_upper = at_upper
        self.upper_ext = upper_ext
        self.pivots = 0
        self.flops = 0

    @property
    def n_rows(self) -> int:
        """Constraint rows currently in the tableau."""
        return self.table.shape[0] - 1

    def run(self, n_cols: int) -> str:
        """Optimise the last row's objective; returns a status string.

        ``n_cols`` restricts entering-variable choice to structural +
        slack columns in both phases (artificials never re-enter).
        """
        stall = 0
        while self.pivots < MAX_PIVOTS:
            costs = self.table[-1, :n_cols]
            # Effective cost: an at-upper nonbasic improves by
            # *decreasing*, which negates its reduced cost.
            eff = np.where(self.at_upper[:n_cols], -costs, costs)
            self.flops += n_cols
            if stall > BLAND_THRESHOLD:
                candidates = np.nonzero(eff < -EPS)[0]
                col = int(candidates[0]) if candidates.size else -1
            else:
                col = int(np.argmin(eff))
                if eff[col] >= -EPS:
                    col = -1
            if col < 0:
                return STATUS_OPTIMAL
            direction = -1.0 if self.at_upper[col] else 1.0
            step = self._ratio_test(col, direction)
            if step is None:
                return STATUS_UNBOUNDED
            t_star, row, to_upper = step
            if row < 0:
                self._bound_flip(col, direction, t_star)
            else:
                self.pivot(row, col, direction, t_star, to_upper)
            improvement = -float(eff[col]) * t_star
            stall = stall + 1 if improvement <= EPS else 0
        raise RuntimeError("bounded simplex exceeded pivot limit")

    def _ratio_test(
            self, col: int, direction: float,
    ) -> Optional[Tuple[float, int, bool]]:
        """Largest step for the entering column.

        Returns ``(t_star, row, leaves_to_upper)`` where ``row < 0``
        encodes a bound flip (the entering variable reaches its own
        opposite bound first), or ``None`` when the LP is unbounded.
        """
        m = self.n_rows
        move = direction * self.table[:m, col]
        xb = self.table[:m, -1]
        ub_basic = self.upper_ext[self.basis]
        self.flops += 3 * m
        # Basic variable driven down to its lower bound (0).
        limits = np.full(m, np.inf)
        dec = move > EPS
        limits[dec] = np.maximum(xb[dec], 0.0) / move[dec]
        # Basic variable driven up to its (finite) upper bound.
        inc = (move < -EPS) & np.isfinite(ub_basic)
        limits[inc] = np.minimum(
            limits[inc],
            np.maximum(ub_basic[inc] - xb[inc], 0.0) / -move[inc])
        row_limit = float(limits.min()) if m else np.inf
        flip_limit = float(self.upper_ext[col])
        if not np.isfinite(min(row_limit, flip_limit)):
            return None
        if flip_limit <= row_limit:
            return flip_limit, -1, False
        ties = np.nonzero(limits <= row_limit + EPS)[0]
        # Bland-style tie-break: smallest basis index among the ties.
        row = int(ties[np.argmin(self.basis[ties])])
        return float(limits[row]), row, bool(move[row] < 0)

    def _bound_flip(self, col: int, direction: float, t: float) -> None:
        """Move a nonbasic variable to its opposite bound (no pivot)."""
        m = self.n_rows
        self.table[:m, -1] -= direction * self.table[:m, col] * t
        self.at_upper[col] = not self.at_upper[col]
        self.pivots += 1
        self.flops += 2 * m

    def pivot(self, row: int, col: int, direction: float,
              t: float, leaves_to_upper: bool) -> None:
        """Exchange ``basis[row]`` for ``col`` after a step of ``t``."""
        table = self.table
        m = self.n_rows
        new_xb = table[:m, -1] - direction * table[:m, col] * t
        entering_value = direction * t + (
            self.upper_ext[col] if self.at_upper[col] else 0.0)
        leaving = int(self.basis[row])
        table[row] /= table[row, col]
        pivot_col = table[:, col].copy()
        pivot_col[row] = 0.0
        table -= np.outer(pivot_col, table[row])
        # Guard against drift: the pivot column must become a unit
        # vector exactly (the entering scans compare against EPS).
        table[:, col] = 0.0
        table[row, col] = 1.0
        table[:m, -1] = new_xb
        table[row, -1] = entering_value
        self.basis[row] = col
        self.at_upper[col] = False
        self.at_upper[leaving] = (
            leaves_to_upper and bool(np.isfinite(self.upper_ext[leaving])))
        self.pivots += 1
        self.flops += 2 * table.size


class _BoundedSolve:
    """One bounded-variable solve: cold two-phase or warm re-solve."""

    def __init__(self, c: np.ndarray, a: np.ndarray, b: np.ndarray,
                 upper: np.ndarray) -> None:
        self.c = c
        self.a = a
        self.b = b
        self.upper = upper
        self.n = c.size
        self.m = a.shape[0]
        self.n_vars = self.n + self.m
        self.upper_full = np.concatenate(
            [upper, np.full(self.m, np.inf)])
        self.tab: Optional[_BoundedTableau] = None
        self.kept = np.arange(self.m)
        self.used_warm = False
        self.extra_flops = 0
        self._columns: Optional[np.ndarray] = None
        self._warm_xb: Optional[np.ndarray] = None

    def columns(self) -> np.ndarray:
        """Canonical column matrix ``[A | I]`` (original row signs)."""
        if self._columns is None:
            self._columns = np.hstack([self.a, np.eye(self.m)])
        return self._columns

    # ------------------------------------------------------------------
    # Cold path: flip negative-RHS rows, phase 1 on artificials,
    # phase 2 on the true objective.
    # ------------------------------------------------------------------
    def solve_cold(self) -> str:
        """Two-phase solve from the all-slack starting basis."""
        n, m, n_vars = self.n, self.m, self.n_vars
        signs = np.where(self.b < 0, -1.0, 1.0)
        a_s = self.a * signs[:, None]
        b_s = self.b * signs
        needs_art = signs < 0
        art_rows = np.nonzero(needs_art)[0]
        n_art = art_rows.size

        table = np.zeros((m + 1, n_vars + n_art + 1))
        table[:m, :n] = a_s
        table[np.arange(m), n + np.arange(m)] = signs
        table[art_rows, n_vars + np.arange(n_art)] = 1.0
        table[:m, -1] = b_s

        basis = n + np.arange(m)
        basis[art_rows] = n_vars + np.arange(n_art)
        at_upper = np.zeros(n_vars + n_art, dtype=bool)
        upper_ext = np.concatenate(
            [self.upper_full, np.full(n_art, np.inf)])
        self.tab = _BoundedTableau(table, basis, at_upper, upper_ext)

        if n_art:
            # Phase 1: minimise the artificial sum == maximise -sum.
            table[-1, :] = 0.0
            table[-1, n_vars:n_vars + n_art] = 1.0
            for i in art_rows:
                table[-1, :] -= table[i, :]
            status = self.tab.run(n_vars)
            if status != STATUS_OPTIMAL:
                return STATUS_INFEASIBLE
            residual = float(table[:m, -1][basis >= n_vars].sum())
            if residual > _FEAS_TOL:
                return STATUS_INFEASIBLE
            self._purge_artificials()

        self._install_phase2_costs()
        return self.tab.run(self.n_vars)

    def _purge_artificials(self) -> None:
        """Drive leftover artificials out; drop redundant rows.

        A basic artificial whose row has no usable pivot marks a
        linearly dependent constraint: the row is removed (keeping it
        would break the unit-column basis invariant), and the solve is
        flagged non-reusable for warm starts.
        """
        tab = self.tab
        redundant = []
        for i in range(tab.n_rows):
            if tab.basis[i] >= self.n_vars:
                row_coeffs = np.abs(tab.table[i, :self.n_vars])
                j = int(np.argmax(row_coeffs))
                if row_coeffs[j] > EPS:
                    direction = -1.0 if tab.at_upper[j] else 1.0
                    tab.pivot(i, j, direction, 0.0, False)
                else:
                    redundant.append(i)
        if redundant:
            tab.table = np.delete(tab.table, redundant, axis=0)
            tab.basis = np.delete(tab.basis, redundant)
            self.kept = np.delete(self.kept, redundant)
        # Artificial columns are dead from here on: slice them off so
        # phase-2 pivots stop paying for them.
        tab.table = np.hstack(
            [tab.table[:, :self.n_vars], tab.table[:, -1:]])
        tab.at_upper = tab.at_upper[:self.n_vars]
        tab.upper_ext = self.upper_full

    # ------------------------------------------------------------------
    # Warm path: rebuild the tableau from a previous basis.
    # ------------------------------------------------------------------
    def solve_warm(self, warm: WarmState) -> Optional[str]:
        """Re-solve from a previous basis; ``None`` if it is stale."""
        if warm.n != self.n or warm.m != self.m:
            return None
        basis = np.array(warm.basis, dtype=int, copy=True)
        if basis.shape != (self.m,) or np.any(basis < 0) \
                or np.any(basis >= self.n_vars):
            return None
        at_upper = np.array(warm.at_upper, dtype=bool, copy=True)
        if at_upper.shape != (self.n_vars,):
            return None
        # A bound that widened to +inf can no longer host a nonbasic.
        at_upper &= np.isfinite(self.upper_full)
        at_upper[basis] = False
        # Sort the basis (rows of the rebuilt tableau are equations —
        # their order is free) so the feasibility solve below is the
        # exact computation :meth:`extract` performs, and a zero-pivot
        # warm solve can reuse it bitwise.
        basis = np.sort(basis)

        columns = self.columns()
        up_idx = np.nonzero(at_upper)[0]
        b_eff = self.b - columns[:, up_idx] @ self.upper_full[up_idx]
        try:
            basic_cols = columns[:, basis]
            xb = np.linalg.solve(basic_cols, b_eff)
            body = np.linalg.solve(basic_cols, columns)
        except np.linalg.LinAlgError:
            return None
        ub_basic = self.upper_full[basis]
        if np.any(xb < -_WARM_TOL) or np.any(xb > ub_basic + _WARM_TOL):
            return None

        m, n_vars = self.m, self.n_vars
        table = np.zeros((m + 1, n_vars + 1))
        table[:m, :n_vars] = body
        table[:m, -1] = xb
        # Enforce exact unit basis columns (the solve leaves ~1e-16
        # residue that the EPS scans must not see).
        table[:, basis] = 0.0
        table[np.arange(m), basis] = 1.0
        self.tab = _BoundedTableau(table, basis, at_upper,
                                   self.upper_full)
        self.tab.flops += m * m * (n_vars + 1) + m ** 3
        self.used_warm = True
        self._warm_xb = xb.copy()
        self._install_phase2_costs()
        return self.tab.run(n_vars)

    # ------------------------------------------------------------------
    # Shared machinery.
    # ------------------------------------------------------------------
    def _install_phase2_costs(self) -> None:
        """Write the true objective's reduced costs into the last row."""
        tab = self.tab
        table = tab.table
        table[-1, :] = 0.0
        table[-1, :self.n] = -self.c
        structural = tab.basis < self.n
        if np.any(structural):
            table[-1, :] += (self.c[tab.basis[structural]]
                             @ table[:-1][structural])
        table[-1, tab.basis] = 0.0

    def extract(self) -> np.ndarray:
        """Recover ``x`` from the final basis.

        The canonical path solves ``B x_B = b - A_U u`` against the
        *original* column data, making ``x`` a pure function of the
        final ``(basis, at_upper)`` pair — the warm-vs-cold bitwise
        guarantee. When redundant rows were dropped (warm start is
        disabled then anyway) the tableau RHS is read directly, like
        the reference solver does.
        """
        tab = self.tab
        x_full = np.zeros(self.n_vars)
        up_idx = np.nonzero(tab.at_upper[:self.n_vars])[0]
        x_full[up_idx] = self.upper_full[up_idx]
        if self.used_warm and tab.pivots == 0:
            # Zero-iteration warm solve: the feasibility solve already
            # computed exactly what the canonical recompute would (the
            # basis was sorted up front), so reuse it bitwise.
            x_full[tab.basis] = self._warm_xb
            return x_full[:self.n]
        if self.kept.size == self.m:
            columns = self.columns()
            b_eff = (self.b
                     - columns[:, up_idx] @ self.upper_full[up_idx])
            # Sort the basis before factoring: the same basis *set*
            # reached through different pivot orders must produce the
            # same column permutation, or LU rounding would differ in
            # the last bits and break warm-vs-cold bitwise identity.
            ordered = np.sort(tab.basis)
            try:
                xb = np.linalg.solve(columns[:, ordered], b_eff)
                x_full[ordered] = xb
                self.extra_flops += (self.m ** 3
                                     + 2 * self.m * up_idx.size)
                return x_full[:self.n]
            except np.linalg.LinAlgError:  # pragma: no cover - guard
                pass
        x_full[tab.basis] = tab.table[:tab.n_rows, -1]
        return x_full[:self.n]

    def warm_out(self, status: str) -> Optional[WarmState]:
        """Warm state for the next solve, if this one is reusable."""
        if status != STATUS_OPTIMAL or self.kept.size != self.m:
            return None
        tab = self.tab
        if np.any(tab.basis >= self.n_vars):  # pragma: no cover - guard
            return None
        return WarmState(basis=tab.basis.copy(),
                         at_upper=tab.at_upper[:self.n_vars].copy(),
                         n=self.n, m=self.m)


def solve_bounded(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    upper: Optional[np.ndarray] = None,
    warm: Optional[WarmState] = None,
) -> Tuple[LpResult, Optional[WarmState]]:
    """Maximise ``c @ x`` s.t. ``a_ub @ x <= b_ub``, ``0 <= x <= upper``.

    Args:
        c: Objective coefficients, shape (n,).
        a_ub: Inequality matrix, shape (m, n).
        b_ub: Inequality right-hand sides, shape (m,).
        upper: Optional per-variable upper bounds, handled natively by
            the bounded-variable pivot rules (``None`` = unbounded
            above).
        warm: Optional :class:`WarmState` from a previous solve of a
            same-shaped problem; discarded automatically when stale.

    Returns:
        ``(result, warm_state)`` — the :class:`LpResult` plus the
        state to pass to the next solve (``None`` when the solve is
        not reusable: non-optimal, or redundant rows were dropped).
    """
    c = np.asarray(c, dtype=float)
    a = np.atleast_2d(np.asarray(a_ub, dtype=float))
    b = np.asarray(b_ub, dtype=float)
    n = c.size
    if a.shape[1] != n or a.shape[0] != b.size:
        raise ValueError("inconsistent LP dimensions")
    if upper is None:
        u = np.full(n, np.inf)
    else:
        u = np.asarray(upper, dtype=float)
        if u.shape != (n,):
            raise ValueError("upper bounds must match variable count")
        if np.any(u < 0):
            return (LpResult(STATUS_INFEASIBLE, np.zeros(n),
                             float("nan"), 0, 0, backend="bounded"),
                    None)

    solve = _BoundedSolve(c, a, b, u)
    status: Optional[str] = None
    if warm is not None:
        status = solve.solve_warm(warm)
    warm_flops = solve.tab.flops if solve.used_warm else 0
    warm_pivots = solve.tab.pivots if solve.used_warm else 0
    if status is None:
        solve.used_warm = False
        status = solve.solve_cold()
        solve.tab.flops += warm_flops
        solve.tab.pivots += warm_pivots

    if status != STATUS_OPTIMAL:
        result = LpResult(status, np.zeros(n), float("nan"),
                          solve.tab.pivots, solve.tab.flops,
                          backend="bounded", warm=solve.used_warm)
        return result, None

    x = solve.extract()
    result = LpResult(STATUS_OPTIMAL, x, float(c @ x),
                      solve.tab.pivots,
                      solve.tab.flops + solve.extra_flops,
                      backend="bounded", warm=solve.used_warm)
    return result, solve.warm_out(status)
