"""Online statistics for fleets too large to hold in memory.

A 10^6-die campaign produces per-die metric streams that must never be
materialised as one array. Three estimators cover the fig04/fig05
analyses:

* :class:`RunningMoments` — count/mean/variance/min/max in O(1) state
  (Welford update, Chan et al. parallel merge);
* :class:`FleetHistogram` — fixed-bin counts over a declared range.
  Integer count addition is exact, so shard merges are *exactly
  associative* — the property multi-host campaigns rely on — and
  quantiles interpolated from the bins converge as bins narrow;
* :class:`P2Quantile` — the Jain & Chlamtac P-squared estimator: a
  single running quantile from five markers, no bins to declare.
  Markers are nonlinear state, so P² streams do **not** merge across
  shards; it serves single-stream dashboards, while cross-host
  quantiles come from merged histograms.

:class:`FleetAccumulator` bundles all three per named metric and is
the unit the campaign driver updates per chunk and serialises into
``summary.json``. All estimators reject NaN/inf on entry — a silent
NaN would poison every downstream mean — and round-trip exactly
through ``to_dict``/``from_dict`` (JSON floats are repr-exact).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Sequence, Union

import numpy as np

__all__ = [
    "FleetAccumulator",
    "FleetHistogram",
    "P2Quantile",
    "RunningMoments",
]

_Values = Union[float, Sequence[float], np.ndarray]


def _clean(values: _Values, what: str) -> np.ndarray:
    """Validate one batch of samples: finite floats only."""
    arr = np.atleast_1d(np.asarray(values, dtype=float))
    if arr.ndim != 1:
        raise ValueError(f"{what}: samples must be scalar or 1-D")
    if not np.isfinite(arr).all():
        bad = arr[~np.isfinite(arr)][0]
        raise ValueError(
            f"{what}: non-finite sample {bad!r} rejected — a NaN/inf "
            "entering an online estimator silently corrupts every "
            "statistic derived from it")
    return arr


class RunningMoments:
    """Streaming count / mean / variance / min / max.

    Welford's update per batch; :meth:`merge` uses the Chan et al.
    pairwise combination. Counts, min and max merge exactly; the
    floating mean/M2 merge is algebraically exact but (like any
    float sum) not bitwise-associative across groupings — campaign
    summaries therefore treat merged means as tolerance-compared,
    while counts/min/max/histograms are compared exactly.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, values: _Values) -> None:
        arr = _clean(values, "RunningMoments.add")
        if arr.size == 0:
            return
        n_b = int(arr.size)
        mean_b = float(arr.mean())
        m2_b = float(((arr - mean_b) ** 2).sum())
        self._combine(n_b, mean_b, m2_b,
                      float(arr.min()), float(arr.max()))

    def merge(self, other: "RunningMoments") -> None:
        if other.count == 0:
            return
        self._combine(other.count, other.mean, other._m2,
                      other.min, other.max)

    def _combine(self, n_b: int, mean_b: float, m2_b: float,
                 min_b: float, max_b: float) -> None:
        n_a = self.count
        n = n_a + n_b
        delta = mean_b - self.mean
        self.mean += delta * n_b / n
        self._m2 += m2_b + delta * delta * n_a * n_b / n
        self.count = n
        self.min = min(self.min, min_b)
        self.max = max(self.max, max_b)

    @property
    def variance(self) -> float:
        """Population variance (the fleet IS the population)."""
        return self._m2 / self.count if self.count else math.nan

    @property
    def std(self) -> float:
        return math.sqrt(self.variance) if self.count else math.nan

    def to_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "mean": self.mean, "m2": self._m2,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunningMoments":
        out = cls()
        out.count = int(d["count"])
        out.mean = float(d["mean"])
        out._m2 = float(d["m2"])
        out.min = math.inf if d["min"] is None else float(d["min"])
        out.max = -math.inf if d["max"] is None else float(d["max"])
        return out


class P2Quantile:
    """Jain & Chlamtac's P-squared single-quantile estimator.

    Five markers track the running ``p``-quantile with piecewise-
    parabolic height adjustment — O(1) state, no bins to declare.
    Exact for the first five samples; an approximation after. Marker
    state is nonlinear in the sample stream, so two P² estimators
    cannot be merged — use :class:`FleetHistogram` for anything that
    must combine across shards or hosts.
    """

    __slots__ = ("p", "_heights", "_pos", "_desired", "_incr", "_n")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.p = float(p)
        self._heights: List[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p,
                         3.0 + 2.0 * p, 5.0]
        self._incr = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self._n = 0

    @property
    def count(self) -> int:
        return self._n

    def add(self, values: _Values) -> None:
        for x in _clean(values, "P2Quantile.add").tolist():
            self._add_one(x)

    def _add_one(self, x: float) -> None:
        self._n += 1
        h = self._heights
        if len(h) < 5:
            h.append(x)
            h.sort()
            return
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._incr[i]
        for i in (1, 2, 3):
            d = self._desired[i] - self._pos[i]
            if ((d >= 1.0 and self._pos[i + 1] - self._pos[i] > 1.0)
                    or (d <= -1.0
                        and self._pos[i - 1] - self._pos[i] < -1.0)):
                sign = 1.0 if d >= 1.0 else -1.0
                cand = self._parabolic(i, sign)
                if h[i - 1] < cand < h[i + 1]:
                    h[i] = cand
                else:
                    h[i] = self._linear(i, sign)
                self._pos[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        q, n = self._heights, self._pos
        return q[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (q[i] - q[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, sign: float) -> float:
        q, n = self._heights, self._pos
        j = i + int(sign)
        return q[i] + sign * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (NaN before any sample)."""
        if self._n == 0:
            return math.nan
        if self._n <= 5 or len(self._heights) < 5:
            h = sorted(self._heights)
            # Exact small-sample quantile (linear interpolation).
            idx = self.p * (len(h) - 1)
            lo = int(math.floor(idx))
            hi = min(lo + 1, len(h) - 1)
            return h[lo] + (idx - lo) * (h[hi] - h[lo])
        return self._heights[2]

    def to_dict(self) -> Dict[str, Any]:
        return {"p": self.p, "n": self._n, "heights": list(self._heights),
                "pos": list(self._pos), "desired": list(self._desired)}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "P2Quantile":
        out = cls(float(d["p"]))
        out._n = int(d["n"])
        out._heights = [float(x) for x in d["heights"]]
        out._pos = [float(x) for x in d["pos"]]
        out._desired = [float(x) for x in d["desired"]]
        return out


class FleetHistogram:
    """Fixed-bin histogram with exact, associative merge.

    ``n_bins`` equal bins over ``[lo, hi)``; samples outside the
    declared range land in dedicated underflow/overflow counters (they
    are *counted*, never dropped — a fleet tail that escapes the
    declared range must still show up in the totals). All state is
    int64 counts, so :meth:`merge` is exact integer addition and
    therefore associative and commutative across any shard grouping —
    the invariant the multi-host merge tests pin down.
    """

    __slots__ = ("lo", "hi", "counts", "underflow", "overflow")

    def __init__(self, lo: float, hi: float, n_bins: int = 64) -> None:
        if not (math.isfinite(lo) and math.isfinite(hi) and lo < hi):
            raise ValueError("need finite lo < hi")
        if n_bins < 1:
            raise ValueError("need at least one bin")
        self.lo = float(lo)
        self.hi = float(hi)
        self.counts = np.zeros(int(n_bins), dtype=np.int64)
        self.underflow = 0
        self.overflow = 0

    @property
    def n_bins(self) -> int:
        return int(self.counts.size)

    @property
    def count(self) -> int:
        return int(self.counts.sum()) + self.underflow + self.overflow

    @property
    def edges(self) -> np.ndarray:
        return np.linspace(self.lo, self.hi, self.n_bins + 1)

    def add(self, values: _Values) -> None:
        arr = _clean(values, "FleetHistogram.add")
        if arr.size == 0:
            return
        width = (self.hi - self.lo) / self.n_bins
        idx = np.floor((arr - self.lo) / width).astype(np.int64)
        self.underflow += int((idx < 0).sum())
        self.overflow += int((idx >= self.n_bins).sum())
        inside = idx[(idx >= 0) & (idx < self.n_bins)]
        np.add.at(self.counts, inside, 1)

    def merge(self, other: "FleetHistogram") -> None:
        if (other.lo, other.hi, other.n_bins) != (self.lo, self.hi,
                                                  self.n_bins):
            raise ValueError("cannot merge histograms with different "
                             "bin layouts")
        self.counts += other.counts
        self.underflow += other.underflow
        self.overflow += other.overflow

    def quantile(self, q: float) -> float:
        """Quantile interpolated within the containing bin.

        Error is bounded by one bin width; exact in the limit of
        narrow bins. Requires the mass to be inside ``[lo, hi)`` —
        raises if the requested quantile falls in under/overflow,
        where no positional information exists.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        total = self.count
        if total == 0:
            return math.nan
        target = q * total
        if target <= self.underflow and self.underflow:
            raise ValueError(f"q={q} falls in the underflow mass — "
                             "widen the histogram range")
        run = float(self.underflow)
        for i, c in enumerate(self.counts.tolist()):
            if run + c >= target:
                frac = (target - run) / c if c else 0.0
                width = (self.hi - self.lo) / self.n_bins
                return self.lo + (i + frac) * width
            run += c
        raise ValueError(f"q={q} falls in the overflow mass — "
                         "widen the histogram range")

    def to_dict(self) -> Dict[str, Any]:
        return {"lo": self.lo, "hi": self.hi,
                "counts": [int(c) for c in self.counts],
                "underflow": self.underflow, "overflow": self.overflow}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FleetHistogram":
        out = cls(float(d["lo"]), float(d["hi"]), len(d["counts"]))
        out.counts = np.asarray(d["counts"], dtype=np.int64)
        out.underflow = int(d["underflow"])
        out.overflow = int(d["overflow"])
        return out


#: Default running quantiles tracked per metric (P² streams).
DEFAULT_QUANTILES = (0.05, 0.5, 0.95)


class FleetAccumulator:
    """Per-metric online statistics bundle for one campaign.

    One :class:`RunningMoments` + :class:`FleetHistogram` + a set of
    :class:`P2Quantile` streams per named metric. The histogram range
    is declared up front per metric (``spec`` maps name to
    ``(lo, hi)``); out-of-range dies are counted in the histogram's
    under/overflow. :meth:`merge` combines moments and histograms —
    both well-defined across shards/hosts — and *drops* the P²
    streams (unmergeable by construction); merged quantiles are read
    from the merged histograms instead via :meth:`summary`.
    """

    def __init__(self, spec: Dict[str, tuple], n_bins: int = 64,
                 quantiles: Iterable[float] = DEFAULT_QUANTILES) -> None:
        self.spec = {k: (float(lo), float(hi))
                     for k, (lo, hi) in spec.items()}
        self.n_bins = int(n_bins)
        self.quantile_ps = tuple(quantiles)
        self.moments = {k: RunningMoments() for k in self.spec}
        self.hists = {k: FleetHistogram(lo, hi, n_bins)
                      for k, (lo, hi) in self.spec.items()}
        self.p2: Dict[str, Dict[float, P2Quantile]] = {
            k: {p: P2Quantile(p) for p in self.quantile_ps}
            for k in self.spec}

    @property
    def metrics(self) -> List[str]:
        return list(self.spec)

    def add(self, metric: str, values: _Values) -> None:
        """Fold a batch of per-die samples into one metric's stats."""
        arr = _clean(values, f"FleetAccumulator.add({metric!r})")
        self.moments[metric].add(arr)
        self.hists[metric].add(arr)
        for est in self.p2[metric].values():
            est.add(arr)

    def add_dies(self, columns: Dict[str, _Values]) -> None:
        """Fold one chunk's columnar results (all metrics at once)."""
        for metric, values in columns.items():
            if metric in self.spec:
                self.add(metric, values)

    def merge(self, other: "FleetAccumulator") -> None:
        if other.spec != self.spec or other.n_bins != self.n_bins:
            raise ValueError("cannot merge accumulators with different "
                             "metric specs")
        for k in self.spec:
            self.moments[k].merge(other.moments[k])
            self.hists[k].merge(other.hists[k])
        # P² streams cannot absorb another stream's markers: merged
        # quantiles must come from the merged histograms.
        self.p2 = {k: {} for k in self.spec}

    def summary(self) -> Dict[str, Any]:
        """JSON-ready statistics per metric (deterministic layout)."""
        out: Dict[str, Any] = {}
        for k in sorted(self.spec):
            mom = self.moments[k]
            hist = self.hists[k]
            quants = {}
            for p in self.quantile_ps:
                est = self.p2[k].get(p)
                if est is not None and est.count:
                    quants[f"p{int(round(p * 100)):02d}"] = est.value
                elif hist.count:
                    try:
                        quants[f"p{int(round(p * 100)):02d}"] = (
                            hist.quantile(p))
                    except ValueError:
                        quants[f"p{int(round(p * 100)):02d}"] = None
            out[k] = {
                "count": mom.count,
                "mean": mom.mean,
                "std": mom.std if mom.count else None,
                "min": mom.min if mom.count else None,
                "max": mom.max if mom.count else None,
                "quantiles": quants,
                "histogram": hist.to_dict(),
            }
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": {k: list(v) for k, v in self.spec.items()},
            "n_bins": self.n_bins,
            "quantile_ps": list(self.quantile_ps),
            "moments": {k: m.to_dict() for k, m in self.moments.items()},
            "hists": {k: h.to_dict() for k, h in self.hists.items()},
            "p2": {k: {str(p): est.to_dict()
                       for p, est in streams.items()}
                   for k, streams in self.p2.items()},
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FleetAccumulator":
        out = cls({k: tuple(v) for k, v in d["spec"].items()},
                  n_bins=int(d["n_bins"]),
                  quantiles=[float(p) for p in d["quantile_ps"]])
        out.moments = {k: RunningMoments.from_dict(m)
                       for k, m in d["moments"].items()}
        out.hists = {k: FleetHistogram.from_dict(h)
                     for k, h in d["hists"].items()}
        out.p2 = {k: {float(p): P2Quantile.from_dict(e)
                      for p, e in streams.items()}
                  for k, streams in d["p2"].items()}
        return out


def exact_quantile(values: _Values, p: float) -> float:
    """Reference quantile (linear interpolation) for estimator tests."""
    arr = np.sort(_clean(values, "exact_quantile"))
    if arr.size == 0:
        return math.nan
    idx = p * (arr.size - 1)
    lo = int(math.floor(idx))
    hi = min(lo + 1, arr.size - 1)
    return float(arr[lo] + (idx - lo) * (arr[hi] - arr[lo]))
