"""Chunked, journaled, streaming fleet campaigns (fig04-shaped).

:func:`run_fleet_campaign` is the 10^5+-die driver: the die range is
cut into chunks; each chunk is characterised (optionally across
worker processes), pushed through the die-batched
:class:`~repro.runtime.kernel.FleetEvalKernel` for the Figure-4 per-die
metrics, streamed to one columnar shard
(:func:`repro.fleet.shards.write_shard`), folded into the online
:class:`~repro.fleet.quantiles.FleetAccumulator`, and journaled.
Peak memory is O(chunk), never O(fleet).

Crash-safety rides the PR 5 journal: every chunk's per-die metric
columns are recorded under a content key that pins tech/arch/seed/
chunk bounds, so ``--resume`` replays completed chunks from the
journal (JSON floats round-trip repr-exact, hence bitwise) and only
computes the tail. A resumed campaign therefore produces bitwise-
identical shards and a byte-identical ``summary.json`` — the nightly
CI job kills a campaign mid-run and asserts exactly that.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..chip import ChipProfile
from ..config import ArchConfig, DEFAULT_TECH, TechParams
from ..floorplan import build_floorplan
from ..parallel import characterize_batch
from ..parallel.journal import RunJournal, merge_journals, unit_key
from ..parallel.manifest import ShardManifest
from ..parallel.runner import CacheArg
from ..runtime.evaluation import Assignment
from ..runtime.kernel import FleetEvalKernel
from ..thermal.hotspot import ThermalNetwork
from ..workloads import SPEC_APPS, Workload
from .quantiles import FleetAccumulator
from .shards import (
    ShardIntegrityError,
    iter_shards,
    load_shard,
    shard_name,
    write_shard,
)

__all__ = [
    "FLEET_ARCH",
    "DEFAULT_METRIC_SPEC",
    "FleetCampaignResult",
    "FleetPlan",
    "fleet_die_metrics",
    "load_summary",
    "merge_campaigns",
    "run_fleet_campaign",
    "summarize_shards",
]

#: Campaign-scale architecture: fig04 physics at a die size/grid that
#: characterises at fleet rates. (DEFAULT_ARCH's 20-core/64-grid dies
#: are for paper-fidelity figures, ~2 s/die; fleet campaigns trade
#: core count for throughput, keeping ~35 mm^2/core so the
#: leakage-temperature loop stays well inside its convergence region.)
FLEET_ARCH = ArchConfig(n_cores=4, die_area_mm2=140.0,
                        grid_resolution=16)

#: Histogram ranges for the fig04 per-die metrics. Paper values sit
#: around 1.5 (power) / 1.33 (freq); the declared ranges leave room
#: for heavy variation tails, and escapees still land in the counted
#: under/overflow bins.
DEFAULT_METRIC_SPEC: Dict[str, tuple] = {
    "power_ratio": (1.0, 4.0),
    "freq_ratio": (1.0, 3.0),
}


def fleet_die_metrics(chips: Sequence[ChipProfile],
                      with_power: bool = True) -> Dict[str, np.ndarray]:
    """Figure-4 per-die metrics for a fleet chunk, die-batched.

    Computes exactly what the serial
    :func:`repro.experiments.fig04_variation.core_power_ratio` /
    ``core_frequency_ratio`` pair computes per die — every app alone
    on every core at max levels, per-core mean power over apps, die
    ratio max/min — but each (core, app) cell is one
    :meth:`FleetEvalKernel.evaluate_max_levels_fleet` call across the
    whole chunk instead of one serial evaluation per die. The per-die
    mean keeps the serial reduction form (``np.mean`` over a
    contiguous per-die row), so results are bitwise-identical to the
    serial loop (property-tested in tests/test_fleet.py).
    """
    d = len(chips)
    n_cores = chips[0].n_cores
    cols: Dict[str, np.ndarray] = {}
    fmax = np.stack([chip.fmax_array for chip in chips])
    cols["freq_ratio"] = np.array(
        [float(fmax[b].max() / fmax[b].min()) for b in range(d)])
    if not with_power:
        return cols
    n_apps = len(SPEC_APPS)
    mean_power = np.empty((d, n_cores))
    powers = np.empty((d, n_apps))
    for core_id in range(n_cores):
        assignment = Assignment(core_of=(core_id,))
        for a, app in enumerate(SPEC_APPS):
            kernel = FleetEvalKernel(chips, Workload((app,)), assignment)
            states = kernel.evaluate_max_levels_fleet()
            for b in range(d):
                powers[b, a] = float(states[b].core_power[0])
        for b in range(d):
            mean_power[b, core_id] = np.mean(powers[b])
    cols["power_ratio"] = np.array(
        [float(mean_power[b].max() / mean_power[b].min())
         for b in range(d)])
    return cols


@dataclass(frozen=True)
class FleetPlan:
    """Identity and shape of one fleet campaign (or one host's slice).

    ``start``/``n_dies`` describe the half-open die range
    ``[start, start + n_dies)`` — a multi-host manifest hands each
    host a plan differing only in that range, and die ``i`` is
    generated from the ``(seed, i)`` stream regardless of the range,
    so slicing never changes any die's identity.
    """

    name: str
    n_dies: int
    start: int = 0
    seed: int = 0
    chunk_dies: int = 64
    with_power: bool = True
    tech: TechParams = DEFAULT_TECH
    arch: ArchConfig = field(default_factory=lambda: FLEET_ARCH)

    def __post_init__(self) -> None:
        if self.n_dies < 1:
            raise ValueError("fleet needs at least one die")
        if self.start < 0:
            raise ValueError("die range must start at a non-negative "
                             "index")
        if self.chunk_dies < 1:
            raise ValueError("chunk size must be positive")
        if not self.name or "/" in self.name:
            raise ValueError("plan name must be a non-empty path "
                             "component")

    @property
    def end(self) -> int:
        return self.start + self.n_dies

    def chunks(self) -> List[tuple]:
        """Half-open (start, end) chunk bounds, aligned to multiples
        of ``chunk_dies`` from die 0 so every host of a manifest cuts
        identical chunk boundaries regardless of its range."""
        out = []
        lo = self.start
        while lo < self.end:
            aligned = ((lo // self.chunk_dies) + 1) * self.chunk_dies
            hi = min(aligned, self.end)
            out.append((lo, hi))
            lo = hi
        return out

    def identity(self) -> Dict[str, Any]:
        """Unit-key fields pinning the die population and analysis."""
        return {
            "tech": repr(sorted(dataclasses.asdict(self.tech).items())),
            "arch": repr(sorted(dataclasses.asdict(self.arch).items())),
            "seed": int(self.seed),
            "with_power": bool(self.with_power),
        }

    def metric_spec(self) -> Dict[str, tuple]:
        spec = {"freq_ratio": DEFAULT_METRIC_SPEC["freq_ratio"]}
        if self.with_power:
            spec["power_ratio"] = DEFAULT_METRIC_SPEC["power_ratio"]
        return spec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "n_dies": self.n_dies,
            "start": self.start,
            "seed": self.seed,
            "chunk_dies": self.chunk_dies,
            "with_power": self.with_power,
            "tech": dataclasses.asdict(self.tech),
            "arch": dataclasses.asdict(self.arch),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FleetPlan":
        return cls(
            name=str(d["name"]),
            n_dies=int(d["n_dies"]),
            start=int(d.get("start", 0)),
            seed=int(d.get("seed", 0)),
            chunk_dies=int(d.get("chunk_dies", 64)),
            with_power=bool(d.get("with_power", True)),
            tech=TechParams(**d["tech"]),
            arch=ArchConfig(**d["arch"]),
        )


@dataclass
class FleetCampaignResult:
    """What a campaign run returns (perf facts stay out of
    ``summary.json``, which must be byte-deterministic)."""

    plan: FleetPlan
    out_dir: pathlib.Path
    accumulator: FleetAccumulator
    n_dies: int
    n_chunks: int
    resumed_chunks: int
    wall_s: float

    @property
    def dies_per_s(self) -> float:
        return self.n_dies / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def summary_path(self) -> pathlib.Path:
        return self.out_dir / "summary.json"


def _chunk_key(plan: FleetPlan, lo: int, hi: int) -> str:
    return unit_key(scope=f"fleet:{plan.name}", chunk_start=lo,
                    chunk_end=hi, **plan.identity())


def _write_json_atomic(path: pathlib.Path, obj: Any) -> None:
    """Deterministic (sorted keys, fixed separators) atomic JSON."""
    payload = json.dumps(obj, sort_keys=True, indent=2,
                         separators=(",", ": ")) + "\n"
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def run_fleet_campaign(
    plan: FleetPlan,
    out_root: Union[str, pathlib.Path],
    workers: Optional[int] = None,
    cache: CacheArg = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> FleetCampaignResult:
    """Run (or resume) one fleet campaign, streaming results to disk.

    Chunk characterisation runs die-batched by default (one field-
    sampler setup and one lockstep binning pass per chunk; see
    :func:`repro.chip.characterize_dies`), which is bitwise-identical
    to the serial per-die loop — so journaled chunks, resumed
    summaries and multi-host merges stay byte-identical regardless of
    the ``REPRO_BATCH_CHAR`` setting.

    Layout under ``<out_root>/<plan.name>/``: ``shards/`` (columnar
    npz per chunk), ``journal.jsonl`` (chunk-level resume journal,
    always on — fleet campaigns are crash-safe by construction, not
    by flag), ``summary.json`` (plan + online statistics; byte-
    deterministic, so an interrupted-then-resumed campaign emits
    exactly the bytes an uninterrupted one does).

    Args:
        plan: Campaign identity/shape; see :class:`FleetPlan`.
        out_root: Results root (``results/`` conventionally).
        workers: Worker processes for chunk characterisation
            (``None`` defers to the process-wide default).
        cache: Characterization cache policy. Defaults to ``None``
            (disabled): at fleet scale the on-disk cache is pure
            write traffic — dies are visited once.
        progress: Optional ``fn(done_dies, total_dies)`` callback,
            invoked after every chunk.

    Returns:
        :class:`FleetCampaignResult` with the online accumulator and
        throughput facts.
    """
    t0 = time.perf_counter()
    out_dir = pathlib.Path(out_root) / plan.name
    shard_dir = out_dir / "shards"
    out_dir.mkdir(parents=True, exist_ok=True)
    journal = RunJournal(out_dir / "journal.jsonl")
    scope = f"fleet:{plan.name}"

    floorplan = build_floorplan(plan.arch)
    thermal = ThermalNetwork(floorplan)
    acc = FleetAccumulator(plan.metric_spec())
    chunks = plan.chunks()
    done = 0
    resumed = 0
    for lo, hi in chunks:
        key = _chunk_key(plan, lo, hi)
        stored = journal.lookup(key)
        if stored is not None:
            cols = {name: np.asarray(vals, dtype=float)
                    for name, vals in stored.items()}
            resumed += 1
            # Re-create the shard if the crash window hit between
            # journal append and shard write (or the shard dir was
            # lost): journaled floats are repr-exact, so the arrays
            # are bitwise what the original run wrote.
            if not (shard_dir / shard_name(lo, hi)).exists():
                write_shard(shard_dir, lo, hi, cols)
        else:
            chips = characterize_batch(
                plan.tech, plan.arch, plan.seed, list(range(lo, hi)),
                workers=workers, cache=cache,
                floorplan=floorplan, thermal=thermal)
            cols = fleet_die_metrics(chips, with_power=plan.with_power)
            write_shard(shard_dir, lo, hi, cols)
            journal.record(
                key,
                {"scope": scope, "chunk_start": lo, "chunk_end": hi},
                {name: [float(x) for x in vals]
                 for name, vals in sorted(cols.items())})
        acc.add_dies(cols)
        done += hi - lo
        if progress is not None:
            progress(done, plan.n_dies)
    journal.require_complete(
        [_chunk_key(plan, lo, hi) for lo, hi in chunks], scope=scope)
    journal.mark_complete(scope, len(chunks))
    _write_json_atomic(out_dir / "summary.json", {
        "plan": plan.to_dict(),
        "metrics": acc.summary(),
        "n_chunks": len(chunks),
    })
    wall = time.perf_counter() - t0
    return FleetCampaignResult(
        plan=plan, out_dir=out_dir, accumulator=acc,
        n_dies=plan.n_dies, n_chunks=len(chunks),
        resumed_chunks=resumed, wall_s=wall)


def merge_campaigns(
    manifest: ShardManifest,
    host_dirs: Sequence[Union[str, pathlib.Path]],
    out_root: Union[str, pathlib.Path],
    require_complete: bool = True,
) -> FleetCampaignResult:
    """Merge per-host campaign slices into one full campaign.

    ``host_dirs`` are the hosts' campaign output directories (each a
    ``<out_root>/<name>`` layout with ``journal.jsonl`` + ``shards/``),
    in any order — unit content keys, not directory naming, establish
    which results belong where. The hosts' journals are merged into
    the destination journal (conflicting duplicates refuse the merge),
    shards are copied in, any shard missing on disk is regenerated
    from its journaled columns, and the online statistics are rebuilt
    by replaying chunks in die order — so when the manifest's host
    slices are chunk-aligned (the :meth:`ShardManifest.partition`
    default), the merged ``summary.json`` is byte-identical to what a
    single-host run over the full range writes.

    With ``require_complete`` (the default), the merge refuses to
    emit a summary unless every chunk of the full die range is
    journaled — :class:`~repro.parallel.journal.IncompleteJournalError`
    names the gap. ``require_complete=False`` produces a best-effort
    partial summary and skips the journal's ``complete`` mark, so a
    later merge (or resume) can finish the campaign.
    """
    t0 = time.perf_counter()
    plan = FleetPlan.from_dict(manifest.params)
    out_dir = pathlib.Path(out_root) / plan.name
    shard_dir = out_dir / "shards"
    out_dir.mkdir(parents=True, exist_ok=True)
    shard_dir.mkdir(parents=True, exist_ok=True)
    dest = RunJournal(out_dir / "journal.jsonl")
    scope = f"fleet:{plan.name}"

    merge_journals(dest, [pathlib.Path(d) / "journal.jsonl"
                          for d in host_dirs
                          if (pathlib.Path(d) / "journal.jsonl").exists()])
    for d in host_dirs:
        for info in iter_shards(pathlib.Path(d) / "shards"):
            target = shard_dir / info.path.name
            if target.exists():
                continue
            fd, tmp_name = tempfile.mkstemp(dir=shard_dir,
                                            suffix=".tmp")
            os.close(fd)
            try:
                shutil.copyfile(info.path, tmp_name)
                os.replace(tmp_name, target)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

    # The merged campaign's chunk grid is the union of the hosts'
    # grids (identical to the full plan's grid when slices are
    # chunk-aligned); completeness and statistics replay over it in
    # die order.
    chunks: List[tuple] = []
    for h in manifest.hosts:
        host_plan = FleetPlan.from_dict(manifest.host_plan_params(h.host))
        chunks.extend(host_plan.chunks())
    keys = [_chunk_key(plan, lo, hi) for lo, hi in chunks]
    if require_complete:
        dest.require_complete(keys, scope=scope)

    acc = FleetAccumulator(plan.metric_spec())
    covered = 0
    for (lo, hi), key in zip(chunks, keys):
        stored = dest.lookup(key)
        if stored is None:
            continue
        cols = {name: np.asarray(vals, dtype=float)
                for name, vals in stored.items()}
        if not (shard_dir / shard_name(lo, hi)).exists():
            write_shard(shard_dir, lo, hi, cols)
        acc.add_dies(cols)
        covered += hi - lo
    if require_complete:
        dest.mark_complete(scope, len(chunks))
    _write_json_atomic(out_dir / "summary.json", {
        "plan": plan.to_dict(),
        "metrics": acc.summary(),
        "n_chunks": len(chunks),
    })
    return FleetCampaignResult(
        plan=plan, out_dir=out_dir, accumulator=acc,
        n_dies=covered, n_chunks=len(chunks),
        resumed_chunks=len(chunks), wall_s=time.perf_counter() - t0)


def summarize_shards(shard_dir: Union[str, pathlib.Path],
                     spec: Optional[Dict[str, tuple]] = None,
                     ) -> FleetAccumulator:
    """Rebuild an online accumulator by streaming the shards on disk.

    Used by ``repro fleet stats`` and by the multi-host merge to
    recompute campaign statistics from merged shards — one shard in
    memory at a time. Metrics not present in a shard are skipped;
    ``spec`` defaults to the ranges the campaign driver uses.
    """
    acc = FleetAccumulator(dict(spec or DEFAULT_METRIC_SPEC))
    for info in iter_shards(shard_dir):
        try:
            cols = load_shard(info.path)
        except ShardIntegrityError:
            # The shard was quarantined by load_shard; its range now
            # reads as a coverage gap for a resumed campaign to
            # recompute rather than a poisoned contribution.
            continue
        acc.add_dies({k: v for k, v in cols.items() if k != "die"})
    return acc


def load_summary(out_dir: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Parse a campaign's ``summary.json``."""
    path = pathlib.Path(out_dir) / "summary.json"
    with open(path, encoding="utf-8") as fh:
        out = json.load(fh)
    if not isinstance(out, dict) or "metrics" not in out:
        raise ValueError(f"{path} is not a fleet campaign summary")
    return out
