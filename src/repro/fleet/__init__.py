"""Fleet-scale Monte-Carlo campaigns: every user is a die.

The paper's per-die results (Figs 4/5, Table 5) are Monte-Carlo
estimates over sampled variation maps. This package is the 10^5-10^6
die axis of the ROADMAP: die-batched evaluation (the
:class:`~repro.runtime.kernel.FleetEvalKernel` lockstep path), results
streamed to columnar npz shards instead of in-memory lists
(:mod:`.shards`), statistics computed online in O(1) memory
(:mod:`.quantiles`), and crash-safe chunked campaigns on the PR 5
journal (:mod:`.campaign`). Multi-host partitioning and merge live in
:mod:`repro.parallel.manifest` and ``repro fleet merge``.
"""

from .campaign import (
    FLEET_ARCH,
    FleetCampaignResult,
    FleetPlan,
    fleet_die_metrics,
    load_summary,
    merge_campaigns,
    run_fleet_campaign,
    summarize_shards,
)
from .quantiles import (
    FleetAccumulator,
    FleetHistogram,
    P2Quantile,
    RunningMoments,
)
from .shards import (
    SHARD_FORMAT,
    ShardInfo,
    ShardIntegrityError,
    coverage_ranges,
    iter_shards,
    load_shard,
    missing_ranges,
    quarantine_shard,
    shard_digest,
    write_shard,
)

__all__ = [
    "FLEET_ARCH",
    "FleetAccumulator",
    "FleetCampaignResult",
    "FleetHistogram",
    "FleetPlan",
    "P2Quantile",
    "RunningMoments",
    "SHARD_FORMAT",
    "ShardInfo",
    "ShardIntegrityError",
    "coverage_ranges",
    "fleet_die_metrics",
    "iter_shards",
    "load_shard",
    "load_summary",
    "merge_campaigns",
    "missing_ranges",
    "quarantine_shard",
    "run_fleet_campaign",
    "shard_digest",
    "summarize_shards",
    "write_shard",
]
