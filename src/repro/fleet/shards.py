"""Columnar append-only result shards for fleet campaigns.

A campaign never holds per-die results for the whole fleet in memory:
each chunk of dies is written out as one compressed npz *shard* —
aligned 1-D columns (``die`` plus one column per metric) covering a
contiguous, half-open die range — under ``results/<run>/shards/``.
Shards are immutable once written; writes go through the same
mkstemp + ``os.replace`` idiom as the characterization cache, so a
reader (or a resumed run) never observes a torn file, and re-writing
a shard from journaled results is an atomic no-op-shaped replace.

File naming is the range: ``shard-<start>-<end>.npz`` with zero-padded
8-digit bounds, so a plain lexicographic directory listing is already
die order and coverage/gap analysis needs no index file.

Integrity (format v2): every shard embeds a sha256 digest over its
column *data* (names, dtypes, shapes, bytes — not the zip container,
whose member timestamps make file bytes unstable across runs).
:func:`load_shard` verifies the digest and *quarantines* a corrupt
shard — moves it to ``<shard_dir>/quarantine/`` beside a structured
``<name>.reason.json``, the characterisation-cache idiom — so the
range reads as a coverage gap and a resumed campaign recomputes it
instead of folding silent bit rot into fleet statistics. v1 shards
(no digest member) load transparently, unverified.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import tempfile
import time
import zipfile
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple, Union

import numpy as np

__all__ = [
    "SHARD_FORMAT",
    "ShardInfo",
    "ShardIntegrityError",
    "coverage_ranges",
    "iter_shards",
    "load_shard",
    "missing_ranges",
    "quarantine_shard",
    "shard_digest",
    "shard_name",
    "write_shard",
]

#: Shard container format. v1 had no integrity members; v2 adds the
#: ``__format__`` and ``__digest__`` members checked on load.
SHARD_FORMAT = 2

#: npz members that carry metadata rather than per-die columns.
_META_MEMBERS = ("__format__", "__digest__")

_SHARD_RE = re.compile(r"^shard-(\d{8})-(\d{8})\.npz$")

PathLike = Union[str, pathlib.Path]


class ShardIntegrityError(RuntimeError):
    """A shard failed its digest (it has been quarantined)."""


def shard_name(start: int, end: int) -> str:
    """Canonical filename for the half-open die range [start, end)."""
    if not 0 <= start < end:
        raise ValueError("need 0 <= start < end")
    if end > 10 ** 8:
        raise ValueError("die index exceeds the 8-digit shard naming")
    return f"shard-{start:08d}-{end:08d}.npz"


@dataclass(frozen=True)
class ShardInfo:
    """One shard file and the die range it covers."""

    path: pathlib.Path
    start: int
    end: int

    @property
    def n_dies(self) -> int:
        return self.end - self.start


def shard_digest(arrays: Dict[str, np.ndarray]) -> str:
    """Canonical sha256 over column data (container-independent).

    Hashes sorted names with each column's dtype, shape and raw
    C-order bytes, so the digest survives re-zipping (npz member
    timestamps) and pins exactly what the statistics consume.
    """
    h = hashlib.sha256(b"fleet-shard-v2\n")
    for name in sorted(arrays):
        if name in _META_MEMBERS:
            continue
        arr = np.ascontiguousarray(arrays[name])
        h.update(f"{name}\n{arr.dtype.str}\n{arr.shape}\n".encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def quarantine_shard(path: PathLike, reason: str) -> pathlib.Path:
    """Move a corrupt shard aside with a structured reason record.

    The shard lands in ``<shard_dir>/quarantine/`` next to a
    ``<name>.reason.json``; its die range becomes a coverage gap that
    :func:`missing_ranges` reports and a resumed campaign recomputes.
    """
    path = pathlib.Path(path)
    qdir = path.parent / "quarantine"
    qdir.mkdir(parents=True, exist_ok=True)
    target = qdir / path.name
    os.replace(path, target)
    record = {
        "shard": path.name,
        "reason": reason,
        "quarantined_at_unix_s": time.time(),
    }
    (qdir / f"{path.name}.reason.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n")
    return target


def write_shard(shard_dir: PathLike, start: int, end: int,
                columns: Dict[str, np.ndarray]) -> pathlib.Path:
    """Atomically write one columnar shard for dies [start, end).

    Every column must be 1-D with exactly ``end - start`` entries; a
    ``die`` column holding the absolute die indices is added
    automatically. Uses ``np.savez_compressed`` into a mkstemp sibling
    then ``os.replace`` — crash-safe and last-writer-wins, matching
    the cache-store idiom. Note npz is a zip container with member
    timestamps, so two byte-wise comparisons of *files* from different
    runs will differ; equality checks must compare loaded arrays
    (see :func:`load_shard` and the nightly resume check).
    """
    shard_dir = pathlib.Path(shard_dir)
    n = end - start
    arrays: Dict[str, np.ndarray] = {
        "die": np.arange(start, end, dtype=np.int64)}
    for name, col in columns.items():
        arr = np.asarray(col)
        if arr.ndim != 1 or arr.size != n:
            raise ValueError(
                f"column {name!r} has shape {arr.shape}, expected "
                f"({n},) for die range [{start}, {end})")
        if name == "die":
            raise ValueError("'die' is the implicit index column")
        if name in _META_MEMBERS:
            raise ValueError(f"{name!r} is a reserved member name")
        arrays[name] = arr
    arrays["__format__"] = np.int64(SHARD_FORMAT)
    arrays["__digest__"] = np.array(shard_digest(arrays))
    shard_dir.mkdir(parents=True, exist_ok=True)
    path = shard_dir / shard_name(start, end)
    fd, tmp_name = tempfile.mkstemp(dir=shard_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_shard(path: PathLike,
               verify: bool = True) -> Dict[str, np.ndarray]:
    """Load one shard's columns as plain in-memory arrays.

    A v2 shard is digest-verified (``verify=False`` skips it); one
    that is unreadable or fails its digest is quarantined via
    :func:`quarantine_shard` and raised as
    :class:`ShardIntegrityError`. A v1 shard — no digest member —
    loads transparently, unverified.
    """
    path = pathlib.Path(path)
    try:
        with np.load(path) as data:
            arrays = {name: data[name].copy() for name in data.files}
    except (OSError, ValueError, zipfile.BadZipFile, EOFError) as exc:
        quarantine_shard(path, f"unreadable: {type(exc).__name__}: "
                               f"{exc}")
        raise ShardIntegrityError(
            f"{path.name} is unreadable and was quarantined: "
            f"{exc}") from exc
    stored = arrays.pop("__digest__", None)
    arrays.pop("__format__", None)
    if verify and stored is not None:
        expect = str(stored)
        actual = shard_digest(arrays)
        if actual != expect:
            quarantine_shard(
                path, f"digest mismatch: stored {expect}, "
                      f"computed {actual}")
            raise ShardIntegrityError(
                f"{path.name} failed its content digest and was "
                f"quarantined")
    return arrays


def iter_shards(shard_dir: PathLike) -> Iterator[ShardInfo]:
    """Shards in die order (their names sort by range)."""
    shard_dir = pathlib.Path(shard_dir)
    if not shard_dir.is_dir():
        return
    for entry in sorted(shard_dir.iterdir()):
        m = _SHARD_RE.match(entry.name)
        if m:
            yield ShardInfo(path=entry, start=int(m.group(1)),
                            end=int(m.group(2)))


def coverage_ranges(shard_dir: PathLike) -> List[Tuple[int, int]]:
    """Merged, sorted die ranges covered by the shards on disk.

    Raises if two shards overlap — overlapping ranges mean two writers
    disagreed about chunking and the campaign must not silently pick
    one.
    """
    merged: List[Tuple[int, int]] = []
    for info in iter_shards(shard_dir):
        if merged and info.start < merged[-1][1]:
            raise ValueError(
                f"overlapping shards at die {info.start}: "
                f"{merged[-1]} vs ({info.start}, {info.end})")
        if merged and info.start == merged[-1][1]:
            merged[-1] = (merged[-1][0], info.end)
        else:
            merged.append((info.start, info.end))
    return merged


def missing_ranges(shard_dir: PathLike, start: int,
                   end: int) -> List[Tuple[int, int]]:
    """Gaps in shard coverage over the die range [start, end)."""
    gaps: List[Tuple[int, int]] = []
    cursor = start
    for lo, hi in coverage_ranges(shard_dir):
        if hi <= cursor:
            continue
        if lo >= end:
            break
        if lo > cursor:
            gaps.append((cursor, min(lo, end)))
        cursor = max(cursor, hi)
        if cursor >= end:
            break
    if cursor < end:
        gaps.append((cursor, end))
    return gaps
