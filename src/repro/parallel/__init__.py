"""Sharded execution and persistent characterisation caching.

The experiment layer's scaling substrate (ROADMAP: "sharding,
batching, caching"): deterministic batch sharding over a process pool
plus an on-disk, content-addressed characterisation cache, composed by
:func:`characterize_batch`. See DESIGN.md §12.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    CHARACTERIZATION_TAG,
    CharacterizationCache,
    cache_enabled,
    cache_key,
    default_cache_root,
    get_default_cache,
    profile_from_payload,
    profile_payload,
    set_cache_enabled,
    set_cache_root,
)
from .runner import (
    characterize_batch,
    parallel_config,
    resolve_workers,
    set_default_workers,
)
from .sharding import (
    available_workers,
    run_sharded,
    shard_indices,
    spawn_seeds,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CHARACTERIZATION_TAG",
    "CharacterizationCache",
    "available_workers",
    "cache_enabled",
    "cache_key",
    "characterize_batch",
    "default_cache_root",
    "get_default_cache",
    "parallel_config",
    "profile_from_payload",
    "profile_payload",
    "resolve_workers",
    "run_sharded",
    "set_cache_enabled",
    "set_cache_root",
    "set_default_workers",
    "shard_indices",
    "spawn_seeds",
]
