"""Sharded execution, characterisation caching, and crash safety.

The experiment layer's scaling substrate (ROADMAP: "sharding,
batching, caching"): deterministic batch sharding over a fault-
tolerant process pool, an on-disk content-addressed characterisation
cache with integrity verification and quarantine, and a journaled
checkpoint/resume layer for long campaigns, composed by
:func:`characterize_batch`. See DESIGN.md §12 and §14.
"""

from .cache import (
    CACHE_FORMAT_VERSION,
    CACHE_SCHEMA_VERSION,
    CHARACTERIZATION_TAG,
    CacheIntegrityError,
    CharacterizationCache,
    cache_enabled,
    cache_key,
    default_cache_root,
    get_default_cache,
    profile_from_payload,
    profile_payload,
    set_cache_enabled,
    set_cache_root,
)
from .health import RunHealth, get_run_health, reset_run_health
from .journal import (
    IncompleteJournalError,
    RunJournal,
    active_journal,
    default_journal_root,
    discard_journal,
    merge_journals,
    resume_enabled,
    set_journal_root,
    set_resume,
    unit_key,
)
from .manifest import HostSlice, ShardManifest
from .runner import (
    characterize_batch,
    parallel_config,
    resolve_batched_characterization,
    resolve_workers,
    set_batched_characterization,
    set_default_workers,
)
from .sharding import (
    available_workers,
    resolve_shard_backoff,
    resolve_shard_retries,
    resolve_shard_timeout,
    run_sharded,
    set_shard_backoff,
    set_shard_retries,
    shard_indices,
    spawn_seeds,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CACHE_SCHEMA_VERSION",
    "CHARACTERIZATION_TAG",
    "CacheIntegrityError",
    "CharacterizationCache",
    "HostSlice",
    "IncompleteJournalError",
    "RunHealth",
    "RunJournal",
    "ShardManifest",
    "active_journal",
    "available_workers",
    "cache_enabled",
    "cache_key",
    "characterize_batch",
    "default_cache_root",
    "default_journal_root",
    "discard_journal",
    "get_default_cache",
    "get_run_health",
    "merge_journals",
    "parallel_config",
    "profile_from_payload",
    "profile_payload",
    "reset_run_health",
    "resolve_batched_characterization",
    "resolve_shard_backoff",
    "resolve_shard_retries",
    "resolve_shard_timeout",
    "resolve_workers",
    "resume_enabled",
    "run_sharded",
    "set_batched_characterization",
    "set_cache_enabled",
    "set_cache_root",
    "set_default_workers",
    "set_journal_root",
    "set_resume",
    "set_shard_backoff",
    "set_shard_retries",
    "shard_indices",
    "spawn_seeds",
    "unit_key",
]
