"""Persistent, content-addressed characterisation cache.

Characterising a die — sampling its variation map, extracting critical
paths, binning (V, f) tables, calibrating leakage — is deterministic
per (tech, arch, batch seed, die index), so its output can be cached
on disk and shared across every experiment, benchmark and CI run that
asks for the same die.

Entries are compressed ``.npz`` files under a content-addressed path:
the key is a SHA-256 over the full chip configuration (every tech and
arch field), the variation batch seed, the die index, the power
calibration constants, and a code-version tag. Changing *anything*
that could alter characterisation output changes the key, so stale
entries are never read — invalidation is automatic; deleting the
cache directory is always safe.

The payload is the flattened state of a :class:`~repro.chip.ChipProfile`
(path sets, V/f tables, leakage cell states), packed into a handful of
flat arrays with offset vectors so a warm load touches few npz members.
Round-tripping is bitwise-exact: a cache hit reconstructs arrays equal
to a cold characterisation.

Integrity (DESIGN.md §14): stored entries carry a SHA-256 digest over
their data members (container format v2; v1 entries without a digest
read transparently). Loads verify the digest; any entry that is
unreadable or fails verification is *quarantined* — moved to
``<root>/quarantine/`` next to a structured ``*.reason.json`` — and
counted in a dedicated ``corrupt`` stat (distinct from ``misses``),
so silent re-characterisation never hides corruption.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import shutil
import tempfile
import time
import zipfile
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from ..chip import ChipProfile, CoreDescriptor
from ..config import ArchConfig, TechParams
from ..floorplan import Floorplan, build_floorplan
from ..freq import CoreFrequencyModel, VFTable
from ..freq.critical_path import PathSet
from ..power import CoreLeakageModel, L2LeakageModel
from ..power import scaling
from ..thermal import ThermalNetwork

# Payload layout version: bump when the npz schema changes. Part of
# the content key, so bumping it invalidates every existing entry.
CACHE_SCHEMA_VERSION = 1

# npz *container* format version. v2 added the integrity digest. Not
# part of the content key: the loader reads v1 entries (no digest)
# transparently, so bumping this never invalidates the cache.
CACHE_FORMAT_VERSION = 2

# Code-version tag: bump whenever the characterisation pipeline
# (variation sampling, path extraction, binning, leakage calibration)
# changes its outputs. Old entries then become unreachable.
CHARACTERIZATION_TAG = "characterize-v1"

Payload = Dict[str, np.ndarray]


class CacheIntegrityError(ValueError):
    """A cache entry exists but fails verification (digest/format)."""


# ---------------------------------------------------------------------------
# Content addressing


def cache_key(tech: TechParams, arch: ArchConfig, seed: int,
              die_index: int) -> str:
    """Content hash identifying one die's characterisation output."""
    parts = [
        f"schema={CACHE_SCHEMA_VERSION}",
        f"code={CHARACTERIZATION_TAG}",
        f"numpy={np.__version__}",
        "tech=" + repr(sorted(dataclasses.asdict(tech).items())),
        "arch=" + repr(sorted(dataclasses.asdict(arch).items())),
        f"core_static_nominal={scaling.CORE_STATIC_NOMINAL_W!r}",
        f"l2_static_nominal={scaling.L2_STATIC_NOMINAL_W!r}",
        f"l2_vdd={scaling.L2_VDD!r}",
        f"seed={int(seed)}",
        f"die={int(die_index)}",
    ]
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Payload (de)serialisation


def _ragged_pack(arrays: List[np.ndarray]) -> Dict[str, np.ndarray]:
    flat = (np.concatenate(arrays) if arrays
            else np.empty(0, dtype=float))
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    np.cumsum([a.size for a in arrays], out=offsets[1:])
    return {"flat": flat, "offsets": offsets}


def _ragged_unpack(flat: np.ndarray, offsets: np.ndarray,
                   i: int) -> np.ndarray:
    return flat[int(offsets[i]):int(offsets[i + 1])]


def profile_payload(profile: ChipProfile) -> Payload:
    """Flatten a characterised die into npz-ready arrays."""
    cores = profile.cores
    paths_vth = _ragged_pack([c.freq_model.paths.vth for c in cores])
    paths_leff = [c.freq_model.paths.leff for c in cores]
    leak_vth = _ragged_pack([c.leakage.cell_vth for c in cores])
    leak_w = [c.leakage.cell_weights for c in cores]
    l2 = profile.l2_leakage
    l2_vth = _ragged_pack(l2.block_vth)
    return {
        "schema": np.int64(CACHE_SCHEMA_VERSION),
        "die_id": np.int64(profile.die_id),
        "n_cores": np.int64(profile.n_cores),
        "vf_voltages": cores[0].vf_table.voltages,
        "vf_freqs": np.stack([c.vf_table.freqs for c in cores]),
        "path_vth": paths_vth["flat"],
        "path_leff": np.concatenate(paths_leff),
        "path_offsets": paths_vth["offsets"],
        "leak_vth": leak_vth["flat"],
        "leak_weights": np.concatenate(leak_w),
        "leak_offsets": leak_vth["offsets"],
        "static_rated": profile.static_rated_array,
        "freq_calibration": np.float64(cores[0].freq_model.calibration),
        "leak_calibration": np.array(
            [c.leakage.calibration for c in cores]),
        "l2_vth": l2_vth["flat"],
        "l2_offsets": l2_vth["offsets"],
        "l2_share": l2.block_share,
        "l2_calibration": np.float64(l2.calibration),
    }


def profile_from_payload(
    payload: Payload,
    tech: TechParams,
    arch: ArchConfig,
    floorplan: Optional[Floorplan] = None,
    thermal: Optional[ThermalNetwork] = None,
) -> ChipProfile:
    """Rebuild a :class:`ChipProfile` from a cached payload.

    ``floorplan``/``thermal`` are deterministic functions of ``arch``
    and are *shared* structures on the profile; pass the caller's
    instances to keep experiments sharing one thermal network.
    """
    if int(payload["schema"]) != CACHE_SCHEMA_VERSION:
        raise ValueError("payload schema mismatch")
    n_cores = int(payload["n_cores"])
    if n_cores != arch.n_cores:
        raise ValueError("payload core count does not match arch")
    if floorplan is None:
        floorplan = build_floorplan(arch)
    if thermal is None:
        thermal = ThermalNetwork(floorplan)
    freq_calib = float(payload["freq_calibration"])
    leak_calib = np.asarray(payload["leak_calibration"], dtype=float)
    static = np.asarray(payload["static_rated"], dtype=float)
    voltages = payload["vf_voltages"]
    cores = []
    for i in range(n_cores):
        paths = PathSet(
            vth=_ragged_unpack(payload["path_vth"],
                               payload["path_offsets"], i),
            leff=_ragged_unpack(payload["path_leff"],
                                payload["path_offsets"], i))
        leakage = CoreLeakageModel.from_arrays(
            _ragged_unpack(payload["leak_vth"],
                           payload["leak_offsets"], i),
            _ragged_unpack(payload["leak_weights"],
                           payload["leak_offsets"], i),
            tech, float(leak_calib[i]))
        cores.append(CoreDescriptor(
            core_id=i,
            vf_table=VFTable(voltages=voltages,
                             freqs=payload["vf_freqs"][i]),
            freq_model=CoreFrequencyModel(paths, tech, freq_calib),
            leakage=leakage,
            static_power_rated=float(static[i]),
        ))
    n_blocks = int(payload["l2_offsets"].size) - 1
    l2 = L2LeakageModel.from_arrays(
        [_ragged_unpack(payload["l2_vth"], payload["l2_offsets"], j)
         for j in range(n_blocks)],
        payload["l2_share"], tech, float(payload["l2_calibration"]))
    return ChipProfile(
        die_id=int(payload["die_id"]),
        tech=tech,
        arch=arch,
        floorplan=floorplan,
        cores=tuple(cores),
        l2_leakage=l2,
        thermal=thermal,
    )


# ---------------------------------------------------------------------------
# npz packing
#
# An npz member costs a zip-entry open plus a header parse on every
# load; a payload has ~18 members, which dominates warm-read latency.
# Entries are therefore stored as exactly three data members — a JSON
# layout header plus one float64 and one int64 blob — and sliced back
# into the payload dict on load. Format v2 adds two tiny metadata
# members: the container format version and a SHA-256 digest over the
# data members, verified on every load.


def _payload_digest(packed: Dict[str, np.ndarray]) -> bytes:
    """SHA-256 over an entry's data members (layout + both blobs)."""
    digest = hashlib.sha256()
    for name in ("layout", "f64", "i64"):
        arr = np.ascontiguousarray(packed[name])
        digest.update(arr.tobytes())
    return digest.digest()


def _pack_payload(payload: Payload) -> Dict[str, np.ndarray]:
    layout = []
    f64_parts: List[np.ndarray] = []
    i64_parts: List[np.ndarray] = []
    for name in sorted(payload):
        arr = np.asarray(payload[name])
        if np.issubdtype(arr.dtype, np.integer):
            kind, parts = "i", i64_parts
            arr = arr.astype(np.int64, copy=False)
        else:
            kind, parts = "f", f64_parts
            arr = arr.astype(np.float64, copy=False)
        layout.append([name, kind, list(arr.shape)])
        parts.append(arr.ravel())
    header = np.frombuffer(json.dumps(layout).encode("utf-8"),
                           dtype=np.uint8)
    cat = (lambda parts, dtype:
           np.concatenate(parts) if parts else np.empty(0, dtype=dtype))
    packed = {"layout": header,
              "f64": cat(f64_parts, np.float64),
              "i64": cat(i64_parts, np.int64)}
    packed["format"] = np.int64(CACHE_FORMAT_VERSION)
    packed["digest"] = np.frombuffer(_payload_digest(packed),
                                     dtype=np.uint8)
    return packed


def _verify_packed(packed: Dict[str, np.ndarray]) -> None:
    """Raise :class:`CacheIntegrityError` unless the entry checks out.

    v1 entries (no ``format``/``digest`` members) pass transparently —
    they predate the digest; their zip CRCs still guard the bits.
    """
    for name in ("layout", "f64", "i64"):
        if name not in packed:
            raise CacheIntegrityError(f"missing member {name!r}")
    fmt = int(packed["format"]) if "format" in packed else 1
    if fmt > CACHE_FORMAT_VERSION:
        raise CacheIntegrityError(
            f"container format {fmt} is newer than supported "
            f"{CACHE_FORMAT_VERSION}")
    if fmt >= 2:
        if "digest" not in packed:
            raise CacheIntegrityError("format>=2 entry lacks a digest")
        stored = bytes(np.asarray(packed["digest"], dtype=np.uint8))
        if stored != _payload_digest(packed):
            raise CacheIntegrityError("payload digest mismatch")


def _unpack_payload(packed: Dict[str, np.ndarray]) -> Payload:
    layout = json.loads(bytes(packed["layout"]).decode("utf-8"))
    blobs = {"f": packed["f64"], "i": packed["i64"]}
    starts = {"f": 0, "i": 0}
    payload: Payload = {}
    for name, kind, shape in layout:
        size = int(np.prod(shape)) if shape else 1
        start = starts[kind]
        chunk = blobs[kind][start:start + size]
        starts[kind] = start + size
        payload[name] = (chunk.reshape(shape) if shape
                         else chunk.reshape(()))
    return payload


# ---------------------------------------------------------------------------
# The on-disk store


class CharacterizationCache:
    """Content-addressed npz store with integrity verification.

    Writes are atomic (temp file + ``os.replace``), so concurrent
    workers — process-pool shards or parallel pytest/CI jobs — can
    share one cache directory without corrupting entries. Loads verify
    the format-v2 SHA-256 digest; an entry that exists but cannot be
    read back bitwise is quarantined (not silently re-characterised):
    the file moves to ``<root>/quarantine/`` with a ``*.reason.json``
    describing why, and the ``corrupt`` counter — distinct from
    ``misses``, which counts genuinely absent entries — increments.
    """

    QUARANTINE_DIR = "quarantine"

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0,
                                      "corrupt": 0, "stores": 0}

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.npz"

    @property
    def quarantine_root(self) -> pathlib.Path:
        return self.root / self.QUARANTINE_DIR

    def load(self, key: str) -> Optional[Payload]:
        """The payload stored under ``key``, or None.

        An absent entry counts a miss; an entry that exists but fails
        to read or verify is quarantined, counts ``corrupt``, and also
        returns None (the caller re-characterises either way).
        """
        path = self.path_for(key)
        try:
            with np.load(path) as npz:
                packed = {name: npz[name] for name in npz.files}
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except (OSError, ValueError, KeyError,
                json.JSONDecodeError, zipfile.BadZipFile) as exc:
            self._quarantine(key, path, f"unreadable npz: {exc!r}")
            return None
        try:
            _verify_packed(packed)
            payload = _unpack_payload(packed)
        except (CacheIntegrityError, ValueError, KeyError, IndexError,
                json.JSONDecodeError) as exc:
            self._quarantine(key, path, f"verification failed: {exc!r}")
            return None
        self.stats["hits"] += 1
        return payload

    def _quarantine(self, key: str, path: pathlib.Path,
                    reason: str) -> None:
        """Move a corrupt entry aside and record why, atomically."""
        self.stats["corrupt"] += 1
        qdir = self.quarantine_root
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            # Another process may have quarantined it first; make sure
            # the poisoned entry is at least out of the lookup path.
            try:
                os.unlink(path)
            except OSError:
                pass
        record = {
            "key": key,
            "entry": path.name,
            "reason": reason,
            "quarantined_at_unix_s": time.time(),
            "numpy": np.__version__,
        }
        try:
            (qdir / f"{path.stem}.reason.json").write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n")
        except OSError:
            pass

    def store(self, key: str, payload: Payload) -> None:
        """Atomically persist a payload under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **_pack_payload(payload))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats["stores"] += 1

    def clear(self) -> None:
        """Delete every entry (always safe: entries are pure caches)."""
        shutil.rmtree(self.root, ignore_errors=True)

    def snapshot(self) -> Dict[str, int]:
        """A copy of the hit/miss/corrupt/store counters."""
        return dict(self.stats)

    # -- maintenance (the ``repro cache`` CLI subcommand) ------------

    def entries(self) -> Iterator[pathlib.Path]:
        """Entry files currently in the store (quarantine excluded)."""
        if not self.root.is_dir():
            return
        for bucket in sorted(p for p in self.root.iterdir()
                             if p.is_dir() and p.name != self.QUARANTINE_DIR):
            yield from sorted(bucket.glob("*.npz"))

    def usage(self) -> Dict[str, int]:
        """Entry/byte counts for ``repro cache stats``."""
        n_entries = total = 0
        for path in self.entries():
            n_entries += 1
            try:
                total += path.stat().st_size
            except OSError:
                pass
        quarantined = (len(list(self.quarantine_root.glob("*.npz")))
                       if self.quarantine_root.is_dir() else 0)
        return {"entries": n_entries, "bytes": total,
                "quarantined": quarantined}

    def verify_all(self) -> Dict[str, List[str]]:
        """Verify every entry; corrupt ones are quarantined.

        Returns the keys that verified (``ok``) and the keys that were
        quarantined by this pass (``corrupt``).
        """
        ok: List[str] = []
        corrupt: List[str] = []
        for path in list(self.entries()):
            key = path.stem
            before = self.stats["corrupt"]
            payload = self.load(key)
            if payload is not None:
                ok.append(key)
            elif self.stats["corrupt"] > before:
                corrupt.append(key)
        return {"ok": ok, "corrupt": corrupt}

    def gc(self, max_bytes: int) -> List[pathlib.Path]:
        """Evict least-recently-used entries until ``<= max_bytes``.

        LRU is approximated by file mtime (atomic stores refresh it;
        loads do not touch it, so this is closer to least-recently-
        *stored* — good enough for a content-addressed cache whose
        entries are all equally re-creatable). Returns removed paths.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        stamped = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            stamped.append((stat.st_mtime, path, stat.st_size))
            total += stat.st_size
        removed: List[pathlib.Path] = []
        for mtime, path, size in sorted(stamped):
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed.append(path)
        return removed


# ---------------------------------------------------------------------------
# Process-wide default cache

_cache_enabled_override: Optional[bool] = None
_cache_root_override: Optional[pathlib.Path] = None
_cache_instances: Dict[pathlib.Path, CharacterizationCache] = {}


def cache_enabled() -> bool:
    """Whether the default cache is active (CLI/env controllable)."""
    if _cache_enabled_override is not None:
        return _cache_enabled_override
    return os.environ.get("REPRO_NO_CACHE", "") in ("", "0")


def set_cache_enabled(enabled: Optional[bool]) -> None:
    """Force the default cache on/off; ``None`` restores env control."""
    global _cache_enabled_override
    _cache_enabled_override = enabled


def set_cache_root(root: Optional[Union[str, pathlib.Path]]) -> None:
    """Override the default cache directory (``None`` restores it)."""
    global _cache_root_override
    _cache_root_override = pathlib.Path(root) if root is not None else None


def default_cache_root() -> pathlib.Path:
    """Default cache directory.

    Priority: explicit :func:`set_cache_root` override, the
    ``REPRO_CACHE_DIR`` environment variable, then ``benchmarks/.cache``
    of the enclosing checkout (found by walking up from the CWD), then
    a per-user fallback.
    """
    if _cache_root_override is not None:
        return _cache_root_override
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    cwd = pathlib.Path.cwd()
    for base in (cwd, *cwd.parents):
        if ((base / "pyproject.toml").exists()
                and (base / "benchmarks").is_dir()):
            return base / "benchmarks" / ".cache"
    return pathlib.Path.home() / ".cache" / "repro-characterization"


def get_default_cache() -> Optional[CharacterizationCache]:
    """The process-wide cache instance, or None when disabled.

    One instance is shared per root directory so hit/miss counters
    aggregate across every factory in the process — and survive a
    temporary root switch (e.g. a test pointing ``parallel_config``
    at a scratch directory) instead of resetting to zero.
    """
    if not cache_enabled():
        return None
    root = default_cache_root()
    if root not in _cache_instances:
        _cache_instances[root] = CharacterizationCache(root)
    return _cache_instances[root]
