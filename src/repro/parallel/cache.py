"""Persistent, content-addressed characterisation cache.

Characterising a die — sampling its variation map, extracting critical
paths, binning (V, f) tables, calibrating leakage — is deterministic
per (tech, arch, batch seed, die index), so its output can be cached
on disk and shared across every experiment, benchmark and CI run that
asks for the same die.

Entries are compressed ``.npz`` files under a content-addressed path:
the key is a SHA-256 over the full chip configuration (every tech and
arch field), the variation batch seed, the die index, the power
calibration constants, and a code-version tag. Changing *anything*
that could alter characterisation output changes the key, so stale
entries are never read — invalidation is automatic; deleting the
cache directory is always safe.

The payload is the flattened state of a :class:`~repro.chip.ChipProfile`
(path sets, V/f tables, leakage cell states), packed into a handful of
flat arrays with offset vectors so a warm load touches few npz members.
Round-tripping is bitwise-exact: a cache hit reconstructs arrays equal
to a cold characterisation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import shutil
import tempfile
import zipfile
from typing import Dict, List, Optional, Union

import numpy as np

from ..chip import ChipProfile, CoreDescriptor
from ..config import ArchConfig, TechParams
from ..floorplan import Floorplan, build_floorplan
from ..freq import CoreFrequencyModel, VFTable
from ..freq.critical_path import PathSet
from ..power import CoreLeakageModel, L2LeakageModel
from ..power import scaling
from ..thermal import ThermalNetwork

# Payload layout version: bump when the npz schema changes.
CACHE_SCHEMA_VERSION = 1

# Code-version tag: bump whenever the characterisation pipeline
# (variation sampling, path extraction, binning, leakage calibration)
# changes its outputs. Old entries then become unreachable.
CHARACTERIZATION_TAG = "characterize-v1"

Payload = Dict[str, np.ndarray]


# ---------------------------------------------------------------------------
# Content addressing


def cache_key(tech: TechParams, arch: ArchConfig, seed: int,
              die_index: int) -> str:
    """Content hash identifying one die's characterisation output."""
    parts = [
        f"schema={CACHE_SCHEMA_VERSION}",
        f"code={CHARACTERIZATION_TAG}",
        f"numpy={np.__version__}",
        "tech=" + repr(sorted(dataclasses.asdict(tech).items())),
        "arch=" + repr(sorted(dataclasses.asdict(arch).items())),
        f"core_static_nominal={scaling.CORE_STATIC_NOMINAL_W!r}",
        f"l2_static_nominal={scaling.L2_STATIC_NOMINAL_W!r}",
        f"l2_vdd={scaling.L2_VDD!r}",
        f"seed={int(seed)}",
        f"die={int(die_index)}",
    ]
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Payload (de)serialisation


def _ragged_pack(arrays: List[np.ndarray]) -> Dict[str, np.ndarray]:
    flat = (np.concatenate(arrays) if arrays
            else np.empty(0, dtype=float))
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    np.cumsum([a.size for a in arrays], out=offsets[1:])
    return {"flat": flat, "offsets": offsets}


def _ragged_unpack(flat: np.ndarray, offsets: np.ndarray,
                   i: int) -> np.ndarray:
    return flat[int(offsets[i]):int(offsets[i + 1])]


def profile_payload(profile: ChipProfile) -> Payload:
    """Flatten a characterised die into npz-ready arrays."""
    cores = profile.cores
    paths_vth = _ragged_pack([c.freq_model.paths.vth for c in cores])
    paths_leff = [c.freq_model.paths.leff for c in cores]
    leak_vth = _ragged_pack([c.leakage.cell_vth for c in cores])
    leak_w = [c.leakage.cell_weights for c in cores]
    l2 = profile.l2_leakage
    l2_vth = _ragged_pack(l2.block_vth)
    return {
        "schema": np.int64(CACHE_SCHEMA_VERSION),
        "die_id": np.int64(profile.die_id),
        "n_cores": np.int64(profile.n_cores),
        "vf_voltages": cores[0].vf_table.voltages,
        "vf_freqs": np.stack([c.vf_table.freqs for c in cores]),
        "path_vth": paths_vth["flat"],
        "path_leff": np.concatenate(paths_leff),
        "path_offsets": paths_vth["offsets"],
        "leak_vth": leak_vth["flat"],
        "leak_weights": np.concatenate(leak_w),
        "leak_offsets": leak_vth["offsets"],
        "static_rated": profile.static_rated_array,
        "freq_calibration": np.float64(cores[0].freq_model.calibration),
        "leak_calibration": np.array(
            [c.leakage.calibration for c in cores]),
        "l2_vth": l2_vth["flat"],
        "l2_offsets": l2_vth["offsets"],
        "l2_share": l2.block_share,
        "l2_calibration": np.float64(l2.calibration),
    }


def profile_from_payload(
    payload: Payload,
    tech: TechParams,
    arch: ArchConfig,
    floorplan: Optional[Floorplan] = None,
    thermal: Optional[ThermalNetwork] = None,
) -> ChipProfile:
    """Rebuild a :class:`ChipProfile` from a cached payload.

    ``floorplan``/``thermal`` are deterministic functions of ``arch``
    and are *shared* structures on the profile; pass the caller's
    instances to keep experiments sharing one thermal network.
    """
    if int(payload["schema"]) != CACHE_SCHEMA_VERSION:
        raise ValueError("payload schema mismatch")
    n_cores = int(payload["n_cores"])
    if n_cores != arch.n_cores:
        raise ValueError("payload core count does not match arch")
    if floorplan is None:
        floorplan = build_floorplan(arch)
    if thermal is None:
        thermal = ThermalNetwork(floorplan)
    freq_calib = float(payload["freq_calibration"])
    leak_calib = np.asarray(payload["leak_calibration"], dtype=float)
    static = np.asarray(payload["static_rated"], dtype=float)
    voltages = payload["vf_voltages"]
    cores = []
    for i in range(n_cores):
        paths = PathSet(
            vth=_ragged_unpack(payload["path_vth"],
                               payload["path_offsets"], i),
            leff=_ragged_unpack(payload["path_leff"],
                                payload["path_offsets"], i))
        leakage = CoreLeakageModel.from_arrays(
            _ragged_unpack(payload["leak_vth"],
                           payload["leak_offsets"], i),
            _ragged_unpack(payload["leak_weights"],
                           payload["leak_offsets"], i),
            tech, float(leak_calib[i]))
        cores.append(CoreDescriptor(
            core_id=i,
            vf_table=VFTable(voltages=voltages,
                             freqs=payload["vf_freqs"][i]),
            freq_model=CoreFrequencyModel(paths, tech, freq_calib),
            leakage=leakage,
            static_power_rated=float(static[i]),
        ))
    n_blocks = int(payload["l2_offsets"].size) - 1
    l2 = L2LeakageModel.from_arrays(
        [_ragged_unpack(payload["l2_vth"], payload["l2_offsets"], j)
         for j in range(n_blocks)],
        payload["l2_share"], tech, float(payload["l2_calibration"]))
    return ChipProfile(
        die_id=int(payload["die_id"]),
        tech=tech,
        arch=arch,
        floorplan=floorplan,
        cores=tuple(cores),
        l2_leakage=l2,
        thermal=thermal,
    )


# ---------------------------------------------------------------------------
# npz packing
#
# An npz member costs a zip-entry open plus a header parse on every
# load; a payload has ~18 members, which dominates warm-read latency.
# Entries are therefore stored as exactly three members — a JSON
# layout header plus one float64 and one int64 blob — and sliced back
# into the payload dict on load.


def _pack_payload(payload: Payload) -> Dict[str, np.ndarray]:
    layout = []
    f64_parts: List[np.ndarray] = []
    i64_parts: List[np.ndarray] = []
    for name in sorted(payload):
        arr = np.asarray(payload[name])
        if np.issubdtype(arr.dtype, np.integer):
            kind, parts = "i", i64_parts
            arr = arr.astype(np.int64, copy=False)
        else:
            kind, parts = "f", f64_parts
            arr = arr.astype(np.float64, copy=False)
        layout.append([name, kind, list(arr.shape)])
        parts.append(arr.ravel())
    header = np.frombuffer(json.dumps(layout).encode("utf-8"),
                           dtype=np.uint8)
    cat = (lambda parts, dtype:
           np.concatenate(parts) if parts else np.empty(0, dtype=dtype))
    return {"layout": header,
            "f64": cat(f64_parts, np.float64),
            "i64": cat(i64_parts, np.int64)}


def _unpack_payload(packed: Dict[str, np.ndarray]) -> Payload:
    layout = json.loads(bytes(packed["layout"]).decode("utf-8"))
    blobs = {"f": packed["f64"], "i": packed["i64"]}
    starts = {"f": 0, "i": 0}
    payload: Payload = {}
    for name, kind, shape in layout:
        size = int(np.prod(shape)) if shape else 1
        start = starts[kind]
        chunk = blobs[kind][start:start + size]
        starts[kind] = start + size
        payload[name] = (chunk.reshape(shape) if shape
                         else chunk.reshape(()))
    return payload


# ---------------------------------------------------------------------------
# The on-disk store


class CharacterizationCache:
    """Content-addressed npz store with hit/miss accounting.

    Writes are atomic (temp file + ``os.replace``), so concurrent
    workers — process-pool shards or parallel pytest/CI jobs — can
    share one cache directory without corrupting entries.
    """

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0, "stores": 0}

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.npz"

    def load(self, key: str) -> Optional[Payload]:
        """The payload stored under ``key``, or None (counted a miss)."""
        path = self.path_for(key)
        try:
            with np.load(path) as npz:
                payload = _unpack_payload(
                    {name: npz[name] for name in npz.files})
        except (FileNotFoundError, OSError, ValueError, KeyError,
                json.JSONDecodeError, zipfile.BadZipFile):
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return payload

    def store(self, key: str, payload: Payload) -> None:
        """Atomically persist a payload under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **_pack_payload(payload))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats["stores"] += 1

    def clear(self) -> None:
        """Delete every entry (always safe: entries are pure caches)."""
        shutil.rmtree(self.root, ignore_errors=True)

    def snapshot(self) -> Dict[str, int]:
        """A copy of the hit/miss/store counters."""
        return dict(self.stats)


# ---------------------------------------------------------------------------
# Process-wide default cache

_cache_enabled_override: Optional[bool] = None
_cache_root_override: Optional[pathlib.Path] = None
_cache_instances: Dict[pathlib.Path, CharacterizationCache] = {}


def cache_enabled() -> bool:
    """Whether the default cache is active (CLI/env controllable)."""
    if _cache_enabled_override is not None:
        return _cache_enabled_override
    return os.environ.get("REPRO_NO_CACHE", "") in ("", "0")


def set_cache_enabled(enabled: Optional[bool]) -> None:
    """Force the default cache on/off; ``None`` restores env control."""
    global _cache_enabled_override
    _cache_enabled_override = enabled


def set_cache_root(root: Optional[Union[str, pathlib.Path]]) -> None:
    """Override the default cache directory (``None`` restores it)."""
    global _cache_root_override
    _cache_root_override = pathlib.Path(root) if root is not None else None


def default_cache_root() -> pathlib.Path:
    """Default cache directory.

    Priority: explicit :func:`set_cache_root` override, the
    ``REPRO_CACHE_DIR`` environment variable, then ``benchmarks/.cache``
    of the enclosing checkout (found by walking up from the CWD), then
    a per-user fallback.
    """
    if _cache_root_override is not None:
        return _cache_root_override
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    cwd = pathlib.Path.cwd()
    for base in (cwd, *cwd.parents):
        if ((base / "pyproject.toml").exists()
                and (base / "benchmarks").is_dir()):
            return base / "benchmarks" / ".cache"
    return pathlib.Path.home() / ".cache" / "repro-characterization"


def get_default_cache() -> Optional[CharacterizationCache]:
    """The process-wide cache instance, or None when disabled.

    One instance is shared per root directory so hit/miss counters
    aggregate across every factory in the process — and survive a
    temporary root switch (e.g. a test pointing ``parallel_config``
    at a scratch directory) instead of resetting to zero.
    """
    if not cache_enabled():
        return None
    root = default_cache_root()
    if root not in _cache_instances:
        _cache_instances[root] = CharacterizationCache(root)
    return _cache_instances[root]
