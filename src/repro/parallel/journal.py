"""Journaled checkpoint/resume for experiment campaigns.

A paper campaign (``repro all``, or one full-scale figure) is a long
sequence of independent *units* — one (experiment, trial/die, policy)
measurement each. A crash mid-campaign used to throw all completed
units away. This module gives every campaign an append-only JSONL
*run journal* (``results/<run>/journal.jsonl``) recording each
completed unit under a content key, so an interrupted run resumes
from the last completed unit instead of starting over.

Crash-safety model:

* appends are a single ``write`` of one ``\\n``-terminated line to an
  ``O_APPEND`` handle, flushed and fsynced before ``record`` returns —
  a unit is either fully journaled or not journaled at all;
* replay tolerates exactly one torn tail line (a crash mid-append):
  parsing stops at the first malformed line, which is overwritten by
  the next append via truncation to the last good byte;
* unit keys are content hashes over everything that determines the
  unit's result (experiment, trial, policy, seeds, tech/arch, the
  protocol parameters), so a journal can never resurrect a stale
  result after a parameter change — the key simply won't match;
* results are stored as JSON floats (``repr`` round-trips IEEE-754
  doubles exactly), so a resumed figure is bitwise-identical to an
  uninterrupted one;
* a figure is only emitted from a journal that passes
  :meth:`RunJournal.require_complete` — a partial journal raises
  :class:`IncompleteJournalError` instead of producing partial tables.

Resume is opt-in: the CLI's ``--resume``/``--fresh`` flags or
``REPRO_RESUME=1`` (see :func:`resume_enabled`). Without it the
runners never touch the journal and behave exactly as before.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import shutil
import time
from typing import Any, Dict, Iterable, List, Optional, Union

#: Bump whenever the journal line format or unit-key recipe changes;
#: part of every unit key, so old journals simply stop matching.
JOURNAL_TAG = "journal-v1"

JOURNAL_FILENAME = "journal.jsonl"


class IncompleteJournalError(RuntimeError):
    """A figure was about to be emitted from a partial journal."""


def unit_key(**fields: Any) -> str:
    """Content hash identifying one campaign unit's result.

    Callers pass everything the unit's result depends on (experiment
    tag, trial index, policy/algorithm name, seeds, ``repr`` of tech
    and arch, protocol parameters). The journal tag is mixed in so a
    format change invalidates every old key at once.
    """
    parts = [f"tag={JOURNAL_TAG}"]
    parts += [f"{name}={fields[name]!r}" for name in sorted(fields)]
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


class RunJournal:
    """Append-only JSONL record of completed campaign units.

    One journal per campaign run, at ``<root>/<run>/journal.jsonl``.
    Open it with :meth:`open` (replays existing entries), look up
    units with :meth:`lookup`, and append completed units with
    :meth:`record`. Safe against crashes between (but not during)
    appends; a torn final line is ignored on replay and truncated
    away before the next append.
    """

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._entries: Dict[str, Any] = {}
        self._complete_marks: Dict[str, int] = {}
        self._good_bytes = 0
        self._replay()

    @classmethod
    def open(cls, root: Union[str, pathlib.Path],
             run_name: str) -> "RunJournal":
        """The journal for campaign ``run_name`` under ``root``."""
        if not run_name or "/" in run_name or run_name in (".", ".."):
            raise ValueError(f"bad run name {run_name!r}")
        return cls(pathlib.Path(root) / run_name / JOURNAL_FILENAME)

    # -- replay ------------------------------------------------------

    def _replay(self) -> None:
        try:
            raw = self.path.read_bytes()
        except (FileNotFoundError, OSError):
            return
        good = 0
        for line in raw.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn tail: a crash mid-append; ignore it
            try:
                entry = json.loads(line.decode("utf-8"))
                kind = entry.get("kind", "unit")
                if kind == "unit":
                    self._entries[entry["key"]] = entry["result"]
                elif kind == "complete":
                    self._complete_marks[entry["scope"]] = \
                        int(entry["n_units"])
            except (ValueError, KeyError, UnicodeDecodeError):
                break  # malformed: stop trusting anything after it
            good += len(line)
        self._good_bytes = good

    # -- queries -----------------------------------------------------

    def lookup(self, key: str) -> Optional[Any]:
        """The journaled result for ``key``, or None."""
        return self._entries.get(key)

    def completed(self) -> List[str]:
        """Keys of every journaled unit (replay + this process)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def require_complete(self, keys: Iterable[str],
                         scope: str = "") -> None:
        """Refuse to emit a figure unless every unit is journaled."""
        missing = [k for k in keys if k not in self._entries]
        if missing:
            raise IncompleteJournalError(
                f"journal {self.path} is missing {len(missing)} of the "
                f"units required"
                + (f" by {scope!r}" if scope else "")
                + " — refusing to emit a figure from a partial journal")

    def is_scope_complete(self, scope: str) -> bool:
        """Whether a ``complete`` marker was journaled for ``scope``."""
        return scope in self._complete_marks

    # -- appends -----------------------------------------------------

    def _append_line(self, obj: Dict[str, Any]) -> None:
        line = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            # Drop a torn tail left by a previous crash before the
            # first new append (never shrinks past replayed entries).
            if os.fstat(fd).st_size > self._good_bytes:
                os.ftruncate(fd, self._good_bytes)
            os.write(fd, line)
            os.fsync(fd)
        finally:
            os.close(fd)
        self._good_bytes += len(line)

    def record(self, key: str, unit: Dict[str, Any],
               result: Any) -> None:
        """Journal one completed unit (atomic, durable, idempotent).

        ``result`` must be JSON-representable; floats round-trip
        bitwise. Re-recording an already-journaled key is a no-op.
        """
        if key in self._entries:
            return
        self._append_line({
            "kind": "unit",
            "key": key,
            "unit": unit,
            "result": result,
            "t_unix_s": time.time(),
        })
        self._entries[key] = result

    def mark_complete(self, scope: str, n_units: int) -> None:
        """Journal that a scope (one figure/table pass) finished."""
        if self._complete_marks.get(scope) == int(n_units):
            return
        self._append_line({
            "kind": "complete",
            "scope": scope,
            "n_units": int(n_units),
            "t_unix_s": time.time(),
        })
        self._complete_marks[scope] = int(n_units)


def merge_journals(dest: RunJournal,
                   sources: Iterable[Union[str, pathlib.Path,
                                           RunJournal]]) -> int:
    """Merge unit entries from several journals into ``dest``.

    The multi-host primitive: each host of a fleet manifest journals
    its own die slice; merging replays every source's units into the
    destination journal (append-only, durable), after which the
    merged journal resumes/validates exactly like a single-host run
    over the full range would. Content keys make this safe — a unit's
    key pins everything its result depends on, so the same key
    appearing in two sources must carry the same result, and a
    *conflicting* duplicate means two hosts disagreed about identical
    work (clock-skewed code versions, corrupt transfer) and the merge
    refuses rather than silently picking a winner.

    ``complete`` marks are deliberately **not** merged: a source's
    mark covers only its own slice, so completeness of the merged
    campaign must be re-established against the full unit-key set
    (``RunJournal.require_complete``) by the caller.

    Returns the number of newly merged units.
    """
    merged = 0
    for src in sources:
        journal = (src if isinstance(src, RunJournal)
                   else RunJournal(src))
        for key in journal.completed():
            result = journal.lookup(key)
            existing = dest.lookup(key)
            if existing is not None:
                if existing != result:
                    raise ValueError(
                        f"journal merge conflict on unit {key[:16]}…: "
                        f"{journal.path} disagrees with already-merged "
                        "results for the same content key")
                continue
            dest.record(key, {"merged_from": str(journal.path)}, result)
            merged += 1
    return merged


# ---------------------------------------------------------------------------
# Process-wide resume configuration (mirrors the cache-root pattern)

_resume_override: Optional[bool] = None
_journal_root_override: Optional[pathlib.Path] = None


def resume_enabled() -> bool:
    """Whether campaign journaling/resume is active.

    Priority: :func:`set_resume` override (the CLI's ``--resume`` /
    ``--fresh``), then the ``REPRO_RESUME`` environment variable,
    then off.
    """
    if _resume_override is not None:
        return _resume_override
    return os.environ.get("REPRO_RESUME", "") not in ("", "0")


def set_resume(enabled: Optional[bool]) -> None:
    """Force resume on/off; ``None`` restores env control."""
    global _resume_override
    _resume_override = enabled


def set_journal_root(root: Optional[Union[str, pathlib.Path]]) -> None:
    """Override the campaign results root (``None`` restores it)."""
    global _journal_root_override
    _journal_root_override = (pathlib.Path(root) if root is not None
                              else None)


def default_journal_root() -> pathlib.Path:
    """Campaign results root holding ``<run>/journal.jsonl`` dirs.

    Priority: explicit :func:`set_journal_root` override, the
    ``REPRO_JOURNAL_DIR`` environment variable, then ``results/`` of
    the enclosing checkout (found by walking up from the CWD), then a
    per-user fallback.
    """
    if _journal_root_override is not None:
        return _journal_root_override
    env = os.environ.get("REPRO_JOURNAL_DIR")
    if env:
        return pathlib.Path(env)
    cwd = pathlib.Path.cwd()
    for base in (cwd, *cwd.parents):
        if ((base / "pyproject.toml").exists()
                and (base / "benchmarks").is_dir()):
            return base / "results"
    return pathlib.Path.home() / ".cache" / "repro-results"


def active_journal(run_name: str) -> Optional[RunJournal]:
    """The campaign journal for ``run_name``, or None when resume is
    off — callers skip all journaling in that case."""
    if not resume_enabled():
        return None
    return RunJournal.open(default_journal_root(), run_name)


def discard_journal(run_name: str) -> None:
    """Delete a campaign's journal directory (the ``--fresh`` flag)."""
    if not run_name or "/" in run_name or run_name in (".", ".."):
        raise ValueError(f"bad run name {run_name!r}")
    shutil.rmtree(default_journal_root() / run_name, ignore_errors=True)
