"""Sharded, cached characterisation of seeded die batches.

:func:`characterize_batch` is the single entry point the experiment
layer uses to turn (tech, arch, seed, die indices) into
:class:`~repro.chip.ChipProfile` objects. It composes the two speed
layers:

* the persistent :mod:`~repro.parallel.cache` — hits skip
  characterisation entirely;
* the sharded process pool from :mod:`~repro.parallel.sharding` —
  cache misses are characterised ``workers`` shards at a time.

Determinism: each die is generated from its own ``(seed, index)``
stream and characterised with a per-die seed, so results are
independent of shard boundaries and worker count. ``workers=1``
characterises misses with the same plain loop the pre-parallel code
used, and payload round-trips preserve arrays bitwise, so serial,
sharded and cached runs are all bitwise-identical.
"""

from __future__ import annotations

import functools
import os
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Union

from ..chip import ChipProfile, characterize_die, characterize_dies
from ..config import ArchConfig, TechParams
from ..floorplan import Floorplan, build_floorplan
from ..thermal import ThermalNetwork
from ..variation import DieBatch
from . import cache as _cache_mod
from . import journal as _journal_mod
from . import sharding as _sharding_mod
from .cache import (
    CharacterizationCache,
    Payload,
    cache_key,
    get_default_cache,
    profile_from_payload,
    profile_payload,
)
from .health import RunHealth, get_run_health
from .sharding import run_sharded

CacheArg = Union[None, str, CharacterizationCache]

_default_workers: Optional[int] = None


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count for a batch run.

    Priority: the explicit argument, :func:`set_default_workers` (the
    CLI's ``--workers``), the ``REPRO_WORKERS`` environment variable,
    then 1 (serial).
    """
    if workers is not None:
        return max(1, int(workers))
    if _default_workers is not None:
        return _default_workers
    env = os.environ.get("REPRO_WORKERS", "")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process-wide worker default (``None`` restores env/1)."""
    global _default_workers
    _default_workers = max(1, int(workers)) if workers is not None else None


_batched_characterization_override: Optional[bool] = None


def resolve_batched_characterization(batched: Optional[bool] = None) -> bool:
    """Whether cache misses use the die-batched characterisation kernel.

    Priority: the explicit argument,
    :func:`set_batched_characterization` (the ``parallel_config``
    override), the ``REPRO_BATCH_CHAR`` environment variable, then the
    default **on**. The batched kernel is bitwise-identical to the
    serial loop (property-tested), so this knob only selects a speed
    path; ``REPRO_BATCH_CHAR=0`` forces the serial reference.
    """
    if batched is not None:
        return bool(batched)
    if _batched_characterization_override is not None:
        return _batched_characterization_override
    env = os.environ.get("REPRO_BATCH_CHAR", "")
    if env:
        return env.strip().lower() not in ("0", "false", "no", "off")
    return True


def set_batched_characterization(batched: Optional[bool]) -> None:
    """Set the process-wide batched-characterisation default.

    ``None`` restores env/default resolution.
    """
    global _batched_characterization_override
    _batched_characterization_override = (
        bool(batched) if batched is not None else None)


@contextmanager
def parallel_config(workers: Optional[int] = None,
                    cache_enabled: Optional[bool] = None,
                    cache_root=None,
                    resume: Optional[bool] = None,
                    journal_root=None,
                    shard_retries: Optional[int] = None,
                    shard_backoff_s: Optional[float] = None,
                    batched_characterization: Optional[bool] = None):
    """Temporarily override the process-wide parallel/cache defaults.

    Used by the CLI (for the lifetime of a run) and by benchmarks and
    tests that compare serial, sharded, cold and warm configurations.
    ``resume``/``journal_root`` control campaign journaling (the CLI's
    ``--resume``/``--fresh`` flags; see :mod:`repro.parallel.journal`).
    ``shard_retries``/``shard_backoff_s`` tune the fault-tolerant
    pool's retry budget and backoff base (the knobs
    :func:`~repro.parallel.sharding.run_sharded` resolves when not
    given explicitly; env: ``REPRO_SHARD_RETRIES`` /
    ``REPRO_SHARD_BACKOFF_S``). Neither changes *which* results come
    back — recovery merges bitwise-identically — only how patient the
    coordinator is before narrowing a shard.
    ``batched_characterization`` selects the die-batched
    characterisation kernel vs the serial per-die loop for cache
    misses (bitwise-identical either way; see
    :func:`resolve_batched_characterization`).

    Every override is restored through its setter — never by poking
    the module globals — so any invariant a setter maintains (now or
    later) holds on both entry and exit.
    """
    prev_workers = _default_workers
    prev_enabled = _cache_mod._cache_enabled_override
    prev_root = _cache_mod._cache_root_override
    prev_resume = _journal_mod._resume_override
    prev_journal_root = _journal_mod._journal_root_override
    prev_retries = _sharding_mod._shard_retries_override
    prev_backoff = _sharding_mod._shard_backoff_override
    prev_batched = _batched_characterization_override
    try:
        if workers is not None:
            set_default_workers(workers)
        if cache_enabled is not None:
            _cache_mod.set_cache_enabled(cache_enabled)
        if cache_root is not None:
            _cache_mod.set_cache_root(cache_root)
        if resume is not None:
            _journal_mod.set_resume(resume)
        if journal_root is not None:
            _journal_mod.set_journal_root(journal_root)
        if shard_retries is not None:
            _sharding_mod.set_shard_retries(shard_retries)
        if shard_backoff_s is not None:
            _sharding_mod.set_shard_backoff(shard_backoff_s)
        if batched_characterization is not None:
            set_batched_characterization(batched_characterization)
        yield
    finally:
        set_batched_characterization(prev_batched)
        set_default_workers(prev_workers)
        _cache_mod.set_cache_enabled(prev_enabled)
        _cache_mod.set_cache_root(prev_root)
        _journal_mod.set_resume(prev_resume)
        _journal_mod.set_journal_root(prev_journal_root)
        _sharding_mod.set_shard_retries(prev_retries)
        _sharding_mod.set_shard_backoff(prev_backoff)


def _resolve_cache(cache: CacheArg) -> Optional[CharacterizationCache]:
    if cache == "auto":
        return get_default_cache()
    if cache is None or isinstance(cache, CharacterizationCache):
        return cache
    raise TypeError("cache must be 'auto', None, or a "
                    "CharacterizationCache")


def _characterize_shard(tech: TechParams, arch: ArchConfig, seed: int,
                        cache_root: Optional[str], batched: bool,
                        indices: List[int]) -> List[Payload]:
    """Worker body: characterise a shard of dies into payloads.

    Runs in a pool process (or inline for the single-shard fallback).
    Stores into the shared cache directly so the (compressing) writes
    are parallelised too; atomic writes make concurrent stores safe.
    Returns plain array payloads — cheap to pickle back to the parent.
    With ``batched`` the shard generates its dies with one shared
    field sampler and bins them through the die-batched
    :func:`~repro.chip.characterize_dies` kernel — bitwise-identical
    to the serial loop, so shard boundaries still never show.
    """
    batch = DieBatch(tech, arch, max(indices) + 1, seed=seed)
    floorplan = build_floorplan(arch)
    thermal = ThermalNetwork(floorplan)
    store = (CharacterizationCache(cache_root)
             if cache_root is not None else None)
    if batched:
        dies = batch.dies_for(indices)
        profiles = characterize_dies(dies, tech, arch,
                                     floorplan=floorplan, thermal=thermal)
    else:
        profiles = [characterize_die(batch[index], tech, arch,
                                     floorplan=floorplan, thermal=thermal)
                    for index in indices]
    payloads = []
    for index, profile in zip(indices, profiles):
        payload = profile_payload(profile)
        if store is not None:
            store.store(cache_key(tech, arch, seed, index), payload)
        payloads.append(payload)
    return payloads


def characterize_batch(
    tech: TechParams,
    arch: ArchConfig,
    seed: int,
    die_indices: Sequence[int],
    workers: Optional[int] = None,
    cache: CacheArg = "auto",
    floorplan: Optional[Floorplan] = None,
    thermal: Optional[ThermalNetwork] = None,
    shard_timeout_s: Optional[float] = None,
    health: Optional[RunHealth] = None,
    batched: Optional[bool] = None,
) -> List[ChipProfile]:
    """Characterise the requested dies of a seeded batch.

    Args:
        tech, arch, seed: The batch identity (die ``i`` is generated
            from the ``(seed, i)`` stream regardless of batch size).
        die_indices: Dies wanted, in the order results are returned.
        workers: Process count for cache misses; ``None`` resolves via
            :func:`resolve_workers`. ``1`` is the serial fallback,
            bitwise-identical to the pre-parallel loop.
        cache: ``"auto"`` (the process-wide default cache), ``None``
            (disabled), or an explicit :class:`CharacterizationCache`.
        floorplan, thermal: Shared structures to attach to the
            profiles (built from ``arch`` when omitted).
        batched: Whether cache misses run the die-batched
            characterisation kernel (``None`` resolves via
            :func:`resolve_batched_characterization`; default on).
            Batched and serial characterisation are bitwise-identical,
            so cache keys are shared and the batch fills only misses
            either way.
        shard_timeout_s: Per-shard wall-time limit for the pool run
            (``None`` defers to ``REPRO_SHARD_TIMEOUT_S``; see
            :func:`~repro.parallel.sharding.resolve_shard_timeout`).
        health: :class:`RunHealth` recording recovery actions; by
            default the process-wide collector from
            :func:`~repro.parallel.health.get_run_health`, which
            benchmarks snapshot into ``BENCH_*.json``.

    Returns:
        One :class:`ChipProfile` per entry of ``die_indices``.
    """
    indices = [int(i) for i in die_indices]
    if not indices:
        return []
    if min(indices) < 0:
        raise ValueError("die indices must be non-negative")
    workers = resolve_workers(workers)
    store = _resolve_cache(cache)
    if floorplan is None:
        floorplan = build_floorplan(arch)
    if thermal is None:
        thermal = ThermalNetwork(floorplan)

    profiles: Dict[int, ChipProfile] = {}
    unique = list(dict.fromkeys(indices))
    missing: List[int] = []
    for index in unique:
        payload = (store.load(cache_key(tech, arch, seed, index))
                   if store is not None else None)
        if payload is not None:
            profiles[index] = profile_from_payload(
                payload, tech, arch, floorplan, thermal)
        else:
            missing.append(index)

    if health is None:
        health = get_run_health()
    use_batched = resolve_batched_characterization(batched)
    if missing and workers > 1 and len(missing) > 1:
        fn = functools.partial(
            _characterize_shard, tech, arch, seed,
            str(store.root) if store is not None else None, use_batched)
        payloads = run_sharded(fn, missing, workers=workers,
                               timeout_s=shard_timeout_s, health=health)
        if store is not None:
            store.stats["stores"] += len(missing)
        for index, payload in zip(missing, payloads):
            profiles[index] = profile_from_payload(
                payload, tech, arch, floorplan, thermal)
    elif missing:
        batch = DieBatch(tech, arch, max(missing) + 1, seed=seed)
        if use_batched:
            dies = batch.dies_for(missing)
            computed = characterize_dies(dies, tech, arch,
                                         floorplan=floorplan,
                                         thermal=thermal)
        else:
            computed = [characterize_die(batch[index], tech, arch,
                                         floorplan=floorplan,
                                         thermal=thermal)
                        for index in missing]
        for index, profile in zip(missing, computed):
            if store is not None:
                store.store(cache_key(tech, arch, seed, index),
                            profile_payload(profile))
            profiles[index] = profile

    return [profiles[index] for index in indices]
