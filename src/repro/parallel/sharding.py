"""Deterministic sharding primitives for embarrassingly parallel work.

Every paper experiment characterises a seeded batch of dies: per-item
work that is independent, deterministic per (seed, index), and
therefore safe to fan out across processes *provided* the split and
the merge are deterministic too. This module supplies exactly that:

* :func:`shard_indices` — contiguous, balanced shards whose in-order
  concatenation restores ``arange(n_items)`` exactly;
* :func:`spawn_seeds` — independent child seed sequences from a root
  seed via ``SeedSequence.spawn`` (stable order), for fan-out where
  items do not carry their own per-item seed;
* :func:`run_sharded` — map a shard function over the items on a
  process pool, merging results in shard order. With ``workers=1`` it
  degenerates to one in-process call over all items, bitwise-identical
  to a plain serial loop.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

ShardFn = Callable[[List[T]], List[R]]


def shard_indices(n_items: int, n_shards: int) -> List[np.ndarray]:
    """Split ``range(n_items)`` into at most ``n_shards`` shards.

    Shards are contiguous and balanced (sizes differ by at most one),
    and concatenating them in order restores ``arange(n_items)``
    exactly — the stable merge order every sharded run relies on.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    if n_items == 0:
        return []
    return list(np.array_split(np.arange(n_items), min(n_shards, n_items)))


def spawn_seeds(seed: int, n: int) -> List[np.random.SeedSequence]:
    """``n`` independent child seed sequences of a root seed.

    Children are spawned in index order from a fresh
    ``SeedSequence(seed)``, so child ``i`` is the same object-state no
    matter how many workers the run uses or which shard ``i`` lands in.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return np.random.SeedSequence(seed).spawn(n)


def available_workers() -> int:
    """CPUs usable by this process (affinity-aware, at least 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits module state); fall back to default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_sharded(fn: ShardFn, items: Sequence[T],
                workers: int = 1) -> List[R]:
    """Map a shard function over ``items``, merging in stable order.

    Args:
        fn: Callable taking a *list of items* (one shard) and returning
            a list with one result per item, in item order. Must be
            picklable (a module-level function or ``functools.partial``
            of one) when ``workers > 1``.
        items: The work items, in the order results are wanted.
        workers: Process count. ``1`` calls ``fn(items)`` once in this
            process — bitwise-identical to a plain serial loop.

    Returns:
        One result per item, in the original item order regardless of
        worker count or completion order.
    """
    items = list(items)
    if not items:
        return []
    workers = max(1, int(workers))
    if workers == 1 or len(items) == 1:
        return _checked(fn(items), len(items))
    shards = shard_indices(len(items), workers)
    parts: List[List[R]] = [[] for _ in shards]
    with ProcessPoolExecutor(max_workers=len(shards),
                             mp_context=_pool_context()) as pool:
        futures = [pool.submit(fn, [items[i] for i in shard])
                   for shard in shards]
        for j, future in enumerate(futures):
            parts[j] = _checked(future.result(), len(shards[j]))
    merged: List[R] = []
    for part in parts:
        merged.extend(part)
    return merged


def _checked(results: List[R], expected: int) -> List[R]:
    if len(results) != expected:
        raise RuntimeError(
            f"shard function returned {len(results)} results "
            f"for {expected} items")
    return results
