"""Deterministic, fault-tolerant sharding for parallel batch work.

Every paper experiment characterises a seeded batch of dies: per-item
work that is independent, deterministic per (seed, index), and
therefore safe to fan out across processes *provided* the split and
the merge are deterministic too. This module supplies exactly that:

* :func:`shard_indices` — contiguous, balanced shards whose in-order
  concatenation restores ``arange(n_items)`` exactly;
* :func:`spawn_seeds` — independent child seed sequences from a root
  seed via ``SeedSequence.spawn`` (stable order), for fan-out where
  items do not carry their own per-item seed;
* :func:`run_sharded` — map a shard function over the items on a
  process pool, merging results in item order. With ``workers=1`` it
  degenerates to one in-process call over all items, bitwise-identical
  to a plain serial loop.

``run_sharded`` is fault tolerant (DESIGN.md §14): a shard whose
worker dies (``BrokenProcessPool``) or hangs past the configurable
timeout is retried with bounded, jitterless exponential backoff on a
replacement pool; a shard that keeps failing is *narrowed* — split in
half and re-tried, bisecting down to the single poisoned item — and
anything the pool cannot complete runs in-process as a final serial
fallback, so a run degrades to ``workers=1`` semantics instead of
dying. Results are keyed by item position throughout, so the stable
merge-order (and therefore bitwise-output) guarantee survives every
recovery path. All recovery actions are counted in a
:class:`~repro.parallel.health.RunHealth`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

from .health import RunHealth

T = TypeVar("T")
R = TypeVar("R")

ShardFn = Callable[[List[T]], List[R]]

# Default retry budget per shard before it is narrowed (split in two).
DEFAULT_MAX_SHARD_RETRIES = 2

# Base of the jitterless exponential backoff between retries of the
# same shard: attempt k sleeps backoff * 2**(k-1). Deterministic (no
# jitter) so failure-path tests and reruns behave identically.
DEFAULT_BACKOFF_S = 0.05

# Poll interval while waiting on pool futures when a timeout is set.
_POLL_S = 0.05

# Process-wide overrides for the retry knobs, set through
# parallel_config (restored via the setters, like every other
# override there). None defers to the environment, then the default.
_shard_retries_override: Optional[int] = None
_shard_backoff_override: Optional[float] = None


def set_shard_retries(retries: Optional[int]) -> None:
    """Set the process-wide retry budget (``None`` restores env/2)."""
    global _shard_retries_override
    if retries is None:
        _shard_retries_override = None
    else:
        _shard_retries_override = max(0, int(retries))


def set_shard_backoff(backoff_s: Optional[float]) -> None:
    """Set the process-wide backoff base (``None`` restores env/.05)."""
    global _shard_backoff_override
    if backoff_s is None:
        _shard_backoff_override = None
    else:
        _shard_backoff_override = max(0.0, float(backoff_s))


def resolve_shard_retries(retries: Optional[int] = None) -> int:
    """Effective per-shard retry budget before narrowing.

    Priority: the explicit argument, :func:`set_shard_retries` (the
    ``parallel_config`` override), the ``REPRO_SHARD_RETRIES``
    environment variable, then :data:`DEFAULT_MAX_SHARD_RETRIES`.
    Unparsable env values fall through to the default; values clamp
    at 0 (fail straight to narrowing/serial fallback).
    """
    if retries is not None:
        return max(0, int(retries))
    if _shard_retries_override is not None:
        return _shard_retries_override
    env = os.environ.get("REPRO_SHARD_RETRIES", "")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return DEFAULT_MAX_SHARD_RETRIES


def resolve_shard_backoff(backoff_s: Optional[float] = None) -> float:
    """Effective backoff base (s) between retries of one shard.

    Priority: the explicit argument, :func:`set_shard_backoff` (the
    ``parallel_config`` override), the ``REPRO_SHARD_BACKOFF_S``
    environment variable, then :data:`DEFAULT_BACKOFF_S`. ``0``
    disables sleeping; negative values clamp to 0.
    """
    if backoff_s is not None:
        return max(0.0, float(backoff_s))
    if _shard_backoff_override is not None:
        return _shard_backoff_override
    env = os.environ.get("REPRO_SHARD_BACKOFF_S", "")
    if env:
        try:
            return max(0.0, float(env))
        except ValueError:
            pass
    return DEFAULT_BACKOFF_S


def shard_indices(n_items: int, n_shards: int) -> List[np.ndarray]:
    """Split ``range(n_items)`` into at most ``n_shards`` shards.

    Shards are contiguous and balanced (sizes differ by at most one),
    and concatenating them in order restores ``arange(n_items)``
    exactly — the stable merge order every sharded run relies on.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    if n_items == 0:
        return []
    return list(np.array_split(np.arange(n_items), min(n_shards, n_items)))


def spawn_seeds(seed: int, n: int) -> List[np.random.SeedSequence]:
    """``n`` independent child seed sequences of a root seed.

    Children are spawned in index order from a fresh
    ``SeedSequence(seed)``, so child ``i`` is the same object-state no
    matter how many workers the run uses or which shard ``i`` lands in.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return np.random.SeedSequence(seed).spawn(n)


def available_workers() -> int:
    """CPUs usable by this process (affinity-aware, at least 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_shard_timeout(timeout_s: Optional[float] = None,
                          ) -> Optional[float]:
    """Effective per-shard timeout: argument, env, or None (no limit).

    ``REPRO_SHARD_TIMEOUT_S`` sets a process-wide default; unset,
    empty, ``0`` or unparsable means no timeout.
    """
    if timeout_s is not None:
        return float(timeout_s) if timeout_s > 0 else None
    env = os.environ.get("REPRO_SHARD_TIMEOUT_S", "")
    if env:
        try:
            value = float(env)
        except ValueError:
            return None
        return value if value > 0 else None
    return None


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits module state); fall back to default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclasses.dataclass
class _ShardTask:
    """One unit of pool work: item positions plus its retry count."""

    indices: List[int]
    attempt: int = 0


def _new_pool(pool_size: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=pool_size,
                               mp_context=_pool_context())


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on (possibly hung) workers."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:  # already dead / not started
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_sharded(fn: ShardFn, items: Sequence[T], workers: int = 1, *,
                timeout_s: Optional[float] = None,
                max_shard_retries: Optional[int] = None,
                backoff_s: Optional[float] = None,
                health: Optional[RunHealth] = None) -> List[R]:
    """Map a shard function over ``items``, merging in stable order.

    Args:
        fn: Callable taking a *list of items* (one shard) and returning
            a list with one result per item, in item order. Must be
            picklable (a module-level function or ``functools.partial``
            of one) when ``workers > 1``, and must tolerate arbitrary
            partitions of the items: failure recovery may re-run it on
            sub-lists of a shard (per-item purity — the contract every
            caller already relies on for worker-count independence —
            is sufficient).
        items: The work items, in the order results are wanted.
        workers: Shard count. ``1`` calls ``fn(items)`` once in this
            process — bitwise-identical to a plain serial loop. The
            *pool* size is clamped to :func:`available_workers`:
            requesting more shards than CPUs queues the excess shards
            in the coordinator and feeds them to the pool as slots
            free up (smaller shards, same results, no
            over-subscription).
        timeout_s: Per-shard wall-time limit, measured from the moment
            the shard is handed to the pool. ``None`` resolves via
            :func:`resolve_shard_timeout` (``REPRO_SHARD_TIMEOUT_S``,
            default: no limit). On expiry the pool is assumed hung and
            replaced, and the shard is retried.
        max_shard_retries: Infrastructure-failure retries per shard
            before the shard is *narrowed* (split in half, each half
            with a fresh retry budget) — bisecting down to the single
            poisoned item, which then falls back to an in-process run.
            ``None`` resolves via :func:`resolve_shard_retries`
            (``parallel_config`` override, then ``REPRO_SHARD_RETRIES``,
            default 2).
        backoff_s: Base of the jitterless exponential backoff slept
            before a retry (attempt ``k`` sleeps
            ``backoff_s * 2**(k-1)``). ``0`` disables sleeping.
            ``None`` resolves via :func:`resolve_shard_backoff`
            (``parallel_config`` override, then
            ``REPRO_SHARD_BACKOFF_S``, default 0.05 s).
        health: :class:`RunHealth` to record recovery actions into
            (a throwaway one is used when omitted).

    Returns:
        One result per item, in the original item order regardless of
        worker count, completion order, or any recovery action taken.

    Raises:
        Whatever ``fn`` raises, once recovery is exhausted: an
        exception raised *by the shard function itself* (as opposed to
        a dying or hung worker) is deterministic, so the shard is
        re-run in-process by the serial fallback and the exception
        propagates exactly as it would with ``workers=1``.
    """
    items = list(items)
    if not items:
        return []
    if health is None:
        health = RunHealth()
    max_shard_retries = resolve_shard_retries(max_shard_retries)
    backoff_s = resolve_shard_backoff(backoff_s)
    workers = max(1, int(workers))
    if workers == 1 or len(items) == 1:
        start = time.monotonic()
        out = _checked(fn(items), len(items))
        health.record_shard(time.monotonic() - start)
        return out
    timeout_s = resolve_shard_timeout(timeout_s)
    shards = shard_indices(len(items), workers)
    # Satellite fix: never start more worker processes than CPUs this
    # process may use — the coordinator queues the excess shards.
    pool_size = min(len(shards), available_workers())
    pending = deque(_ShardTask([int(i) for i in shard])
                    for shard in shards)
    serial_queue: List[_ShardTask] = []
    results: Dict[int, R] = {}

    def store(task: _ShardTask, part: List[R]) -> None:
        for index, value in zip(task.indices, _checked(part,
                                                       len(task.indices))):
            results[index] = value

    def handle_failure(task: _ShardTask) -> None:
        """Retry, narrow, or route a failed shard to the serial path."""
        task.attempt += 1
        if task.attempt <= max_shard_retries:
            health.retries += 1
            if backoff_s > 0:
                time.sleep(backoff_s * (2 ** (task.attempt - 1)))
            pending.append(task)
        elif len(task.indices) > 1:
            health.narrowed_shards += 1
            mid = len(task.indices) // 2
            pending.append(_ShardTask(task.indices[:mid]))
            pending.append(_ShardTask(task.indices[mid:]))
        else:
            # The poisoned item: the pool cannot run it; fall back to
            # workers=1 semantics in-process.
            serial_queue.append(task)

    pool = _new_pool(pool_size)
    outstanding: Dict[object, tuple] = {}  # future -> (task, t_submit)
    try:
        while pending or outstanding:
            # Keep at most pool_size shards in flight so the timeout
            # clock only runs on shards that are actually executing.
            while pending and len(outstanding) < pool_size:
                task = pending.popleft()
                future = pool.submit(
                    fn, [items[i] for i in task.indices])
                outstanding[future] = (task, time.monotonic())
            done, _ = wait(list(outstanding), return_when=FIRST_COMPLETED,
                           timeout=_POLL_S if timeout_s else None)
            now = time.monotonic()
            if not done:
                if timeout_s is None:
                    continue
                timed_out = [future for future, (_, t0)
                             in outstanding.items()
                             if now - t0 > timeout_s]
                if not timed_out:
                    continue
                # A hung worker cannot be cancelled individually;
                # replace the whole pool. Timed-out shards are charged
                # a failed attempt, innocent in-flight shards are
                # requeued as they were.
                health.timeouts += len(timed_out)
                health.broken_pools += 1
                for future, (task, _) in list(outstanding.items()):
                    if future in timed_out:
                        handle_failure(task)
                    else:
                        pending.append(task)
                outstanding.clear()
                _kill_pool(pool)
                pool = _new_pool(pool_size)
                continue
            broken = False
            for future in done:
                task, t0 = outstanding.pop(future)
                try:
                    part = future.result()
                except BrokenProcessPool:
                    broken = True
                    handle_failure(task)
                except Exception:
                    # fn itself raised: deterministic, so retrying in
                    # a subprocess cannot help. Re-run in-process so
                    # the real exception propagates with a clean
                    # traceback (workers=1 semantics).
                    serial_queue.append(task)
                else:
                    store(task, part)
                    health.record_shard(now - t0)
            if broken:
                # Every other in-flight future died with the pool;
                # requeue their shards without charging them a retry.
                health.broken_pools += 1
                for future, (task, _) in list(outstanding.items()):
                    pending.append(task)
                outstanding.clear()
                _kill_pool(pool)
                pool = _new_pool(pool_size)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    # Final in-process serial fallback, in item order for determinism.
    for task in sorted(serial_queue, key=lambda t: t.indices[0]):
        health.serial_fallback_shards += 1
        health.serial_fallback_items += len(task.indices)
        start = time.monotonic()
        store(task, fn([items[i] for i in task.indices]))
        health.record_shard(time.monotonic() - start)

    if len(results) != len(items):  # pragma: no cover - defensive
        missing = sorted(set(range(len(items))) - set(results))
        raise RuntimeError(f"sharded run lost items {missing[:8]}")
    return [results[i] for i in range(len(items))]


def _checked(results: List[R], expected: int) -> List[R]:
    if len(results) != expected:
        raise RuntimeError(
            f"shard function returned {len(results)} results "
            f"for {expected} items")
    return results
