"""Execution-health accounting for the fault-tolerant sharded runner.

A :class:`RunHealth` records every recovery action :func:`~repro
.parallel.sharding.run_sharded` takes — retries, shard timeouts,
process-pool replacements, shard narrowing and in-process serial
fallbacks — plus per-shard wall times. A *clean* run reports all
counters zero: the robustness machinery must be invisible on the
happy path, and the CI perf gate (``benchmarks/perf_gate.py``) fails
whenever a clean benchmark run shows a serial-fallback activation.

One process-wide instance (:func:`get_run_health`) aggregates across
every :func:`~repro.parallel.runner.characterize_batch` call, the
same way the default characterisation cache aggregates hit/miss
counters; benchmarks snapshot/delta it into ``BENCH_*.json``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

# Counter fields, in reporting order. Everything here is an int and
# monotonically non-decreasing over a RunHealth's lifetime.
COUNTER_FIELDS = (
    "shards_run",
    "retries",
    "timeouts",
    "broken_pools",
    "narrowed_shards",
    "serial_fallback_shards",
    "serial_fallback_items",
)


@dataclasses.dataclass
class RunHealth:
    """Recovery-action counters and shard wall times for sharded runs.

    Attributes:
        shards_run: Shards that completed successfully (on the pool or
            via the serial fallback).
        retries: Shard attempts re-enqueued after an infrastructure
            failure (worker death or timeout).
        timeouts: Shards abandoned because they exceeded the per-shard
            timeout (the hung pool is replaced).
        broken_pools: Process pools replaced after ``BrokenProcessPool``
            (a worker died, e.g. SIGKILL/OOM) or a timeout.
        narrowed_shards: Shards split in half after exhausting their
            retry budget, bisecting toward the poisoned item.
        serial_fallback_shards: Shards that ran in-process after the
            pool could not complete them (``workers=1`` semantics).
        serial_fallback_items: Items covered by those serial shards.
        shard_wall_s: Wall time of every completed shard, in
            completion order (diagnostic only; order is not stable).
    """

    shards_run: int = 0
    retries: int = 0
    timeouts: int = 0
    broken_pools: int = 0
    narrowed_shards: int = 0
    serial_fallback_shards: int = 0
    serial_fallback_items: int = 0
    shard_wall_s: List[float] = dataclasses.field(default_factory=list)

    def record_shard(self, wall_s: float) -> None:
        """Count one successfully completed shard."""
        self.shards_run += 1
        self.shard_wall_s.append(float(wall_s))

    @property
    def clean(self) -> bool:
        """True when no recovery action of any kind was needed."""
        return not any(getattr(self, name) for name in COUNTER_FIELDS
                       if name != "shards_run")

    def merge(self, other: "RunHealth") -> None:
        """Fold another health record into this one."""
        for name in COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.shard_wall_s.extend(other.shard_wall_s)

    def snapshot(self) -> Dict[str, float]:
        """A flat, numeric copy suitable for JSON records and deltas.

        Wall-time keys end in ``_s`` so the perf gate treats them as
        volatile; the counters are deterministic on a healthy run.
        """
        snap: Dict[str, float] = {name: int(getattr(self, name))
                                  for name in COUNTER_FIELDS}
        snap["shard_wall_total_s"] = float(sum(self.shard_wall_s))
        snap["shard_wall_max_s"] = float(max(self.shard_wall_s)
                                         if self.shard_wall_s else 0.0)
        return snap


# ---------------------------------------------------------------------------
# Process-wide collector (mirrors the default-cache counter pattern)

_global_health = RunHealth()


def get_run_health() -> RunHealth:
    """The process-wide health collector every sharded run feeds."""
    return _global_health


def reset_run_health() -> RunHealth:
    """Replace the process-wide collector; returns the old one."""
    global _global_health
    old = _global_health
    _global_health = RunHealth()
    return old
