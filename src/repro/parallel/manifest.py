"""Multi-host campaign manifests: who runs which dies.

A fleet campaign scales past one machine by partitioning the die
range: a :class:`ShardManifest` names the campaign (one
:class:`~repro.fleet.campaign.FleetPlan`-shaped parameter block) and
assigns each host a contiguous, disjoint slice ``[start, end)`` of
the fleet. Dies are generated from the ``(seed, die_index)`` stream
independently of the slice bounds, so the partitioning is purely an
execution concern — any host layout produces the same per-die
results, and ``repro fleet merge`` reassembles the hosts' journals
and shards into the single-campaign layout.

The manifest is a plain JSON file, written with the same atomic
mkstemp + replace idiom as every other on-disk artifact, checked into
whatever orchestrates the hosts (CI matrix, mpirun wrapper, humans
with ssh).
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple, Union

__all__ = ["HostSlice", "ShardManifest"]

PathLike = Union[str, pathlib.Path]

MANIFEST_TAG = "fleet-manifest-v1"


@dataclass(frozen=True)
class HostSlice:
    """One host's contiguous die range ``[start, end)``."""

    host: str
    start: int
    end: int

    @property
    def n_dies(self) -> int:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {"host": self.host, "start": self.start, "end": self.end}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "HostSlice":
        return cls(host=str(d["host"]), start=int(d["start"]),
                   end=int(d["end"]))


@dataclass(frozen=True)
class ShardManifest:
    """A campaign parameter block plus its host partitioning.

    ``params`` is the full-campaign :meth:`FleetPlan.to_dict` payload
    (``start`` 0, ``n_dies`` the whole fleet); each host derives its
    own plan via :meth:`host_plan_params`, differing only in the die
    range. Slices must be disjoint, in order, and tile the full range
    exactly — a manifest that under- or over-covers the fleet is a
    configuration bug worth failing loudly on at *plan* time, not at
    merge time.
    """

    params: Dict[str, Any]
    hosts: Tuple[HostSlice, ...]

    def __post_init__(self) -> None:
        n_dies = int(self.params["n_dies"])
        start = int(self.params.get("start", 0))
        if not self.hosts:
            raise ValueError("manifest needs at least one host")
        names = [h.host for h in self.hosts]
        if len(set(names)) != len(names):
            raise ValueError("manifest host names must be unique")
        cursor = start
        for h in self.hosts:
            if h.start != cursor:
                raise ValueError(
                    f"host {h.host!r} starts at die {h.start}, expected "
                    f"{cursor}: slices must tile the range in order "
                    "with no gaps or overlaps")
            if h.end <= h.start:
                raise ValueError(f"host {h.host!r} has an empty slice")
            cursor = h.end
        if cursor != start + n_dies:
            raise ValueError(
                f"host slices cover up to die {cursor}, but the "
                f"campaign ends at {start + n_dies}")

    # -- construction --------------------------------------------------

    @classmethod
    def partition(cls, params: Dict[str, Any],
                  hosts: Sequence[str]) -> "ShardManifest":
        """Split the campaign evenly across ``hosts`` (in order).

        Slice boundaries are aligned to the plan's ``chunk_dies`` so
        every host cuts the same chunk grid the single-host run would
        — merged journals/shards are then bit-compatible with a
        single-host campaign over the full range.
        """
        if not hosts:
            raise ValueError("need at least one host")
        n_dies = int(params["n_dies"])
        start = int(params.get("start", 0))
        chunk = int(params.get("chunk_dies", 64))
        n_hosts = len(hosts)
        if n_dies < n_hosts:
            raise ValueError("more hosts than dies")
        slices: List[HostSlice] = []
        cursor = start
        for i, host in enumerate(hosts):
            if i == n_hosts - 1:
                end = start + n_dies
            else:
                ideal = start + (n_dies * (i + 1)) // n_hosts
                end = max(cursor + 1,
                          ((ideal + chunk // 2) // chunk) * chunk)
                end = min(end, start + n_dies - (n_hosts - 1 - i))
            slices.append(HostSlice(host=str(host), start=cursor,
                                    end=end))
            cursor = end
        return cls(params=dict(params), hosts=tuple(slices))

    # -- queries -------------------------------------------------------

    @property
    def n_dies(self) -> int:
        return int(self.params["n_dies"])

    @property
    def name(self) -> str:
        return str(self.params["name"])

    def host_slice(self, host: str) -> HostSlice:
        for h in self.hosts:
            if h.host == host:
                return h
        raise KeyError(f"host {host!r} is not in the manifest "
                       f"({[h.host for h in self.hosts]})")

    def host_die_range(self, host: str) -> Tuple[int, int]:
        """The half-open die range assigned to ``host``."""
        h = self.host_slice(host)
        return (h.start, h.end)

    def host_plan_params(self, host: str) -> Dict[str, Any]:
        """``FleetPlan.from_dict`` payload for one host's slice."""
        h = self.host_slice(host)
        params = dict(self.params)
        params["start"] = h.start
        params["n_dies"] = h.n_dies
        return params

    # -- persistence ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tag": MANIFEST_TAG,
            "params": dict(self.params),
            "hosts": [h.to_dict() for h in self.hosts],
        }

    def write(self, path: PathLike) -> pathlib.Path:
        path = pathlib.Path(path)
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             indent=2) + "\n"
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ShardManifest":
        with open(pathlib.Path(path), encoding="utf-8") as fh:
            d = json.load(fh)
        if d.get("tag") != MANIFEST_TAG:
            raise ValueError(
                f"{path} is not a fleet manifest (tag {d.get('tag')!r})")
        return cls(params=dict(d["params"]),
                   hosts=tuple(HostSlice.from_dict(h)
                               for h in d["hosts"]))
