"""Power-management algorithms: Foxton*, LinOpt, SAnn, exhaustive."""

from .base import PmResult, PowerManager, meets_constraints
from .foxton import FoxtonStar
from .linopt import LinOpt, LinOptConfig, LinearPowerFit, fit_power_lines
from .sann import SAnnManager
from .exhaustive import ExhaustiveSearch
from .optimal import OptimalFrozen
from .barrier import BarrierAwarePm

__all__ = [
    "ExhaustiveSearch",
    "BarrierAwarePm",
    "OptimalFrozen",
    "FoxtonStar",
    "LinOpt",
    "LinOptConfig",
    "LinearPowerFit",
    "PmResult",
    "PowerManager",
    "SAnnManager",
    "fit_power_lines",
    "meets_constraints",
]
