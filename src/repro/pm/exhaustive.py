"""Exhaustive search over DVFS level assignments.

Ground truth for tiny configurations (Section 6.5 uses it to validate
SAnn for up to 4 threads). The search space is ``n_levels^n_threads``,
so a hard cap guards against accidental blow-ups.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..workloads import Workload
from .base import (PmResult, PowerManager, make_evaluator,
                   meets_constraints, merge_kernel_stats)

DEFAULT_COMBINATION_LIMIT = 50_000

# Combinations handed to the kernel per batch call. The kernel chunks
# internally for cache locality; this only bounds how much of the
# (possibly 50k-deep) product is materialised at once.
_BATCH_COMBOS = 64


class ExhaustiveSearch(PowerManager):
    """Evaluate every level combination; keep the best feasible one."""

    name = "Exhaustive"

    def __init__(self, combination_limit: int = DEFAULT_COMBINATION_LIMIT,
                 use_kernel: bool = True) -> None:
        if combination_limit < 1:
            raise ValueError("combination_limit must be positive")
        self.combination_limit = combination_limit
        self.use_kernel = use_kernel

    def set_levels(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        rng: Optional[np.random.Generator] = None,
        initial_levels=None,
        initial_state=None,
        ipc_multipliers=None,
        ceff_multipliers=None,
    ) -> PmResult:
        p_target, p_core_max = self._budget(chip, assignment, env)
        level_ranges = [range(chip.cores[c].vf_table.n_levels)
                        for c in assignment.core_of]
        n_combos = int(np.prod([len(r) for r in level_ranges]))
        if n_combos > self.combination_limit:
            raise ValueError(
                f"{n_combos} combinations exceed the limit of "
                f"{self.combination_limit}; exhaustive search only "
                "scales to very small systems (the paper's point)")
        evaluate, kernel = make_evaluator(
            chip, workload, assignment, ipc_multipliers=ipc_multipliers,
            ceff_multipliers=ceff_multipliers, use_kernel=self.use_kernel)
        best = None
        best_state = None
        fallback = None
        fallback_state = None
        evaluations = 0

        def consider(combo, state):
            nonlocal best, best_state, fallback, fallback_state, evaluations
            evaluations += 1
            if meets_constraints(state, p_target, p_core_max):
                if (best_state is None
                        or state.throughput_mips
                        > best_state.throughput_mips):
                    best, best_state = combo, state
            elif (fallback_state is None
                  or state.total_power < fallback_state.total_power):
                fallback, fallback_state = combo, state

        combos = itertools.product(*level_ranges)
        if kernel is not None:
            # Combinations are mutually independent, so the enumeration
            # is the ideal batch shape: fixed-size slices of the product
            # go through one kernel call each, and the in-order walk of
            # the results (including which combination's error surfaces
            # first) matches the serial loop exactly.
            while True:
                batch = list(itertools.islice(combos, _BATCH_COMBOS))
                if not batch:
                    break
                states = kernel.evaluate_levels_batch(
                    [list(c) for c in batch])
                for combo, state in zip(batch, states):
                    consider(combo, state)
        else:
            for combo in combos:
                consider(combo, evaluate(list(combo)))
        if best is None:
            # No feasible point exists: return the lowest-power one.
            best, best_state = fallback, fallback_state
        return PmResult(levels=tuple(best), state=best_state,
                        evaluations=evaluations,
                        stats=merge_kernel_stats(
                            {"combinations": float(n_combos)}, kernel))
