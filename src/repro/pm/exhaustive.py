"""Exhaustive search over DVFS level assignments.

Ground truth for tiny configurations (Section 6.5 uses it to validate
SAnn for up to 4 threads). The search space is ``n_levels^n_threads``,
so a hard cap guards against accidental blow-ups.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..runtime.evaluation import Assignment, evaluate_levels
from ..workloads import Workload
from .base import PmResult, PowerManager, meets_constraints

DEFAULT_COMBINATION_LIMIT = 50_000


class ExhaustiveSearch(PowerManager):
    """Evaluate every level combination; keep the best feasible one."""

    name = "Exhaustive"

    def __init__(self, combination_limit: int = DEFAULT_COMBINATION_LIMIT
                 ) -> None:
        if combination_limit < 1:
            raise ValueError("combination_limit must be positive")
        self.combination_limit = combination_limit

    def set_levels(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        rng: Optional[np.random.Generator] = None,
        initial_levels=None,
        initial_state=None,
        ipc_multipliers=None,
        ceff_multipliers=None,
    ) -> PmResult:
        p_target, p_core_max = self._budget(chip, assignment, env)
        level_ranges = [range(chip.cores[c].vf_table.n_levels)
                        for c in assignment.core_of]
        n_combos = int(np.prod([len(r) for r in level_ranges]))
        if n_combos > self.combination_limit:
            raise ValueError(
                f"{n_combos} combinations exceed the limit of "
                f"{self.combination_limit}; exhaustive search only "
                "scales to very small systems (the paper's point)")
        best = None
        best_state = None
        fallback = None
        fallback_state = None
        evaluations = 0
        for combo in itertools.product(*level_ranges):
            state = evaluate_levels(chip, workload, assignment, list(combo),
                                    ipc_multipliers=ipc_multipliers,
                                    ceff_multipliers=ceff_multipliers)
            evaluations += 1
            if meets_constraints(state, p_target, p_core_max):
                if (best_state is None
                        or state.throughput_mips
                        > best_state.throughput_mips):
                    best, best_state = combo, state
            elif (fallback_state is None
                  or state.total_power < fallback_state.total_power):
                fallback, fallback_state = combo, state
        if best is None:
            # No feasible point exists: return the lowest-power one.
            best, best_state = fallback, fallback_state
        return PmResult(levels=tuple(best), state=best_state,
                        evaluations=evaluations,
                        stats={"combinations": float(n_combos)})
