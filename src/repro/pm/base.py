"""Power-manager interface (Section 4.3).

A power manager picks one DVFS level per active core so that chip
power stays below the environment's ``Ptarget`` and every core stays
below ``Pcoremax``, while maximising throughput. Managers observe the
system only through evaluations (sensor readings), mirroring the
on-line setting of the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..runtime.evaluation import Assignment, SystemState, evaluate_levels
from ..runtime.kernel import EvalKernel
from ..workloads import Workload


def make_evaluator(
    chip: ChipProfile,
    workload: Workload,
    assignment: Assignment,
    ipc_multipliers: Optional[Sequence[float]] = None,
    ceff_multipliers: Optional[Sequence[float]] = None,
    use_kernel: bool = True,
) -> Tuple[Callable[[Sequence[int]], SystemState], Optional[EvalKernel]]:
    """Single-candidate evaluator + optional batch kernel for one decision.

    Every manager evaluates many candidate level vectors against one
    fixed (chip, workload, assignment, phase multipliers). With
    ``use_kernel`` (the default) the returned evaluator routes through
    a freshly built :class:`repro.runtime.kernel.EvalKernel` — results
    are bitwise-identical to the serial path, the per-candidate Python
    overhead is amortised, and the kernel itself is returned so the
    manager can batch independent candidates and merge
    ``kernel.stats`` into its ``PmResult``. With ``use_kernel=False``
    the evaluator is the plain serial
    :func:`repro.runtime.evaluation.evaluate_levels` closure and the
    kernel slot is ``None`` (the regression tests pin the two modes
    against each other).
    """
    if use_kernel:
        kernel = EvalKernel(chip, workload, assignment,
                            ipc_multipliers=ipc_multipliers,
                            ceff_multipliers=ceff_multipliers)
        return kernel.evaluate_levels, kernel

    def evaluate(levels: Sequence[int]) -> SystemState:
        return evaluate_levels(chip, workload, assignment, list(levels),
                               ipc_multipliers=ipc_multipliers,
                               ceff_multipliers=ceff_multipliers)

    return evaluate, None


def merge_kernel_stats(stats: Dict[str, float],
                       kernel: Optional[EvalKernel]) -> Dict[str, float]:
    """Fold a kernel's observability counters into a stats dict."""
    if kernel is not None:
        stats.update(kernel.stats.as_result_stats())
    return stats


@dataclass(frozen=True)
class PmResult:
    """Outcome of one power-management decision.

    Attributes:
        levels: Chosen per-thread DVFS level (index into each core's
            V/f table).
        state: Evaluated system state at those levels.
        evaluations: Number of full system evaluations (sensor-visible
            settling points) the manager consumed.
        stats: Algorithm-specific diagnostics (LP pivots, SA
            acceptance, ...).
    """

    levels: Tuple[int, ...]
    state: SystemState
    evaluations: int
    stats: Dict[str, float] = field(default_factory=dict)

    def with_stats(self, **extra: float) -> "PmResult":
        """A copy with ``extra`` merged into ``stats``.

        Wrapper managers (e.g. the resilience fallback chain in
        :class:`repro.faults.ResilientManager`) use this to annotate a
        delegate's result — ``resilience_tier``, ``primary_failed``,
        ... — without mutating the frozen original.
        """
        merged = dict(self.stats)
        merged.update(extra)
        return PmResult(levels=self.levels, state=self.state,
                        evaluations=self.evaluations, stats=merged)


def meets_constraints(state: SystemState, p_target: float,
                      p_core_max: float, slack: float = 1e-9) -> bool:
    """Whether a state satisfies both power constraints."""
    if state.total_power > p_target + slack:
        return False
    return bool(np.all(state.core_power <= p_core_max + slack))


class PowerManager(abc.ABC):
    """Base class for DVFS power-management algorithms."""

    #: Name as used in Table 1 (e.g. "Foxton*", "LinOpt").
    name: str = "base"

    @abc.abstractmethod
    def set_levels(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        rng: Optional[np.random.Generator] = None,
    ) -> PmResult:
        """Choose per-core DVFS levels for the given assignment."""

    @staticmethod
    def _budget(chip: ChipProfile, assignment: Assignment,
                env: PowerEnvironment) -> Tuple[float, float]:
        """(Ptarget scaled to the thread count, Pcoremax)."""
        p_target = env.p_target(assignment.n_threads, chip.n_cores)
        return p_target, env.p_core_max

    @staticmethod
    def _top_levels(chip: ChipProfile, assignment: Assignment) -> list:
        return [chip.cores[c].vf_table.n_levels - 1
                for c in assignment.core_of]
