"""SAnn — simulated-annealing power manager (Section 4.3.2).

Searches the discrete space of per-core voltage-level assignments with
the true (non-linearised) power model behind every evaluation. Used in
the paper as a near-optimal but orders-of-magnitude-slower reference
for LinOpt. As in Section 6.5:

* the initial point comes from a simple greedy heuristic (our
  Foxton*-style descent to feasibility),
* the initial annealing temperature scales with the number of threads,
* proposals are Gaussian-Markov steps whose scale tracks the current
  annealing temperature,
* cooling is logarithmic, and the search stops after a fixed number of
  objective evaluations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional, Tuple

import numpy as np

from ..anneal import simulated_annealing
from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..runtime.evaluation import Assignment, SystemState
from ..workloads import Workload
from .base import (PmResult, PowerManager, make_evaluator,
                   meets_constraints, merge_kernel_stats)
from .foxton import FoxtonStar

# Penalty (in MIPS per watt of violation) pushing the search back into
# the feasible region.
CONSTRAINT_PENALTY_MIPS_PER_W = 50_000.0

# Bound on the evaluated-state memo. The annealing run proposes at
# most ``n_evaluations`` unique points and the quench a few hundred
# more, so at the default settings nothing is ever evicted — the bound
# only stops a long-lived manager (or an aggressive caller) from
# holding every SystemState it ever saw.
STATE_CACHE_CAPACITY = 4096

# Candidates per speculative quench batch. Quench candidates are
# planned under the assumption that none improves (the common case for
# a near-converged descent), so an acceptance discards the rest of the
# batch — kept small enough that the waste stays negligible.
_SPEC_CHUNK = 8


def _greedy_walk(
    seq_len: int,
    cand_at: Callable[[int, Tuple[int, ...]],
                      Tuple[Optional[Tuple[int, ...]], int]],
    energy: Callable[[Tuple[int, ...]], float],
    current: Tuple[int, ...],
    current_e: float,
    prefetch=None,
    on_accept=None,
):
    """First-improvement walk over an indexed candidate sequence.

    ``cand_at(k, current)`` materialises the candidate at sequence
    position ``k`` given the walk's current point: it returns
    ``(candidate, next_k)``, with ``candidate=None`` for positions the
    sweep skips (``next_k`` then also encodes serial ``break``
    semantics by jumping past the rest of a row). An improving
    candidate is accepted immediately and the walk *continues* from
    ``next_k`` — exactly the quench semantics of the serial loops,
    which both the serial and the batched path route through so their
    traversal order cannot drift apart.

    ``prefetch(k, current)``, if given, is called right before a
    candidate is evaluated — the batched path uses it to evaluate a
    whole run of upcoming candidates in one kernel call under the
    assumption that none will be accepted. ``on_accept`` is called on
    every acceptance so the prefetcher can discard speculation made
    under the now-stale assumption.
    """
    improved = False
    k = 0
    while k < seq_len:
        cand, next_k = cand_at(k, current)
        if cand is None:
            k = next_k
            continue
        if prefetch is not None:
            prefetch(k, current)
        cand_e = energy(cand)
        if cand_e < current_e - 1e-9:
            current, current_e = cand, cand_e
            improved = True
            if on_accept is not None:
                on_accept()
        k = next_k
    return current, current_e, improved


class SAnnManager(PowerManager):
    """Simulated-annealing power manager."""

    name = "SAnn"

    def __init__(self, n_evaluations: int = 2000,
                 initial_temp_per_thread: float = 150.0,
                 objective: str = "mips",
                 use_kernel: bool = True) -> None:
        if n_evaluations < 1:
            raise ValueError("n_evaluations must be positive")
        if initial_temp_per_thread <= 0:
            raise ValueError("initial temperature must be positive")
        if objective not in ("mips", "weighted"):
            raise ValueError("objective must be 'mips' or 'weighted'")
        self.n_evaluations = n_evaluations
        self.initial_temp_per_thread = initial_temp_per_thread
        self.objective = objective
        self.use_kernel = use_kernel

    def set_levels(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        rng: Optional[np.random.Generator] = None,
        initial_levels=None,
        initial_state=None,
        ipc_multipliers=None,
        ceff_multipliers=None,
    ) -> PmResult:
        rng = rng or np.random.default_rng(0)
        p_target, p_core_max = self._budget(chip, assignment, env)
        n = assignment.n_threads
        n_levels = [chip.cores[c].vf_table.n_levels
                    for c in assignment.core_of]

        evaluate, kernel = make_evaluator(
            chip, workload, assignment, ipc_multipliers=ipc_multipliers,
            ceff_multipliers=ceff_multipliers, use_kernel=self.use_kernel)

        greedy = FoxtonStar(use_kernel=self.use_kernel).set_levels(
            chip, workload, assignment, env,
            initial_levels=initial_levels, initial_state=initial_state,
            ipc_multipliers=ipc_multipliers,
            ceff_multipliers=ceff_multipliers)
        evaluations = greedy.evaluations

        best_feasible: Optional[Tuple[Tuple[int, ...], SystemState]] = None
        if meets_constraints(greedy.state, p_target, p_core_max):
            best_feasible = (greedy.levels, greedy.state)

        # LRU memo of evaluated states, plus the speculative side
        # buffer: quench batches land in ``spec`` first and are only
        # committed to the memo (and counted as evaluations) when the
        # walk actually consumes them — a speculative result the serial
        # sweep would never have computed is silently discarded.
        state_cache: "OrderedDict[Tuple[int, ...], SystemState]" = (
            OrderedDict())
        spec: dict = {}
        cache_hits = 0

        def metric_of(state) -> float:
            if self.objective == "weighted":
                # Scaled into the MIPS range so the annealing
                # temperature and penalty keep their meaning.
                return state.weighted_throughput(workload) * 1e3
            return state.throughput_mips

        def energy(levels: Tuple[int, ...]) -> float:
            nonlocal best_feasible, evaluations, cache_hits
            if levels in state_cache:
                state = state_cache[levels]
                state_cache.move_to_end(levels)
                cache_hits += 1
            else:
                if levels in spec:
                    state = spec.pop(levels)
                    if isinstance(state, Exception):
                        raise state
                else:
                    state = evaluate(levels)
                state_cache[levels] = state
                if len(state_cache) > STATE_CACHE_CAPACITY:
                    state_cache.popitem(last=False)
                evaluations += 1
            excess = max(state.total_power - p_target, 0.0)
            excess += float(np.sum(np.maximum(
                state.core_power - p_core_max, 0.0)))
            feasible = excess <= 1e-9
            if feasible and (best_feasible is None
                             or metric_of(state)
                             > metric_of(best_feasible[1])):
                best_feasible = (levels, state)
            return (-metric_of(state)
                    + CONSTRAINT_PENALTY_MIPS_PER_W * excess)

        def neighbour(levels: Tuple[int, ...], temp: float,
                      nrng: np.random.Generator) -> Tuple[int, ...]:
            # Gaussian-Markov kernel: step sizes scale with the current
            # annealing temperature (normalised by the initial one).
            scale = max(temp / initial_temp, 0.05)
            out = list(levels)
            n_moves = max(1, int(round(scale * max(1, n // 4))))
            for _ in range(n_moves):
                i = int(nrng.integers(n))
                delta = int(round(nrng.standard_normal() * (1 + 2 * scale)))
                if delta == 0:
                    delta = 1 if nrng.random() < 0.5 else -1
                out[i] = int(np.clip(out[i] + delta, 0, n_levels[i] - 1))
            return tuple(out)

        initial_temp = self.initial_temp_per_thread * n
        result = simulated_annealing(
            initial_state=tuple(greedy.levels),
            energy_fn=energy,
            neighbour_fn=neighbour,
            rng=rng,
            n_evaluations=self.n_evaluations,
            initial_temp=initial_temp,
        )

        # Final quench: greedy single-step descent from the best state
        # (the tuned SAnn of Section 6.5 reaches within 1% of the
        # exhaustive optimum; the quench closes the stochastic tail).
        # Both sweeps are expressed as indexed candidate sequences so
        # the serial and the batched path share one traversal
        # (:func:`_greedy_walk`) and cannot diverge.

        def cand_pm(k, cur):
            # Single +-1 moves: position 2i is thread i up, 2i+1 down.
            i, which = divmod(k, 2)
            delta = 1 if which == 0 else -1
            lv = int(np.clip(cur[i] + delta, 0, n_levels[i] - 1))
            if lv == cur[i]:
                return None, k + 1
            cand = list(cur)
            cand[i] = lv
            return tuple(cand), k + 1

        def cand_trade(k, cur):
            # Pairwise trades (step thread i down, thread j up):
            # crosses the budget ridge single moves cannot. Position
            # i*n+j is the (i, j) pair; a drained thread i skips its
            # whole row (the serial loop's inner break).
            i, j = divmod(k, n)
            if cur[i] == 0:
                return None, (i + 1) * n
            if j == i or cur[j] >= n_levels[j] - 1:
                return None, k + 1
            cand = list(cur)
            cand[i] -= 1
            cand[j] += 1
            return tuple(cand), k + 1

        def make_prefetch(seq_len, cand_at):
            # Evaluate the next run of uncached candidates in one
            # kernel batch, assuming none of them improves (so the
            # walk's current point stays fixed). errors="isolate"
            # because the run is speculative: a diverging candidate
            # the serial sweep would never reach must not abort its
            # neighbours, and one the walk *does* reach re-raises at
            # consumption time, exactly like the serial call.
            def prefetch(k, cur):
                first, _ = cand_at(k, cur)
                if first in state_cache or first in spec:
                    return
                plan = []
                kk = k
                while kk < seq_len and len(plan) < _SPEC_CHUNK:
                    cand, kk = cand_at(kk, cur)
                    if (cand is None or cand in state_cache
                            or cand in spec or cand in plan):
                        continue
                    plan.append(cand)
                results = kernel.evaluate_levels_batch(
                    [list(c) for c in plan], errors="isolate")
                for cand, res in zip(plan, results):
                    spec[cand] = res
            return prefetch

        current = result.best_state
        current_e = energy(current)
        pm_prefetch = (make_prefetch(2 * n, cand_pm)
                       if kernel is not None else None)
        trade_prefetch = (make_prefetch(n * n, cand_trade)
                          if kernel is not None else None)
        for _ in range(6):
            current, current_e, imp_pm = _greedy_walk(
                2 * n, cand_pm, energy, current, current_e,
                prefetch=pm_prefetch, on_accept=spec.clear)
            current, current_e, imp_trade = _greedy_walk(
                n * n, cand_trade, energy, current, current_e,
                prefetch=trade_prefetch, on_accept=spec.clear)
            if not (imp_pm or imp_trade):
                break
        spec.clear()

        if best_feasible is not None:
            levels, state = best_feasible
        else:
            levels = result.best_state
            state = state_cache.get(levels)
            if state is None:  # evicted by the LRU bound: re-evaluate
                state = evaluate(levels)
                evaluations += 1
        return PmResult(
            levels=tuple(levels),
            state=state,
            evaluations=evaluations,
            stats=merge_kernel_stats({
                "sa_evaluations": float(result.evaluations),
                "sa_acceptance": float(result.acceptance_rate),
                "feasible": float(best_feasible is not None),
                "sa_cache_hits": float(cache_hits),
            }, kernel),
        )
