"""SAnn — simulated-annealing power manager (Section 4.3.2).

Searches the discrete space of per-core voltage-level assignments with
the true (non-linearised) power model behind every evaluation. Used in
the paper as a near-optimal but orders-of-magnitude-slower reference
for LinOpt. As in Section 6.5:

* the initial point comes from a simple greedy heuristic (our
  Foxton*-style descent to feasibility),
* the initial annealing temperature scales with the number of threads,
* proposals are Gaussian-Markov steps whose scale tracks the current
  annealing temperature,
* cooling is logarithmic, and the search stops after a fixed number of
  objective evaluations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..anneal import simulated_annealing
from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..runtime.evaluation import Assignment, SystemState, evaluate_levels
from ..workloads import Workload
from .base import PmResult, PowerManager, meets_constraints
from .foxton import FoxtonStar

# Penalty (in MIPS per watt of violation) pushing the search back into
# the feasible region.
CONSTRAINT_PENALTY_MIPS_PER_W = 50_000.0


class SAnnManager(PowerManager):
    """Simulated-annealing power manager."""

    name = "SAnn"

    def __init__(self, n_evaluations: int = 2000,
                 initial_temp_per_thread: float = 150.0,
                 objective: str = "mips") -> None:
        if n_evaluations < 1:
            raise ValueError("n_evaluations must be positive")
        if initial_temp_per_thread <= 0:
            raise ValueError("initial temperature must be positive")
        if objective not in ("mips", "weighted"):
            raise ValueError("objective must be 'mips' or 'weighted'")
        self.n_evaluations = n_evaluations
        self.initial_temp_per_thread = initial_temp_per_thread
        self.objective = objective

    def set_levels(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        rng: Optional[np.random.Generator] = None,
        initial_levels=None,
        initial_state=None,
        ipc_multipliers=None,
        ceff_multipliers=None,
    ) -> PmResult:
        rng = rng or np.random.default_rng(0)
        p_target, p_core_max = self._budget(chip, assignment, env)
        n = assignment.n_threads
        n_levels = [chip.cores[c].vf_table.n_levels
                    for c in assignment.core_of]

        greedy = FoxtonStar().set_levels(
            chip, workload, assignment, env,
            initial_levels=initial_levels, initial_state=initial_state,
            ipc_multipliers=ipc_multipliers,
            ceff_multipliers=ceff_multipliers)
        evaluations = greedy.evaluations

        best_feasible: Optional[Tuple[Tuple[int, ...], SystemState]] = None
        if meets_constraints(greedy.state, p_target, p_core_max):
            best_feasible = (greedy.levels, greedy.state)

        state_cache = {}

        def metric_of(state) -> float:
            if self.objective == "weighted":
                # Scaled into the MIPS range so the annealing
                # temperature and penalty keep their meaning.
                return state.weighted_throughput(workload) * 1e3
            return state.throughput_mips

        def energy(levels: Tuple[int, ...]) -> float:
            nonlocal best_feasible, evaluations
            if levels in state_cache:
                state = state_cache[levels]
            else:
                state = evaluate_levels(chip, workload, assignment,
                                        list(levels),
                                        ipc_multipliers=ipc_multipliers,
                                        ceff_multipliers=ceff_multipliers)
                state_cache[levels] = state
                evaluations += 1
            excess = max(state.total_power - p_target, 0.0)
            excess += float(np.sum(np.maximum(
                state.core_power - p_core_max, 0.0)))
            feasible = excess <= 1e-9
            if feasible and (best_feasible is None
                             or metric_of(state)
                             > metric_of(best_feasible[1])):
                best_feasible = (levels, state)
            return (-metric_of(state)
                    + CONSTRAINT_PENALTY_MIPS_PER_W * excess)

        def neighbour(levels: Tuple[int, ...], temp: float,
                      nrng: np.random.Generator) -> Tuple[int, ...]:
            # Gaussian-Markov kernel: step sizes scale with the current
            # annealing temperature (normalised by the initial one).
            scale = max(temp / initial_temp, 0.05)
            out = list(levels)
            n_moves = max(1, int(round(scale * max(1, n // 4))))
            for _ in range(n_moves):
                i = int(nrng.integers(n))
                delta = int(round(nrng.standard_normal() * (1 + 2 * scale)))
                if delta == 0:
                    delta = 1 if nrng.random() < 0.5 else -1
                out[i] = int(np.clip(out[i] + delta, 0, n_levels[i] - 1))
            return tuple(out)

        initial_temp = self.initial_temp_per_thread * n
        result = simulated_annealing(
            initial_state=tuple(greedy.levels),
            energy_fn=energy,
            neighbour_fn=neighbour,
            rng=rng,
            n_evaluations=self.n_evaluations,
            initial_temp=initial_temp,
        )

        # Final quench: greedy single-step descent from the best state
        # (the tuned SAnn of Section 6.5 reaches within 1% of the
        # exhaustive optimum; the quench closes the stochastic tail).
        current = result.best_state
        current_e = energy(current)
        for _ in range(6):
            improved = False
            # Single +-1 moves.
            for i in range(n):
                for delta in (+1, -1):
                    cand = list(current)
                    cand[i] = int(np.clip(cand[i] + delta, 0,
                                          n_levels[i] - 1))
                    cand = tuple(cand)
                    if cand == current:
                        continue
                    cand_e = energy(cand)
                    if cand_e < current_e - 1e-9:
                        current, current_e = cand, cand_e
                        improved = True
            # Pairwise trades (step one thread down, another up):
            # crosses the budget ridge single moves cannot.
            for i in range(n):
                for j in range(n):
                    # current mutates inside the loop: re-check bounds
                    # for every candidate pair.
                    if current[i] == 0:
                        break
                    if j == i or current[j] >= n_levels[j] - 1:
                        continue
                    cand = list(current)
                    cand[i] -= 1
                    cand[j] += 1
                    cand = tuple(cand)
                    cand_e = energy(cand)
                    if cand_e < current_e - 1e-9:
                        current, current_e = cand, cand_e
                        improved = True
            if not improved:
                break

        if best_feasible is not None:
            levels, state = best_feasible
        else:
            levels = result.best_state
            state = state_cache[levels]
        return PmResult(
            levels=tuple(levels),
            state=state,
            evaluations=evaluations,
            stats={
                "sa_evaluations": float(result.evaluations),
                "sa_acceptance": float(result.acceptance_rate),
                "feasible": float(best_feasible is not None),
            },
        )
