"""Barrier-aware DVFS for parallel applications (Section 8 extension).

Between barriers, a worker faster than the slowest one only waits —
so any core running faster than the critical core can drop to the
lowest (V, f) that still meets the *target pace* without losing any
performance. The manager:

1. binary-searches the highest common pace ``F`` such that running
   every worker at its cheapest level with ``f >= F`` (or its top
   level, for cores that cannot reach ``F``) meets the power budget;
2. applies a sensor-guided down-correction exactly like the other
   managers.

This is the variation-aware version of Li & Martinez's chip-wide
adaptation (Section 2): each core gets its *own* voltage for the
common pace, exploiting the fact that fast cores reach the pace at a
much lower voltage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..runtime.evaluation import Assignment, SystemState
from ..workloads import Workload
from .base import (PmResult, PowerManager, make_evaluator,
                   meets_constraints, merge_kernel_stats)

# Binary-search iterations on the common pace (Hz resolution ~ fmax /
# 2^ITERS, far below the V/f table's own quantisation).
PACE_SEARCH_ITERS = 24


def levels_for_pace(chip: ChipProfile, assignment: Assignment,
                    pace_hz: float) -> List[int]:
    """Cheapest per-core levels meeting a common pace.

    Cores that cannot reach the pace run at their top level (they are
    the critical workers).
    """
    levels = []
    for core_id in assignment.core_of:
        table = chip.cores[core_id].vf_table
        eligible = np.nonzero(table.freqs >= pace_hz - 1e-6)[0]
        if eligible.size == 0:
            levels.append(table.n_levels - 1)
        else:
            levels.append(int(eligible[0]))
    return levels


class BarrierAwarePm(PowerManager):
    """Common-pace DVFS manager for barrier-synchronised workloads."""

    name = "BarrierAware"

    def __init__(self, use_kernel: bool = True) -> None:
        self.use_kernel = use_kernel

    def set_levels(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        rng: Optional[np.random.Generator] = None,
        initial_levels: Optional[Sequence[int]] = None,
        initial_state: Optional[SystemState] = None,
        ipc_multipliers: Optional[Sequence[float]] = None,
        ceff_multipliers: Optional[Sequence[float]] = None,
    ) -> PmResult:
        p_target, p_core_max = self._budget(chip, assignment, env)

        # Each pace probe depends on the previous bisection outcome, so
        # the search is sequential — the kernel still pays off as a
        # faster single-candidate path.
        evaluate, kernel = make_evaluator(
            chip, workload, assignment, ipc_multipliers=ipc_multipliers,
            ceff_multipliers=ceff_multipliers, use_kernel=self.use_kernel)

        f_low = min(chip.cores[c].vf_table.freqs[0]
                    for c in assignment.core_of)
        # Running any worker faster than the critical (slowest-capable)
        # core buys nothing at a barrier: cap the pace there.
        f_high = min(chip.cores[c].vf_table.fmax
                     for c in assignment.core_of)
        evaluations = 0

        best_levels: Optional[List[int]] = None
        best_state: Optional[SystemState] = None
        lo, hi = f_low, f_high
        for _ in range(PACE_SEARCH_ITERS):
            pace = 0.5 * (lo + hi)
            levels = levels_for_pace(chip, assignment, pace)
            state = evaluate(levels)
            evaluations += 1
            if meets_constraints(state, p_target, p_core_max):
                best_levels, best_state = levels, state
                lo = pace
            else:
                hi = pace
        if best_levels is None:
            # Even the slowest common pace is over budget: floor and
            # step down greedily.
            levels = levels_for_pace(chip, assignment, f_low)
            state = evaluate(levels)
            evaluations += 1
            while (not meets_constraints(state, p_target, p_core_max)
                   and any(lv > 0 for lv in levels)):
                worst = int(np.argmax(state.core_power))
                if levels[worst] == 0:
                    worst = next(i for i, lv in enumerate(levels)
                                 if lv > 0)
                levels[worst] -= 1
                state = evaluate(levels)
                evaluations += 1
            best_levels, best_state = levels, state
        return PmResult(levels=tuple(best_levels), state=best_state,
                        evaluations=evaluations,
                        stats=merge_kernel_stats(
                            {"pace_iters": float(PACE_SEARCH_ITERS)},
                            kernel))
