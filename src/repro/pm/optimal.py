"""OptimalFrozen — exact discrete DVFS assignment at frozen temperature.

With temperatures frozen at the current thermal state, the DVFS
problem decomposes exactly: each thread contributes an independent
(power, throughput) menu over its core's levels, and the chip budget
couples them — a multiple-choice knapsack, which
:mod:`repro.opt.mckp` solves exactly.

The frozen-temperature power tables are only an approximation of the
thermally-coupled truth (changing a core's voltage changes every
core's leakage through temperature), so like LinOpt the manager
finishes with a sensor-guided correction loop and iterates the whole
profile->solve cycle so the temperature estimate converges.

This manager is a *reference*: it bounds what any frozen-temperature
heuristic (LinOpt included) can achieve, at higher but still very
manageable cost (MCKP with 20 classes x 9 levels solves in
milliseconds). It is not part of the paper; the paper's near-optimal
reference is SAnn.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..opt import MckpItem, solve_mckp
from ..power import PowerSensor
from ..runtime.evaluation import Assignment, SystemState
from ..workloads import Workload
from .base import (PmResult, PowerManager, make_evaluator,
                   meets_constraints, merge_kernel_stats)


class OptimalFrozen(PowerManager):
    """Exact MCKP power manager under frozen-temperature tables."""

    name = "OptimalFrozen"

    def __init__(self, n_iterations: int = 3,
                 power_sensor: Optional[PowerSensor] = None,
                 use_kernel: bool = True) -> None:
        if n_iterations < 1:
            raise ValueError("n_iterations must be positive")
        self.n_iterations = n_iterations
        self.power_sensor = power_sensor or PowerSensor()
        self.use_kernel = use_kernel

    def set_levels(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        rng: Optional[np.random.Generator] = None,
        initial_levels: Optional[Sequence[int]] = None,
        initial_state: Optional[SystemState] = None,
        ipc_multipliers: Optional[Sequence[float]] = None,
        ceff_multipliers: Optional[Sequence[float]] = None,
    ) -> PmResult:
        p_target, p_core_max = self._budget(chip, assignment, env)
        n = assignment.n_threads
        ipc_mult = (np.ones(n) if ipc_multipliers is None
                    else np.asarray(ipc_multipliers, dtype=float))
        ceff_mult = (np.ones(n) if ceff_multipliers is None
                     else np.asarray(ceff_multipliers, dtype=float))

        # The MCKP solve decides the next point from frozen tables, so
        # evaluations here are inherently sequential — the kernel still
        # pays off as a faster single-candidate path.
        evaluate, kernel = make_evaluator(
            chip, workload, assignment, ipc_multipliers=ipc_multipliers,
            ceff_multipliers=ceff_multipliers, use_kernel=self.use_kernel)

        levels = (list(initial_levels) if initial_levels is not None
                  else self._top_levels(chip, assignment))
        if initial_state is not None and initial_levels is not None:
            current = initial_state
            evaluations = 0
        else:
            current = evaluate(levels)
            evaluations = 1

        total_nodes = 0
        best = None
        for _ in range(self.n_iterations):
            temps = current.block_temps[: chip.n_cores]
            uncore = self.power_sensor.read(current.l2_power)
            classes: List[List[MckpItem]] = []
            for i, core_id in enumerate(assignment.core_of):
                core = chip.cores[core_id]
                table = core.vf_table
                items = []
                for level in range(table.n_levels):
                    v = float(table.voltages[level])
                    f = float(table.freqs[level])
                    power = (ceff_mult[i]
                             * workload[i].dynamic_power_at(v, f)
                             + core.leakage.power(
                                 v, float(temps[core_id])))
                    if power > p_core_max:
                        continue  # per-core cap: drop the point
                    tput = (workload[i].ipc_at(f) * ipc_mult[i] * f
                            / 1e6)
                    items.append(MckpItem(index=level,
                                          weight=self.power_sensor.read(
                                              power),
                                          value=tput))
                if not items:
                    items = [MckpItem(index=0,
                                      weight=p_core_max, value=0.0)]
                classes.append(items)
            solution = solve_mckp(classes, capacity=p_target - uncore)
            total_nodes += solution.nodes
            if not solution.is_feasible:
                levels = [0] * n
            else:
                levels = list(solution.choice)
            current = evaluate(levels)
            evaluations += 1

            # Frozen tables may be slightly optimistic: correct down.
            safety = 0
            while (not meets_constraints(current, p_target, p_core_max)
                   and any(lv > 0 for lv in levels) and safety < 64):
                worst = int(np.argmax(current.core_power
                                      - p_core_max))
                if current.core_power[worst] <= p_core_max:
                    # Chip-level violation: trim the heaviest core.
                    worst = int(np.argmax(current.core_power))
                if levels[worst] == 0:
                    candidates = [i for i in range(n) if levels[i] > 0]
                    worst = candidates[0]
                levels[worst] -= 1
                current = evaluate(levels)
                evaluations += 1
                safety += 1

            feasible = meets_constraints(current, p_target, p_core_max)
            key = (feasible, current.throughput_mips)
            if best is None or key > (best[0], best[1]):
                best = (feasible, current.throughput_mips,
                        list(levels), current)
        levels, current = best[2], best[3]
        return PmResult(
            levels=tuple(levels),
            state=current,
            evaluations=evaluations,
            stats=merge_kernel_stats(
                {"mckp_nodes": float(total_nodes)}, kernel),
        )
