"""LinOpt — per-core DVFS by linear programming (Section 4.3.1).

The optimisation: choose per-core voltages ``v_1..v_N`` maximising
average throughput ``TP = (1/N) * sum_i ipc_i * f_i(v_i)`` subject to
``sum_i p_i(v_i) <= Ptarget`` and ``p_i(v_i) <= Pcoremax``.

Linearisation, exactly as the paper does it:

* ``f_i(v)`` — linear fit of the core's manufacturer (V, f) table, so
  ``tp_i ~ a_i * v_i`` (plus a constant that does not affect argmax).
* ``ipc_i`` — measured once by the IPC sensor at the current operating
  point and assumed frequency-independent.
* ``p_i(v)`` — core power measured (power sensors) at three voltages
  (Vlow, Vmid, Vhigh), least-squares fitted to ``b_i * v + c_i``
  (Figure 1).

The continuous LP optimum is then quantised to each core's discrete
levels (floor by default), a sensor-guided correction loop fixes any
residual violation, and — because floor-quantisation strands budget —
an optional refill pass steps cores back up while the budget allows.

Because the true p(V) is convex, a single global-chord LP is biased
toward bang-bang solutions; LinOpt therefore runs *successive* LP
passes, re-profiling power locally (within a trust region of DVFS
levels) around the current operating point. Operationally this is the
same refinement the paper's 10 ms re-invocation loop performs across
invocations; the `ablation_slp` bench quantifies it.

The LP itself is solved through the pluggable backend seam
(:mod:`repro.linprog.backends`): the default warm-started bounded
engine carries the previous pass's optimal basis, so the successive
near-identical solves finish in a handful of pivots. A solve that
comes back non-optimal (budget below the all-minimum point, or a
numerically hopeless instance) falls back to clamping every core to
its window floor and is surfaced as ``lp_fallbacks`` in
``PmResult.stats`` — the all-zeros ``x`` of a failed solve is never
consumed as if it were a plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..linprog import LpBackend, LpProblem, make_backend
from ..power import IpcSensor, PowerSensor, core_reader, independent_rngs
from ..runtime.evaluation import Assignment, SystemState
from ..workloads import Workload
from .base import (PmResult, PowerManager, make_evaluator,
                   meets_constraints, merge_kernel_stats)

# Speculative refill batching: step-up trials are planned in the fixed
# efficiency order assuming each will be rejected (the common case once
# the budget is tight), so an acceptance discards the rest of the
# batch. The batch grows while full batches keep getting rejected.
_REFILL_SPEC_MIN = 2
_REFILL_SPEC_MAX = 16


@dataclass(frozen=True)
class LinOptConfig:
    """Tunables of the LinOpt algorithm.

    Attributes:
        n_profile_voltages: Power-profiling points (3 per the paper;
            2 is the cheaper variant Table 3 mentions — ablation).
        rounding: "floor" (never exceed the LP voltage) or "nearest".
        refill: Step freed budget back in after quantisation.
        correction_limit: Max sensor-guided down-steps after rounding.
        n_iterations: Profile->solve passes per invocation
            (successive LP). The first pass uses the paper's global
            Vlow/Vmid/Vhigh fit; later passes re-profile *locally*
            around the current operating point, where the linear model
            of the convex p(V) curve is accurate. The online loop of
            Figure 2 performs the same refinement naturally across
            10 ms invocations.
        profile_span_levels: Half-width (in DVFS levels) of the local
            profiling window used from the second pass on.
        objective: "mips" maximises raw throughput; "weighted"
            maximises weighted throughput (per-thread throughput
            normalised to its reference throughput — the Figure 13
            optimisation goal).
    """

    n_profile_voltages: int = 3
    rounding: str = "floor"
    refill: bool = True
    correction_limit: int = 64
    n_iterations: int = 6
    profile_span_levels: int = 2
    objective: str = "mips"

    def __post_init__(self) -> None:
        if self.n_profile_voltages < 2:
            raise ValueError("need at least two profiling voltages")
        if self.rounding not in ("floor", "nearest"):
            raise ValueError("rounding must be 'floor' or 'nearest'")
        if self.correction_limit < 0:
            raise ValueError("correction_limit must be non-negative")
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be positive")
        if self.objective not in ("mips", "weighted"):
            raise ValueError("objective must be 'mips' or 'weighted'")


@dataclass(frozen=True)
class LinearPowerFit:
    """Per-thread linear fit p(v) = slope * v + intercept."""

    slope: np.ndarray
    intercept: np.ndarray


def fit_power_lines(
    chip: ChipProfile,
    workload: Workload,
    assignment: Assignment,
    core_temps: np.ndarray,
    n_voltages: int,
    power_sensor: PowerSensor,
    center_levels: Optional[Sequence[int]] = None,
    span_levels: int = 2,
    ceff_multipliers: Optional[Sequence[float]] = None,
) -> LinearPowerFit:
    """Measure each thread-core pair's power at profile voltages, fit.

    With ``center_levels=None`` the profiling points span the whole
    voltage range (Vlow, [Vmid,] Vhigh — Figure 1, the paper's global
    fit). With centres given, points are taken within ``span_levels``
    DVFS levels of each thread's current level — the *local*
    linearisation used by the successive-LP passes, which is accurate
    where it matters because the true p(V) is convex.

    Temperatures are frozen at the current thermal state during the
    brief profiling runs (the runs are much shorter than thermal time
    constants).

    ``power_sensor`` may be a single sensor or a per-core bank
    (anything :func:`repro.power.core_reader` understands): with a
    bank, each measurement goes through the physical sensor of the
    core it profiles, so a faulty per-core sensor corrupts only its
    own thread's fit.

    A profiling window that degenerates to a single (V, p) point (a
    one-level V/f table) cannot pin a line; rather than feed
    ``np.polyfit`` a singular system, the fit falls back to zero slope
    through the measured point — the conservative "voltage does not
    buy this core anything" model.
    """
    n = assignment.n_threads
    ceff_mult = (np.ones(n) if ceff_multipliers is None
                 else np.asarray(ceff_multipliers, dtype=float))
    slope = np.empty(n)
    intercept = np.empty(n)
    for i, core_id in enumerate(assignment.core_of):
        core = chip.cores[core_id]
        table = core.vf_table
        if center_levels is None:
            level_set = sorted({
                table.nearest_level_at_most(v)
                for v in np.linspace(table.vmin, table.vmax, n_voltages)})
        else:
            centre = int(center_levels[i])
            lo = max(centre - span_levels, 0)
            hi = min(centre + span_levels, table.n_levels - 1)
            if hi - lo < 1:  # widen degenerate windows
                lo = max(hi - 1, 0)
            # Spread n_voltages profiling points evenly across the
            # window (duplicates collapse when the window is narrower
            # than the requested point count), mirroring the global
            # branch above — the local fit must honour the configured
            # profiling budget too, not silently measure three points.
            level_set = sorted({
                lo + (k * (hi - lo)) // (n_voltages - 1)
                for k in range(n_voltages)})
        reader = core_reader(power_sensor, core_id)
        xs, ys = [], []
        for level in level_set:
            v_lv = float(table.voltages[level])
            f_lv = float(table.freqs[level])
            true_p = (ceff_mult[i] * workload[i].dynamic_power_at(v_lv, f_lv)
                      + core.leakage.power(v_lv, float(core_temps[core_id])))
            xs.append(v_lv)
            ys.append(reader.read(true_p))
        if len(xs) >= 2:
            b, c = np.polyfit(np.array(xs), np.array(ys), 1)
        else:
            # Degenerate window (one-level table): a single point
            # cannot pin a line — assume flat power in V.
            b, c = 0.0, ys[0]
        slope[i] = b
        intercept[i] = c
    return LinearPowerFit(slope=slope, intercept=intercept)


class LinOpt(PowerManager):
    """Linear-programming power manager."""

    name = "LinOpt"

    def __init__(self, config: Optional[LinOptConfig] = None,
                 power_sensor: Optional[PowerSensor] = None,
                 ipc_sensor: Optional[IpcSensor] = None,
                 use_kernel: bool = True,
                 lp_backend: Union[str, LpBackend, None] = None) -> None:
        """``lp_backend`` accepts a backend name or instance; ``None``
        consults ``REPRO_LP_BACKEND`` (default: warm-started bounded
        engine). The backend persists across invocations so its warm
        basis carries through the 10 ms re-invocation loop."""
        self.config = config or LinOptConfig()
        self.use_kernel = use_kernel
        self.lp_backend = make_backend(lp_backend)
        # Default sensors get *independent* child streams of one parent
        # seed: a shared default_rng(0) would correlate power and IPC
        # noise sample-for-sample once noise is configured.
        power_rng, ipc_rng = independent_rngs(2, seed=0)
        self.power_sensor = (power_sensor if power_sensor is not None
                             else PowerSensor(rng=power_rng))
        self.ipc_sensor = (ipc_sensor if ipc_sensor is not None
                           else IpcSensor(rng=ipc_rng))

    def set_levels(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        rng: Optional[np.random.Generator] = None,
        initial_levels: Optional[Sequence[int]] = None,
        initial_state: Optional[SystemState] = None,
        ipc_multipliers: Optional[Sequence[float]] = None,
        ceff_multipliers: Optional[Sequence[float]] = None,
    ) -> PmResult:
        p_target, p_core_max = self._budget(chip, assignment, env)
        levels = (list(initial_levels) if initial_levels is not None
                  else self._top_levels(chip, assignment))

        evaluate, kernel = make_evaluator(
            chip, workload, assignment, ipc_multipliers=ipc_multipliers,
            ceff_multipliers=ceff_multipliers, use_kernel=self.use_kernel)

        if initial_state is None:
            current = evaluate(levels)
            evaluations = 1
        else:
            current = initial_state
            evaluations = 0

        stats: dict = {"lp_pivots": 0.0, "lp_flops": 0.0,
                       "corrections": 0.0, "refills": 0.0,
                       "lp_optimal": 1.0, "lp_warm_solves": 0.0,
                       "lp_cold_solves": 0.0, "lp_fallbacks": 0.0}
        best: Optional[tuple] = None
        for iteration in range(self.config.n_iterations):
            levels, current, evals = self._one_pass(
                chip, workload, assignment, p_target, p_core_max,
                levels, current, stats, evaluate, kernel,
                ceff_multipliers=ceff_multipliers,
                local=iteration > 0)
            evaluations += evals
            feasible = meets_constraints(current, p_target, p_core_max)
            if self.config.objective == "weighted":
                metric = current.weighted_throughput(workload)
            else:
                metric = current.throughput_mips
            key = (feasible, metric)
            if best is None or key > (best[0], best[1]):
                best = (feasible, metric, list(levels), current)
        levels, current = best[2], best[3]
        return PmResult(levels=tuple(levels), state=current,
                        evaluations=evaluations,
                        stats=merge_kernel_stats(stats, kernel))

    def _one_pass(self, chip, workload, assignment, p_target, p_core_max,
                  levels, current, stats, evaluate, kernel,
                  ceff_multipliers=None, local=False):
        """One profile -> LP -> discretise -> correct -> refill pass."""
        n = assignment.n_threads
        evaluations = 0

        # --- Gather profile data (Table 3) at the current state. ---
        core_temps = current.block_temps[: chip.n_cores]
        fit = fit_power_lines(chip, workload, assignment, core_temps,
                              self.config.n_profile_voltages,
                              self.power_sensor,
                              center_levels=levels if local else None,
                              span_levels=self.config.profile_span_levels,
                              ceff_multipliers=ceff_multipliers)
        ipcs = np.array([
            core_reader(self.ipc_sensor, assignment.core_of[i]).read(ipc)
            for i, ipc in enumerate(current.ipcs)])
        f_slope = np.empty(n)
        for i, core_id in enumerate(assignment.core_of):
            f_slope[i], _ = chip.cores[core_id].vf_table.linear_fit()
        weights = np.ones(n)
        if self.config.objective == "weighted":
            # Figure 13: the objective is per-thread throughput
            # normalised by its reference throughput.
            from ..workloads.applications import REF_FREQ_HZ
            weights = np.array([1.0 / workload[i].throughput_at(
                REF_FREQ_HZ) for i in range(n)]) * 1e9

        uncore_power = self.power_sensor.read(current.l2_power)

        # --- Build and solve the LP over x_i = v_i - Vlow. ---
        # Local passes constrain each voltage to its profiling window
        # (a trust region): the local linear fit is only valid nearby.
        if local:
            span = self.config.profile_span_levels
            vlow = np.empty(n)
            vhigh = np.empty(n)
            for i, core_id in enumerate(assignment.core_of):
                table = chip.cores[core_id].vf_table
                lo = max(levels[i] - span, 0)
                hi = min(levels[i] + span, table.n_levels - 1)
                vlow[i] = table.voltages[lo]
                vhigh[i] = table.voltages[hi]
        else:
            vlow = np.array([chip.cores[c].vf_table.vmin
                             for c in assignment.core_of])
            vhigh = np.array([chip.cores[c].vf_table.vmax
                              for c in assignment.core_of])
        objective = weights * ipcs * f_slope
        total_rhs = (p_target - uncore_power
                     - float(fit.intercept.sum())
                     - float(fit.slope @ vlow))
        a_rows = [fit.slope]
        b_vals = [total_rhs]
        for i in range(n):
            row = np.zeros(n)
            row[i] = fit.slope[i]
            a_rows.append(row)
            b_vals.append(p_core_max - fit.intercept[i]
                          - fit.slope[i] * vlow[i])
        lp = self.lp_backend.solve(LpProblem(
            c=objective,
            a_ub=np.vstack(a_rows),
            b_ub=np.array(b_vals),
            upper=vhigh - vlow,
        ))
        stats["lp_pivots"] += float(lp.iterations)
        stats["lp_flops"] += float(lp.flops)
        stats["lp_optimal"] = min(stats["lp_optimal"],
                                  float(lp.is_optimal))
        if lp.warm:
            stats["lp_warm_solves"] += 1.0
        else:
            stats["lp_cold_solves"] += 1.0

        if lp.is_optimal:
            v_star = vlow + lp.x
        else:
            # Non-optimal solves return x = zeros, which is NOT a plan:
            # clamp every core to its window floor explicitly and
            # surface the event (ResilientManager folds this into its
            # tier accounting).
            stats["lp_fallbacks"] += 1.0
            v_star = vlow.copy()

        # --- Quantise to each core's discrete levels. ---
        for i, core_id in enumerate(assignment.core_of):
            table = chip.cores[core_id].vf_table
            if self.config.rounding == "floor":
                levels[i] = table.nearest_level_at_most(float(v_star[i]))
            else:
                levels[i] = int(np.argmin(np.abs(table.voltages - v_star[i])))
        state = evaluate(levels)
        evaluations += 1

        # Marginal efficiency ranking (measured IPC * frequency slope
        # per linearly-predicted watt) used by correction and refill.
        efficiency = objective / np.maximum(fit.slope, 1e-9)

        # --- Sensor-guided correction: enforce the hard constraints. ---
        corrections = 0
        while (not meets_constraints(state, p_target, p_core_max)
               and corrections < self.config.correction_limit
               and any(lv > 0 for lv in levels)):
            over = [i for i in range(n)
                    if state.core_power[i] > p_core_max and levels[i] > 0]
            if over:
                victim = over[0]
            else:
                # Step down the least-efficient thread still above floor.
                candidates = [i for i in range(n) if levels[i] > 0]
                victim = min(candidates, key=lambda i: efficiency[i])
            levels[victim] -= 1
            state = evaluate(levels)
            evaluations += 1
            corrections += 1
        stats["corrections"] += float(corrections)

        # --- Refill: reclaim budget stranded by floor-quantisation. ---
        refills = 0
        if self.config.refill and meets_constraints(state, p_target,
                                                    p_core_max):
            # The efficiency ranking is fixed for the whole pass, so
            # every round walks the same order; a round ends at its
            # first feasible step-up and the search restarts.
            order = np.argsort(-efficiency)
            n_top = [chip.cores[assignment.core_of[int(i)]]
                     .vf_table.n_levels - 1 for i in range(n)]
            if kernel is None:
                improved = True
                while improved:
                    improved = False
                    for i in order:
                        if levels[int(i)] >= n_top[int(i)]:
                            continue
                        trial = list(levels)
                        trial[int(i)] += 1
                        trial_state = evaluate(trial)
                        evaluations += 1
                        if meets_constraints(trial_state, p_target,
                                             p_core_max):
                            levels = trial
                            state = trial_state
                            refills += 1
                            improved = True
                            break
            else:
                # Batched refill: within one round the candidate list
                # is fully determined up front (levels only change at
                # the accepting step, which ends the round), so runs of
                # candidates go through one kernel call each, walked in
                # efficiency order. Trials past the first acceptance
                # are speculative — discarded uncounted, evaluated with
                # errors="isolate" so a diverging one cannot abort the
                # rest — and a failure on a trial the walk does reach
                # re-raises exactly like the serial evaluate call.
                chunk = _REFILL_SPEC_MIN
                improved = True
                while improved:
                    improved = False
                    cands = [int(i) for i in order
                             if levels[int(i)] < n_top[int(i)]]
                    pos = 0
                    while pos < len(cands) and not improved:
                        batch = cands[pos:pos + chunk]
                        trials = []
                        for i in batch:
                            trial = list(levels)
                            trial[i] += 1
                            trials.append(trial)
                        trial_states = kernel.evaluate_levels_batch(
                            trials, errors="isolate")
                        for idx, (i, trial_state) in enumerate(
                                zip(batch, trial_states)):
                            if isinstance(trial_state, Exception):
                                raise trial_state
                            evaluations += 1
                            if meets_constraints(trial_state, p_target,
                                                 p_core_max):
                                levels = trials[idx]
                                state = trial_state
                                refills += 1
                                improved = True
                                chunk = max(_REFILL_SPEC_MIN,
                                            min(_REFILL_SPEC_MAX, idx + 2))
                                break
                        else:
                            chunk = min(chunk * 2, _REFILL_SPEC_MAX)
                        pos += len(batch)
        stats["refills"] += float(refills)
        return levels, state, evaluations
