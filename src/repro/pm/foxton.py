"""Foxton* — the baseline power manager (Table 1).

A small extension of the Itanium II Foxton controller to per-core
DVFS: active cores are selected one at a time round-robin and the
selected core's (V, f) is moved one step — down while the chip-wide
``Ptarget`` or the per-core ``Pcoremax`` constraint is violated, up
while there is budget headroom (the real Foxton controller raises
voltage whenever power is below target). Cores whose individual power
exceeds ``Pcoremax`` are stepped first, since the round-robin sweep
alone may satisfy the chip budget while a single hot core still
violates its cap.

Like the hardware controller, Foxton* observes only power — it has no
notion of each thread's IPC, which is exactly the information LinOpt
adds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..runtime.evaluation import Assignment, SystemState, evaluate_levels
from ..workloads import Workload
from .base import PmResult, PowerManager, meets_constraints

# Hard cap on (evaluate, step) iterations per invocation.
_MAX_STEPS_FACTOR = 2


def next_round_robin_victim(
    levels: Sequence[int],
    pointer: int,
    blocked: Sequence[bool] = (),
) -> Tuple[int, int]:
    """Next thread the round-robin sweep may step down.

    Scans at most one full revolution from ``pointer``, skipping
    threads already at the floor (level 0) and any marked blocked.
    Returns ``(victim, new_pointer)`` with ``victim = -1`` when no
    thread is eligible. Shared by :class:`FoxtonStar` and the
    emergency power watchdog (:class:`repro.faults.PowerWatchdog`),
    which performs the same Foxton-style sweep between manager
    invocations.
    """
    n = len(levels)
    for _ in range(n):
        candidate = pointer % n
        pointer += 1
        if levels[candidate] > 0 and not (blocked and blocked[candidate]):
            return candidate, pointer
    return -1, pointer


class FoxtonStar(PowerManager):
    """Round-robin step-down/step-up power controller."""

    name = "Foxton*"

    def __init__(self) -> None:
        self._pointer = 0  # round-robin position persists across calls

    def set_levels(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        rng: Optional[np.random.Generator] = None,
        initial_levels: Optional[Sequence[int]] = None,
        initial_state: Optional[SystemState] = None,
        ipc_multipliers: Optional[Sequence[float]] = None,
        ceff_multipliers: Optional[Sequence[float]] = None,
    ) -> PmResult:
        p_target, p_core_max = self._budget(chip, assignment, env)
        n = assignment.n_threads
        levels: List[int] = (list(initial_levels)
                             if initial_levels is not None
                             else self._top_levels(chip, assignment))
        top = [chip.cores[c].vf_table.n_levels - 1
               for c in assignment.core_of]

        def evaluate(lv):
            return evaluate_levels(chip, workload, assignment, lv,
                                   ipc_multipliers=ipc_multipliers,
                                   ceff_multipliers=ceff_multipliers)

        if initial_state is not None and initial_levels is not None:
            state = initial_state
            evaluations = 0
        else:
            state = evaluate(levels)
            evaluations = 1
        max_steps = _MAX_STEPS_FACTOR * n * max(
            chip.cores[c].vf_table.n_levels for c in assignment.core_of)
        steps = 0

        # Phase 1: step down round-robin while constraints are violated.
        while not meets_constraints(state, p_target, p_core_max):
            if all(lv == 0 for lv in levels) or steps >= max_steps:
                break  # floor reached: best effort, stay at minimum
            over_cap = [i for i in range(n)
                        if state.core_power[i] > p_core_max and levels[i] > 0]
            if over_cap:
                victim = over_cap[0]
            else:
                victim, self._pointer = next_round_robin_victim(
                    levels, self._pointer)
                if victim < 0:
                    break
            levels[victim] -= 1
            state = evaluate(levels)
            evaluations += 1
            steps += 1

        # Phase 2: step up round-robin while there is headroom. A step
        # that turns out to violate a constraint is undone, and that
        # core is not retried this invocation.
        blocked = [False] * n
        while (meets_constraints(state, p_target, p_core_max)
               and steps < max_steps):
            candidate = -1
            for _ in range(n):
                probe = self._pointer % n
                self._pointer += 1
                if not blocked[probe] and levels[probe] < top[probe]:
                    candidate = probe
                    break
            if candidate < 0:
                break
            levels[candidate] += 1
            trial = evaluate(levels)
            evaluations += 1
            steps += 1
            if meets_constraints(trial, p_target, p_core_max):
                state = trial
            else:
                levels[candidate] -= 1
                blocked[candidate] = True
        return PmResult(
            levels=tuple(levels),
            state=state,
            evaluations=evaluations,
            stats={"steps": float(steps)},
        )
