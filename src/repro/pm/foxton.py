"""Foxton* — the baseline power manager (Table 1).

A small extension of the Itanium II Foxton controller to per-core
DVFS: active cores are selected one at a time round-robin and the
selected core's (V, f) is moved one step — down while the chip-wide
``Ptarget`` or the per-core ``Pcoremax`` constraint is violated, up
while there is budget headroom (the real Foxton controller raises
voltage whenever power is below target). Cores whose individual power
exceeds ``Pcoremax`` are stepped first, since the round-robin sweep
alone may satisfy the chip budget while a single hot core still
violates its cap.

Like the hardware controller, Foxton* observes only power — it has no
notion of each thread's IPC, which is exactly the information LinOpt
adds.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..chip import ChipProfile
from ..config import PowerEnvironment
from ..runtime.evaluation import Assignment, SystemState
from ..workloads import Workload
from .base import (PmResult, PowerManager, make_evaluator,
                   meets_constraints, merge_kernel_stats)

# Hard cap on (evaluate, step) iterations per invocation.
_MAX_STEPS_FACTOR = 2

# Speculative step-up batching (phase 2 with the kernel): probes are
# planned assuming every step is accepted, so a rejection discards the
# rest of the batch. The batch size therefore adapts — it grows while
# speculation keeps paying off and resets near where the last
# rejection landed, bounding wasted evaluations when the budget is
# nearly saturated and most probes bounce.
_SPEC_MIN = 2
_SPEC_MAX = 16


def next_round_robin_victim(
    levels: Sequence[int],
    pointer: int,
    blocked: Sequence[bool] = (),
) -> Tuple[int, int]:
    """Next thread the round-robin sweep may step down.

    Scans at most one full revolution from ``pointer``, skipping
    threads already at the floor (level 0) and any marked blocked.
    Returns ``(victim, new_pointer)`` with ``victim = -1`` when no
    thread is eligible. Shared by :class:`FoxtonStar` and the
    emergency power watchdog (:class:`repro.faults.PowerWatchdog`),
    which performs the same Foxton-style sweep between manager
    invocations.
    """
    n = len(levels)
    for _ in range(n):
        candidate = pointer % n
        pointer += 1
        if levels[candidate] > 0 and not (blocked and blocked[candidate]):
            return candidate, pointer
    return -1, pointer


class FoxtonStar(PowerManager):
    """Round-robin step-down/step-up power controller."""

    name = "Foxton*"

    def __init__(self, use_kernel: bool = True) -> None:
        self._pointer = 0  # round-robin position persists across calls
        self.use_kernel = use_kernel

    def set_levels(
        self,
        chip: ChipProfile,
        workload: Workload,
        assignment: Assignment,
        env: PowerEnvironment,
        rng: Optional[np.random.Generator] = None,
        initial_levels: Optional[Sequence[int]] = None,
        initial_state: Optional[SystemState] = None,
        ipc_multipliers: Optional[Sequence[float]] = None,
        ceff_multipliers: Optional[Sequence[float]] = None,
    ) -> PmResult:
        p_target, p_core_max = self._budget(chip, assignment, env)
        n = assignment.n_threads
        levels: List[int] = (list(initial_levels)
                             if initial_levels is not None
                             else self._top_levels(chip, assignment))
        top = [chip.cores[c].vf_table.n_levels - 1
               for c in assignment.core_of]

        evaluate, kernel = make_evaluator(
            chip, workload, assignment, ipc_multipliers=ipc_multipliers,
            ceff_multipliers=ceff_multipliers, use_kernel=self.use_kernel)

        if initial_state is not None and initial_levels is not None:
            state = initial_state
            evaluations = 0
        else:
            state = evaluate(levels)
            evaluations = 1
        max_steps = _MAX_STEPS_FACTOR * n * max(
            chip.cores[c].vf_table.n_levels for c in assignment.core_of)
        steps = 0

        # Phase 1: step down round-robin while constraints are violated.
        while not meets_constraints(state, p_target, p_core_max):
            if all(lv == 0 for lv in levels) or steps >= max_steps:
                break  # floor reached: best effort, stay at minimum
            over_cap = [i for i in range(n)
                        if state.core_power[i] > p_core_max and levels[i] > 0]
            if over_cap:
                victim = over_cap[0]
            else:
                victim, self._pointer = next_round_robin_victim(
                    levels, self._pointer)
                if victim < 0:
                    break
            levels[victim] -= 1
            state = evaluate(levels)
            evaluations += 1
            steps += 1

        # Phase 2: step up round-robin while there is headroom. A step
        # that turns out to violate a constraint is undone, and that
        # core is not retried this invocation.
        blocked = [False] * n
        if kernel is None:
            while (meets_constraints(state, p_target, p_core_max)
                   and steps < max_steps):
                candidate = -1
                for _ in range(n):
                    probe = self._pointer % n
                    self._pointer += 1
                    if not blocked[probe] and levels[probe] < top[probe]:
                        candidate = probe
                        break
                if candidate < 0:
                    break
                levels[candidate] += 1
                trial = evaluate(levels)
                evaluations += 1
                steps += 1
                if meets_constraints(trial, p_target, p_core_max):
                    state = trial
                else:
                    levels[candidate] -= 1
                    blocked[candidate] = True
        else:
            # Batched phase 2: plan a run of step-ups under the
            # assumption that each one will be accepted (the common
            # case while headroom lasts), evaluate the run as one
            # kernel batch, and walk the results in order. Pointer
            # advances, step/evaluation counts and accept/reject
            # decisions are committed exactly as the serial loop would
            # make them; a rejection blocks that core, discards the
            # not-yet-consumed remainder of the batch (the serial loop
            # would have planned different probes from here on) and
            # replans. Discarded probes are never counted. Rows are
            # evaluated with ``errors="isolate"`` because they are
            # speculative — a divergent probe the serial loop would
            # never have reached must not abort the batch — and an
            # error on a row the walk *does* reach is re-raised right
            # there, exactly like the serial evaluate call.
            chunk = _SPEC_MIN
            while (meets_constraints(state, p_target, p_core_max)
                   and steps < max_steps):
                plan = []  # (candidate, trial levels, pointer after scan)
                sim_levels = list(levels)
                sim_ptr = self._pointer
                while steps + len(plan) < max_steps and len(plan) < chunk:
                    cand = -1
                    for _ in range(n):
                        probe = sim_ptr % n
                        sim_ptr += 1
                        if (not blocked[probe]
                                and sim_levels[probe] < top[probe]):
                            cand = probe
                            break
                    if cand < 0:
                        break
                    sim_levels[cand] += 1
                    plan.append((cand, list(sim_levels), sim_ptr))
                if not plan:
                    # The very first scan found no eligible core; the
                    # serial loop's failed scan advances the pointer
                    # one full revolution too.
                    self._pointer = sim_ptr
                    break
                trials = kernel.evaluate_levels_batch(
                    [lv for _, lv, _ in plan], errors="isolate")
                rejected_at = -1
                for idx, ((cand, trial_levels, ptr_after), trial) in enumerate(
                        zip(plan, trials)):
                    self._pointer = ptr_after
                    if isinstance(trial, Exception):
                        raise trial
                    evaluations += 1
                    steps += 1
                    if meets_constraints(trial, p_target, p_core_max):
                        levels = trial_levels
                        state = trial
                    else:
                        blocked[cand] = True
                        rejected_at = idx
                        break
                if rejected_at < 0:
                    chunk = min(chunk * 2, _SPEC_MAX)
                else:
                    chunk = max(_SPEC_MIN, min(_SPEC_MAX, rejected_at + 2))
        return PmResult(
            levels=tuple(levels),
            state=state,
            evaluations=evaluations,
            stats=merge_kernel_stats({"steps": float(steps)}, kernel),
        )
