"""Command-line entry point: run any paper experiment.

Usage::

    python -m repro.cli list
    python -m repro.cli fig4 [--dies 200]
    python -m repro.cli fig11 [--trials 20] [--static] [--no-sann]
    python -m repro.cli all [--resume]
    python -m repro.cli cache stats|verify|gc|clear
    python -m repro.cli fleet run|plan|merge|stats ...

``REPRO_FULL=1`` switches the defaults to the paper's full scale
(200 dies, 20 trials) — expect long runtimes. ``--resume`` (or
``REPRO_RESUME=1``) journals every completed (experiment, die,
policy) unit to ``results/<run>/journal.jsonl`` and picks an
interrupted campaign up from the last completed unit; ``--fresh``
discards an existing journal first.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import EXPERIMENTS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Variation-Aware "
                    "Application Scheduling and Power Management for "
                    "Chip Multiprocessors' (ISCA 2008).")
    parser.add_argument("experiment",
                        help="experiment name (see 'list'), or 'list'/'all'")
    parser.add_argument("--dies", type=int, default=None,
                        help="number of dies (fig4/fig5)")
    parser.add_argument("--trials", type=int, default=None,
                        help="workload trials per data point")
    parser.add_argument("--static", action="store_true",
                        help="use the static protocol for fig11-13 "
                             "(faster, no phase adaptation)")
    parser.add_argument("--no-sann", action="store_true",
                        help="skip the SAnn algorithm in fig11-13")
    parser.add_argument("--chart", action="store_true",
                        help="also render terminal charts where the "
                             "experiment supports it")
    parser.add_argument("--workers", type=int, default=None,
                        help="processes for die characterisation "
                             "(default: REPRO_WORKERS or 1; serial "
                             "runs are bitwise-identical)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent characterisation "
                             "cache (benchmarks/.cache)")
    parser.add_argument("--resume", action="store_true",
                        help="journal completed units to results/<run>/"
                             "journal.jsonl and resume an interrupted "
                             "campaign from the last completed unit")
    parser.add_argument("--fresh", action="store_true",
                        help="like --resume, but discard any existing "
                             "journal for the requested run(s) first")
    return parser


def _run_one(name: str, args: argparse.Namespace) -> None:
    module = EXPERIMENTS[name]
    kwargs = {}
    if name in ("fig4", "fig5") and args.dies is not None:
        kwargs["n_dies"] = args.dies
    if name in ("fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13") and args.trials is not None:
        kwargs["n_trials"] = args.trials
    if name in ("fig11", "fig12", "fig13"):
        if args.static:
            kwargs["protocol"] = "static"
        if args.no_sann:
            kwargs["include_sann"] = False
    start = time.time()
    result = module.run(**kwargs)
    elapsed = time.time() - start
    print(result.format_table())
    if args.chart:
        chart = _render_chart(name, result)
        if chart:
            print()
            print(chart)
    print(f"[{name} completed in {elapsed:.1f}s]")


def _render_chart(name: str, result) -> Optional[str]:
    """Terminal chart for the experiments with a natural one."""
    from .report import (bar_chart, histogram_chart, line_chart,
                         resilience_timeline)
    if name == "fig4":
        return "\n\n".join([
            histogram_chart(result.power_ratios, title="Fig 4(a): "
                            "core power ratio histogram"),
            histogram_chart(result.freq_ratios, title="Fig 4(b): "
                            "core frequency ratio histogram"),
        ])
    if name == "fig5":
        return line_chart(result.sigma_over_mu,
                          {"power ratio": result.power_ratio,
                           "freq ratio": result.freq_ratio},
                          title="Fig 5: ratios vs Vth sigma/mu")
    if name == "fig14":
        series = {f"{nt} threads": devs
                  for nt, devs in result.deviation_pct.items()}
        return line_chart(range(len(result.intervals_s)), series,
                          title="Fig 14: |P - Ptarget| (%) per "
                                "interval (left = longest)")
    if name == "ext-faults":
        from .experiments.ext_faults import DURATION_S
        curves = line_chart(
            result.noise_sigmas,
            {"dev %": [a.deviation_pct for a in result.noise_arms],
             "wd trig": [float(a.watchdog_triggers)
                         for a in result.noise_arms]},
            title="ext-faults: degradation vs sensor noise sigma")
        wd = result.scenario.watchdog
        timeline = resilience_timeline(
            DURATION_S,
            fault_times_s=wd.fault_times_s,
            trigger_times_s=wd.trigger_times_s,
            fallback_times_s=wd.fallback_times_s,
            lp_fallback_times_s=wd.lp_fallback_times_s,
            title="ext-faults scenario: faults vs watchdog/fallback "
                  "activity")
        return curves + "\n\n" + timeline
    if name in ("fig11", "fig12", "fig13"):
        some_key = sorted(result.results)[-1]
        per = result.results[some_key]
        labels = list(per)
        values = [per[a].mips for a in labels]
        return bar_chart(labels, values, baseline=1.0,
                         title=f"{name}: relative throughput "
                               f"({some_key})")
    return None


def _parse_size(text: str) -> int:
    """Parse a byte budget like ``500M``, ``2G``, ``4096``."""
    text = text.strip().upper()
    factor = 1
    for suffix, mult in (("K", 1 << 10), ("M", 1 << 20), ("G", 1 << 30)):
        if text.endswith(suffix):
            text, factor = text[:-1], mult
            break
    return int(float(text) * factor)


def _cache_main(argv: List[str]) -> int:
    """The ``repro cache`` maintenance subcommand."""
    from .parallel import CharacterizationCache, default_cache_root
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect and maintain the persistent "
                    "characterisation cache.")
    parser.add_argument("action",
                        choices=("stats", "verify", "gc", "clear"))
    parser.add_argument("--max-bytes", type=_parse_size, default=None,
                        help="gc: evict LRU entries until the cache is "
                             "at most this big (suffixes K/M/G)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: REPRO_CACHE_DIR "
                             "or benchmarks/.cache)")
    args = parser.parse_args(argv)
    root = args.cache_dir or default_cache_root()
    cache = CharacterizationCache(root)
    if args.action == "stats":
        usage = cache.usage()
        print(f"cache root        {cache.root}")
        print(f"entries           {usage['entries']}")
        print(f"bytes             {usage['bytes']}")
        print(f"quarantined       {usage['quarantined']}")
        return 0
    if args.action == "verify":
        report = cache.verify_all()
        print(f"verified {len(report['ok'])} entr"
              f"{'y' if len(report['ok']) == 1 else 'ies'}, "
              f"{len(report['corrupt'])} corrupt")
        for key in report["corrupt"]:
            print(f"quarantined {key} -> {cache.quarantine_root}")
        return 1 if report["corrupt"] else 0
    if args.action == "gc":
        if args.max_bytes is None:
            print("cache gc requires --max-bytes", file=sys.stderr)
            return 2
        removed = cache.gc(args.max_bytes)
        usage = cache.usage()
        print(f"evicted {len(removed)} entr"
              f"{'y' if len(removed) == 1 else 'ies'}; "
              f"{usage['entries']} left ({usage['bytes']} bytes)")
        return 0
    cache.clear()
    print(f"cleared {cache.root}")
    return 0


def _daemon_main(argv: List[str]) -> int:
    """The ``repro daemon`` service subcommand."""
    import asyncio

    parser = argparse.ArgumentParser(
        prog="repro daemon",
        description="Serve the power-management stack as a "
                    "long-running multi-tenant daemon (NDJSON over "
                    "TCP; see DESIGN.md section 16).")
    parser.add_argument("action", choices=("serve", "recover",
                                           "status"))
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (serve) or daemon address "
                             "(status; default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7715,
                        help="TCP port; 0 picks a free one "
                             "(default 7715)")
    parser.add_argument("--state-dir", default=None,
                        help="durable state directory: journal every "
                             "admitted request, snapshot tenants, and "
                             "recover them by deterministic replay on "
                             "restart (DESIGN.md section 19; default "
                             "in-RAM only)")
    parser.add_argument("--fresh", action="store_true",
                        help="wipe --state-dir before serving "
                             "(discard all durable tenants)")
    parser.add_argument("--snapshot-every", type=int, default=16,
                        help="ops journaled between tenant snapshots "
                             "(default 16)")
    parser.add_argument("--max-frame-bytes", type=_parse_size,
                        default=None,
                        help="per-frame size budget (suffixes K/M/G; "
                             "default 64K)")
    parser.add_argument("--queue-size", type=int, default=64,
                        help="per-subscriber event queue bound "
                             "(default 64; overflow drops oldest)")
    parser.add_argument("--idle-timeout", type=float, default=300.0,
                        help="reap clients silent this long, seconds "
                             "(0 disables; default 300)")
    parser.add_argument("--heartbeat", type=float, default=10.0,
                        help="heartbeat event period, seconds "
                             "(0 disables; default 10)")
    args = parser.parse_args(argv)

    from .daemon import DaemonController, DaemonServer

    if args.action == "status":
        from .daemon import DaemonClient, DaemonError
        try:
            with DaemonClient(args.host, args.port,
                              timeout_s=10.0) as client:
                status = client.request("status")
        except (OSError, DaemonError) as exc:
            print(f"repro daemon status: {exc}", file=sys.stderr)
            return 2
        counters = status["telemetry"]["counters"]
        print(f"daemon at {args.host}:{args.port} "
              f"(durable={status['durable']})")
        for info in status["tenants"]:
            print(f"  tenant {info['tenant']}: {info['status']} "
                  f"t={info['time_s']:.4f}s "
                  f"decisions={info['decisions']} "
                  f"ops_journaled={info['ops_journaled']}")
        recovery = status.get("recovery")
        if recovery:
            print(f"  recovery: {recovery['tenants_recovered']} "
                  f"tenants, {recovery['ops_replayed']} ops "
                  f"replayed, {recovery['snapshot_restores']} from "
                  f"snapshot, {recovery['tenants_quarantined']} "
                  f"quarantined")
        dropped = status.get("dropped_by_tenant") or {}
        print(f"  dropped_frames={counters['dropped_frames']}"
              + (f" by_tenant={dropped}" if dropped else ""))
        quarantined = status["telemetry"].get("quarantined") or {}
        for name, reason in quarantined.items():
            print(f"  quarantined {name}: {reason}")
        return 0

    if args.action == "recover":
        # Offline recovery check: replay the state dir (no listener),
        # report what would be restored, exit non-zero on quarantine.
        if not args.state_dir:
            print("repro daemon recover requires --state-dir",
                  file=sys.stderr)
            return 2
        controller = DaemonController(
            state_dir=args.state_dir,
            snapshot_every=args.snapshot_every)
        stats = controller.last_recovery
        assert stats is not None
        print(f"recovered {stats.tenants_recovered} tenant(s): "
              f"{stats.ops_replayed} op(s) replayed, "
              f"{stats.snapshot_restores} snapshot restore(s), "
              f"{stats.snapshot_quarantines} snapshot "
              f"quarantine(s)")
        for name in controller.tenants():
            info = controller.tenant_info(name)
            print(f"  tenant {name}: {info['status']} "
                  f"t={info['time_s']:.4f}s "
                  f"decisions={info['decisions']}")
        for name, reason in stats.quarantine_reasons.items():
            print(f"  quarantined {name}: {reason}")
        return 1 if stats.tenants_quarantined else 0

    if args.fresh and args.state_dir:
        from .daemon.durability import StateDir
        StateDir(args.state_dir).clear()

    async def _serve() -> int:
        server = DaemonServer(
            DaemonController(state_dir=args.state_dir,
                             snapshot_every=args.snapshot_every),
            host=args.host, port=args.port,
            max_frame_bytes=(args.max_frame_bytes
                             if args.max_frame_bytes else 64 * 1024),
            queue_size=args.queue_size,
            idle_timeout_s=args.idle_timeout or None,
            heartbeat_interval_s=args.heartbeat or None)
        host, port = await server.start()
        recovery = server.controller.last_recovery
        if recovery is not None and recovery.tenants_recovered:
            print(f"recovered {recovery.tenants_recovered} "
                  f"tenant(s) ({recovery.ops_replayed} ops "
                  f"replayed, {recovery.snapshot_restores} from "
                  f"snapshot)", flush=True)
        print(f"repro daemon listening on {host}:{port}",
              flush=True)
        try:
            await server._stopped.wait()
        except (KeyboardInterrupt, asyncio.CancelledError):
            await server.stop()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return 0


def _fleet_main(argv: List[str]) -> int:
    """The ``repro fleet`` campaign subcommand.

    ``run`` streams a fig04-shaped Monte-Carlo campaign over many
    dies (columnar shards + online statistics, always journaled, so
    an interrupted run resumes bitwise); ``plan`` writes a multi-host
    manifest partitioning the die range; ``merge`` reassembles the
    hosts' outputs into one campaign (refusing on gaps unless
    ``--allow-partial``); ``stats`` renders a campaign summary.
    """
    import pathlib

    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="Fleet-scale Monte-Carlo campaigns over many "
                    "dies (see DESIGN.md section 17).")
    sub = parser.add_subparsers(dest="action", required=True)

    p_run = sub.add_parser("run", help="run (or resume) a campaign")
    p_run.add_argument("--name", default="fleet",
                       help="campaign name (results/<name>/)")
    p_run.add_argument("--dies", type=int, default=1000,
                       help="fleet size (default 1000)")
    p_run.add_argument("--start", type=int, default=0,
                       help="first die index (manifest slices)")
    p_run.add_argument("--chunk", type=int, default=64,
                       help="dies per chunk/shard (default 64)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--no-power", action="store_true",
                       help="skip the 4(a) power analysis (freq "
                            "ratios only; much faster)")
    p_run.add_argument("--out", default="results",
                       help="results root (default results/)")
    p_run.add_argument("--workers", type=int, default=None,
                       help="characterisation worker processes")
    p_run.add_argument("--manifest", default=None,
                       help="multi-host manifest; with --host, run "
                            "only that host's die slice")
    p_run.add_argument("--host", default=None,
                       help="this host's name in the manifest")
    p_run.add_argument("--quiet", action="store_true",
                       help="no per-chunk progress lines")

    p_plan = sub.add_parser("plan", help="write a multi-host manifest")
    p_plan.add_argument("--name", default="fleet")
    p_plan.add_argument("--dies", type=int, required=True)
    p_plan.add_argument("--chunk", type=int, default=64)
    p_plan.add_argument("--seed", type=int, default=0)
    p_plan.add_argument("--no-power", action="store_true")
    p_plan.add_argument("--hosts", required=True,
                        help="comma-separated host names")
    p_plan.add_argument("--manifest", required=True,
                        help="manifest file to write")

    p_merge = sub.add_parser("merge",
                             help="merge per-host campaign outputs")
    p_merge.add_argument("host_dirs", nargs="+",
                         help="per-host campaign directories "
                              "(<out>/<name> layouts)")
    p_merge.add_argument("--manifest", required=True)
    p_merge.add_argument("--out", default="results",
                         help="merged results root")
    p_merge.add_argument("--allow-partial", action="store_true",
                         help="emit a best-effort summary even if "
                              "chunks are missing (no complete mark)")

    p_stats = sub.add_parser("stats", help="render a campaign summary")
    p_stats.add_argument("campaign_dir",
                         help="campaign directory (<out>/<name>)")
    p_stats.add_argument("--from-shards", action="store_true",
                         help="recompute statistics by streaming the "
                              "shards instead of reading summary.json")

    args = parser.parse_args(argv)
    from .fleet import (FleetPlan, load_summary, merge_campaigns,
                        run_fleet_campaign, summarize_shards)
    from .parallel.manifest import ShardManifest
    from .report import fleet_summary_table

    if args.action == "run":
        if args.manifest:
            manifest = ShardManifest.load(args.manifest)
            if not args.host:
                print("--manifest requires --host for 'fleet run'",
                      file=sys.stderr)
                return 2
            plan = FleetPlan.from_dict(
                manifest.host_plan_params(args.host))
        else:
            plan = FleetPlan(name=args.name, n_dies=args.dies,
                             start=args.start, seed=args.seed,
                             chunk_dies=args.chunk,
                             with_power=not args.no_power)
        progress = None
        if not args.quiet:
            def progress(done: int, total: int) -> None:
                print(f"  {done}/{total} dies", flush=True)
        result = run_fleet_campaign(plan, args.out,
                                    workers=args.workers,
                                    progress=progress)
        print(fleet_summary_table(load_summary(result.out_dir)))
        print(f"\n{result.n_dies} dies in {result.wall_s:.1f}s "
              f"({result.dies_per_s:.1f} dies/s, "
              f"{result.resumed_chunks}/{result.n_chunks} chunks "
              "resumed from journal)")
        print(f"shards + summary under {result.out_dir}")
        return 0

    if args.action == "plan":
        plan = FleetPlan(name=args.name, n_dies=args.dies,
                         seed=args.seed, chunk_dies=args.chunk,
                         with_power=not args.no_power)
        hosts = [h.strip() for h in args.hosts.split(",") if h.strip()]
        manifest = ShardManifest.partition(plan.to_dict(), hosts)
        path = manifest.write(args.manifest)
        for h in manifest.hosts:
            print(f"{h.host:16s} dies [{h.start}, {h.end})  "
                  f"({h.n_dies})")
        print(f"manifest written to {path}")
        print(f"per host: repro fleet run --manifest {path} "
              "--host <name>")
        return 0

    if args.action == "merge":
        manifest = ShardManifest.load(args.manifest)
        from .parallel import IncompleteJournalError
        try:
            result = merge_campaigns(
                manifest, args.host_dirs, args.out,
                require_complete=not args.allow_partial)
        except IncompleteJournalError as exc:
            print(f"merge refused: {exc}", file=sys.stderr)
            print("(use --allow-partial for a best-effort summary)",
                  file=sys.stderr)
            return 1
        print(fleet_summary_table(load_summary(result.out_dir)))
        print(f"\nmerged {result.n_dies} dies "
              f"({result.n_chunks} chunks) into {result.out_dir}")
        return 0

    campaign_dir = pathlib.Path(args.campaign_dir)
    if args.from_shards:
        acc = summarize_shards(campaign_dir / "shards")
        print(fleet_summary_table({"metrics": acc.summary()}))
    else:
        print(fleet_summary_table(load_summary(campaign_dir)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "daemon":
        return _daemon_main(argv[1:])
    if argv and argv[0] == "fleet":
        return _fleet_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, module in EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0
    from .parallel import discard_journal, parallel_config
    resume = True if (args.resume or args.fresh) else None
    with parallel_config(
            workers=args.workers,
            cache_enabled=False if args.no_cache else None,
            resume=resume):
        names = (list(EXPERIMENTS) if args.experiment == "all"
                 else [args.experiment])
        if args.fresh:
            for name in names:
                if name in EXPERIMENTS:
                    discard_journal(name)
        if args.experiment == "all":
            for name in EXPERIMENTS:
                print(f"=== {name} ===")
                _run_one(name, args)
                print()
            return 0
        if args.experiment not in EXPERIMENTS:
            print(f"unknown experiment {args.experiment!r}; try 'list'",
                  file=sys.stderr)
            return 2
        _run_one(args.experiment, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
