"""Dynamic (switching) power model.

Core dynamic power follows the classic ``P = Ceff * V^2 * f`` with an
application-specific effective switched capacitance calibrated from the
Table 5 measurements (dynamic power at 4 GHz / 1 V). The L2's dynamic
power is modelled as a fixed fraction of aggregate core dynamic power.
"""

from __future__ import annotations

import numpy as np

from . import scaling


def dynamic_power(ceff, vdd, freq):
    """Switching power ``Ceff * V^2 * f`` (broadcastable).

    Args:
        ceff: Effective switched capacitance (F).
        vdd: Supply voltage (V).
        freq: Clock frequency (Hz).

    Returns:
        Power in watts.
    """
    ceff = np.asarray(ceff, dtype=float)
    vdd = np.asarray(vdd, dtype=float)
    freq = np.asarray(freq, dtype=float)
    if np.any(ceff < 0):
        raise ValueError("Ceff must be non-negative")
    if np.any(vdd <= 0) or np.any(freq < 0):
        raise ValueError("voltage must be positive and frequency non-negative")
    return ceff * vdd ** 2 * freq


def l2_dynamic_power(total_core_dynamic: float) -> float:
    """L2 switching power as a fraction of aggregate core dynamic."""
    if total_core_dynamic < 0:
        raise ValueError("core dynamic power must be non-negative")
    return scaling.L2_DYNAMIC_FRACTION * total_core_dynamic
