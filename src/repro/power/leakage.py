"""Subthreshold-leakage power model (HotLeakage-style).

Per-transistor subthreshold current follows

    I_sub ~ mu(T) * (kT/q)^2 * exp(-Vth_eff / (n * kT/q))

with ``n`` the subthreshold-slope factor and

    Vth_eff = Vth + dVth/dT * (T - Tref) - DIBL * (V - Vnom)

so leakage grows exponentially as temperature rises (both because Vth
falls and because the thermal voltage grows) and more than linearly as
supply voltage rises (DIBL), matching the qualitative facts the paper
relies on (Sections 3 and 4.3.1).

A core's leakage aggregates the factor over the variation-map cells of
its functional units, weighted by each unit's share of the transistor
budget, and is calibrated so a variation-free core at nominal (V, T)
burns :data:`repro.power.scaling.CORE_STATIC_NOMINAL_W`. The per-cell
*random* Vth component is identical-in-distribution everywhere, so its
expectation factor is common to all cores and absorbed by the
calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..config import BOLTZMANN_EV, T_REF_K, TechParams
from ..floorplan import Floorplan
from ..variation import VariationMap
from . import scaling

# Drain-induced barrier lowering coefficient (V of Vth per V of Vdd).
DIBL_COEFF = 0.08


def subthreshold_slope_factor(tech: TechParams) -> float:
    """Slope factor n derived from the subthreshold swing at Tref."""
    vt_ref = BOLTZMANN_EV * T_REF_K
    return tech.subthreshold_slope_mv / 1000.0 / (vt_ref * np.log(10.0))


def leakage_factor(
    vdd,
    vth,
    t_kelvin,
    tech: TechParams,
):
    """Relative leakage *power* factor (unitless, broadcastable).

    Includes the V multiplier (P = V * I), the T^2 prefactor, the
    thermal-voltage exponent, the temperature dependence of Vth, and
    DIBL.
    """
    vdd = np.asarray(vdd, dtype=float)
    vth = np.asarray(vth, dtype=float)
    t = np.asarray(t_kelvin, dtype=float)
    if np.any(t <= 0):
        raise ValueError("temperature must be positive kelvin")
    n = subthreshold_slope_factor(tech)
    v_t = BOLTZMANN_EV * t
    vth_eff = (
        vth
        + tech.vth_temp_coeff * (t - T_REF_K)
        - DIBL_COEFF * (vdd - tech.vdd_nominal)
    )
    return vdd * (t / T_REF_K) ** 2 * np.exp(-vth_eff / (n * v_t))


@dataclass(frozen=True)
class UnitLeakage:
    """Leakage state of one functional unit: cell Vth values + weight."""

    vth_cells: np.ndarray
    weight: float


class CoreLeakageModel:
    """Static power of one core as a function of (V, T).

    Unit cell values and weights are flattened at construction so a
    power query is a single vectorised expression — this sits in the
    inner loop of the thermal fixed point and of simulated annealing.
    """

    def __init__(self, units: Sequence[UnitLeakage], tech: TechParams,
                 calibration: float) -> None:
        if not units:
            raise ValueError("a core needs at least one unit")
        if calibration <= 0:
            raise ValueError("calibration must be positive")
        vth_parts: List[np.ndarray] = []
        weight_parts: List[np.ndarray] = []
        for unit in units:
            cells = np.asarray(unit.vth_cells, dtype=float)
            if cells.size == 0:
                raise ValueError("unit with no variation cells")
            if unit.weight < 0:
                raise ValueError("unit weight must be non-negative")
            vth_parts.append(cells)
            weight_parts.append(np.full(cells.size, unit.weight / cells.size))
        self._vth = np.concatenate(vth_parts)
        weights = np.concatenate(weight_parts)
        total = weights.sum()
        if total <= 0:
            raise ValueError("total leakage weight must be positive")
        self._weights = weights / total
        self.tech = tech
        self.calibration = calibration

    @classmethod
    def from_arrays(cls, vth: np.ndarray, weights: np.ndarray,
                    tech: TechParams,
                    calibration: float) -> "CoreLeakageModel":
        """Rebuild a model from its flattened state.

        ``vth``/``weights`` must be a previously flattened (and
        normalised) cell state, e.g. from :attr:`cell_vth` /
        :attr:`cell_weights` — the characterisation cache's round-trip.
        """
        vth = np.asarray(vth, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if vth.shape != weights.shape or vth.ndim != 1 or vth.size == 0:
            raise ValueError("vth and weights must be matching 1-D arrays")
        if calibration <= 0:
            raise ValueError("calibration must be positive")
        model = cls.__new__(cls)
        model._vth = vth
        model._weights = weights
        model.tech = tech
        model.calibration = calibration
        return model

    @property
    def cell_vth(self) -> np.ndarray:
        """Flattened per-cell Vth state (read-only serialisation view)."""
        return self._vth

    @property
    def cell_weights(self) -> np.ndarray:
        """Flattened normalised per-cell weights."""
        return self._weights

    def power(self, vdd: float, t_kelvin: float) -> float:
        """Core static power (W) at supply ``vdd`` and temperature T."""
        factors = leakage_factor(vdd, self._vth, t_kelvin, self.tech)
        return self.calibration * float(self._weights @ factors)

    def shifted(self, delta_vth: float) -> "CoreLeakageModel":
        """A copy with every cell's Vth shifted by ``delta_vth``.

        Used by the aging extension: NBTI raises Vth uniformly across
        a stressed core, lowering its leakage (and its speed).
        """
        clone = CoreLeakageModel.__new__(CoreLeakageModel)
        clone._vth = self._vth + float(delta_vth)
        clone._weights = self._weights
        clone.tech = self.tech
        clone.calibration = self.calibration
        return clone


def leakage_calibration(tech: TechParams,
                        nominal_watts: float = None,
                        ) -> float:
    """Calibration constant: nominal core = ``nominal_watts`` at ref.

    ``nominal_watts`` defaults to the *current* value of
    :data:`repro.power.scaling.CORE_STATIC_NOMINAL_W` (late-bound so
    experiments can re-calibrate the leakage budget).
    """
    if nominal_watts is None:
        nominal_watts = scaling.CORE_STATIC_NOMINAL_W
    ref = leakage_factor(tech.vdd_nominal, tech.vth_mean, T_REF_K, tech)
    return float(nominal_watts / ref)


def build_core_leakage(
    vmap: VariationMap,
    floorplan: Floorplan,
    core_id: int,
    tech: TechParams,
    nominal_watts: float = None,
) -> CoreLeakageModel:
    """Build the leakage model of one core from its variation map."""
    units = []
    for unit in floorplan.core_units(core_id):
        r = unit.rect
        vth_cells, _ = vmap.region_cells(r.x0, r.y0, r.x1, r.y1)
        units.append(UnitLeakage(vth_cells=vth_cells,
                                 weight=unit.spec.leakage_weight))
    return CoreLeakageModel(units, tech,
                            leakage_calibration(tech, nominal_watts))


class L2LeakageModel:
    """Static power of the shared L2 (fixed voltage domain).

    The L2 spans several floorplan blocks; leakage is evaluated per
    block at that block's temperature, with the calibrated total split
    across blocks by area.
    """

    def __init__(self, vmap: VariationMap, floorplan: Floorplan,
                 tech: TechParams,
                 nominal_watts: float = None) -> None:
        if not floorplan.l2_blocks:
            raise ValueError("floorplan has no L2 blocks")
        self._block_vth: List[np.ndarray] = []
        areas = []
        for rect in floorplan.l2_blocks:
            vth, _ = vmap.region_cells(rect.x0, rect.y0, rect.x1, rect.y1)
            self._block_vth.append(vth)
            areas.append(rect.area)
        if nominal_watts is None:
            nominal_watts = scaling.L2_STATIC_NOMINAL_W
        areas = np.asarray(areas)
        self._block_share = areas / areas.sum()
        self.tech = tech
        self.calibration = leakage_calibration(tech, nominal_watts)

    @classmethod
    def from_arrays(cls, block_vth: Sequence[np.ndarray],
                    block_share: np.ndarray, tech: TechParams,
                    calibration: float) -> "L2LeakageModel":
        """Rebuild a model from its per-block state (cache round-trip)."""
        if not block_vth:
            raise ValueError("need at least one L2 block")
        share = np.asarray(block_share, dtype=float)
        if share.shape != (len(block_vth),):
            raise ValueError("block_share must match the block count")
        if calibration <= 0:
            raise ValueError("calibration must be positive")
        model = cls.__new__(cls)
        model._block_vth = [np.asarray(v, dtype=float) for v in block_vth]
        model._block_share = share
        model.tech = tech
        model.calibration = calibration
        return model

    @property
    def block_vth(self) -> List[np.ndarray]:
        """Per-block Vth cell values (read-only serialisation view)."""
        return list(self._block_vth)

    @property
    def block_share(self) -> np.ndarray:
        """Per-block share of the calibrated leakage budget."""
        return self._block_share

    @property
    def n_blocks(self) -> int:
        return len(self._block_vth)

    def power_per_block(self, t_kelvin: Sequence[float]) -> np.ndarray:
        """Per-L2-block static power (W) at per-block temperatures."""
        temps = np.asarray(t_kelvin, dtype=float)
        if temps.shape != (self.n_blocks,):
            raise ValueError(f"need {self.n_blocks} L2 block temperatures")
        out = np.empty(self.n_blocks)
        for i, vth in enumerate(self._block_vth):
            factor = float(np.mean(
                leakage_factor(scaling.L2_VDD, vth, temps[i], self.tech)))
            out[i] = self.calibration * self._block_share[i] * factor
        return out

    def power(self, t_kelvin: float) -> float:
        """Total L2 static power (W) at a uniform temperature."""
        temps = np.full(self.n_blocks, float(t_kelvin))
        return float(self.power_per_block(temps).sum())
