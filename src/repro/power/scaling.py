"""Technology scaling and calibration constants for the power models.

The paper estimates power with Wattch/HotLeakage at a reference
technology and scales to 32 nm with ITRS projections (Section 6.2). We
fold that pipeline into calibration targets at 32 nm directly: nominal
per-core static power and L2 static power at the reference voltage and
temperature, plus per-application effective switched capacitance derived
from Table 5's measured dynamic powers.
"""

from __future__ import annotations

# Per-core static (leakage) power of a variation-free core at
# vdd_nominal and the reference temperature (60 C), watts. Variation
# raises the batch average well above this (exponential Vth
# sensitivity), putting chip leakage near 45-50 % of total power under
# full load — in line with ITRS-era 32 nm projections.
CORE_STATIC_NOMINAL_W = 0.85

# Static power of the entire shared L2 at nominal conditions, watts.
L2_STATIC_NOMINAL_W = 4.0

# L2 dynamic power modelled as a fraction of aggregate core dynamic
# power (the L2 is accessed roughly proportionally to instruction
# throughput).
L2_DYNAMIC_FRACTION = 0.10

# Supply voltage of the (non-DVFS) L2 domain.
L2_VDD = 1.0


def ceff_from_reference(p_dyn_ref: float, vdd_ref: float,
                        freq_ref: float) -> float:
    """Effective switched capacitance from a measured dynamic power.

    ``P_dyn = Ceff * V^2 * f`` inverted at the reference point.

    Args:
        p_dyn_ref: Measured dynamic power (W).
        vdd_ref: Reference supply voltage (V).
        freq_ref: Reference frequency (Hz).

    Returns:
        Ceff in farads.
    """
    if p_dyn_ref < 0:
        raise ValueError("dynamic power must be non-negative")
    if vdd_ref <= 0 or freq_ref <= 0:
        raise ValueError("reference voltage and frequency must be positive")
    return p_dyn_ref / (vdd_ref ** 2 * freq_ref)
