"""Power substrate: dynamic, leakage, scaling constants, sensors."""

from .scaling import (
    CORE_STATIC_NOMINAL_W,
    L2_DYNAMIC_FRACTION,
    L2_STATIC_NOMINAL_W,
    L2_VDD,
    ceff_from_reference,
)
from .dynamic import dynamic_power, l2_dynamic_power
from .leakage import (
    DIBL_COEFF,
    CoreLeakageModel,
    L2LeakageModel,
    UnitLeakage,
    build_core_leakage,
    leakage_calibration,
    leakage_factor,
    subthreshold_slope_factor,
)
from .sensors import (
    IpcSensor,
    PowerSensor,
    Sensor,
    SensorSpec,
    core_reader,
    independent_rngs,
)

__all__ = [
    "CORE_STATIC_NOMINAL_W",
    "CoreLeakageModel",
    "DIBL_COEFF",
    "IpcSensor",
    "L2LeakageModel",
    "L2_DYNAMIC_FRACTION",
    "L2_STATIC_NOMINAL_W",
    "L2_VDD",
    "PowerSensor",
    "Sensor",
    "SensorSpec",
    "UnitLeakage",
    "build_core_leakage",
    "ceff_from_reference",
    "core_reader",
    "dynamic_power",
    "independent_rngs",
    "l2_dynamic_power",
    "leakage_calibration",
    "leakage_factor",
    "subthreshold_slope_factor",
]
