"""On-chip power and IPC sensors (Foxton-style, Section 5.1).

The scheduling and power-management algorithms never read model
internals directly; they read sensors, which add configurable
quantisation and Gaussian noise to the true value. With the default
zero-noise settings the sensors are transparent, which keeps the
headline experiments deterministic; the sensor-noise robustness bench
turns noise on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class SensorSpec:
    """Noise/quantisation characteristics of a sensor."""

    noise_sigma: float = 0.0
    quantum: float = 0.0

    def __post_init__(self) -> None:
        if self.noise_sigma < 0 or self.quantum < 0:
            raise ValueError("sensor parameters must be non-negative")


class Sensor:
    """A scalar sensor with optional noise and quantisation."""

    def __init__(self, spec: Optional[SensorSpec] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.spec = spec or SensorSpec()
        self._rng = rng or np.random.default_rng(0)

    def read(self, true_value: float) -> float:
        """Observe a true value through the sensor."""
        value = float(true_value)
        if self.spec.noise_sigma > 0:
            value += self.spec.noise_sigma * float(self._rng.standard_normal())
        if self.spec.quantum > 0:
            value = round(value / self.spec.quantum) * self.spec.quantum
        return value


class PowerSensor(Sensor):
    """Per-core or chip-level power sensor (watts)."""

    def read(self, true_value: float) -> float:
        return max(super().read(true_value), 0.0)


class IpcSensor(Sensor):
    """Per-core performance-counter-derived IPC sensor."""

    def read(self, true_value: float) -> float:
        return max(super().read(true_value), 0.0)
