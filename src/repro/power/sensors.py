"""On-chip power and IPC sensors (Foxton-style, Section 5.1).

The scheduling and power-management algorithms never read model
internals directly; they read sensors, which add configurable
quantisation and Gaussian noise to the true value. With the default
zero-noise settings the sensors are transparent, which keeps the
headline experiments deterministic; the sensor-noise robustness bench
(``python -m repro.cli ext-faults``, backed by
``benchmarks/test_bench_faults.py`` and
``benchmarks/test_bench_sensor_noise.py``) turns noise — and outright
sensor faults, via :mod:`repro.faults` — on.

Consumers that own several sensors must give each one an independent
noise stream: two default-constructed sensors share the seed-0 stream
and would produce perfectly correlated errors. Use
:func:`independent_rngs` to derive per-sensor generators from one
parent seed (reproducible, yet statistically independent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


def independent_rngs(n: int, seed: int = 0) -> List[np.random.Generator]:
    """``n`` statistically independent generators from one parent seed.

    Spawns child :class:`numpy.random.SeedSequence` objects, so the
    streams are independent but the whole set is reproducible from
    ``seed`` — the right way to seed a bank of sensors (one shared
    ``default_rng(seed)`` would make their noise perfectly correlated).
    """
    if n < 1:
        raise ValueError("need at least one generator")
    return [np.random.default_rng(child)
            for child in np.random.SeedSequence(seed).spawn(n)]


def core_reader(sensor, core_id: int):
    """Per-core view of a sensor or sensor bank.

    Sensor banks (:class:`repro.faults.SensorBank`) expose a
    ``core(core_id)`` accessor returning the physical per-core sensor;
    a plain :class:`Sensor` is its own reader for every core. Callers
    that read per-core quantities (e.g. LinOpt's power profiling) go
    through this helper so both kinds plug in unchanged.
    """
    accessor = getattr(sensor, "core", None)
    if callable(accessor):
        return accessor(core_id)
    return sensor


@dataclass
class SensorSpec:
    """Noise/quantisation characteristics of a sensor.

    Attributes:
        noise_sigma: Gaussian noise sigma — in absolute units by
            default, or as a fraction of the true value when
            ``relative`` is set (e.g. 0.05 for 5 % reading noise).
        quantum: Reading quantisation step (0 disables).
        relative: Interpret ``noise_sigma`` relative to the reading.
    """

    noise_sigma: float = 0.0
    quantum: float = 0.0
    relative: bool = False

    def __post_init__(self) -> None:
        if self.noise_sigma < 0 or self.quantum < 0:
            raise ValueError("sensor parameters must be non-negative")


class Sensor:
    """A scalar sensor with optional noise and quantisation."""

    def __init__(self, spec: Optional[SensorSpec] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.spec = spec or SensorSpec()
        self._rng = rng or np.random.default_rng(0)

    def read(self, true_value: float) -> float:
        """Observe a true value through the sensor."""
        value = float(true_value)
        if self.spec.noise_sigma > 0:
            scale = abs(float(true_value)) if self.spec.relative else 1.0
            value += (self.spec.noise_sigma * scale
                      * float(self._rng.standard_normal()))
        if self.spec.quantum > 0:
            value = round(value / self.spec.quantum) * self.spec.quantum
        return value


class PowerSensor(Sensor):
    """Per-core or chip-level power sensor (watts)."""

    def read(self, true_value: float) -> float:
        return max(super().read(true_value), 0.0)


class IpcSensor(Sensor):
    """Per-core performance-counter-derived IPC sensor."""

    def read(self, true_value: float) -> float:
        return max(super().read(true_value), 0.0)
