"""Barrier-synchronised parallel applications (paper Section 8).

The paper's evaluation is multiprogrammed; its future work extends the
analysis to parallel applications, where variation has a different
sting: between barriers every worker executes the same amount of work,
so the *slowest* selected core sets the iteration time and faster
cores simply wait (Balakrishnan et al.'s performance-asymmetry
problem, Section 2).

:class:`ParallelApplication` models a data-parallel program as
``n_threads`` identical workers executing ``instructions_per_barrier``
instructions between global barriers, with a fixed per-barrier
synchronisation overhead. Worker IPC follows the same CPI-split model
as the sequential profiles (a base :class:`AppProfile` supplies it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .applications import AppProfile


@dataclass(frozen=True)
class ParallelApplication:
    """A barrier-synchronised data-parallel program.

    Attributes:
        worker: Per-worker execution profile (IPC vs frequency and
            dynamic power come from here).
        n_threads: Number of worker threads (one per core).
        instructions_per_barrier: Instructions each worker executes
            between consecutive barriers.
        barrier_overhead_s: Fixed synchronisation cost per barrier.
    """

    worker: AppProfile
    n_threads: int
    instructions_per_barrier: float = 1e7
    barrier_overhead_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ValueError("n_threads must be positive")
        if self.instructions_per_barrier <= 0:
            raise ValueError("instructions_per_barrier must be positive")
        if self.barrier_overhead_s < 0:
            raise ValueError("barrier overhead must be non-negative")

    def worker_time_s(self, freq_hz: float) -> float:
        """Time one worker needs for its inter-barrier work."""
        if freq_hz <= 0:
            raise ValueError("frequency must be positive")
        rate = self.worker.ipc_at(freq_hz) * freq_hz
        return self.instructions_per_barrier / rate

    def iteration_time_s(self, freqs_hz: Sequence[float]) -> float:
        """Barrier-to-barrier time: the slowest worker plus overhead."""
        freqs = np.asarray(freqs_hz, dtype=float)
        if freqs.size != self.n_threads:
            raise ValueError("need one frequency per worker")
        worst = max(self.worker_time_s(float(f)) for f in freqs)
        return worst + self.barrier_overhead_s

    def throughput_ips(self, freqs_hz: Sequence[float]) -> float:
        """Useful instructions per second across all workers."""
        total = self.n_threads * self.instructions_per_barrier
        return total / self.iteration_time_s(freqs_hz)

    def slack_fraction(self, freqs_hz: Sequence[float]) -> float:
        """Fraction of worker-time wasted waiting at barriers.

        Zero when every worker is equally fast — the quantity a
        barrier-aware DVFS policy drives toward zero.
        """
        freqs = np.asarray(freqs_hz, dtype=float)
        times = np.array([self.worker_time_s(float(f)) for f in freqs])
        worst = times.max()
        if worst <= 0:
            return 0.0
        return float(np.mean((worst - times) / worst))
